(* Determinism of the domain-pool execution layer (lib/exec).  The
   contract under test: running on N domains changes wall-clock only —
   a restricted chase produces the *identical* derivation (same triggers
   in the same order, same fresh nulls, same status), the Büchi decider
   explores the same automaton to the same verdict, and the parallel
   chase builds the same rounds.  The domain count comes from CHASE_JOBS
   (default 3), so CI runs this suite both sequential and on 4 domains. *)

open Chase_core
open Chase_engine
module Pool = Chase_exec.Pool

let jobs = Pool.default_jobs ~default:3 ()

(* Small random TGD sets over Tgen's fixed r/2, s/1, t/3 schema. *)
let tgds_gen =
  let open QCheck2.Gen in
  list_size (int_range 1 3) Tgen.tgd_gen

let random_db tgds seed =
  Chase_workload.Db_gen.random ~schema:(Schema.of_tgds tgds) ~atoms:5 ~domain:3 ~seed

let same_derivation d1 d2 =
  Derivation.status d1 = Derivation.status d2
  && List.length (Derivation.steps d1) = List.length (Derivation.steps d2)
  && List.for_all2
       (fun s1 s2 ->
         Trigger.equal s1.Derivation.trigger s2.Derivation.trigger
         && List.equal Atom.equal s1.Derivation.produced s2.Derivation.produced)
       (Derivation.steps d1) (Derivation.steps d2)
  && Instance.equal (Derivation.final d1) (Derivation.final d2)

let strategies = [ Restricted.Fifo; Restricted.Lifo; Restricted.Random 42 ]

(* --- pool mechanics --------------------------------------------------- *)

let test_map_order () =
  Pool.with_pool ~jobs @@ fun pool ->
  let input = Array.init 100 Fun.id in
  let expected = Array.map (fun x -> (3 * x) + 1) input in
  Alcotest.(check (array int)) "map_array keeps order" expected
    (Pool.map_array pool (fun x -> (3 * x) + 1) input);
  Alcotest.(check (array int)) "chunk=1" expected
    (Pool.map_array ~chunk:1 pool (fun x -> (3 * x) + 1) input);
  Alcotest.(check (array int)) "chunk=7" expected
    (Pool.map_array ~chunk:7 pool (fun x -> (3 * x) + 1) input);
  Alcotest.(check (list int)) "map_list keeps order"
    (Array.to_list expected)
    (Pool.map_list pool (fun x -> (3 * x) + 1) (Array.to_list input));
  Alcotest.(check (array int)) "empty input" [||] (Pool.map_array pool Fun.id [||])

let test_inline () =
  let input = Array.init 10 Fun.id in
  Alcotest.(check (array int)) "inline map_array" (Array.map succ input)
    (Pool.map_array Pool.inline succ input);
  Alcotest.(check int) "inline jobs" 1 (Pool.jobs Pool.inline);
  Alcotest.(check bool) "inline not parallel" false (Pool.is_parallel Pool.inline);
  (* jobs:1 never spawns; it behaves exactly like [inline]. *)
  Pool.with_pool ~jobs:1 @@ fun pool ->
  Alcotest.(check bool) "jobs:1 not parallel" false (Pool.is_parallel pool)

let test_pool_shape () =
  Pool.with_pool ~jobs @@ fun pool ->
  Alcotest.(check int) "jobs as requested" jobs (Pool.jobs pool);
  Alcotest.(check bool) "parallel iff jobs>1" (jobs > 1) (Pool.is_parallel pool)

let test_exceptions () =
  (* The first failure re-raises on the coordinator, pool still usable. *)
  Pool.with_pool ~jobs @@ fun pool ->
  let boom i = if i = 37 then failwith "boom" else i in
  (try
     ignore (Pool.map_array pool boom (Array.init 100 Fun.id));
     Alcotest.fail "expected Failure"
   with Failure m -> Alcotest.(check string) "exception propagates" "boom" m);
  Alcotest.(check (array int)) "pool survives a failed job"
    (Array.init 20 succ)
    (Pool.map_array pool succ (Array.init 20 Fun.id))

let test_with_pool_cleanup () =
  (* with_pool shuts the domains down even when the body raises. *)
  (try Pool.with_pool ~jobs (fun _ -> failwith "body") with Failure _ -> ());
  Pool.with_pool ~jobs @@ fun pool ->
  Alcotest.(check int) "fresh pool works" 42 (Pool.map_array pool Fun.id [| 42 |]).(0)

let test_default_jobs () =
  (* The suite itself may run under CHASE_JOBS (CI does); check the
     parse against whatever the environment says. *)
  let expected =
    match Sys.getenv_opt "CHASE_JOBS" with
    | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 7)
    | None -> 7
  in
  Alcotest.(check int) "default_jobs" expected (Pool.default_jobs ~default:7 ())

(* --- determinism properties ------------------------------------------- *)

let properties =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"parallel restricted chase = sequential (identical derivations)"
         ~count:60
         (Gen.pair tgds_gen (Gen.int_bound 100_000))
         (fun (tgds, seed) ->
           let db = random_db tgds seed in
           Pool.with_pool ~jobs @@ fun pool ->
           List.for_all
             (fun strategy ->
               List.for_all
                 (fun naming ->
                   same_derivation
                     (Restricted.run ~strategy ~naming ~max_steps:60 tgds db)
                     (Restricted.run ~strategy ~naming ~max_steps:60 ~pool tgds db))
                 [ `Fresh; `Canonical ])
             strategies));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"parallel Büchi: same states, transitions and verdict" ~count:25
         (Gen.int_bound 100_000)
         (fun seed ->
           let tgds =
             Chase_workload.Tgd_gen.sticky_set
               { Chase_workload.Tgd_gen.default with Chase_workload.Tgd_gen.seed; tgds = 4 }
           in
           let stats pool = Chase_termination.Sticky_decider.decide_with_stats ~pool tgds in
           let tag (s : Chase_termination.Sticky_decider.stats) =
             match s.Chase_termination.Sticky_decider.decision with
             | Chase_termination.Sticky_decider.All_terminating -> `Empty
             | Chase_termination.Sticky_decider.Non_terminating _ -> `Lasso
             | Chase_termination.Sticky_decider.Inconclusive _ -> `Inconclusive
           in
           let seq = stats Pool.inline in
           Pool.with_pool ~jobs @@ fun pool ->
           let par = stats pool in
           tag par = tag seq
           && par.Chase_termination.Sticky_decider.components
              = seq.Chase_termination.Sticky_decider.components
           && par.Chase_termination.Sticky_decider.explored_states
              = seq.Chase_termination.Sticky_decider.explored_states));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"Parallel.run rounds independent of the pool" ~count:60
         (Gen.pair tgds_gen (Gen.int_bound 100_000))
         (fun (tgds, seed) ->
           let db = random_db tgds seed in
           let seq = Parallel.run ~max_rounds:8 tgds db in
           Pool.with_pool ~jobs @@ fun pool ->
           let par = Parallel.run ~max_rounds:8 ~pool tgds db in
           seq.Parallel.saturated = par.Parallel.saturated
           && Instance.equal seq.Parallel.final par.Parallel.final
           && List.length seq.Parallel.rounds = List.length par.Parallel.rounds
           && List.for_all2
                (fun (r1 : Parallel.round) (r2 : Parallel.round) ->
                  List.equal Trigger.equal r1.Parallel.applied r2.Parallel.applied
                  && Instance.equal r1.Parallel.after r2.Parallel.after)
                seq.Parallel.rounds par.Parallel.rounds));
  ]

let unit_tests =
  [
    Alcotest.test_case "map_array/map_list keep order" `Quick test_map_order;
    Alcotest.test_case "inline and jobs:1 pools" `Quick test_inline;
    Alcotest.test_case "pool shape" `Quick test_pool_shape;
    Alcotest.test_case "exceptions propagate, pool survives" `Quick test_exceptions;
    Alcotest.test_case "with_pool cleans up on raise" `Quick test_with_pool_cleanup;
    Alcotest.test_case "default_jobs reads CHASE_JOBS" `Quick test_default_jobs;
  ]

let suite = [ ("exec-pool", unit_tests); ("exec-determinism", properties) ]
