(* Unit and property tests for the relational core (paper §2, App. A). *)

open Chase_core

let term = Alcotest.testable Term.pp Term.equal
let atom = Alcotest.testable Atom.pp Atom.equal
let instance = Alcotest.testable Instance.pp Instance.equal

let a ?(p = "r") args = Atom.make p args
let c x = Term.Const x
let v x = Term.Var x
let n x = Term.Null x

let unit_tests =
  [
    Alcotest.test_case "term ordering groups constants, nulls, variables" `Quick (fun () ->
        Alcotest.(check bool) "const < null" true (Term.compare (c "z") (n "a") < 0);
        Alcotest.(check bool) "null < var" true (Term.compare (n "z") (v "a") < 0));
    Alcotest.test_case "atom positions_of" `Quick (fun () ->
        let at = a [ c "x"; c "y"; c "x" ] ~p:"t" in
        Alcotest.(check (list int)) "positions" [ 0; 2 ] (Atom.positions_of at (c "x")));
    Alcotest.test_case "is_fact and is_ground" `Quick (fun () ->
        Alcotest.(check bool) "fact" true (Atom.is_fact (a [ c "x"; c "y" ]));
        Alcotest.(check bool) "null not fact" false (Atom.is_fact (a [ c "x"; n "1" ]));
        Alcotest.(check bool) "null ground" true (Atom.is_ground (a [ c "x"; n "1" ]));
        Alcotest.(check bool) "var not ground" false (Atom.is_ground (a [ c "x"; v "X" ])));
    Alcotest.test_case "substitution apply fixes constants" `Quick (fun () ->
        let s = Substitution.bind (v "X") (c "a") Substitution.empty in
        Alcotest.check term "var" (c "a") (Substitution.apply_term s (v "X"));
        Alcotest.check term "const" (c "b") (Substitution.apply_term s (c "b")));
    Alcotest.test_case "substitution bind rejects constants" `Quick (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Substitution.bind: constant in domain") (fun () ->
            ignore (Substitution.bind (c "a") (c "b") Substitution.empty)));
    Alcotest.test_case "unify consistency" `Quick (fun () ->
        let s = Option.get (Substitution.unify (v "X") (c "a") Substitution.empty) in
        Alcotest.(check bool) "conflict" true (Substitution.unify (v "X") (c "b") s = None);
        Alcotest.(check bool) "agree" true (Substitution.unify (v "X") (c "a") s <> None));
    Alcotest.test_case "instance dedup and index" `Quick (fun () ->
        let i = Instance.of_list [ a [ c "x"; c "y" ]; a [ c "x"; c "y" ] ] in
        Alcotest.(check int) "cardinal" 1 (Instance.cardinal i);
        Alcotest.(check int) "with_pred" 1 (List.length (Instance.with_pred i "r"));
        Alcotest.(check int) "missing pred" 0 (List.length (Instance.with_pred i "zz")));
    Alcotest.test_case "active domain" `Quick (fun () ->
        let i = Instance.of_list [ a [ c "x"; n "1" ] ] in
        Alcotest.(check int) "dom" 2 (Term.Set.cardinal (Instance.active_domain i));
        Alcotest.(check bool) "not db" false (Instance.is_database i));
    Alcotest.test_case "homomorphism: body into instance" `Quick (fun () ->
        let i = Instance.of_list [ a [ c "x"; c "y" ]; a [ c "y"; c "z" ] ] in
        let body = [ a [ v "X"; v "Y" ]; a [ v "Y"; v "Z" ] ] in
        let homs = List.of_seq (Homomorphism.all body i) in
        (* X→x,Y→y,Z→z and X→.. any chain of length 2: (x,y,z) only, plus
           degenerate matches via repeated atoms: (x,y)(y,z) and (y,z)(z,?) no *)
        Alcotest.(check bool) "found" true (List.length homs >= 1);
        List.iter
          (fun h ->
            List.iter
              (fun b -> Alcotest.(check bool) "maps in" true
                  (Instance.mem (Substitution.apply_atom h b) i))
              body)
          homs);
    Alcotest.test_case "homomorphism respects frozen terms" `Quick (fun () ->
        let target = a [ c "x"; c "y" ] in
        let pattern = a [ n "u"; n "w" ] in
        let free = Homomorphism.match_atom ~pattern ~target Substitution.empty in
        Alcotest.(check bool) "free match" true (Option.is_some free);
        let frozen = Term.Set.singleton (n "u") in
        let fr = Homomorphism.match_atom ~frozen ~pattern ~target Substitution.empty in
        Alcotest.(check bool) "frozen mismatch" true (Option.is_none fr));
    Alcotest.test_case "isomorphism detects renamings" `Quick (fun () ->
        let i1 = Instance.of_list [ a [ n "1"; n "2" ] ] in
        let i2 = Instance.of_list [ a [ n "7"; n "8" ] ] in
        let i3 = Instance.of_list [ a [ n "7"; n "7" ] ] in
        Alcotest.(check bool) "iso" true (Homomorphism.isomorphic i1 i2);
        Alcotest.(check bool) "not iso" false (Homomorphism.isomorphic i1 i3));
    Alcotest.test_case "tgd frontier and existentials" `Quick (fun () ->
        let t = Chase_parser.Parser.parse_tgd "r(X,Y) -> exists Z. t(X,Z,Z)." in
        Alcotest.(check int) "frontier" 1 (Term.Set.cardinal (Tgd.frontier t));
        Alcotest.(check int) "existential" 1 (Term.Set.cardinal (Tgd.existential_vars t));
        Alcotest.(check (list int)) "frontier positions" [ 0 ] (Tgd.frontier_positions t));
    Alcotest.test_case "tgd satisfaction" `Quick (fun () ->
        let t = Chase_parser.Parser.parse_tgd "r(X,Y) -> exists Z. r(X,Z)." in
        let i = Instance.of_list [ a [ c "x"; c "y" ] ] in
        Alcotest.(check bool) "satisfied" true (Tgd.satisfied_by i t);
        let t2 = Chase_parser.Parser.parse_tgd "r(X,Y) -> exists Z. r(Y,Z)." in
        Alcotest.(check bool) "violated" false (Tgd.satisfied_by i t2));
    Alcotest.test_case "tgd accepts constants but rejects nulls" `Quick (fun () ->
        let t = Tgd.make ~body:[ a [ c "k"; v "Y" ] ] ~head:[ a [ v "Y"; v "Y" ] ] () in
        Alcotest.(check bool) "not constant-free" false (Tgd.constant_free t);
        let cf = Tgd.make ~body:[ a [ v "X"; v "Y" ] ] ~head:[ a [ v "Y"; v "Y" ] ] () in
        Alcotest.(check bool) "constant-free" true (Tgd.constant_free cf);
        match Tgd.make ~body:[ a [ n "u"; v "Y" ] ] ~head:[ a [ v "Y"; v "Y" ] ] () with
        | exception Tgd.Ill_formed _ -> ()
        | _ -> Alcotest.fail "expected Ill_formed");
    Alcotest.test_case "schema arity conflict" `Quick (fun () ->
        match Schema.add "r" 3 (Schema.add "r" 2 Schema.empty) with
        | exception Schema.Arity_mismatch _ -> ()
        | _ -> Alcotest.fail "expected Arity_mismatch");
    Alcotest.test_case "equality types: partitions count Bell numbers" `Quick (fun () ->
        List.iteri
          (fun i expected ->
            Alcotest.(check int)
              (Printf.sprintf "B(%d)" i)
              expected
              (List.length (Equality_type.partitions i)))
          [ 1; 1; 2; 5; 15 ]);
    Alcotest.test_case "equality type of atom" `Quick (fun () ->
        let at = a ~p:"t" [ c "x"; c "y"; c "x" ] in
        let e = Equality_type.of_atom at in
        Alcotest.(check bool) "0~2" true (Equality_type.same_class e 0 2);
        Alcotest.(check bool) "0~1" false (Equality_type.same_class e 0 1);
        Alcotest.(check int) "classes" 2 (Equality_type.num_classes e));
    Alcotest.test_case "sideatom types" `Quick (fun () ->
        let beta = Atom.make "g" [ c "a"; c "d"; c "c"; c "b" ] in
        let alpha = Atom.make "p" [ c "a"; c "b"; c "c" ] in
        let pis = Sideatom_type.all_of_pair alpha ~of_:beta in
        Alcotest.(check bool) "exists" true (pis <> []);
        List.iter
          (fun pi ->
            Alcotest.(check bool) "is_sideatom" true (Sideatom_type.is_sideatom pi alpha ~of_:beta);
            Alcotest.check atom "project" alpha (Sideatom_type.project pi beta))
          pis);
    Alcotest.test_case "instance set algebra" `Quick (fun () ->
        let i1 = Instance.of_list [ a [ c "x"; c "y" ] ] in
        let i2 = Instance.of_list [ a [ c "y"; c "z" ] ] in
        let u = Instance.union i1 i2 in
        Alcotest.(check int) "union" 2 (Instance.cardinal u);
        Alcotest.check instance "diff" i1 (Instance.diff u i2);
        Alcotest.(check bool) "subset" true (Instance.subset i1 u));
  ]

(* Edge cases both mutable fact stores must get right, run against
   Minstance and Cinstance through the same closure record (the same
   shape as the engines' store seam). *)
type store = {
  add : Atom.t -> bool;
  mem : Atom.t -> bool;
  cardinal : unit -> int;
  with_pred : string -> Atom.t list;
  with_pos_term : string -> int -> Term.t -> Atom.t list;
  pos_term_count : string -> int -> Term.t -> int;
  snapshot : unit -> Instance.t;
}

let minstance_store () =
  let m = Minstance.create () in
  {
    add = Minstance.add m;
    mem = Minstance.mem m;
    cardinal = (fun () -> Minstance.cardinal m);
    with_pred = Minstance.with_pred m;
    with_pos_term = Minstance.with_pos_term m;
    pos_term_count = Minstance.pos_term_count m;
    snapshot = (fun () -> Minstance.snapshot m);
  }

let cinstance_store () =
  let m = Cinstance.create () in
  {
    add = Cinstance.add m;
    mem = Cinstance.mem m;
    cardinal = (fun () -> Cinstance.cardinal m);
    with_pred = Cinstance.with_pred m;
    with_pos_term = Cinstance.with_pos_term m;
    pos_term_count = Cinstance.pos_term_count m;
    snapshot = (fun () -> Cinstance.snapshot m);
  }

let storage_tests =
  let cases (name, make) =
    [
      Alcotest.test_case (name ^ ": 0-ary predicate") `Quick (fun () ->
          let s = make () in
          let p0 = Atom.make "p" [] in
          Alcotest.(check bool) "new" true (s.add p0);
          Alcotest.(check bool) "dup" false (s.add p0);
          Alcotest.(check bool) "mem" true (s.mem p0);
          Alcotest.(check int) "cardinal" 1 (s.cardinal ());
          Alcotest.(check (list atom)) "with_pred" [ p0 ] (s.with_pred "p");
          Alcotest.check instance "snapshot" (Instance.of_list [ p0 ]) (s.snapshot ()));
      Alcotest.test_case (name ^ ": duplicate add straddling a snapshot boundary") `Quick
        (fun () ->
          let s = make () in
          let at = a [ c "x"; c "y" ] in
          Alcotest.(check bool) "first" true (s.add at);
          let snap1 = s.snapshot () in
          Alcotest.(check bool) "dup across snapshot" false (s.add at);
          Alcotest.(check int) "cardinal" 1 (s.cardinal ());
          Alcotest.check instance "snapshot unchanged" snap1 (s.snapshot ());
          let at2 = a [ c "y"; c "x" ] in
          Alcotest.(check bool) "new after snapshot" true (s.add at2);
          Alcotest.check instance "snapshot grows" (Instance.add at2 snap1) (s.snapshot ()));
      Alcotest.test_case (name ^ ": growth past initial capacity keeps indexes consistent")
        `Quick (fun () ->
          (* 100 rows over 101 distinct terms: columns, postings and the
             interner all outgrow their initial capacities. *)
          let s = make () in
          let k i = c (Printf.sprintf "k%03d" i) in
          let atoms = List.init 100 (fun i -> a [ k i; k (i + 1) ]) in
          List.iter (fun at -> Alcotest.(check bool) "new" true (s.add at)) atoms;
          Alcotest.(check int) "cardinal" 100 (s.cardinal ());
          List.iteri
            (fun i at ->
              Alcotest.(check bool) "mem" true (s.mem at);
              Alcotest.(check (list atom)) "indexed at pos 0" [ at ]
                (s.with_pos_term "r" 0 (k i));
              Alcotest.(check int) "count at pos 0" 1 (s.pos_term_count "r" 0 (k i)))
            atoms;
          Alcotest.check instance "snapshot" (Instance.of_list atoms) (s.snapshot ()));
      Alcotest.test_case (name ^ ": with_pos_term on a never-seen term") `Quick (fun () ->
          let s = make () in
          ignore (s.add (a [ c "x"; c "y" ]));
          Alcotest.(check (list atom)) "ghost term" [] (s.with_pos_term "r" 0 (c "ghost"));
          Alcotest.(check int) "ghost count" 0 (s.pos_term_count "r" 0 (c "ghost"));
          Alcotest.(check (list atom)) "ghost pred" [] (s.with_pos_term "zz" 0 (c "x"));
          Alcotest.(check bool) "ghost mem" false (s.mem (a [ c "ghost"; c "y" ])));
      Alcotest.test_case (name ^ ": one predicate at two arities") `Quick (fun () ->
          let s = make () in
          let one = a [ c "x" ] and two = a [ c "x"; c "y" ] in
          Alcotest.(check bool) "arity 1" true (s.add one);
          Alcotest.(check bool) "arity 2" true (s.add two);
          Alcotest.(check int) "cardinal" 2 (s.cardinal ());
          Alcotest.(check int) "with_pred sees both" 2 (List.length (s.with_pred "r"));
          Alcotest.(check bool) "mem arity 1" true (s.mem one);
          Alcotest.(check bool) "mem arity 2" true (s.mem two));
    ]
  in
  List.concat_map cases [ ("minstance", minstance_store); ("cinstance", cinstance_store) ]
  @ [
      Alcotest.test_case "interner: dense ids survive growth past initial capacity" `Quick
        (fun () ->
          let it = Term_interner.create ~size_hint:1 () in
          let terms = List.init 100 (fun i -> c (Printf.sprintf "k%02d" i)) in
          let ids = List.map (Term_interner.intern it) terms in
          Alcotest.(check (list int)) "dense ids" (List.init 100 Fun.id) ids;
          List.iteri
            (fun i t -> Alcotest.check term "roundtrip" t (Term_interner.term_of it i))
            terms;
          Alcotest.(check int) "cardinal" 100 (Term_interner.cardinal it);
          Alcotest.(check int) "re-intern is stable" 7 (Term_interner.intern it (c "k07"));
          Alcotest.(check int) "find on missing" (-1) (Term_interner.find it (c "zz")));
      Alcotest.test_case "cinstance: find_id on a never-interned term" `Quick (fun () ->
          let ci = Cinstance.of_instance (Instance.of_list [ a [ c "x"; c "y" ] ]) in
          Alcotest.(check int) "ghost id" (-1) (Cinstance.find_id ci (c "ghost"));
          Alcotest.(check bool) "seen id" true (Cinstance.find_id ci (c "x") >= 0));
    ]

let property_tests =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"compose applies right-to-left" ~count:200
         (QCheck2.Gen.triple Tgen.substitution_gen Tgen.substitution_gen Tgen.var_term_gen)
         (fun (s2, s1, t) ->
           Term.equal
             (Substitution.apply_term (Substitution.compose s2 s1) t)
             (Substitution.apply_term s2 (Substitution.apply_term s1 t))));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"every found homomorphism maps the body into the instance" ~count:200
         (QCheck2.Gen.pair
            (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 2) Tgen.var_atom_gen)
            Tgen.instance_gen)
         (fun (body, inst) ->
           Homomorphism.all body inst |> List.of_seq
           |> List.for_all (fun h ->
                  List.for_all (fun b -> Instance.mem (Substitution.apply_atom h b) inst) body)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"equality type canonical roundtrip" ~count:200 Tgen.ground_atom_gen
         (fun at ->
           let e = Equality_type.of_atom at in
           Equality_type.equal e (Equality_type.of_atom (Equality_type.canonical_atom e))));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"instance union is idempotent and commutative" ~count:200
         (QCheck2.Gen.pair Tgen.instance_gen Tgen.instance_gen)
         (fun (i1, i2) ->
           Instance.equal (Instance.union i1 i2) (Instance.union i2 i1)
           && Instance.equal (Instance.union i1 i1) i1));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"isomorphic instances are hom-equivalent" ~count:100 Tgen.instance_gen
         (fun i ->
           (* rename all nulls with a fixed bijection *)
           let rn = function
             | Term.Null x -> Term.Null ("z" ^ x)
             | t -> t
           in
           let j = Instance.map (Atom.map rn) i in
           Homomorphism.hom_equivalent i j));
  ]

let suite = [ ("core", unit_tests @ storage_tests @ property_tests) ]
