let () =
  Alcotest.run "chase-repro"
    (Suite_core.suite @ Suite_api.suite @ Suite_parser.suite @ Suite_engine.suite @ Suite_variants.suite
   @ Suite_automata.suite @ Suite_classes.suite
   @ Suite_sticky.suite @ Suite_guarded.suite @ Suite_fairness.suite @ Suite_mfa.suite
   @ Suite_deciders.suite @ Suite_extract.suite @ Suite_finitary.suite @ Suite_msol.suite
   @ Suite_query.suite
   @ Suite_structure.suite @ Suite_negative.suite @ Suite_properties.suite
   @ Suite_compiled.suite @ Suite_parallel_exec.suite @ Suite_obs.suite @ Suite_workload.suite
   @ Suite_scenarios.suite @ Suite_check.suite @ Suite_serve.suite)
