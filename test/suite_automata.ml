(* Direct tests for the Büchi substrate: hand-built automata with known
   languages, lasso validation, budgets. *)

open Chase_automata

(* States and letters are ints; transitions given as a function. *)
let make ~initial ~alphabet ~next ~accepting =
  Buchi.make ~initial ~alphabet ~next ~accepting ~state_key:string_of_int

let unit_tests =
  [
    Alcotest.test_case "empty language: no accepting cycle" `Quick (fun () ->
        (* 0 -a-> 1 -a-> 2 (sink, non-accepting self loop) *)
        let a =
          make ~initial:0 ~alphabet:[ 'a' ]
            ~next:(fun s _ -> match s with 0 -> Some 1 | 1 -> Some 2 | _ -> Some 2)
            ~accepting:(fun s -> s = 1)
        in
        Alcotest.(check bool) "empty" true (Buchi.is_empty a));
    Alcotest.test_case "accepting self-loop is non-empty with a unit cycle" `Quick (fun () ->
        let a =
          make ~initial:0 ~alphabet:[ 'a'; 'b' ]
            ~next:(fun s c ->
              match (s, c) with 0, 'a' -> Some 1 | 1, 'b' -> Some 1 | _ -> None)
            ~accepting:(fun s -> s = 1)
        in
        match Buchi.emptiness a with
        | Buchi.Nonempty lasso ->
            Alcotest.(check (list char)) "prefix" [ 'a' ] lasso.Buchi.prefix;
            Alcotest.(check (list char)) "cycle" [ 'b' ] lasso.Buchi.cycle;
            Alcotest.(check bool) "validates" true (Buchi.accepts_lasso a lasso)
        | _ -> Alcotest.fail "expected non-empty");
    Alcotest.test_case "accepting state outside any cycle does not count" `Quick (fun () ->
        (* 0 -a-> 1 (accepting) -a-> 0 : cycle through accepting — nonempty;
           variant: 1 -a-> 2 sink: empty *)
        let cyc =
          make ~initial:0 ~alphabet:[ 'a' ]
            ~next:(fun s _ -> match s with 0 -> Some 1 | 1 -> Some 0 | _ -> None)
            ~accepting:(fun s -> s = 1)
        in
        Alcotest.(check bool) "cycle accepted" false (Buchi.is_empty cyc);
        let nocyc =
          make ~initial:0 ~alphabet:[ 'a' ]
            ~next:(fun s _ -> match s with 0 -> Some 1 | 1 -> Some 2 | _ -> None)
            ~accepting:(fun s -> s = 1)
        in
        Alcotest.(check bool) "no cycle" true (Buchi.is_empty nocyc));
    Alcotest.test_case "lasso validation rejects wrong cycles" `Quick (fun () ->
        let a =
          make ~initial:0 ~alphabet:[ 'a'; 'b' ]
            ~next:(fun s c ->
              match (s, c) with 0, 'a' -> Some 1 | 1, 'b' -> Some 1 | _ -> None)
            ~accepting:(fun s -> s = 1)
        in
        Alcotest.(check bool) "empty cycle rejected" false
          (Buchi.accepts_lasso a { Buchi.prefix = [ 'a' ]; cycle = [] });
        Alcotest.(check bool) "non-returning cycle rejected" false
          (Buchi.accepts_lasso a { Buchi.prefix = []; cycle = [ 'a' ] });
        Alcotest.(check bool) "rejecting letter rejected" false
          (Buchi.accepts_lasso a { Buchi.prefix = [ 'a' ]; cycle = [ 'a' ] }));
    Alcotest.test_case "budget exceeded on an unbounded state space" `Quick (fun () ->
        let a =
          make ~initial:0 ~alphabet:[ 'a' ] ~next:(fun s _ -> Some (s + 1)) ~accepting:(fun _ -> false)
        in
        match Buchi.emptiness ~max_states:50 a with
        | Buchi.Budget_exceeded n -> Alcotest.(check bool) "counted" true (n >= 50)
        | _ -> Alcotest.fail "expected budget exhaustion");
    Alcotest.test_case "stats count reachable states and transitions" `Quick (fun () ->
        let a =
          make ~initial:0 ~alphabet:[ 'a'; 'b' ]
            ~next:(fun s c ->
              match (s, c) with
              | 0, 'a' -> Some 1
              | 0, 'b' -> Some 2
              | 1, 'a' -> Some 2
              | _ -> None)
            ~accepting:(fun _ -> false)
        in
        let st = Buchi.stats a in
        Alcotest.(check int) "states" 3 st.Buchi.states;
        Alcotest.(check int) "transitions" 3 st.Buchi.transitions);
    Alcotest.test_case "degenerate: accepting initial self-loop has an empty prefix" `Quick
      (fun () ->
        (* the whole automaton is one accepting state looping on itself:
           the lasso needs no prefix at all *)
        let a =
          make ~initial:0 ~alphabet:[ 'a' ] ~next:(fun _ _ -> Some 0) ~accepting:(fun s -> s = 0)
        in
        match Buchi.emptiness a with
        | Buchi.Nonempty lasso ->
            Alcotest.(check (list char)) "empty prefix" [] lasso.Buchi.prefix;
            Alcotest.(check (list char)) "unit cycle" [ 'a' ] lasso.Buchi.cycle;
            Alcotest.(check bool) "validates" true (Buchi.accepts_lasso a lasso)
        | _ -> Alcotest.fail "expected non-empty");
    Alcotest.test_case "degenerate: single non-accepting sink is empty" `Quick (fun () ->
        let looping =
          make ~initial:0 ~alphabet:[ 'a' ] ~next:(fun _ _ -> Some 0) ~accepting:(fun _ -> false)
        in
        Alcotest.(check bool) "self-loop sink" true (Buchi.is_empty looping);
        let dead =
          make ~initial:0 ~alphabet:[ 'a' ] ~next:(fun _ _ -> None) ~accepting:(fun s -> s = 0)
        in
        (* accepting but with no infinite run at all *)
        Alcotest.(check bool) "no successor" true (Buchi.is_empty dead));
    Alcotest.test_case "degenerate: cycle accepting only at its start validates" `Quick
      (fun () ->
        (* 0 -a-> 1 -a-> 2 -a-> 0 with only the cycle's start state (= the
           initial state) accepting *)
        let a =
          make ~initial:0 ~alphabet:[ 'a' ]
            ~next:(fun s _ -> Some ((s + 1) mod 3))
            ~accepting:(fun s -> s = 0)
        in
        Alcotest.(check bool) "hand-built lasso accepted" true
          (Buchi.accepts_lasso a { Buchi.prefix = []; cycle = [ 'a'; 'a'; 'a' ] });
        match Buchi.emptiness a with
        | Buchi.Nonempty lasso ->
            Alcotest.(check bool) "found lasso validates" true (Buchi.accepts_lasso a lasso)
        | _ -> Alcotest.fail "expected non-empty");
    Alcotest.test_case "emptiness and anatomy come from one pass" `Quick (fun () ->
        let a =
          make ~initial:0 ~alphabet:[ 'a'; 'b' ]
            ~next:(fun s c ->
              match (s, c) with
              | 0, 'a' -> Some 1
              | 0, 'b' -> Some 2
              | 1, 'a' -> Some 2
              | _ -> None)
            ~accepting:(fun _ -> false)
        in
        let verdict, st = Buchi.emptiness_with_stats a in
        (match verdict with Buchi.Empty -> () | _ -> Alcotest.fail "expected empty");
        Alcotest.(check int) "states" 3 st.Buchi.states;
        Alcotest.(check int) "transitions" 3 st.Buchi.transitions;
        Alcotest.(check int) "nothing pruned" 0 st.Buchi.pruned);
    Alcotest.test_case "is_empty_opt degrades budget overruns to None" `Quick (fun () ->
        let unbounded =
          make ~initial:0 ~alphabet:[ 'a' ] ~next:(fun s _ -> Some (s + 1))
            ~accepting:(fun _ -> false)
        in
        Alcotest.(check (option bool)) "budget is None" None
          (Buchi.is_empty_opt ~max_states:50 unbounded);
        let small =
          make ~initial:0 ~alphabet:[ 'a' ] ~next:(fun _ _ -> Some 0) ~accepting:(fun _ -> false)
        in
        Alcotest.(check (option bool)) "small answers" (Some true) (Buchi.is_empty_opt small));
    Alcotest.test_case "a fired cancel token interrupts exploration" `Quick (fun () ->
        let cancel = Chase_exec.Cancel.create () in
        Chase_exec.Cancel.cancel cancel;
        let a =
          make ~initial:0 ~alphabet:[ 'a' ] ~next:(fun s _ -> Some (s + 1))
            ~accepting:(fun _ -> false)
        in
        match Buchi.emptiness ~cancel a with
        | Buchi.Cancelled _ -> ()
        | _ -> Alcotest.fail "expected cancellation");
    Alcotest.test_case "subsumption pruning shrinks the graph and stays sound" `Quick
      (fun () ->
        (* state (i, j): acceptance depends only on i, so states with the
           same i are language-equal and any j-relation is a valid
           subsumption; j is monotone baggage capped at 4 *)
        let build accepting =
          Buchi.make ~initial:(0, 0) ~alphabet:[ 'a' ]
            ~next:(fun (i, j) _ -> Some ((i + 1) mod 3, min (j + 1) 4))
            ~accepting
            ~state_key:(fun (i, j) -> Printf.sprintf "%d,%d" i j)
          |> Buchi.with_subsumption
               ~key:(fun (i, _) -> string_of_int i)
               ~subsumes:(fun (_, j1) (_, j2) -> j1 <= j2)
        in
        let a = build (fun _ -> false) in
        let verdict, st = Buchi.emptiness_with_stats ~prune:true a in
        (match verdict with
        | Buchi.Empty -> ()
        | _ -> Alcotest.fail "pruned verdict should be empty");
        Alcotest.(check int) "pruned graph has 3 states" 3 st.Buchi.states;
        Alcotest.(check bool) "pruning happened" true (st.Buchi.pruned >= 1);
        let _, full = Buchi.emptiness_with_stats a in
        Alcotest.(check int) "exact graph is larger" 7 full.Buchi.states);
    Alcotest.test_case "pruned lasso that fails validation falls back to exact" `Quick
      (fun () ->
        (* same shape, now accepting on i = 0: the pruned quotient's lasso
           rides a redirected edge and does not replay in the exact
           automaton, so the search must rerun unpruned and return a
           genuine witness *)
        let a =
          Buchi.make ~initial:(0, 0) ~alphabet:[ 'a' ]
            ~next:(fun (i, j) _ -> Some ((i + 1) mod 3, min (j + 1) 4))
            ~accepting:(fun (i, _) -> i = 0)
            ~state_key:(fun (i, j) -> Printf.sprintf "%d,%d" i j)
          |> Buchi.with_subsumption
               ~key:(fun (i, _) -> string_of_int i)
               ~subsumes:(fun (_, j1) (_, j2) -> j1 <= j2)
        in
        match Buchi.emptiness ~prune:true a with
        | Buchi.Nonempty lasso ->
            Alcotest.(check bool) "witness validates in the exact automaton" true
              (Buchi.accepts_lasso a lasso)
        | _ -> Alcotest.fail "expected non-empty");
    Alcotest.test_case "long chains do not overflow the stack" `Quick (fun () ->
        (* 100k-state chain into an accepting loop: exercises the
           iterative Tarjan *)
        let n = 100_000 in
        let a =
          make ~initial:0 ~alphabet:[ 'a' ]
            ~next:(fun s _ -> if s < n then Some (s + 1) else Some n)
            ~accepting:(fun s -> s = n)
        in
        match Buchi.emptiness ~max_states:(n + 10) a with
        | Buchi.Nonempty lasso ->
            Alcotest.(check int) "prefix length" n (List.length lasso.Buchi.prefix);
            Alcotest.(check bool) "validates" true (Buchi.accepts_lasso a lasso)
        | _ -> Alcotest.fail "expected non-empty");
  ]

let suite = [ ("buchi", unit_tests) ]
