(* The chase-as-a-service layer (lib/serve): wire-protocol JSON, request
   decoding, the dispatch loop's reply/error contract, session budgets,
   and the core incremental-maintenance property — a warm session's
   re-chase is hom-equivalent to chasing the accumulated facts from
   scratch (at CHASE_JOBS parallelism, like the engine suites). *)

open Chase_core
open Chase_engine
module Json = Chase_serve.Json
module Protocol = Chase_serve.Protocol
module Session = Chase_serve.Session
module Server = Chase_serve.Server
module Pool = Chase_exec.Pool

let jobs = Pool.default_jobs ~default:3 ()

(* --- helpers ---------------------------------------------------------- *)

let server ?(max_sessions = 64) ?(defaults = Session.default_budgets) ?(backend = `Compiled) ()
    =
  Server.create { Server.max_sessions; defaults; backend }

let ask srv line = Server.dispatch srv line

let get reply path =
  let rec go v = function
    | [] -> v
    | k :: rest -> (
        match Json.member k v with
        | Some v -> go v rest
        | None -> Alcotest.failf "reply %s lacks field %s" (Json.to_string reply) k)
  in
  go reply path

let get_str reply path =
  match get reply path with
  | Json.Str s -> s
  | v -> Alcotest.failf "expected string at %s, got %s" (String.concat "." path) (Json.to_string v)

let get_int reply path =
  match get reply path with
  | Json.Int n -> n
  | v -> Alcotest.failf "expected int at %s, got %s" (String.concat "." path) (Json.to_string v)

let get_bool reply path =
  match get reply path with
  | Json.Bool b -> b
  | v -> Alcotest.failf "expected bool at %s, got %s" (String.concat "." path) (Json.to_string v)

let check_ok reply = Alcotest.(check bool) "ok reply" true (get_bool reply [ "ok" ])

let check_error code reply =
  Alcotest.(check bool) "error reply" false (get_bool reply [ "ok" ]);
  Alcotest.(check string) "error code" code (get_str reply [ "error"; "code" ])

(* Escape a program into a JSON request string field. *)
let req fields =
  Json.to_string (Json.Obj fields)

let load ?(session = "s") srv program =
  ask srv (req [ ("op", Json.Str "load-program"); ("session", Json.Str session);
                 ("program", Json.Str program) ])

let op ?(session = "s") ?(extra = []) srv name =
  ask srv (req ([ ("op", Json.Str name); ("session", Json.Str session) ] @ extra))

(* --- JSON values ------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc = {|{"a": [1, -2.5, true, null, "q\"uote\n"], "b": {"c": 1e3}}|} in
  let v = Json.parse doc in
  Alcotest.(check string) "stable rendering" (Json.to_string v) (Json.to_string (Json.parse (Json.to_string v)));
  Alcotest.(check int) "int member" 1
    (Option.get (Json.to_int_opt (Json.member "a" v |> Option.get |> function
      | Json.Arr (x :: _) -> Some x
      | _ -> None)));
  (* Integral floats decode as ints where an int is wanted. *)
  Alcotest.(check (option int)) "1e3 as int" (Some 1000)
    (Json.to_int_opt (Some (Json.parse "1e3")))

let test_json_errors () =
  let pos s =
    match Json.parse s with
    | _ -> Alcotest.failf "parse %S should fail" s
    | exception Json.Error { line; col; _ } -> (line, col)
  in
  Alcotest.(check (pair int int)) "unterminated object" (1, 8) (pos {|{"a": 1|});
  Alcotest.(check (pair int int)) "bare word" (1, 1) (pos "bogus");
  Alcotest.(check (pair int int)) "second line" (2, 6) (pos "{\n \"a\" 1}");
  (match Json.parse {|{"a": 1} trailing|} with
  | _ -> Alcotest.fail "trailing input should fail"
  | exception Json.Error _ -> ());
  (* \u escapes must be exactly 4 hex digits — OCaml literal syntax
     like underscores must not slip through int_of_string. *)
  (match Json.parse {|"\u0041"|} with
  | Json.Str s -> Alcotest.(check string) "valid \\u escape" "A" s
  | _ -> Alcotest.fail "\\u0041 should parse to a string");
  List.iter
    (fun bad ->
      match Json.parse bad with
      | _ -> Alcotest.failf "%s should fail" bad
      | exception Json.Error _ -> ())
    [ {|"\u1_23"|}; {|"\u0x12"|}; {|"\u 123"|}; {|"\uGGGG"|} ];
  Alcotest.(check string) "non-finite floats render null" "null" (Json.to_string (Json.Float nan))

(* --- protocol decoding ------------------------------------------------ *)

(* Every documented wire op decodes to the matching request — this is
   the "parser variants" test the acceptance criteria ask for: the list
   of ops lives in one place (Protocol.names) and this test fails if a
   variant is added without decode support. *)
let test_protocol_variants () =
  List.iter
    (fun name ->
      let extra =
        match name with
        | "load-program" -> {|, "program": "p(a)."|}
        | "assert" | "retract" -> {|, "facts": "p(a)."|}
        | "query" -> {|, "query": "p(X) -> ans(X)."|}
        | _ -> ""
      in
      let json = Json.parse (Printf.sprintf {|{"op": "%s", "session": "x"%s}|} name extra) in
      match Protocol.of_json json with
      | Protocol.Ok r ->
          Alcotest.(check string) ("op name round-trips: " ^ name) name (Protocol.op_name r);
          Alcotest.(check string) "session" "x" (Protocol.session_of r)
      | Protocol.Fail (_, msg) -> Alcotest.failf "op %s failed to decode: %s" name msg)
    Protocol.names

let test_protocol_rejects () =
  let fail_code line =
    match Protocol.of_json (Json.parse line) with
    | Protocol.Fail (code, _) -> Protocol.error_code_name code
    | Protocol.Ok _ -> Alcotest.failf "%s should not decode" line
  in
  Alcotest.(check string) "unknown op" "invalid-request" (fail_code {|{"op": "explode"}|});
  Alcotest.(check string) "missing op" "invalid-request" (fail_code {|{"session": "s"}|});
  Alcotest.(check string) "missing program" "invalid-request" (fail_code {|{"op": "load-program"}|});
  Alcotest.(check string) "missing facts" "invalid-request" (fail_code {|{"op": "assert"}|});
  Alcotest.(check string) "non-object" "invalid-request" (fail_code "[1,2]");
  (match Protocol.of_json (Json.parse {|{"op": "stats"}|}) with
  | Protocol.Ok r ->
      Alcotest.(check string) "default session" Protocol.default_session (Protocol.session_of r)
  | Protocol.Fail (_, m) -> Alcotest.fail m)

(* --- session lifecycle ------------------------------------------------ *)

let tc_program = "e(X,Y) -> r(X,Y). r(X,Y), e(Y,Z) -> r(X,Z). e(a,b). e(b,c)."

let test_lifecycle () =
  let srv = server () in
  let r = load srv tc_program in
  check_ok r;
  Alcotest.(check bool) "fresh" true (get_bool r [ "fresh" ]);
  Alcotest.(check int) "tgds" 2 (get_int r [ "tgds" ]);
  Alcotest.(check int) "facts" 2 (get_int r [ "facts" ]);
  Alcotest.(check int) "one session" 1 (Server.session_count srv);
  let r = load srv tc_program in
  Alcotest.(check bool) "reload replaces" false (get_bool r [ "fresh" ]);
  check_ok (op srv "close");
  Alcotest.(check int) "closed" 0 (Server.session_count srv);
  check_error "unknown-session" (op srv "stats");
  check_error "unknown-session" (op srv "close")

let test_busy () =
  let srv = server ~max_sessions:1 () in
  check_ok (load ~session:"one" srv tc_program);
  check_error "busy" (load ~session:"two" srv tc_program);
  (* Reloading the existing session is not an admission. *)
  check_ok (load ~session:"one" srv tc_program);
  check_ok (op ~session:"one" srv "close");
  check_ok (load ~session:"two" srv tc_program)

(* --- budgets ---------------------------------------------------------- *)

let diverging = "gen: r(X) -> exists Y. s(X,Y). step: s(X,Y) -> r(Y). r(a)."

let test_step_budget_and_resume () =
  let srv = server ~defaults:{ Session.default_budgets with Session.max_steps = 5 } () in
  check_ok (load srv diverging);
  let r = op srv "chase" in
  check_ok r;
  Alcotest.(check string) "status" "budget-exhausted" (get_str r [ "status" ]);
  Alcotest.(check string) "limit" "steps" (get_str r [ "limit" ]);
  Alcotest.(check int) "exactly the budget" 5 (get_int r [ "steps" ]);
  (* The stopped state resumes where it left off. *)
  let r2 = op srv "chase" in
  Alcotest.(check int) "resumes for another budget's worth" 5 (get_int r2 [ "steps" ]);
  let s = op srv "stats" in
  Alcotest.(check int) "steps accumulate" 10 (get_int s [ "steps_total" ]);
  Alcotest.(check int) "two chase calls" 2 (get_int s [ "chases" ]);
  Alcotest.(check bool) "not saturated" false (get_bool s [ "saturated" ]);
  (* A per-request max_steps below the session budget wins. *)
  let r3 = op ~extra:[ ("max_steps", Json.Int 2) ] srv "chase" in
  Alcotest.(check int) "request cap" 2 (get_int r3 [ "steps" ])

let test_fact_budget () =
  let srv = server ~defaults:{ Session.default_budgets with Session.max_facts = 8 } () in
  check_ok (load srv diverging);
  let r = op srv "chase" in
  Alcotest.(check string) "limit" "facts" (get_str r [ "limit" ]);
  (* Asserting past the cap is refused up front. *)
  check_error "budget-exhausted"
    (op ~extra:[ ("facts", Json.Str "r(b). r(c). r(d). r(e). r(f). r(g). r(h). r(i). r(j).") ]
       srv "assert");
  (* But an idempotent re-assert at the cap adds 0 new atoms and must
     not be refused — the pre-check counts only genuinely new facts. *)
  let r = op ~extra:[ ("facts", Json.Str "r(a). r(a).") ] srv "assert" in
  check_ok r;
  Alcotest.(check int) "re-assert adds nothing" 0 (get_int r [ "added" ]);
  (* Loading a database larger than the cap is refused too. *)
  let srv2 = server ~defaults:{ Session.default_budgets with Session.max_facts = 1 } () in
  check_error "budget-exhausted" (load srv2 "e(a,b). e(b,c).")

(* --- incrementality and retraction ------------------------------------ *)

let chain n =
  let b = Buffer.create 256 in
  Buffer.add_string b "e(X,Y) -> r(X,Y). tc: r(X,Y), e(Y,Z) -> r(X,Z).\n";
  for i = 1 to n do
    Buffer.add_string b (Printf.sprintf "e(v%d,v%d).\n" i (i + 1))
  done;
  Buffer.contents b

let test_warm_cheaper_than_cold () =
  let srv = server () in
  check_ok (load srv (chain 12));
  let cold = op srv "chase" in
  Alcotest.(check string) "cold terminates" "terminated" (get_str cold [ "status" ]);
  Alcotest.(check bool) "cold is not incremental" false (get_bool cold [ "incremental" ]);
  let cold_steps = get_int cold [ "steps" ] in
  (* One new edge at the end of the chain: the delta re-chase derives
     only the new reachabilities, far fewer than the cold run's
     quadratic step count. *)
  check_ok (op ~extra:[ ("facts", Json.Str "e(v13,v14).") ] srv "assert");
  let warm = op srv "chase" in
  Alcotest.(check string) "warm terminates" "terminated" (get_str warm [ "status" ]);
  Alcotest.(check bool) "warm is incremental" true (get_bool warm [ "incremental" ]);
  let warm_steps = get_int warm [ "steps" ] in
  Alcotest.(check bool)
    (Printf.sprintf "warm (%d) < cold (%d) steps" warm_steps cold_steps)
    true
    (warm_steps < cold_steps);
  (* And the warm result matches chasing everything from scratch. *)
  let scratch = server () in
  check_ok (load scratch (chain 13));
  let sc = op scratch "chase" in
  Alcotest.(check int) "same final cardinality as scratch" (get_int sc [ "facts" ])
    (get_int warm [ "facts" ])

let test_retract_full_rechase () =
  let srv = server () in
  check_ok (load srv tc_program);
  check_ok (op srv "chase");
  let r = op ~extra:[ ("facts", Json.Str "e(a,b).") ] srv "retract" in
  check_ok r;
  Alcotest.(check int) "removed" 1 (get_int r [ "removed" ]);
  Alcotest.(check string) "full re-chase announced" "full" (get_str r [ "rechase" ]);
  let c = op srv "chase" in
  Alcotest.(check bool) "fallback is not incremental" false (get_bool c [ "incremental" ]);
  Alcotest.(check string) "terminates" "terminated" (get_str c [ "status" ]);
  (* Retracting the derived-only consequences of nothing is a no-op. *)
  let r2 = op ~extra:[ ("facts", Json.Str "e(z,z).") ] srv "retract" in
  Alcotest.(check int) "absent fact" 0 (get_int r2 [ "removed" ]);
  Alcotest.(check string) "no re-chase" "none" (get_str r2 [ "rechase" ]);
  let s = op srv "stats" in
  Alcotest.(check int) "one rebuild" 1 (get_int s [ "rebuilds" ])

(* --- errors stay structured ------------------------------------------- *)

let test_malformed_input () =
  let srv = server () in
  let r = ask srv "this is not json" in
  check_error "invalid-json" r;
  Alcotest.(check int) "line" 1 (get_int r [ "error"; "line" ]);
  Alcotest.(check bool) "col present" true (get_int r [ "error"; "col" ] >= 1);
  check_error "invalid-request" (ask srv {|{"op": "explode"}|});
  check_error "invalid-request" (ask srv "[]");
  (* Surface-syntax errors carry positions too. *)
  let r = load srv "e(X Y) -> r(X)." in
  check_error "parse-error" r;
  Alcotest.(check int) "program error line" 1 (get_int r [ "error"; "line" ]);
  (* A facts payload smuggling a TGD is rejected. *)
  check_ok (load srv tc_program);
  check_error "invalid-request" (op ~extra:[ ("facts", Json.Str "p(X) -> q(X).") ] srv "assert");
  (* The server survives all of the above. *)
  check_ok (op srv "stats")

let test_query_contract () =
  let srv = server () in
  check_ok (load srv "p(X) -> exists Y. q(X,Y). p(a).");
  check_error "not-saturated" (op ~extra:[ ("query", Json.Str "q(X,Y) -> ans(X).") ] srv "query");
  check_ok (op srv "chase");
  let r = op ~extra:[ ("query", Json.Str "q(X,Y) -> ans(X).") ] srv "query" in
  check_ok r;
  Alcotest.(check int) "certain answer count" 1 (get_int r [ "count" ]);
  (* Tuples containing nulls are not certain answers. *)
  let r = op ~extra:[ ("query", Json.Str "q(X,Y) -> ans(X,Y).") ] srv "query" in
  Alcotest.(check int) "null tuples filtered" 0 (get_int r [ "count" ]);
  check_error "parse-error" (op ~extra:[ ("query", Json.Str "q(X,") ] srv "query")

(* --- decide op -------------------------------------------------------- *)

let test_decide_op () =
  let srv = server () in
  check_ok (load srv "r(X,Y) -> exists Z. r(X,Z). r(a,b).");
  (* Fixed dispatch: a conclusive sticky answer, no procedures field. *)
  let r = op srv "decide" in
  check_ok r;
  Alcotest.(check string) "answer" "terminating" (get_str r [ "answer" ]);
  Alcotest.(check string) "method" "sticky-buchi" (get_str r [ "method" ]);
  Alcotest.(check bool) "no procedures in fixed mode" true
    (Json.member "procedures" r = None);
  (* A starved state budget degrades to an Unknown answer — never a
     protocol error or an exception escaping the session.  The shifted
     rule needs more than one Büchi state per component, so a budget of
     1 genuinely starves it. *)
  check_ok (load ~session:"t" srv "r(X,Y) -> exists Z. r(Y,Z). r(a,b).");
  let r = op ~session:"t" ~extra:[ ("max_states", Json.Int 1) ] srv "decide" in
  check_ok r;
  Alcotest.(check string) "starved budget is unknown" "unknown" (get_str r [ "answer" ]);
  let r = op ~session:"t" srv "decide" in
  Alcotest.(check string) "full budget decides" "non-terminating" (get_str r [ "answer" ]);
  (* Portfolio mode folds every racer into the reply. *)
  let r = op ~extra:[ ("portfolio", Json.Bool true) ] srv "decide" in
  check_ok r;
  Alcotest.(check string) "portfolio answer" "terminating" (get_str r [ "answer" ]);
  (match get r [ "procedures" ] with
  | Json.Arr (_ :: _ as procs) ->
      List.iter
        (fun p ->
          ignore (get_str p [ "name" ]);
          ignore (get_str p [ "outcome" ]);
          ignore (get_bool p [ "conclusive" ]))
        procs
  | v -> Alcotest.failf "expected a non-empty procedures array, got %s" (Json.to_string v));
  check_error "unknown-session" (op ~session:"nope" srv "decide")

let test_id_echo () =
  let srv = server () in
  let r = ask srv {|{"id": "abc-7", "op": "stats", "session": "nope"}|} in
  Alcotest.(check string) "id echoed on errors" "abc-7" (get_str r [ "id" ]);
  check_ok (load srv tc_program);
  let r = ask srv {|{"id": 42, "op": "stats", "session": "s"}|} in
  Alcotest.(check int) "id echoed on success" 42 (get_int r [ "id" ])

(* --- transport hygiene ------------------------------------------------ *)

let test_stale_socket_guard () =
  (* A regular file at the socket path is user data: refuse, keep it. *)
  let file = Filename.temp_file "serve_guard" ".txt" in
  (match Server.remove_stale_socket file with
  | () -> Alcotest.fail "regular file should be refused"
  | exception Failure _ -> ());
  Alcotest.(check bool) "file survives" true (Sys.file_exists file);
  Sys.remove file;
  (* Nothing at the path: a no-op. *)
  Server.remove_stale_socket file;
  (* An actual leftover socket is unlinked. *)
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX file);
  Unix.close sock;
  Server.remove_stale_socket file;
  Alcotest.(check bool) "stale socket removed" false (Sys.file_exists file)

(* --- documentation ---------------------------------------------------- *)

(* docs/SERVICE.md must document every request op and every error code;
   this is the contract that keeps the reference complete as the
   protocol grows. *)
let test_service_doc_complete () =
  let doc = In_channel.with_open_text "../docs/SERVICE.md" In_channel.input_all in
  let contains needle =
    let nl = String.length needle and dl = String.length doc in
    let rec go i = i + nl <= dl && (String.sub doc i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "SERVICE.md documents op %S" name)
        true
        (contains (Printf.sprintf "\"op\": \"%s\"" name)))
    Protocol.names;
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Printf.sprintf "SERVICE.md documents error code %S" code)
        true (contains code))
    (List.map Protocol.error_code_name
       [
         Protocol.Invalid_json; Protocol.Invalid_request; Protocol.Parse_error;
         Protocol.Unknown_session; Protocol.Busy; Protocol.Budget_exhausted;
         Protocol.Not_saturated; Protocol.Internal;
       ])

(* --- incremental ≡ scratch (property) --------------------------------- *)

let incremental_equivalence =
  let open QCheck2 in
  let gen =
    let open Gen in
    let* tgds = list_size (int_range 1 3) Tgen.tgd_gen in
    let* seed = int_bound 10_000 in
    let* batches = int_range 2 4 in
    return (tgds, seed, batches)
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~name:"incremental assert/chase is hom-equivalent to scratch" ~count:60 gen
       (fun (tgds, seed, batches) ->
         let db =
           Chase_workload.Db_gen.random ~schema:(Schema.of_tgds tgds) ~atoms:6 ~domain:3 ~seed
         in
         Pool.with_pool ~jobs @@ fun pool ->
         let scratch =
           Restricted.run ~strategy:Restricted.Fifo ~max_steps:400 ~naming:`Canonical ~pool tgds
             db
         in
         match Derivation.status scratch with
         | Derivation.Out_of_budget -> true (* nothing to compare against *)
         | Derivation.Terminated ->
             let atoms = Instance.to_list db in
             let inc = Incremental.create ~strategy:Restricted.Fifo tgds Instance.empty in
             let saturated =
               List.for_all
                 (fun i ->
                   let batch = List.filteri (fun j _ -> j mod batches = i) atoms in
                   ignore (Incremental.assert_atoms inc batch);
                   let o = Incremental.chase ~epool:pool ~max_steps:400 inc in
                   o.Incremental.saturated)
                 (List.init batches Fun.id)
             in
             if not saturated then true
             else
               let final = Incremental.instance inc in
               Model_check.is_model ~database:db ~tgds final
               && Model_check.hom_equivalent final (Derivation.final scratch)))

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "json round-trip and accessors" `Quick test_json_roundtrip;
        Alcotest.test_case "json errors are positioned" `Quick test_json_errors;
        Alcotest.test_case "every wire op decodes" `Quick test_protocol_variants;
        Alcotest.test_case "malformed requests are rejected" `Quick test_protocol_rejects;
        Alcotest.test_case "session lifecycle: load, reload, close" `Quick test_lifecycle;
        Alcotest.test_case "admission control replies busy" `Quick test_busy;
        Alcotest.test_case "step budget stops and resumes" `Quick test_step_budget_and_resume;
        Alcotest.test_case "fact budget refuses growth" `Quick test_fact_budget;
        Alcotest.test_case "warm re-chase beats cold" `Quick test_warm_cheaper_than_cold;
        Alcotest.test_case "retract falls back to full re-chase" `Quick test_retract_full_rechase;
        Alcotest.test_case "malformed input never kills the server" `Quick test_malformed_input;
        Alcotest.test_case "query needs saturation, filters nulls" `Quick test_query_contract;
        Alcotest.test_case "decide: fixed, starved budget, portfolio" `Quick test_decide_op;
        Alcotest.test_case "request ids echo into replies" `Quick test_id_echo;
        Alcotest.test_case "stale-socket unlink refuses non-sockets" `Quick
          test_stale_socket_guard;
        Alcotest.test_case "SERVICE.md covers every op and error code" `Quick
          test_service_doc_complete;
        incremental_equivalence;
      ] );
  ]
