(* The differential oracle as a regression suite: replay the committed
   corpus (minimal repros of fixed bugs plus known-clean programs), run
   a fixed-seed fuzzing pass over every profile, and unit-test the
   shrinking and profile plumbing. *)

open Chase_core
open Chase_check

(* dune declares test/corpus/*.chase as deps, so the sandbox has the
   directory next to the test binary; fall back to the source tree when
   running outside dune. *)
let corpus_dir () =
  List.find_opt Sys.file_exists [ "corpus"; "test/corpus"; "../../../test/corpus" ]

let corpus_tests =
  [
    Alcotest.test_case "the committed corpus replays clean" `Quick (fun () ->
        match corpus_dir () with
        | None -> Alcotest.fail "test/corpus not found"
        | Some dir ->
            let entries = Corpus.load_dir dir in
            Alcotest.(check bool) "corpus is non-empty" true (entries <> []);
            List.iter
              (fun e ->
                match Corpus.replay e with
                | Ok () -> ()
                | Error msg -> Alcotest.fail msg)
              entries);
    Alcotest.test_case "corpus serialization round-trips" `Quick (fun () ->
        let tgds =
          Chase_parser.Parser.parse_tgds "g: r(X,c0) -> exists Z. r(Z,X)."
        in
        let db = Instance.of_list [ Atom.make "r" [ Term.Const "a"; Term.Const "c0" ] ] in
        let src = Corpus.source_of_case ~comments:[ "round-trip" ] tgds db in
        let p = Chase_parser.Parser.parse_program src in
        Alcotest.(check int) "one tgd" 1 (List.length (Chase_parser.Program.tgds p));
        Alcotest.(check bool) "same database" true
          (Instance.equal db (Chase_parser.Program.database p)));
  ]

let fuzz_tests =
  [
    Alcotest.test_case "200 fixed-seed cases across all profiles are clean" `Quick (fun () ->
        let jobs = Chase_exec.Pool.default_jobs () in
        let report =
          Harness.run { Harness.default_config with cases = 200; seed = 42; jobs }
        in
        List.iter
          (fun (f : Harness.failure) ->
            Format.eprintf "fuzz failure (%s, seed %d):@.%s@."
              (Profile.name f.Harness.profile)
              f.Harness.case_seed f.Harness.repro)
          report.Harness.failures;
        Alcotest.(check int) "no failing cases" 0 (List.length report.Harness.failures));
    Alcotest.test_case "the loop is deterministic in the seed" `Quick (fun () ->
        let gen seed = Gen.generate ~profile:{ Profile.klass = Profile.Unrestricted; constants = true } ~seed in
        let c1 = gen 123 and c2 = gen 123 in
        Alcotest.(check bool) "same tgds" true
          (List.equal Tgd.equal c1.Gen.tgds c2.Gen.tgds);
        Alcotest.(check bool) "same database" true
          (Instance.equal c1.Gen.database c2.Gen.database));
    Alcotest.test_case "the oracle is not vacuous: a starved budget trips it" `Quick (fun () ->
        (* Sanity-check the failure path end to end: with a depth budget
           of 1, the exhaustive search finds 2-step derivations of this
           terminating WA set and reports them as divergence evidence
           contradicting the decider's (correct) Terminating answer. *)
        let tgds =
          Chase_parser.Parser.parse_tgds "w0: p0(X) -> exists Z. p1(X,Z).\nw1: p1(X,Y) -> p2(Y)."
        in
        let db =
          Instance.of_list [ Atom.make "p0" [ Term.Const "c0" ]; Atom.make "p0" [ Term.Const "c1" ] ]
        in
        let budgets = { Oracle.default_budgets with Oracle.search_depth = 1 } in
        let ds = Oracle.check ~budgets tgds db in
        Alcotest.(check bool) "decider-termination fires" true
          (List.exists (fun d -> d.Oracle.invariant = "decider-termination") ds));
    Alcotest.test_case "check.* counters are reported" `Quick (fun () ->
        let stats = Obs.Stats.create () in
        Obs.with_sink (Obs.Stats.sink stats) (fun () ->
            ignore
              (Harness.run { Harness.default_config with cases = 10; seed = 1 }));
        Alcotest.(check int) "check.cases" 10 (Obs.Stats.counter stats "check.cases"));
  ]

let shrink_tests =
  [
    Alcotest.test_case "shrinking is 1-minimal on a planted failure" `Quick (fun () ->
        let tgds =
          Chase_parser.Parser.parse_tgds
            "bad: p(X) -> exists Z. p(Z).\n\
             ok1: p(X) -> q(X).\n\
             ok2: q(X) -> s(X)."
        in
        let bad = List.find (fun t -> Tgd.name t = "bad") tgds in
        let key = Atom.make "k" [ Term.Const "c0" ] in
        let db =
          Instance.of_list
            [
              key;
              Atom.make "p" [ Term.Const "c1" ];
              Atom.make "q" [ Term.Const "c2" ];
              Atom.make "s" [ Term.Const "c3" ];
            ]
        in
        (* "Fails" iff the bad rule and the key fact survive. *)
        let fails ts d = List.exists (fun t -> Tgd.equal t bad) ts && Instance.mem key d in
        let tgds', db' = Shrink.minimize ~fails tgds db in
        Alcotest.(check int) "one rule left" 1 (List.length tgds');
        Alcotest.(check bool) "the bad rule" true (Tgd.equal (List.hd tgds') bad);
        Alcotest.(check int) "one fact left" 1 (Instance.cardinal db');
        Alcotest.(check bool) "the key fact" true (Instance.mem key db'));
    Alcotest.test_case "shrink trials are counted" `Quick (fun () ->
        let stats = Obs.Stats.create () in
        let tgds = Chase_parser.Parser.parse_tgds "a: p(X) -> q(X).\nb: q(X) -> s(X)." in
        let db = Instance.of_list [ Atom.make "p" [ Term.Const "c0" ] ] in
        Obs.with_sink (Obs.Stats.sink stats) (fun () ->
            ignore (Shrink.minimize ~fails:(fun ts _ -> ts <> []) tgds db));
        Alcotest.(check bool) "check.shrink_steps > 0" true
          (Obs.Stats.counter stats "check.shrink_steps" > 0));
  ]

let profile_tests =
  [
    Alcotest.test_case "profile names round-trip" `Quick (fun () ->
        List.iter
          (fun p ->
            match Profile.of_name (Profile.name p) with
            | Ok p' -> Alcotest.(check bool) (Profile.name p) true (p = p')
            | Error e -> Alcotest.fail e)
          Profile.all);
    Alcotest.test_case "unknown profile names are refused" `Quick (fun () ->
        match Profile.of_name "turbo" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected an error");
  ]

let suite =
  [
    ("check-corpus", corpus_tests);
    ("check-fuzz", fuzz_tests);
    ("check-shrink", shrink_tests @ profile_tests);
  ]
