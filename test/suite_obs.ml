(* The observability substrate (lib/obs): signal accounting in the Stats
   sink, sink plumbing (install/with_sink/tee/suspended), span paths and
   exception safety, JSON-lines well-formedness (checked with a small
   hand-written JSON parser — the tree has no JSON dependency), and the
   property that matters most: installing a sink never changes what the
   engines derive. *)

open Chase_core
open Chase_engine

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let str = Alcotest.string

(* A deterministic clock: each [tick t] call advances time to [t]. *)
let with_fake_clock f =
  let t = ref 0.0 in
  Obs.set_clock (fun () -> !t);
  Fun.protect ~finally:(fun () -> Obs.set_clock Unix.gettimeofday) (fun () -> f t)

(* The default clock is wall time, so a span around a sleep — which burns
   no CPU — must report (roughly) the slept duration.  Under the old
   [Sys.time] default this span measured ~0 s; under a jobs>1 pool it
   over-reported instead (every domain's CPU accrues to the process). *)
let test_wall_clock_spans () =
  let st = Obs.Stats.create () in
  Obs.with_sink (Obs.Stats.sink st) (fun () -> Obs.span "sleep" (fun () -> Unix.sleepf 0.05));
  (match Obs.Stats.spans st with
  | [ ("sleep", (1, s)) ] ->
      check bool "span covers the sleep" true (s >= 0.03);
      check bool "span is sane (not hours)" true (s < 10.0)
  | spans ->
      Alcotest.failf "unexpected spans: %s" (String.concat ", " (List.map fst spans)));
  (* [set_clock] re-anchors the origin: [now] restarts near 0 for the
     new clock rather than keeping the old origin. *)
  Obs.set_clock Unix.gettimeofday;
  check bool "origin re-anchored" true (Float.abs (Obs.now ()) < 1.0)

(* --- Stats accounting ------------------------------------------------ *)

let test_counters () =
  let st = Obs.Stats.create () in
  Obs.with_sink (Obs.Stats.sink st) (fun () ->
      Obs.incr "a";
      Obs.incr "a";
      Obs.count "a" 3;
      Obs.count "b" 7);
  check int "a sums" 5 (Obs.Stats.counter st "a");
  check int "b sums" 7 (Obs.Stats.counter st "b");
  check int "absent is 0" 0 (Obs.Stats.counter st "c");
  check bool "sorted keys" true (Obs.Stats.counters st = [ ("a", 5); ("b", 7) ])

let test_gauges_events () =
  let st = Obs.Stats.create () in
  Obs.with_sink (Obs.Stats.sink st) (fun () ->
      Obs.gauge "pool" 3;
      Obs.gauge "pool" 9;
      Obs.event "step" [ ("i", Obs.Int 1) ];
      Obs.event "step" []);
  check bool "gauge keeps last" true (Obs.Stats.gauges st = [ ("pool", 9) ]);
  check bool "events counted" true (Obs.Stats.events st = [ ("step", 2) ])

let test_spans () =
  with_fake_clock (fun t ->
      let st = Obs.Stats.create () in
      Obs.with_sink (Obs.Stats.sink st) (fun () ->
          Obs.span "outer" (fun () ->
              t := 1.0;
              Obs.span "inner" (fun () -> t := 3.0);
              Obs.span "inner" (fun () -> ())));
      match Obs.Stats.spans st with
      | [ ("outer", (1, outer)); ("outer.inner", (2, inner)) ] ->
          check bool "outer duration" true (Float.abs (outer -. 3.0) < 1e-9);
          check bool "inner total" true (Float.abs (inner -. 2.0) < 1e-9)
      | spans ->
          Alcotest.failf "unexpected spans: %s"
            (String.concat ", " (List.map fst spans)))

let test_span_path_and_exceptions () =
  let st = Obs.Stats.create () in
  Obs.with_sink (Obs.Stats.sink st) (fun () ->
      check bool "no path outside spans" true (Obs.span_path () = None);
      (try Obs.span "boom" (fun () -> failwith "inside") with Failure _ -> ());
      (* the failed span must still be popped and recorded *)
      check bool "path restored after raise" true (Obs.span_path () = None);
      Obs.span "a" (fun () ->
          Obs.span "b" (fun () ->
              check bool "nested path" true (Obs.span_path () = Some "a.b"))));
  check bool "raising span recorded" true
    (List.mem_assoc "boom" (Obs.Stats.spans st))

(* --- sink plumbing --------------------------------------------------- *)

let test_plumbing () =
  check bool "disabled by default" false (Obs.enabled ());
  Obs.incr "ignored" (* must be a no-op, not an exception *);
  let st1 = Obs.Stats.create () and st2 = Obs.Stats.create () in
  Obs.with_sink (Obs.Stats.sink st1) (fun () ->
      check bool "enabled inside with_sink" true (Obs.enabled ());
      Obs.with_sink (Obs.Stats.sink st2) (fun () -> Obs.incr "deep");
      (* inner with_sink restores the outer sink, not None *)
      Obs.incr "outer";
      Obs.suspended (fun () ->
          check bool "suspended disables" false (Obs.enabled ());
          Obs.incr "invisible");
      Obs.incr "outer");
  check bool "restored to disabled" false (Obs.enabled ());
  check int "inner sink saw only its window" 1 (Obs.Stats.counter st2 "deep");
  check int "outer sink unaffected by inner window" 0 (Obs.Stats.counter st1 "deep");
  check int "outer resumed after nesting" 2 (Obs.Stats.counter st1 "outer");
  check int "suspended hid the signal" 0 (Obs.Stats.counter st1 "invisible")

let test_tee () =
  let st1 = Obs.Stats.create () and st2 = Obs.Stats.create () in
  Obs.with_sink (Obs.tee (Obs.Stats.sink st1) (Obs.Stats.sink st2)) (fun () ->
      Obs.incr "x";
      Obs.gauge "g" 4;
      Obs.event "e" []);
  List.iter
    (fun st ->
      check int "counter teed" 1 (Obs.Stats.counter st "x");
      check bool "gauge teed" true (Obs.Stats.gauges st = [ ("g", 4) ]);
      check bool "event teed" true (Obs.Stats.events st = [ ("e", 1) ]))
    [ st1; st2 ]

let test_install () =
  let st = Obs.Stats.create () in
  Obs.install (Obs.Stats.sink st);
  Fun.protect ~finally:Obs.uninstall (fun () -> Obs.incr "x");
  check bool "uninstalled" false (Obs.enabled ());
  check int "installed sink saw signal" 1 (Obs.Stats.counter st "x")

(* --- a minimal JSON parser (validation only) ------------------------- *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JArr of json list
  | JObj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d in %s" msg !pos s)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "short \\u escape";
              let hex = String.sub s !pos 4 in
              String.iter
                (fun c ->
                  match c with
                  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                  | _ -> fail "bad \\u escape")
                hex;
              Buffer.add_string buf ("\\u" ^ hex);
              pos := !pos + 4;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> JNum f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          JObj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); JObj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          JArr []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); JArr (List.rev ((v :: acc)))
            | _ -> fail "expected , or ]"
          in
          elements []
    | Some '"' -> JStr (parse_string ())
    | Some 't' -> literal "true" (JBool true)
    | Some 'f' -> literal "false" (JBool false)
    | Some 'n' -> literal "null" JNull
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- JSON-lines sink ------------------------------------------------- *)

let collect_lines f =
  let lines = ref [] in
  Obs.with_sink (Obs.Jsonl.sink (fun l -> lines := l :: !lines)) f;
  List.rev !lines

let field name = function
  | JObj kvs -> List.assoc_opt name kvs
  | _ -> None

let test_jsonl_schema () =
  let lines =
    collect_lines (fun () ->
        Obs.incr "c";
        Obs.count "c" 4;
        Obs.gauge "g" (-2);
        Obs.span "s" (fun () -> Obs.event "e" [ ("k", Obs.Str "v"); ("f", Obs.Float 0.5) ]);
        Obs.event "top" [ ("ok", Obs.Bool true) ])
  in
  check int "one line per signal" 6 (List.length lines);
  let parsed = List.map parse_json lines in
  List.iter
    (fun j ->
      check bool "has ts" true (match field "ts" j with Some (JNum _) -> true | _ -> false);
      check bool "has kind" true
        (match field "kind" j with
        | Some (JStr ("counter" | "gauge" | "span" | "event")) -> true
        | _ -> false);
      check bool "has name" true (match field "name" j with Some (JStr _) -> true | _ -> false))
    parsed;
  let by_kind k =
    List.filter
      (fun j -> match field "kind" j with Some (JStr k') -> k' = k | _ -> false)
      parsed
  in
  check int "two counter lines" 2 (List.length (by_kind "counter"));
  check bool "counter carries n" true
    (List.for_all
       (fun j -> match field "n" j with Some (JNum _) -> true | _ -> false)
       (by_kind "counter"));
  check bool "gauge carries value" true
    (match by_kind "gauge" with
    | [ j ] -> field "value" j = Some (JNum (-2.))
    | _ -> false);
  check bool "span carries seconds" true
    (match by_kind "span" with
    | [ j ] ->
        field "name" j = Some (JStr "s")
        && (match field "s" j with Some (JNum s) -> s >= 0. | _ -> false)
    | _ -> false);
  (* events: the one inside the span carries its path, the other doesn't *)
  let ev name =
    List.find (fun j -> field "name" j = Some (JStr name)) (by_kind "event")
  in
  check bool "event in span has span path" true (field "span" (ev "e") = Some (JStr "s"));
  check bool "event outside span has no span" true (field "span" (ev "top") = None);
  check bool "event fields typed" true
    (match field "fields" (ev "e") with
    | Some (JObj kvs) ->
        List.assoc_opt "k" kvs = Some (JStr "v") && List.assoc_opt "f" kvs = Some (JNum 0.5)
    | _ -> false);
  check bool "bool field" true
    (match field "fields" (ev "top") with
    | Some (JObj kvs) -> List.assoc_opt "ok" kvs = Some (JBool true)
    | _ -> false)

let test_jsonl_escaping () =
  let nasty = "a\"b\\c\nd\te\r\001f" in
  let lines =
    collect_lines (fun () -> Obs.event nasty [ (nasty, Obs.Str nasty) ])
  in
  match List.map parse_json lines with
  | [ j ] ->
      (* \001 is emitted as a \\u escape, which the validation parser keeps verbatim *)
      let expect = "a\"b\\c\nd\te\r\\u0001f" in
      check bool "name escaped" true (field "name" j = Some (JStr expect));
      check bool "field key+value escaped" true
        (match field "fields" j with
        | Some (JObj [ (k, JStr v) ]) -> k = expect && v = expect
        | _ -> false)
  | _ -> Alcotest.fail "expected exactly one line"

let test_jsonl_nonfinite () =
  let lines = collect_lines (fun () -> Obs.event "e" [ ("x", Obs.Float Float.nan) ]) in
  match List.map parse_json lines with
  | [ j ] ->
      check bool "nan maps to null" true
        (match field "fields" j with
        | Some (JObj [ ("x", JNull) ]) -> true
        | _ -> false)
  | _ -> Alcotest.fail "expected exactly one line"

(* A real chase traced end to end: every line parses, and the stream
   contains the run/step/done event skeleton with non-zero counters. *)
let test_jsonl_chase () =
  let tgds, db =
    let p =
      Chase_parser.Parser.parse_program
        "s1: s(X,Y) -> t(X).\ns2: r(X,Y), t(Y) -> p(X,Y).\n\
         s3: p(X,Y) -> exists Z. p(Y,Z).\nr(a,b). s(b,c)."
    in
    (Chase_parser.Program.tgds p, Chase_parser.Program.database p)
  in
  let lines = collect_lines (fun () -> ignore (Restricted.run ~max_steps:10 tgds db)) in
  check bool "trace is non-empty" true (lines <> []);
  let parsed = List.map parse_json lines in
  let count pred = List.length (List.filter pred parsed) in
  let kind_name k nm j = field "kind" j = Some (JStr k) && field "name" j = Some (JStr nm) in
  check int "one run event" 1 (count (kind_name "event" "run"));
  check int "one done event" 1 (count (kind_name "event" "done"));
  check int "ten step events" 10 (count (kind_name "event" "step"));
  check int "one run span" 1 (count (kind_name "span" "restricted.run"));
  check bool "step counters present" true (count (kind_name "counter" "restricted.steps") = 10)

(* --- observation is passive ------------------------------------------ *)

let same_steps d1 d2 =
  List.length (Derivation.steps d1) = List.length (Derivation.steps d2)
  && List.for_all2
       (fun s1 s2 ->
         Trigger.equal s1.Derivation.trigger s2.Derivation.trigger
         && List.equal Atom.equal s1.Derivation.produced s2.Derivation.produced)
       (Derivation.steps d1) (Derivation.steps d2)

let same_derivation d1 d2 =
  Derivation.status d1 = Derivation.status d2
  && same_steps d1 d2
  && Instance.equal (Derivation.final d1) (Derivation.final d2)

let tgds_gen =
  let open QCheck2.Gen in
  list_size (int_range 1 3) Tgen.tgd_gen

let random_db tgds seed =
  Chase_workload.Db_gen.random ~schema:(Schema.of_tgds tgds) ~atoms:5 ~domain:3 ~seed

let strategies = [ Restricted.Fifo; Restricted.Lifo; Restricted.Random 42 ]

let traced_run ~backend ~strategy tgds db =
  let st = Obs.Stats.create () in
  let sink = Obs.tee (Obs.Stats.sink st) (Obs.Jsonl.sink (fun _ -> ())) in
  let d = Obs.with_sink sink (fun () -> Restricted.run ~backend ~strategy ~max_steps:60 tgds db) in
  (d, st)

let properties =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"tracing never changes the derivation" ~count:60
         (Gen.pair tgds_gen (Gen.int_bound 100_000))
         (fun (tgds, seed) ->
           let db = random_db tgds seed in
           List.for_all
             (fun strategy ->
               List.for_all
                 (fun backend ->
                   let plain = Restricted.run ~backend ~strategy ~max_steps:60 tgds db in
                   let traced, st = traced_run ~backend ~strategy tgds db in
                   same_derivation plain traced
                   && Obs.Stats.counter st "restricted.steps" = Derivation.length plain)
                 [ `Compiled; `Naive ])
             strategies));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"tracing is passive under a domain pool" ~count:40
         (Gen.pair tgds_gen (Gen.int_bound 100_000))
         (fun (tgds, seed) ->
           (* A sink installed while jobs>1 must not change the derivation:
              the coordinator emits only aggregate pool.* signals, worker
              domains have no sink at all (per-domain DLS). *)
           let db = random_db tgds seed in
           let jobs = Chase_exec.Pool.default_jobs ~default:3 () in
           List.for_all
             (fun strategy ->
               let plain = Restricted.run ~strategy ~max_steps:60 tgds db in
               let st = Obs.Stats.create () in
               let traced =
                 Obs.with_sink (Obs.Stats.sink st) (fun () ->
                     Chase_exec.Pool.with_pool ~jobs (fun pool ->
                         Restricted.run ~strategy ~max_steps:60 ~pool tgds db))
               in
               same_derivation plain traced
               && Obs.Stats.counter st "restricted.steps" = Derivation.length plain
               && (jobs = 1 || Obs.Stats.counter st "pool.domains" = jobs - 1))
             strategies));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"trace lines parse as JSON for random workloads" ~count:30
         (Gen.pair tgds_gen (Gen.int_bound 100_000))
         (fun (tgds, seed) ->
           let db = random_db tgds seed in
           let lines =
             collect_lines (fun () -> ignore (Restricted.run ~max_steps:40 tgds db))
           in
           List.for_all
             (fun l -> match parse_json l with JObj _ -> true | _ -> false)
             lines));
  ]

let unit_tests =
  [
    Alcotest.test_case "counters sum" `Quick test_counters;
    Alcotest.test_case "gauges keep last, events count" `Quick test_gauges_events;
    Alcotest.test_case "span durations and nesting" `Quick test_spans;
    Alcotest.test_case "default clock is wall time; set_clock re-anchors" `Quick
      test_wall_clock_spans;
    Alcotest.test_case "span paths and exception safety" `Quick test_span_path_and_exceptions;
    Alcotest.test_case "with_sink/suspended scoping" `Quick test_plumbing;
    Alcotest.test_case "tee duplicates signals" `Quick test_tee;
    Alcotest.test_case "install/uninstall" `Quick test_install;
    Alcotest.test_case "jsonl schema per kind" `Quick test_jsonl_schema;
    Alcotest.test_case "jsonl string escaping" `Quick test_jsonl_escaping;
    Alcotest.test_case "jsonl non-finite floats" `Quick test_jsonl_nonfinite;
    Alcotest.test_case "jsonl trace of a real chase" `Quick test_jsonl_chase;
  ]

let suite = [ ("obs", unit_tests); ("obs-passivity", properties) ]
