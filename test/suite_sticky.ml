(* Tests for the sticky decision procedure (paper §6, App. D). *)

open Chase_termination

let parse = Chase_parser.Parser.parse_tgds

let check_verdict name expected tgds () =
  let verdict = Sticky_decider.decide tgds in
  let show = function
    | Sticky_decider.All_terminating -> "all-terminating"
    | Sticky_decider.Non_terminating _ -> "non-terminating"
    | Sticky_decider.Inconclusive m -> "inconclusive: " ^ m
  in
  let actual =
    match verdict with
    | Sticky_decider.All_terminating -> "all-terminating"
    | Sticky_decider.Non_terminating cert ->
        (* certificates must validate *)
        (match Sticky_decider.check_certificate tgds cert with
        | Ok () -> "non-terminating"
        | Error e -> "invalid certificate: " ^ e)
    | Sticky_decider.Inconclusive m -> "inconclusive: " ^ m
  in
  Alcotest.(check string) name (show expected) actual

let t_nonterm = parse "r(X,Y) -> exists Z. r(Y,Z)."

let t_term_intro = parse "r(X,Y) -> exists Z. r(X,Z)."

let t_sticky_wa =
  parse
    {|t(X,Y,Z) -> exists W. s(Y,W).
      r(X,Y), p(Y,Z) -> exists W. t(X,Y,W).|}

(* Note the frontier: q(X,Y) → ∃Z p(Z) has empty frontier, so any p-atom
   deactivates it and the set below with head p(Z) would terminate; with
   head p(Y) the frontier keeps the chain alive and it diverges. *)
let t_two_step = parse "p(X) -> exists Y. q(X,Y). q(X,Y) -> p(Y)."

let t_two_step_terminating = parse "p(X) -> exists Y. q(X,Y). q(X,Y) -> exists Z. p(Z)."

let t_self_guard = parse "r(X,Y) -> exists Z. r(Z,X)."

let suite =
  [
    ( "sticky-decider",
      [
        Alcotest.test_case "r(X,Y)→∃Z r(Y,Z) diverges" `Quick
          (fun () ->
            match Sticky_decider.decide t_nonterm with
            | Sticky_decider.Non_terminating cert ->
                (match Sticky_decider.check_certificate t_nonterm cert with
                | Ok () -> ()
                | Error e -> Alcotest.failf "certificate invalid: %s" e)
            | Sticky_decider.All_terminating -> Alcotest.fail "expected non-termination"
            | Sticky_decider.Inconclusive m -> Alcotest.failf "inconclusive: %s" m);
        Alcotest.test_case "intro example r(X,Y)→∃Z r(X,Z) terminates" `Quick
          (check_verdict "intro" Sticky_decider.All_terminating t_term_intro);
        Alcotest.test_case "paper §2 sticky set is terminating" `Quick
          (check_verdict "wa-sticky" Sticky_decider.All_terminating t_sticky_wa);
        Alcotest.test_case "p→q→p frontier cycle diverges" `Quick
          (fun () ->
            match Sticky_decider.decide t_two_step with
            | Sticky_decider.Non_terminating cert ->
                (match Sticky_decider.check_certificate t_two_step cert with
                | Ok () -> ()
                | Error e -> Alcotest.failf "certificate invalid: %s" e)
            | Sticky_decider.All_terminating -> Alcotest.fail "expected non-termination"
            | Sticky_decider.Inconclusive m -> Alcotest.failf "inconclusive: %s" m);
        Alcotest.test_case "p→q→p with empty frontier terminates" `Quick
          (check_verdict "empty-frontier" Sticky_decider.All_terminating t_two_step_terminating);
        Alcotest.test_case "r(X,Y)→∃Z r(Z,X) diverges" `Quick
          (fun () ->
            match Sticky_decider.decide t_self_guard with
            | Sticky_decider.Non_terminating _ -> ()
            | Sticky_decider.All_terminating -> Alcotest.fail "expected non-termination"
            | Sticky_decider.Inconclusive m -> Alcotest.failf "inconclusive: %s" m);
        Alcotest.test_case "non-sticky input is rejected" `Quick
          (fun () ->
            let non_sticky =
              parse "r(X,Y), p(Y,Z) -> exists W. t(X,Y,W). t(X,Y,Z) -> exists W. s(X,W)."
            in
            Alcotest.check_raises "invalid"
              (Invalid_argument "Sticky_automaton: TGDs must be sticky")
              (fun () -> ignore (Sticky_decider.decide non_sticky)));
        Alcotest.test_case "constant-bearing input is rejected up front, not a crash" `Quick
          (fun () ->
            (* Sticky but mentions a constant: the equality-type
               abstraction cannot track it, so the automaton refuses
               cleanly (the unroll used to hit an assert). *)
            let with_const = parse "r(X,c) -> exists Z. r(X,Z)." in
            Alcotest.check_raises "invalid"
              (Invalid_argument "Sticky_automaton: TGDs must be constant-free")
              (fun () -> ignore (Sticky_decider.decide with_const)));
        Alcotest.test_case "the facade falls back to WA on constants" `Quick
          (fun () ->
            let with_const = parse "r(X,c) -> exists Z. r(X,Z)." in
            let report = Decider.decide with_const in
            Alcotest.(check bool) "did not use the sticky procedure" true
              (report.Decider.method_used = Decider.Weak_acyclicity_check);
            Alcotest.(check bool) "no crash, an answer or Unknown" true
              (match report.Decider.answer with
              | Decider.Terminating | Decider.Non_terminating | Decider.Unknown -> true));
      ] );
  ]
