(* Tests for the auxiliary deciders (linear critical-database, oblivious
   critical-database) and cross-validation between independent decision
   procedures — the strongest evidence we have that each is right. *)

open Chase_termination
open Chase_workload

let parse = Chase_parser.Parser.parse_tgds

let linear_tests =
  [
    Alcotest.test_case "fresh successor diverges" `Quick (fun () ->
        match Linear_decider.decide (parse "r(X,Y) -> exists Z. r(Y,Z).") with
        | Linear_decider.Non_terminating ev ->
            Alcotest.(check int) "single-atom witness" 1
              (Chase_core.Instance.cardinal ev.Linear_decider.database)
        | _ -> Alcotest.fail "expected divergence");
    Alcotest.test_case "intro example terminates" `Quick (fun () ->
        match Linear_decider.decide (parse "r(X,Y) -> exists Z. r(X,Z).") with
        | Linear_decider.All_terminating _ -> ()
        | _ -> Alcotest.fail "expected termination");
    Alcotest.test_case "diagonal guard: only the diagonal critical atom fires" `Quick
      (fun () ->
        (* r(X,X) → ∃Z r(X,Z): only the diagonal equality type produces a
           trigger, and r(k,k) satisfies its own head — terminating. *)
        let tgds = parse "r(X,X) -> exists Z. r(X,Z)." in
        Alcotest.(check bool) "linear" true (Chase_classes.Guardedness.is_linear tgds);
        match Linear_decider.decide tgds with
        | Linear_decider.All_terminating _ -> ()
        | _ -> Alcotest.fail "expected termination");
    Alcotest.test_case "linear but not sticky: only the linear decider applies" `Quick
      (fun () ->
        (* the s-rule drops X, marking it back through r's first position,
           so the repeated X in r(X,X) is marked — not sticky; the linear
           decider still answers. *)
        let tgds = parse "s1: r(X,X) -> s(X).\ns2: s(X) -> exists Z. r(Z,Z)." in
        Alcotest.(check bool) "linear" true (Chase_classes.Guardedness.is_linear tgds);
        Alcotest.(check bool) "not sticky" false (Chase_classes.Stickiness.is_sticky tgds);
        match Linear_decider.decide tgds with
        | Linear_decider.All_terminating _ -> ()
        | Linear_decider.Non_terminating _ ->
            (* r(k,k) → s(k) → r(Z,Z)?  s(k) fires only if no r(z,z) atom
               exists — r(k,k) is one, so it never fires: terminating. *)
            Alcotest.fail "expected termination"
        | Linear_decider.Inconclusive m -> Alcotest.failf "inconclusive: %s" m);
    Alcotest.test_case "diagonal-to-chain diverges" `Quick (fun () ->
        (* r(X,X) → ∃Z s(X,Z); s(X,Y) → ∃Z s(Y,Z): only a diagonal atom
           wakes the chain up. *)
        let tgds = parse "r(X,X) -> exists Z. s(X,Z).\ns(X,Y) -> exists Z. s(Y,Z)." in
        match Linear_decider.decide tgds with
        | Linear_decider.Non_terminating _ -> ()
        | _ -> Alcotest.fail "expected divergence");
    Alcotest.test_case "non-linear input rejected" `Quick (fun () ->
        Alcotest.check_raises "invalid" (Invalid_argument "Linear_decider: linear TGDs required")
          (fun () -> ignore (Linear_decider.decide (parse "a(X), b(X) -> c(X)."))));
    Alcotest.test_case "cross-validation: linear vs sticky decider on the gallery" `Quick
      (fun () ->
        List.iter
          (fun (s : Scenarios.t) ->
            let tgds = Scenarios.tgds s in
            if
              Scenarios.single_head s
              && Chase_classes.Guardedness.is_linear tgds
              && Chase_classes.Stickiness.is_sticky tgds
            then
              let lin = Linear_decider.decide tgds in
              let stk = Sticky_decider.decide tgds in
              match (lin, stk) with
              | Linear_decider.All_terminating _, Sticky_decider.All_terminating -> ()
              | Linear_decider.Non_terminating _, Sticky_decider.Non_terminating _ -> ()
              | Linear_decider.Inconclusive _, _ | _, Sticky_decider.Inconclusive _ -> ()
              | _ ->
                  Alcotest.failf "deciders disagree on %s" s.Scenarios.name)
          Scenarios.all);
  ]

(* Property: on random linear ∧ sticky sets, the single-atom critical
   database search and the Büchi automaton agree.  Two completely
   independent procedures — agreement on hundreds of random inputs is
   strong evidence for both. *)
let cross_validation_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"linear and sticky deciders agree on random sticky-linear sets"
       ~count:60 (QCheck2.Gen.int_bound 100_000) (fun seed ->
         let tgds =
           Tgd_gen.sticky_set
             { Tgd_gen.default with Tgd_gen.seed; tgds = 3; predicates = 3; max_arity = 2 }
         in
         if not (Chase_classes.Guardedness.is_linear tgds) then true
         else
           match (Linear_decider.decide tgds, Sticky_decider.decide tgds) with
           | Linear_decider.All_terminating _, Sticky_decider.All_terminating -> true
           | Linear_decider.Non_terminating _, Sticky_decider.Non_terminating _ -> true
           | Linear_decider.Inconclusive _, _ -> true
           | _, Sticky_decider.Inconclusive _ -> true
           | Linear_decider.All_terminating _, Sticky_decider.Non_terminating cert ->
               (* a validated caterpillar overrules the budgeted search *)
               Sticky_decider.check_certificate tgds cert <> Ok ()
           | Linear_decider.Non_terminating _, Sticky_decider.All_terminating -> false))

(* Soundness property for the sticky decider's "terminating" answers:
   when L(A_T) = ∅, no candidate database (frozen bodies under all
   partitions, critical database, unions) may show divergence evidence.
   An unsound "empty" verdict would be caught here. *)
let sticky_terminating_soundness =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"sticky 'terminating' verdicts survive candidate-database search"
       ~count:50 (QCheck2.Gen.int_bound 100_000) (fun seed ->
         let tgds =
           Tgd_gen.sticky_set
             { Tgd_gen.default with Tgd_gen.seed; tgds = 4; predicates = 3; max_arity = 2 }
         in
         match Sticky_decider.decide tgds with
         | Sticky_decider.Non_terminating _ | Sticky_decider.Inconclusive _ -> true
         | Sticky_decider.All_terminating ->
             (* sweep the same candidate family the guarded decider uses *)
             List.for_all
               (fun db ->
                 Derivation_search.divergence_evidence ~max_depth:60 ~max_states:3_000 tgds db
                 = None)
               (List.concat_map Guarded_decider.frozen_bodies_all_partitions tgds)))

let oblivious_tests =
  [
    Alcotest.test_case "intro example separates CTres from CTobl" `Quick (fun () ->
        let tgds = parse "r(X,Y) -> exists Z. r(X,Z)." in
        (match Oblivious_decider.decide tgds with
        | Oblivious_decider.Diverging_on_critical _ -> ()
        | Oblivious_decider.All_terminating _ -> Alcotest.fail "oblivious should diverge");
        match Sticky_decider.decide tgds with
        | Sticky_decider.All_terminating -> ()
        | _ -> Alcotest.fail "restricted should terminate");
    Alcotest.test_case "weakly acyclic set: oblivious terminates too" `Quick (fun () ->
        let tgds =
          parse
            "s1: emp(X) -> exists Y. reports(X,Y).\ns2: reports(X,Y) -> mgr(Y).\n\
             s3: mgr(Y) -> person(Y)."
        in
        match Oblivious_decider.decide tgds with
        | Oblivious_decider.All_terminating _ -> ()
        | Oblivious_decider.Diverging_on_critical _ -> Alcotest.fail "expected termination");
    Alcotest.test_case "semi-oblivious terminates where oblivious does not" `Quick
      (fun () ->
        (* r(X,Y) → ∃Z r(X,Z) on r(c,c): the oblivious chase re-fires for
           every fresh Y-binding; the semi-oblivious chase identifies
           triggers agreeing on the frontier {X→c} and stops after one
           application — the classic oblivious/semi-oblivious separation. *)
        let tgds = parse "r(X,Y) -> exists Z. r(X,Z)." in
        (match Oblivious_decider.decide ~variant:Chase_engine.Oblivious.Semi_oblivious tgds with
        | Oblivious_decider.All_terminating _ -> ()
        | Oblivious_decider.Diverging_on_critical _ ->
            Alcotest.fail "semi-oblivious should saturate on the critical database"));
    Alcotest.test_case "Example 5.6: the critical database is not critical for the \
                        restricted chase (§1.2)" `Quick (fun () ->
        let tgds =
          parse
            "s1: s(X,Y) -> t(X).\ns2: r(X,Y), t(Y) -> p(X,Y).\ns3: p(X,Y) -> exists Z. p(Y,Z)."
        in
        (* the restricted chase terminates on D* … *)
        Alcotest.(check bool) "terminates on critical" true
          (Oblivious_decider.restricted_terminates_on_critical tgds);
        (* … yet the set diverges on another database *)
        match Guarded_decider.decide tgds with
        | Guarded_decider.Non_terminating _ -> ()
        | _ -> Alcotest.fail "expected divergence elsewhere");
  ]

(* --- portfolio front-end and subsumption pruning ---------------------- *)

let portfolio_tests =
  [
    Alcotest.test_case "decide_with_stats explores each component exactly once" `Quick
      (fun () ->
        (* regression: Buchi.stats used to re-run explore after emptiness,
           so the buchi.states counter read 2× the reported count *)
        let tgds = parse "r(X,Y) -> exists Z. r(X,Z)." in
        let st = Obs.Stats.create () in
        let stats =
          Obs.with_sink (Obs.Stats.sink st) (fun () -> Sticky_decider.decide_with_stats tgds)
        in
        Alcotest.(check bool) "explored something" true
          (stats.Sticky_decider.explored_states > 0);
        Alcotest.(check int) "buchi.states counter equals reported explored"
          stats.Sticky_decider.explored_states
          (Obs.Stats.counter st "buchi.states"));
    Alcotest.test_case "subsumption pruning preserves sticky verdicts on the gallery" `Quick
      (fun () ->
        List.iter
          (fun (s : Scenarios.t) ->
            let tgds = Scenarios.tgds s in
            if
              Scenarios.single_head s
              && Chase_classes.Stickiness.is_sticky tgds
              && Chase_core.Tgd.constant_free_set tgds
            then
              let exact = Sticky_decider.decide tgds in
              let pruned = Sticky_decider.decide ~prune:true tgds in
              match (exact, pruned) with
              | Sticky_decider.All_terminating, Sticky_decider.All_terminating -> ()
              | Sticky_decider.Non_terminating _, Sticky_decider.Non_terminating _ -> ()
              | Sticky_decider.Inconclusive _, Sticky_decider.Inconclusive _ -> ()
              | _ -> Alcotest.failf "pruning changed the verdict on %s" s.Scenarios.name)
          Scenarios.all);
    Alcotest.test_case "portfolio agrees with fixed dispatch on the gallery" `Quick (fun () ->
        List.iter
          (fun (s : Scenarios.t) ->
            let tgds = Scenarios.tgds s in
            let fixed = Decider.decide tgds in
            let port = Decider.decide_portfolio tgds in
            (match fixed.Decider.answer with
            | Decider.Unknown -> ()
            | a ->
                if port.Decider.answer <> a then
                  Alcotest.failf "portfolio disagrees with fixed dispatch on %s"
                    s.Scenarios.name);
            (* the folded report lists every racer exactly once *)
            Alcotest.(check bool)
              (Printf.sprintf "%s: portfolio ran at least one procedure" s.Scenarios.name)
              true
              (List.length port.Decider.procedures >= 1);
            List.iter
              (fun (p : Decider.procedure_report) ->
                Alcotest.(check bool) "conclusive iff not Unknown"
                  (p.Decider.outcome <> Decider.Unknown)
                  p.Decider.conclusive)
              port.Decider.procedures)
          Scenarios.all);
    Alcotest.test_case "portfolio cancels losers once a winner is conclusive" `Quick (fun () ->
        (* weak acyclicity answers instantly here; with a parallel pool the
           slower racers must still fold into the report, conclusive or
           cancelled, never raise *)
        let tgds =
          parse "s1: emp(X) -> exists Y. reports(X,Y).\ns2: reports(X,Y) -> mgr(Y)."
        in
        Chase_exec.Pool.with_pool ~jobs:3 @@ fun pool ->
        let r = Decider.decide_portfolio ~pool tgds in
        Alcotest.(check bool) "terminating" true (r.Decider.answer = Decider.Terminating);
        Alcotest.(check bool) "several racers" true (List.length r.Decider.procedures >= 2));
  ]

let suite =
  [
    ("linear-decider", linear_tests @ [ cross_validation_property; sticky_terminating_soundness ]);
    ("oblivious-decider", oblivious_tests);
    ("portfolio", portfolio_tests);
  ]
