(* Tests for the surface syntax: lexer, parser, printer round-trips. *)

open Chase_core
open Chase_parser

let unit_tests =
  [
    Alcotest.test_case "parse a named TGD with explicit exists" `Quick (fun () ->
        let t = Parser.parse_tgd "wa: r(X,Y) -> exists Z. r(Y,Z)." in
        Alcotest.(check string) "name" "wa" (Tgd.name t);
        Alcotest.(check int) "body" 1 (List.length (Tgd.body t));
        Alcotest.(check int) "existential" 1 (Term.Set.cardinal (Tgd.existential_vars t)));
    Alcotest.test_case "implicit existentials" `Quick (fun () ->
        let t = Parser.parse_tgd "r(X,Y) -> r(Y,Z)." in
        Alcotest.(check bool) "Z existential" true
          (Term.Set.mem (Term.Var "Z") (Tgd.existential_vars t)));
    Alcotest.test_case "facts and comments" `Quick (fun () ->
        let p =
          Parser.parse_program
            "% a comment\nr(a,b). // another\nr(b, \"odd constant\")."
        in
        Alcotest.(check int) "two facts" 2 (Instance.cardinal (Program.database p)));
    Alcotest.test_case "multi-head TGDs parse" `Quick (fun () ->
        let t = Parser.parse_tgd "r(X,Y,Y) -> exists Z. r(X,Z,Y), r(Z,Y,Y)." in
        Alcotest.(check int) "two head atoms" 2 (List.length (Tgd.head t));
        Alcotest.(check bool) "not single head" false (Tgd.is_single_head t));
    Alcotest.test_case "facts with variables are rejected" `Quick (fun () ->
        match Parser.parse_program "r(a,X)." with
        | exception Parser.Error _ -> ()
        | _ -> Alcotest.fail "expected a parse error");
    Alcotest.test_case "wrong exists list is rejected" `Quick (fun () ->
        match Parser.parse_program "r(X,Y) -> exists X. r(X,Y)." with
        | exception Parser.Error _ -> ()
        | _ -> Alcotest.fail "expected a parse error");
    Alcotest.test_case "unterminated atom is rejected with a position" `Quick (fun () ->
        match Parser.parse_program "r(a,b" with
        | exception Parser.Error { line; _ } -> Alcotest.(check int) "line" 1 line
        | exception Lexer.Error { line; _ } -> Alcotest.(check int) "line" 1 line
        | _ -> Alcotest.fail "expected an error");
    Alcotest.test_case "integer constants lex as numbers" `Quick (fun () ->
        let p = Parser.parse_program "r(1,2). r(1,c3)." in
        let db = Program.database p in
        Alcotest.(check int) "two facts" 2 (Instance.cardinal db);
        Alcotest.(check bool) "1 is a constant" true
          (Instance.exists (fun a -> List.mem (Term.Const "1") (Atom.args a)) db));
    Alcotest.test_case "a digit run glued to letters is malformed" `Quick (fun () ->
        let contains_sub s sub =
          let n = String.length sub in
          let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        match Parser.parse_program "r(123foo)." with
        | exception Lexer.Error { line; msg; _ } ->
            Alcotest.(check int) "line" 1 line;
            Alcotest.(check bool) "mentions the token" true (contains_sub msg "123foo")
        | _ -> Alcotest.fail "expected a lexer error");
    Alcotest.test_case "identifiers cannot start with a digit" `Quick (fun () ->
        match Parser.parse_program "1r(a)." with
        | exception Lexer.Error { line; _ } -> Alcotest.(check int) "line" 1 line
        | exception Parser.Error { line; _ } -> Alcotest.(check int) "line" 1 line
        | _ -> Alcotest.fail "expected an error");
    Alcotest.test_case "truncated input reports a positioned error" `Quick (fun () ->
        List.iter
          (fun src ->
            match Parser.parse_program src with
            | exception Parser.Error { line; _ } ->
                Alcotest.(check bool) (src ^ " line positive") true (line >= 1)
            | exception Lexer.Error { line; _ } ->
                Alcotest.(check bool) (src ^ " line positive") true (line >= 1)
            | _ -> Alcotest.fail ("expected an error for " ^ String.escaped src))
          [ "r(a,b) ->"; "r(a,b) -> exists"; "r(a,b) -> exists Z"; "r(X) -> s(X)"; "name:" ]);
    Alcotest.test_case "comments-only input is the empty program" `Quick (fun () ->
        let p = Parser.parse_program "% nothing here\n// nor here\n" in
        Alcotest.(check int) "no tgds" 0 (List.length (Program.tgds p));
        Alcotest.(check bool) "no facts" true (Instance.is_empty (Program.database p)));
    Alcotest.test_case "printer round-trips programs" `Quick (fun () ->
        let src =
          "s1: r(X,Y), t(Y) -> exists Z. p(X,Z).\ns2: p(X,Y) -> exists Z. p(Y,Z).\n\
           r(a,b). t(b)."
        in
        let p1 = Parser.parse_program src in
        let printed = Printer.print_program p1 in
        let p2 = Parser.parse_program printed in
        Alcotest.(check int) "same tgd count" (List.length (Program.tgds p1))
          (List.length (Program.tgds p2));
        Alcotest.(check bool) "same database" true
          (Instance.equal (Program.database p1) (Program.database p2));
        List.iter2
          (fun a b ->
            Alcotest.(check string) "same tgd" (Tgd.to_string a) (Tgd.to_string b))
          (Program.tgds p1) (Program.tgds p2));
    Alcotest.test_case "printer renames non-conventional variables" `Quick (fun () ->
        let t =
          Tgd.make ~name:"t"
            ~body:[ Atom.make "r" [ Term.Var "x"; Term.Var "y" ] ]
            ~head:[ Atom.make "r" [ Term.Var "y"; Term.Var "z" ] ]
            ()
        in
        let printed = Printer.print_tgd t in
        let t' = Parser.parse_tgd printed in
        Alcotest.(check int) "frontier size preserved" 1
          (Term.Set.cardinal (Tgd.frontier t')));
    Alcotest.test_case "schema of a program" `Quick (fun () ->
        let p = Parser.parse_program "r(X,Y) -> exists Z. t(X,Y,Z).\nr(a,b)." in
        let s = Program.schema p in
        Alcotest.(check (option int)) "r/2" (Some 2) (Schema.arity "r" s);
        Alcotest.(check (option int)) "t/3" (Some 3) (Schema.arity "t" s));
    Alcotest.test_case "the shipped data/ programs load" `Quick (fun () ->
        (* dune runs tests in _build/default/test; the data files are two
           levels up in the source tree *)
        let dir =
          List.find_opt Sys.file_exists [ "../../../data"; "../../data"; "data" ]
        in
        match dir with
        | None -> () (* data directory not reachable from the sandbox; skip *)
        | Some dir ->
            Sys.readdir dir |> Array.to_list
            |> List.filter (fun f -> Filename.check_suffix f ".chase")
            |> List.iter (fun f ->
                   let p = Parser.load_file (Filename.concat dir f) in
                   Alcotest.(check bool) (f ^ " has TGDs") true (Program.tgds p <> []);
                   Alcotest.(check bool)
                     (f ^ " has facts")
                     true
                     (not (Instance.is_empty (Program.database p)))));
  ]

let suite = [ ("parser", unit_tests) ]
