(* Equivalence properties for the compiled-plan / mutable-instance engine
   path: plan-based trigger enumeration, activity and whole chase runs
   must agree exactly with the naive generic-search implementations they
   replace.  The run-level tests check *identical* derivations — same
   triggers in the same order, same produced atoms (including fresh null
   names), same status — for all three strategies and all three
   backends (naive, compiled, columnar). *)

open Chase_core
open Chase_engine

module TrigSet = Set.Make (Trigger)

let trig_set seq = TrigSet.of_seq seq

let same_trig_sets a b = TrigSet.equal (trig_set a) (trig_set b)

(* Small random TGD sets over Tgen's fixed r/2, s/1, t/3 schema. *)
let tgds_gen =
  let open QCheck2.Gen in
  list_size (int_range 1 3) Tgen.tgd_gen

let wa_cfg seed = { Chase_workload.Tgd_gen.default with Chase_workload.Tgd_gen.seed; tgds = 4 }

let random_db tgds seed =
  Chase_workload.Db_gen.random ~schema:(Schema.of_tgds tgds) ~atoms:5 ~domain:3 ~seed

let same_steps d1 d2 =
  List.length (Derivation.steps d1) = List.length (Derivation.steps d2)
  && List.for_all2
       (fun s1 s2 ->
         Trigger.equal s1.Derivation.trigger s2.Derivation.trigger
         && List.equal Atom.equal s1.Derivation.produced s2.Derivation.produced)
       (Derivation.steps d1) (Derivation.steps d2)

let same_derivation d1 d2 =
  Derivation.status d1 = Derivation.status d2
  && same_steps d1 d2
  && Instance.equal (Derivation.final d1) (Derivation.final d2)

let strategies = [ Restricted.Fifo; Restricted.Lifo; Restricted.Random 42 ]

let properties =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"compiled Trigger.all = naive Trigger.all" ~count:200
         (Gen.pair tgds_gen Tgen.instance_gen) (fun (tgds, db) ->
           same_trig_sets (Trigger.all tgds db) (Trigger.all_naive tgds db)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"compiled Trigger.involving = naive Trigger.involving" ~count:200
         (Gen.triple tgds_gen Tgen.instance_gen Tgen.ground_atom_gen)
         (fun (tgds, db, atom) ->
           let db = Instance.add atom db in
           same_trig_sets (Trigger.involving tgds db atom)
             (Trigger.involving_naive tgds db atom)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"compiled is_active agrees with naive is_active" ~count:200
         (Gen.pair tgds_gen Tgen.instance_gen) (fun (tgds, db) ->
           Trigger.all tgds db
           |> Seq.for_all (fun t ->
                  Trigger.is_active db t = Trigger.is_active_naive db t)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"plans over Minstance = plans over Instance" ~count:200
         (Gen.pair tgds_gen Tgen.instance_gen) (fun (tgds, db) ->
           let msrc = Plan.source_of_minstance (Minstance.of_instance db) in
           let collect src tgd =
             let acc = ref TrigSet.empty in
             Plan.iter_homs (Plan.of_tgd tgd) src (fun hom ->
                 acc := TrigSet.add (Trigger.make tgd hom) !acc);
             !acc
           in
           List.for_all
             (fun tgd ->
               TrigSet.equal
                 (collect (Plan.source_of_instance db) tgd)
                 (collect msrc tgd))
             tgds));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"Minstance mirrors Instance contents and index" ~count:200
         (Gen.pair Tgen.instance_gen (Gen.list_size (Gen.int_range 0 6) Tgen.ground_atom_gen))
         (fun (db, extra) ->
           let m = Minstance.of_instance db in
           let reference = List.fold_left (fun i a -> Instance.add a i) db extra in
           List.iter (fun a -> ignore (Minstance.add m a)) extra;
           Instance.equal (Minstance.snapshot m) reference
           && Minstance.cardinal m = Instance.cardinal reference
           && Instance.for_all (fun a -> Minstance.mem m a) reference
           && List.for_all
                (fun (p, ar) ->
                  Minstance.pred_count m p = List.length (Instance.with_pred reference p)
                  && List.for_all
                       (fun a ->
                         let t = Atom.arg a 0 in
                         let ixd = Minstance.with_pos_term m p 0 t in
                         Atom.Set.equal
                           (Atom.Set.of_list ixd)
                           (Instance.with_pred_pos_term reference p 0 t)
                         && Minstance.pos_term_count m p 0 t = List.length ixd)
                       (Instance.with_pred reference p)
                  && ignore ar = ())
                Tgen.schema_preds));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"plans over Cinstance = plans over Instance" ~count:200
         (Gen.pair tgds_gen Tgen.instance_gen) (fun (tgds, db) ->
           let csrc = Plan.source_of_cinstance (Cinstance.of_instance db) in
           let collect src tgd =
             let acc = ref TrigSet.empty in
             Plan.iter_homs (Plan.of_tgd tgd) src (fun hom ->
                 acc := TrigSet.add (Trigger.make tgd hom) !acc);
             !acc
           in
           List.for_all
             (fun tgd ->
               TrigSet.equal
                 (collect (Plan.source_of_instance db) tgd)
                 (collect csrc tgd))
             tgds));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"Cinstance mirrors Instance contents and index" ~count:200
         (Gen.pair Tgen.instance_gen (Gen.list_size (Gen.int_range 0 6) Tgen.ground_atom_gen))
         (fun (db, extra) ->
           let m = Cinstance.of_instance db in
           let reference = List.fold_left (fun i a -> Instance.add a i) db extra in
           List.iter (fun a -> ignore (Cinstance.add m a)) extra;
           Instance.equal (Cinstance.snapshot m) reference
           && Cinstance.cardinal m = Instance.cardinal reference
           && Instance.for_all (fun a -> Cinstance.mem m a) reference
           && List.for_all
                (fun (p, ar) ->
                  Cinstance.pred_count m p = List.length (Instance.with_pred reference p)
                  && List.for_all
                       (fun a ->
                         let t = Atom.arg a 0 in
                         let ixd = Cinstance.with_pos_term m p 0 t in
                         Atom.Set.equal
                           (Atom.Set.of_list ixd)
                           (Instance.with_pred_pos_term reference p 0 t)
                         && Cinstance.pos_term_count m p 0 t = List.length ixd)
                       (Instance.with_pred reference p)
                  && ignore ar = ())
                Tgen.schema_preds));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"restricted chase: store backends and naive derive identically"
         ~count:60
         (Gen.pair tgds_gen (Gen.int_bound 100_000))
         (fun (tgds, seed) ->
           let db = random_db tgds seed in
           List.for_all
             (fun backend ->
               List.for_all
                 (fun strategy ->
                   List.for_all
                     (fun naming ->
                       let d1 =
                         Restricted.run ~backend ~strategy ~naming ~max_steps:60 tgds db
                       in
                       let d2 =
                         Restricted.run ~backend:`Naive ~strategy ~naming ~max_steps:60 tgds db
                       in
                       same_derivation d1 d2)
                     [ `Fresh; `Canonical ])
                 strategies)
             [ `Compiled; `Columnar ]));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"restricted chase backends agree on WA workloads (terminating)"
         ~count:40 (Gen.int_bound 100_000) (fun seed ->
           let tgds = Chase_workload.Tgd_gen.weakly_acyclic_set (wa_cfg seed) in
           let db = random_db tgds seed in
           List.for_all
             (fun strategy ->
               let reference = Restricted.run ~backend:`Naive ~strategy ~max_steps:2_000 tgds db in
               List.for_all
                 (fun backend ->
                   same_derivation
                     (Restricted.run ~backend ~strategy ~max_steps:2_000 tgds db)
                     reference)
                 [ `Compiled; `Columnar ])
             strategies));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"oblivious chase: store backends and naive agree" ~count:60
         (Gen.pair tgds_gen (Gen.int_bound 100_000))
         (fun (tgds, seed) ->
           let db = random_db tgds seed in
           List.for_all
             (fun variant ->
               let r2 = Oblivious.run ~backend:`Naive ~variant ~max_steps:80 tgds db in
               List.for_all
                 (fun backend ->
                   let r1 = Oblivious.run ~backend ~variant ~max_steps:80 tgds db in
                   Instance.equal r1.Oblivious.instance r2.Oblivious.instance
                   && r1.Oblivious.applications = r2.Oblivious.applications
                   && r1.Oblivious.saturated = r2.Oblivious.saturated)
                 [ `Compiled; `Columnar ])
             [ Oblivious.Oblivious; Oblivious.Semi_oblivious ]));
  ]

let suite = [ ("compiled-engine-equivalence", properties) ]
