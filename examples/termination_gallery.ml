(* The termination gallery: run the facade decider over every scenario in
   the workload library and print a verdict table next to the ground
   truth, together with the engine-level evidence (growth of a budgeted
   restricted chase on the representative database).

     dune exec examples/termination_gallery.exe *)

open Chase_workload

let () =
  Format.printf "%-28s %-14s %-9s %-7s %-16s %-16s %s@." "scenario" "classes" "truth"
    "decider" "method" "chase(≤400)" "detail";
  Format.printf "%s@." (String.make 110 '-');
  List.iter
    (fun (s : Scenarios.t) ->
      let tgds = Scenarios.tgds s in
      let db = Scenarios.database s in
      let report = Chase_termination.Decider.decide tgds in
      let c = report.Chase_termination.Decider.classification in
      let classes =
        String.concat ""
          [
            (if c.Chase_classes.Classification.single_head then "" else "M");
            (if c.Chase_classes.Classification.linear then "L" else "");
            (if c.Chase_classes.Classification.guarded then "G" else "");
            (if c.Chase_classes.Classification.sticky then "S" else "");
            (if c.Chase_classes.Classification.weakly_acyclic then "W" else "");
            (if c.Chase_classes.Classification.jointly_acyclic then "J" else "");
          ]
      in
      let truth =
        match s.Scenarios.truth with
        | Scenarios.All_terminating -> "term"
        | Scenarios.Diverging -> "diverge"
      in
      let answer =
        match report.Chase_termination.Decider.answer with
        | Chase_termination.Decider.Terminating -> "term"
        | Chase_termination.Decider.Non_terminating -> "diverge"
        | Chase_termination.Decider.Unknown -> "unknown"
      in
      let meth =
        Chase_termination.Decider.method_name report.Chase_termination.Decider.method_used
      in
      let d = Chase_engine.Restricted.run ~max_steps:400 tgds db in
      let chase =
        match Chase_engine.Derivation.status d with
        | Chase_engine.Derivation.Terminated ->
            Printf.sprintf "+%d atoms" (Chase_engine.Derivation.growth d)
        | Chase_engine.Derivation.Out_of_budget -> "out-of-budget"
      in
      Format.printf "%-28s %-14s %-9s %-7s %-16s %-16s %s@." s.Scenarios.name classes truth
        answer meth chase report.Chase_termination.Decider.detail)
    Scenarios.all;
  Format.printf "@.classes: M = multi-head, L = linear, G = guarded, S = sticky, W = weakly acyclic@."
