(* The benchmark harness: regenerates every experiment of EXPERIMENTS.md
   (E1–E12, E14).  The paper is a theory paper with no measured tables; these
   experiments check its qualitative claims and measure the implemented
   systems.  Run with

     dune exec bench/main.exe                        (all experiments)
     dune exec bench/main.exe -- E6 E8               (a selection)
     dune exec bench/main.exe -- --json --smoke E11  (small sizes; also
                                   write BENCH_results.json)
     dune exec bench/main.exe -- --jobs 4 E12        (cap the E12 sweep) *)

open Chase_core
open Chase_engine
open Bench_util

(* --smoke: shrink workload sizes so the whole harness runs in seconds
   (used by `make bench-smoke` as a CI-sized sanity pass). *)
let smoke = ref false

(* --jobs N: cap for the E12 domain sweep (0 = pick by mode: 2 under
   --smoke, 8 otherwise).  Every other experiment stays sequential, so
   their numbers remain comparable across trajectory entries. *)
let max_jobs = ref 0

let e12_max_jobs () = if !max_jobs > 0 then !max_jobs else if !smoke then 2 else 8

(* Bit-identical derivations: the cross-check E12 and E14 assert before
   timing anything — the A/B rows below compare equal work or nothing. *)
let same_derivation d1 d2 =
  Derivation.status d1 = Derivation.status d2
  && List.length (Derivation.steps d1) = List.length (Derivation.steps d2)
  && List.for_all2
       (fun s1 s2 ->
         Trigger.equal s1.Derivation.trigger s2.Derivation.trigger
         && List.equal Atom.equal s1.Derivation.produced s2.Derivation.produced)
       (Derivation.steps d1) (Derivation.steps d2)

(* ------------------------------------------------------------------ *)
(* E1: restricted vs (semi-)oblivious chase result sizes.              *)
(* Claim (paper §1): the restricted chase builds much smaller           *)
(* instances, and detects satisfaction where the oblivious chase        *)
(* diverges.                                                            *)
(* ------------------------------------------------------------------ *)

let e1 () =
  (* 1a: the intro example — oblivious diverges, restricted adds 0. *)
  let tgds = Chase_parser.Parser.parse_tgds "r(X,Y) -> exists Z. r(X,Z)." in
  let rows =
    List.map
      (fun n ->
        let db = Chase_workload.Db_gen.chain ~pred:"r" ~length:n in
        let d = Restricted.run tgds db in
        let ob = Oblivious.run ~max_steps:(20 * n) tgds db in
        [
          string_of_int n;
          string_of_int (Derivation.growth d);
          (if ob.Oblivious.saturated then string_of_int (Instance.cardinal ob.Oblivious.instance)
           else Printf.sprintf ">=%d (diverges)" (Instance.cardinal ob.Oblivious.instance));
        ])
      [ 5; 20; 50 ]
  in
  table ~title:"E1a  intro example r(X,Y)->∃Z r(X,Z) on a chain of n edges"
    ~header:[ "n"; "restricted: new atoms"; "oblivious: atoms" ] rows;
  (* 1b: a satisfiable ontology — the restricted chase saturates small;
     both oblivious variants diverge (each re-fires the existential
     rules on invented witnesses). *)
  let src =
    "o1: employee(E) -> exists T. member(E,T).\no2: member(E,T) -> team(T).\n\
     o3: team(T) -> exists E. member(E,T).\no4: member(E,T) -> employee(E)."
  in
  let tgds = Chase_parser.Parser.parse_tgds src in
  let rows =
    List.map
      (fun n ->
        let db = Chase_workload.Db_gen.unary ~pred:"employee" ~count:n in
        let restricted = Restricted.run_exn tgds db in
        let budget = 200 * n in
        let semi = Oblivious.run ~variant:Oblivious.Semi_oblivious ~max_steps:budget tgds db in
        let ns = measure_ns "restricted" (fun () -> Restricted.run_exn tgds db) in
        [
          string_of_int n;
          string_of_int (Instance.cardinal restricted);
          (if semi.Oblivious.saturated then string_of_int (Instance.cardinal semi.Oblivious.instance)
           else Printf.sprintf ">=%d (diverges)" (Instance.cardinal semi.Oblivious.instance));
          pretty_ns ns;
        ])
      [ 10; 50; 100 ]
  in
  table
    ~title:
      "E1b  witness-reuse ontology on n employees: only the restricted chase terminates"
    ~header:[ "n"; "restricted atoms"; "semi-oblivious atoms"; "restricted time" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2: the real oblivious chase is a growing multiset even when the    *)
(* oblivious chase (a set) is finite (Example 3.2/3.4).                 *)
(* ------------------------------------------------------------------ *)

let e2 () =
  let tgds, db =
    program
      "s1: p(X,Y) -> r(X,Y).\ns2: p(X,Y) -> s(X).\ns3: r(X,Y) -> s(X).\n\
       s4: s(X) -> exists Y. r(X,Y).\np(a,b)."
  in
  let ob = Oblivious.run tgds db in
  let rows =
    List.map
      (fun depth ->
        let g = Real_oblivious.build ~max_depth:depth ~max_nodes:100_000 tgds db in
        let s_a = Atom.make "s" [ Term.Const "a" ] in
        [
          string_of_int depth;
          string_of_int (Real_oblivious.size g);
          string_of_int (Instance.cardinal (Real_oblivious.atom_set g));
          string_of_int (Real_oblivious.copies g s_a);
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  table
    ~title:
      (Printf.sprintf
         "E2  real oblivious chase of Example 3.2 by depth (the set-based oblivious chase \
          saturates at %d atoms)"
         (Instance.cardinal ob.Oblivious.instance))
    ~header:[ "depth"; "nodes (multiset)"; "distinct atoms"; "copies of s(a)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3: fairness (§4).  The Lemma 4.4 bound, absence of mutual stops,   *)
(* and the multi-head counterexample B.1.                               *)
(* ------------------------------------------------------------------ *)

let e3 () =
  let rows =
    List.filter_map
      (fun (s : Chase_workload.Scenarios.t) ->
        if not (Chase_workload.Scenarios.single_head s) then None
        else
          let tgds = Chase_workload.Scenarios.tgds s in
          let db = Chase_workload.Scenarios.database s in
          let d = Restricted.run ~max_steps:120 tgds db in
          let bound = Chase_termination.Fairness.equality_type_bound tgds in
          let witness = Chase_termination.Fairness.lemma_4_4_witness d in
          Some
            [
              s.Chase_workload.Scenarios.name;
              string_of_int bound;
              string_of_int (Derivation.length d);
              (match witness with None -> "none" | Some _ -> "VIOLATION");
            ])
      Chase_workload.Scenarios.all
  in
  table ~title:"E3a  Lemma 4.4 on derivation prefixes (mutual stopping must never occur)"
    ~header:[ "scenario"; "equality-type bound"; "prefix steps"; "mutual stops" ]
    rows;
  (* B.1: fair FIFO terminates; an unfair infinite derivation exists. *)
  let tgds, db =
    program
      "m1: r(X,Y,Y) -> exists Z. r(X,Z,Y), r(Z,Y,Y).\nm2: r(X,Y,Z) -> r(Z,Z,Z).\nr(a,b,b)."
  in
  let fifo = Restricted.run ~strategy:Restricted.Fifo ~max_steps:1_000 tgds db in
  let evidence =
    Chase_termination.Derivation_search.divergence_evidence ~max_depth:40 ~max_states:5_000 tgds
      db
  in
  table ~title:"E3b  Example B.1 (multi-head): the fairness theorem fails"
    ~header:[ "derivation"; "status"; "steps" ]
    [
      [
        "FIFO (fair)";
        (if Derivation.terminated fifo then "terminates" else "out of budget");
        string_of_int (Derivation.length fifo);
      ];
      [
        "greedy m1-only (unfair)";
        (match evidence with Some _ -> "unbounded prefix found" | None -> "not found");
        (match evidence with Some d -> string_of_int (Derivation.length d) | None -> "-");
      ];
    ]

(* ------------------------------------------------------------------ *)
(* E4: treeification (Thm 5.5): from a cyclic diverging database to an *)
(* acyclic one with the same behaviour.                                 *)
(* ------------------------------------------------------------------ *)

let e4 () =
  let cases =
    [
      ( "example-5-6+back-edge",
        "s1: s(X,Y) -> t(X).\ns2: r(X,Y), t(Y) -> p(X,Y).\ns3: p(X,Y) -> exists Z. p(Y,Z).\n\
         r(a,b). s(b,c). w(c,a)." );
      ( "triangle-remote-side",
        "s1: s(X,Y) -> t(Y).\ns2: r(X,Y), t(X) -> p(X,Y).\ns3: p(X,Y) -> exists Z. p(Y,Z).\n\
         r(a,b). s(c,a). w(b,c)." );
    ]
  in
  let rows =
    List.map
      (fun (name, src) ->
        let tgds, db = program src in
        match Chase_termination.Treeify.treeify tgds db with
        | Error e -> [ name; string_of_int (Instance.cardinal db); "-"; "-"; "failed: " ^ e ]
        | Ok r ->
            [
              name;
              string_of_int (Instance.cardinal db);
              string_of_int (Instance.cardinal r.Chase_termination.Treeify.dac);
              string_of_int r.Chase_termination.Treeify.depth;
              (if Chase_termination.Join_tree.is_acyclic r.Chase_termination.Treeify.dac then
                 "acyclic + diverges"
               else "NOT ACYCLIC");
            ])
      cases
  in
  table ~title:"E4  treeification of cyclic diverging databases (Thm 5.5)"
    ~header:[ "case"; "|D|"; "|D_ac|"; "path bound"; "validation" ]
    rows

(* ------------------------------------------------------------------ *)
(* E5: chaseable sets (Thm 5.3) on finite fragments: derivation →      *)
(* chaseable subset of ochase → derivation, with timings.               *)
(* ------------------------------------------------------------------ *)

let e5 () =
  let cases =
    [ "example-5-6"; "guarded-side-condition"; "example-3-2"; "linear-projection-chain" ]
  in
  let rows =
    List.filter_map
      (fun name ->
        match Chase_workload.Scenarios.by_name name with
        | None -> None
        | Some s ->
            let tgds = Chase_workload.Scenarios.tgds s in
            let db = Chase_workload.Scenarios.database s in
            let d = Restricted.run ~naming:`Canonical ~max_steps:6 tgds db in
            let graph = Real_oblivious.build ~max_depth:8 ~max_nodes:2_000 tgds db in
            let result =
              match Chase_termination.Chaseable.of_derivation graph d with
              | None -> "no embedding"
              | Some nodes -> (
                  if not (Chase_termination.Chaseable.is_chaseable graph nodes) then
                    "not chaseable"
                  else
                    match Chase_termination.Chaseable.to_derivation graph nodes with
                    | Ok d' when Derivation.validate tgds d' -> "roundtrip ok"
                    | Ok _ -> "extracted derivation invalid"
                    | Error e -> "extraction failed: " ^ e)
            in
            let ns =
              measure_ns "chaseable" (fun () ->
                  match Chase_termination.Chaseable.of_derivation graph d with
                  | Some nodes -> ignore (Chase_termination.Chaseable.is_chaseable graph nodes)
                  | None -> ())
            in
            Some
              [
                name;
                string_of_int (Real_oblivious.size graph);
                string_of_int (Derivation.length d);
                result;
                pretty_ns ns;
              ])
      cases
  in
  table ~title:"E5  Thm 5.3 roundtrip: derivation <-> chaseable subset of ochase(D,T)"
    ~header:[ "scenario"; "ochase nodes"; "prefix steps"; "roundtrip"; "check time" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6: the sticky decision procedure: automaton sizes and decision      *)
(* times across the sticky gallery and random sticky sets.              *)
(* ------------------------------------------------------------------ *)

let e6 () =
  let gallery =
    List.filter_map
      (fun (s : Chase_workload.Scenarios.t) ->
        let tgds = Chase_workload.Scenarios.tgds s in
        if Chase_workload.Scenarios.single_head s && Chase_classes.Stickiness.is_sticky tgds
        then Some (s.Chase_workload.Scenarios.name, tgds)
        else None)
      Chase_workload.Scenarios.all
  in
  let random =
    List.map
      (fun seed ->
        ( Printf.sprintf "random-sticky-%d" seed,
          Chase_workload.Tgd_gen.sticky_set
            { Chase_workload.Tgd_gen.default with Chase_workload.Tgd_gen.seed; tgds = 5 } ))
      [ 1; 2; 3 ]
  in
  let rows =
    List.map
      (fun (name, tgds) ->
        let ctx = Chase_termination.Sticky_automaton.make_context tgds in
        let letters = List.length (Chase_termination.Sticky_automaton.alphabet ctx) in
        let comps = Chase_termination.Sticky_automaton.components ctx in
        let states =
          List.fold_left
            (fun acc (_, a) -> acc + (Chase_automata.Buchi.stats a).Chase_automata.Buchi.states)
            0 comps
        in
        let stats = Chase_termination.Sticky_decider.decide_with_stats tgds in
        let verdict =
          match stats.Chase_termination.Sticky_decider.decision with
          | Chase_termination.Sticky_decider.All_terminating -> "terminating"
          | Chase_termination.Sticky_decider.Non_terminating _ -> "diverging"
          | Chase_termination.Sticky_decider.Inconclusive _ -> "inconclusive"
        in
        let ns = measure_ns name (fun () -> Chase_termination.Sticky_decider.decide tgds) in
        [
          name;
          string_of_int (List.length tgds);
          string_of_int letters;
          string_of_int (List.length comps);
          string_of_int states;
          verdict;
          pretty_ns ns;
        ])
      (gallery @ random)
  in
  table ~title:"E6a  sticky decider: A_T anatomy and decision time"
    ~header:[ "set"; "|T|"; "letters"; "components"; "states"; "verdict"; "time" ]
    rows;
  (* scaling sweep: growing random sticky sets *)
  let rows =
    List.map
      (fun n ->
        let tgds =
          Chase_workload.Tgd_gen.sticky_set
            {
              Chase_workload.Tgd_gen.default with
              Chase_workload.Tgd_gen.seed = 7 * n;
              tgds = n;
              predicates = 1 + (n / 2);
              max_arity = 2;
            }
        in
        let ctx = Chase_termination.Sticky_automaton.make_context tgds in
        let comps = Chase_termination.Sticky_automaton.components ctx in
        let states =
          List.fold_left
            (fun acc (_, a) -> acc + (Chase_automata.Buchi.stats a).Chase_automata.Buchi.states)
            0 comps
        in
        let ns = measure_ns "sweep" (fun () -> Chase_termination.Sticky_decider.decide tgds) in
        [
          string_of_int n;
          string_of_int (List.length (Chase_termination.Sticky_automaton.alphabet ctx));
          string_of_int (List.length comps);
          string_of_int states;
          pretty_ns ns;
        ])
      [ 2; 4; 6; 8; 10 ]
  in
  table ~title:"E6b  sticky decider scaling on random sticky sets of growing size"
    ~header:[ "|T|"; "letters"; "components"; "states"; "decision time" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7: decider comparison on the ground-truth gallery: weak acyclicity  *)
(* (baseline) vs the paper's procedures.                                *)
(* ------------------------------------------------------------------ *)

let e7 () =
  let sufficient check tgds = if check tgds then `Term else `Unknown in
  let rows, (wa_ok, ja_ok, mfa_ok, full_ok, total) =
    List.fold_left
      (fun (rows, (wa_ok, ja_ok, mfa_ok, full_ok, total)) (s : Chase_workload.Scenarios.t) ->
        if not (Chase_workload.Scenarios.single_head s) then
          (rows, (wa_ok, ja_ok, mfa_ok, full_ok, total))
        else begin
          let tgds = Chase_workload.Scenarios.tgds s in
          let truth = s.Chase_workload.Scenarios.truth in
          let wa = sufficient Chase_classes.Weak_acyclicity.is_weakly_acyclic tgds in
          let ja = sufficient Chase_classes.Joint_acyclicity.is_jointly_acyclic tgds in
          let mfa = sufficient Chase_termination.Mfa.is_mfa tgds in
          let full = (Chase_termination.Decider.decide tgds).Chase_termination.Decider.answer in
          let show_truth = function
            | Chase_workload.Scenarios.All_terminating -> "term"
            | Chase_workload.Scenarios.Diverging -> "diverge"
          in
          let show_suff = function `Term -> "term" | `Unknown -> "unknown" in
          let show_full = function
            | Chase_termination.Decider.Terminating -> "term"
            | Chase_termination.Decider.Non_terminating -> "diverge"
            | Chase_termination.Decider.Unknown -> "unknown"
          in
          let suff_correct v =
            match (truth, v) with
            | Chase_workload.Scenarios.All_terminating, `Term -> true
            | _ -> false
          in
          let full_correct =
            match (truth, full) with
            | Chase_workload.Scenarios.All_terminating, Chase_termination.Decider.Terminating
            | Chase_workload.Scenarios.Diverging, Chase_termination.Decider.Non_terminating ->
                true
            | _ -> false
          in
          ( rows
            @ [
                [
                  s.Chase_workload.Scenarios.name;
                  show_truth truth;
                  show_suff wa;
                  show_suff ja;
                  show_suff mfa;
                  show_full full;
                ];
              ],
            ( (wa_ok + if suff_correct wa then 1 else 0),
              (ja_ok + if suff_correct ja then 1 else 0),
              (mfa_ok + if suff_correct mfa then 1 else 0),
              (full_ok + if full_correct then 1 else 0),
              total + 1 ) )
        end)
      ([], (0, 0, 0, 0, 0))
      Chase_workload.Scenarios.all
  in
  table
    ~title:
      "E7  baselines (weak ⊂ joint ⊂ model-faithful acyclicity) vs the paper's deciders, \
       on ground truth"
    ~header:[ "scenario"; "truth"; "WA"; "JA"; "MFA"; "this work" ]
    rows;
  Printf.printf
    "  conclusive-and-correct: WA %d/%d, JA %d/%d, MFA %d/%d, this work %d/%d\n" wa_ok total
    ja_ok total mfa_ok total full_ok total

(* ------------------------------------------------------------------ *)
(* E8: engine scaling: restricted chase time vs database size, and the  *)
(* effect of the trigger strategy on derivation length.                 *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let tgds =
    Chase_parser.Parser.parse_tgds
      "m1: employee(X,D), dept_city(D,C) -> works_in(X,C).\n\
       m2: employee(X,D) -> exists K. office(X,K).\n\
       m3: works_in(X,C) -> city(C)."
  in
  let mk_db n =
    let base =
      List.fold_left
        (fun acc j ->
          Instance.add
            (Atom.make "dept_city"
               [ Term.Const (Printf.sprintf "d%d" j); Term.Const (Printf.sprintf "c%d" j) ])
            acc)
        Instance.empty (List.init 10 Fun.id)
    in
    let rec go acc i =
      if i >= n then acc
      else
        let d = Printf.sprintf "d%d" (i mod 10) in
        go
          (Instance.add
             (Atom.make "employee" [ Term.Const (Printf.sprintf "e%d" i); Term.Const d ])
             acc)
          (i + 1)
    in
    go base 0
  in
  let rows =
    List.map
      (fun n ->
        let db = mk_db n in
        let d = Restricted.run ~max_steps:100_000 tgds db in
        let ns = once_ns (fun () -> Restricted.run ~max_steps:100_000 tgds db) in
        let atoms = Instance.cardinal (Derivation.final d) in
        let per_step = ns /. float_of_int (max 1 (Derivation.length d)) in
        [
          string_of_int n;
          string_of_int atoms;
          string_of_int (Derivation.length d);
          pretty_ns ns;
          pretty_ns per_step;
        ])
      [ 50; 100; 200; 400 ]
  in
  table ~title:"E8a  restricted chase scaling on the data-exchange workload"
    ~header:[ "employees"; "final atoms"; "steps"; "total time"; "time/step" ]
    rows;
  let tgds =
    Chase_parser.Parser.parse_tgds
      "o1: employee(E) -> exists T. member(E,T).\no2: member(E,T) -> team(T).\n\
       o3: team(T) -> exists E. member(E,T).\no4: member(E,T) -> employee(E)."
  in
  let db = Chase_workload.Db_gen.unary ~pred:"employee" ~count:100 in
  let rows =
    List.map
      (fun (name, strategy) ->
        let d = Restricted.run ~strategy ~max_steps:100_000 tgds db in
        let ns = once_ns (fun () -> Restricted.run ~strategy ~max_steps:100_000 tgds db) in
        [ name; string_of_int (Derivation.length d); pretty_ns ns ])
      [ ("fifo", Restricted.Fifo); ("lifo", Restricted.Lifo); ("random", Restricted.Random 11) ]
  in
  table ~title:"E8b  strategy effect on the witness-reuse ontology (100 employees)"
    ~header:[ "strategy"; "steps"; "time" ]
    rows;
  (* ChaseBench-style scalable scenarios (the paper's reference [4]). *)
  let scenarios =
    [
      Chase_workload.St_mapping.doctors ~patients:200;
      Chase_workload.St_mapping.doctors ~patients:800;
      Chase_workload.St_mapping.deep ~depth:20 ~width:10;
      Chase_workload.St_mapping.deep ~depth:40 ~width:10;
      Chase_workload.St_mapping.join_heavy ~rows:200;
      Chase_workload.St_mapping.join_heavy ~rows:800;
    ]
  in
  let rows =
    List.map
      (fun (s : Chase_workload.St_mapping.scenario) ->
        let d =
          Restricted.run ~max_steps:200_000 s.Chase_workload.St_mapping.tgds
            s.Chase_workload.St_mapping.database
        in
        let ns =
          once_ns (fun () ->
              Restricted.run ~max_steps:200_000 s.Chase_workload.St_mapping.tgds
                s.Chase_workload.St_mapping.database)
        in
        [
          s.Chase_workload.St_mapping.name;
          string_of_int s.Chase_workload.St_mapping.facts;
          string_of_int (Derivation.length d);
          pretty_ns ns;
          pretty_ns (ns /. float_of_int (max 1 (Derivation.length d)));
        ])
      scenarios
  in
  table ~title:"E8c  ChaseBench-style scenarios (reference [4] shape)"
    ~header:[ "scenario"; "source facts"; "steps"; "time"; "time/step" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9: all-instances termination across chase variants: the oblivious   *)
(* and semi-oblivious critical-database deciders vs this work's         *)
(* restricted-chase deciders, on the gallery.  The rows where the       *)
(* columns differ are where the restricted chase earns its activeness   *)
(* checks.                                                              *)
(* ------------------------------------------------------------------ *)

let e9 () =
  let show_obl = function
    | Chase_termination.Oblivious_decider.All_terminating _ -> "term"
    | Chase_termination.Oblivious_decider.Diverging_on_critical _ -> "diverge"
  in
  let rows =
    List.filter_map
      (fun (s : Chase_workload.Scenarios.t) ->
        if not (Chase_workload.Scenarios.single_head s) then None
        else
          let tgds = Chase_workload.Scenarios.tgds s in
          let obl = Chase_termination.Oblivious_decider.decide ~max_steps:3_000 tgds in
          let semi =
            Chase_termination.Oblivious_decider.decide
              ~variant:Oblivious.Semi_oblivious ~max_steps:3_000 tgds
          in
          let res = (Chase_termination.Decider.decide tgds).Chase_termination.Decider.answer in
          let res =
            match res with
            | Chase_termination.Decider.Terminating -> "term"
            | Chase_termination.Decider.Non_terminating -> "diverge"
            | Chase_termination.Decider.Unknown -> "unknown"
          in
          let separated =
            if show_obl semi = "diverge" && res = "term" then "⇐ restricted wins" else ""
          in
          Some [ s.Chase_workload.Scenarios.name; show_obl obl; show_obl semi; res; separated ])
      Chase_workload.Scenarios.all
  in
  table
    ~title:
      "E9  all-instances termination across chase variants (critical-database deciders vs \
       this work)"
    ~header:[ "scenario"; "oblivious"; "semi-oblivious"; "restricted"; "" ]
    rows

(* ------------------------------------------------------------------ *)
(* E10: anatomy of the §6 pipeline and of the §5.3 sentence:            *)
(* extraction and finitarization on diverging sticky sets, and the      *)
(* explicit MSOL sentence φ_T for guarded sets.                         *)
(* ------------------------------------------------------------------ *)

let e10 () =
  (* E10a: derivation → caterpillar → finitary caterpillar *)
  let sticky_diverging =
    List.filter
      (fun (s : Chase_workload.Scenarios.t) ->
        Chase_workload.Scenarios.single_head s
        && s.Chase_workload.Scenarios.truth = Chase_workload.Scenarios.Diverging
        && Chase_classes.Stickiness.is_sticky (Chase_workload.Scenarios.tgds s))
      Chase_workload.Scenarios.all
  in
  let rows =
    List.filter_map
      (fun (s : Chase_workload.Scenarios.t) ->
        let tgds = Chase_workload.Scenarios.tgds s in
        (* the free caterpillar: unroll the decider's lasso 8 turns (its
           legs are maximally fresh, which is what Lemma 6.13 unifies);
           extraction from concrete derivations is exercised by the tests *)
        match Chase_termination.Sticky_decider.decide ~unroll_turns:8 tgds with
        | Chase_termination.Sticky_decider.All_terminating
        | Chase_termination.Sticky_decider.Inconclusive _ ->
            Some [ s.Chase_workload.Scenarios.name; "-"; "-"; "-"; "no certificate" ]
        | Chase_termination.Sticky_decider.Non_terminating cert -> (
            let cat = cert.Chase_termination.Sticky_decider.prefix in
            let body = Chase_termination.Caterpillar.length cat in
            let legs = Instance.cardinal (Chase_termination.Caterpillar.legs cat) in
            match Chase_termination.Finitary.finitarize_checked tgds cat with
            | Error e ->
                Some
                  [
                    s.Chase_workload.Scenarios.name;
                    string_of_int body;
                    string_of_int legs;
                    "-";
                    "finitarize failed: " ^ e;
                  ]
            | Ok (_, stats) ->
                Some
                  [
                    s.Chase_workload.Scenarios.name;
                    string_of_int body;
                    string_of_int legs;
                    string_of_int stats.Chase_termination.Finitary.leg_atoms_after;
                    Printf.sprintf "bank m=%d, validated"
                      stats.Chase_termination.Finitary.bank_size;
                  ]))
      sticky_diverging
  in
  table
    ~title:
      "E10a  §6.3–§6.4 pipeline: lasso → free connected caterpillar → finitary \
       (8-turn unrollings)"
    ~header:[ "scenario"; "body steps"; "legs before"; "legs after"; "Lemma 6.13" ]
    rows;
  (* E10b: the MSOL sentence φ_T for guarded sets *)
  let guarded =
    List.filter
      (fun (s : Chase_workload.Scenarios.t) ->
        Chase_workload.Scenarios.single_head s
        && Chase_classes.Guardedness.is_guarded (Chase_workload.Scenarios.tgds s))
      Chase_workload.Scenarios.all
  in
  let rows =
    List.map
      (fun (s : Chase_workload.Scenarios.t) ->
        let tgds = Chase_workload.Scenarios.tgds s in
        let phi = Chase_termination.Msol.phi_t tgds in
        let fo, so = Chase_termination.Msol.quantifier_count phi in
        [
          s.Chase_workload.Scenarios.name;
          string_of_int (List.length tgds);
          string_of_int (Chase_termination.Msol.alphabet_size tgds);
          string_of_int (Chase_termination.Msol.size phi);
          Printf.sprintf "%d/%d" fo so;
        ])
      guarded
  in
  table ~title:"E10b  the explicit MSOL sentence φ_T of Lemma 5.12 (guarded gallery)"
    ~header:[ "scenario"; "|T|"; "|Λ_T|"; "|φ_T| nodes"; "FO/SO quantifiers" ]
    rows

(* ------------------------------------------------------------------ *)
(* E11: compiled join plans + mutable instance vs the naive engine.     *)
(* The two Restricted backends produce identical derivations (property- *)
(* tested), so the ratio below is pure engine throughput: compiled      *)
(* plans over the Hashtbl-backed Minstance against the generic          *)
(* homomorphism search over the persistent Instance.                    *)
(* ------------------------------------------------------------------ *)

let e11 () =
  let ontology_src =
    "o1: employee(E) -> exists T. member(E,T).\no2: member(E,T) -> team(T).\n\
     o3: team(T) -> exists E. member(E,T).\no4: member(E,T) -> employee(E)."
  in
  let ontology n =
    let tgds = Chase_parser.Parser.parse_tgds ontology_src in
    (Printf.sprintf "ontology(%d)" n, tgds, Chase_workload.Db_gen.unary ~pred:"employee" ~count:n)
  in
  let st scenario =
    let s = scenario in
    (s.Chase_workload.St_mapping.name, s.Chase_workload.St_mapping.tgds,
     s.Chase_workload.St_mapping.database)
  in
  let families =
    if !smoke then
      [
        ontology 40;
        st (Chase_workload.St_mapping.doctors ~patients:25);
        st (Chase_workload.St_mapping.deep ~depth:4 ~width:6);
        st (Chase_workload.St_mapping.join_heavy ~rows:12);
        st (Chase_workload.St_mapping.hub_propagation ~n:60 ~pad:240);
        st (Chase_workload.St_mapping.hub_exchange ~n:50 ~pad:400);
      ]
    else
      [
        ontology 300;
        st (Chase_workload.St_mapping.doctors ~patients:150);
        st (Chase_workload.St_mapping.deep ~depth:6 ~width:25);
        st (Chase_workload.St_mapping.join_heavy ~rows:45);
        st (Chase_workload.St_mapping.hub_propagation ~n:2000 ~pad:8000);
        st (Chase_workload.St_mapping.hub_exchange ~n:1500 ~pad:12000);
      ]
  in
  let quota = if !smoke then 0.1 else 0.5 in
  let rows =
    List.map
      (fun (name, tgds, db) ->
        let run backend () = Restricted.run ~backend ~max_steps:200_000 tgds db in
        let d = run `Compiled () in
        assert (Derivation.terminated d);
        let steps = Derivation.length d in
        let naive_ns = measure_ns ~quota (name ^ "/naive") (run `Naive) in
        let compiled_ns = measure_ns ~quota (name ^ "/compiled") (run `Compiled) in
        let speedup = naive_ns /. compiled_ns in
        let throughput ns = float_of_int steps /. (ns /. 1e9) in
        record "E11"
          [
            ("family", Str name);
            ("chase_steps", Int steps);
            ("naive_ns", Num naive_ns);
            ("compiled_ns", Num compiled_ns);
            ("naive_steps_per_s", Num (throughput naive_ns));
            ("compiled_steps_per_s", Num (throughput compiled_ns));
            ("speedup", Num speedup);
          ];
        [
          name;
          string_of_int steps;
          pretty_ns naive_ns;
          pretty_ns compiled_ns;
          Printf.sprintf "%.0f" (throughput naive_ns);
          Printf.sprintf "%.0f" (throughput compiled_ns);
          Printf.sprintf "%.1fx" speedup;
        ])
      families
  in
  table
    ~title:
      "E11  restricted chase, naive engine vs compiled plans + mutable instance \
       (identical derivations)"
    ~header:
      [ "family"; "steps"; "naive"; "compiled"; "naive steps/s"; "compiled steps/s"; "speedup" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12: multicore scaling over the lib/exec domain pool.  Two workload  *)
(* families: the E11 skewed-hub mappings (parallel activity scan in the *)
(* restricted chase) and growing random sticky sets (parallel Büchi     *)
(* frontier expansion in the decider).  Parallel runs are bit-identical *)
(* to sequential — same derivations, verdicts and state counts; that is *)
(* asserted below and property-tested in test/suite_parallel_exec.ml —  *)
(* so the sweep measures wall-clock only.  Speedup is relative to the   *)
(* jobs=1 run of the same binary; on a single-core container every row  *)
(* degrades to pool overhead (see EXPERIMENTS.md E12 for the caveat).   *)
(* ------------------------------------------------------------------ *)

let e12 () =
  let module Exec = Chase_exec.Pool in
  let mj = e12_max_jobs () in
  let sweep =
    let base = List.filter (fun j -> j <= mj) [ 1; 2; 4; 8 ] in
    if List.mem mj base then base else base @ [ mj ]
  in
  let quota = if !smoke then 0.1 else 0.25 in
  (* 12a: restricted chase on the skewed-hub mappings — the E11 families
     with the widest trigger queues, i.e. the most activity checks per
     winning pop for the speculative scan to overlap. *)
  let st scenario =
    let s = scenario in
    (s.Chase_workload.St_mapping.name, s.Chase_workload.St_mapping.tgds,
     s.Chase_workload.St_mapping.database)
  in
  let chase_families =
    if !smoke then
      [
        st (Chase_workload.St_mapping.hub_propagation ~n:60 ~pad:240);
        st (Chase_workload.St_mapping.hub_exchange ~n:50 ~pad:400);
      ]
    else
      [
        st (Chase_workload.St_mapping.hub_propagation ~n:2000 ~pad:8000);
        st (Chase_workload.St_mapping.hub_exchange ~n:1500 ~pad:12000);
      ]
  in
  let chase_rows =
    List.concat_map
      (fun (name, tgds, db) ->
        let run pool () = Restricted.run ~max_steps:200_000 ~pool tgds db in
        let base = run Exec.inline () in
        let steps = Derivation.length base in
        let base_ns = ref nan in
        List.map
          (fun j ->
            Exec.with_pool ~jobs:j @@ fun pool ->
            assert (same_derivation base (run pool ()));
            let ns = measure_ns ~quota (Printf.sprintf "%s/jobs=%d" name j) (run pool) in
            if j = 1 then base_ns := ns;
            let speedup = !base_ns /. ns in
            record "E12"
              [
                ("family", Str ("chase/" ^ name));
                ("jobs", Int j);
                ("chase_steps", Int steps);
                ("ns", Num ns);
                ("steps_per_s", Num (float_of_int steps /. (ns /. 1e9)));
                ("speedup_vs_jobs1", Num speedup);
              ];
            [
              "chase " ^ name;
              string_of_int j;
              string_of_int steps;
              pretty_ns ns;
              Printf.sprintf "%.2fx" speedup;
            ])
          sweep)
      chase_families
  in
  (* 12b: Büchi-heavy sticky decides — E6b's random scaling family at
     its largest sizes, where decision time is dominated by the product
     automaton exploration that the pool parallelizes level by level. *)
  let sticky_sets =
    let set n =
      ( Printf.sprintf "random-sticky-%d" n,
        Chase_workload.Tgd_gen.sticky_set
          {
            Chase_workload.Tgd_gen.default with
            Chase_workload.Tgd_gen.seed = 7 * n;
            tgds = n;
            predicates = 1 + (n / 2);
            max_arity = 2;
          } )
    in
    if !smoke then [ set 6 ] else [ set 10; set 12 ]
  in
  let sticky_rows =
    List.concat_map
      (fun (name, tgds) ->
        let stats pool = Chase_termination.Sticky_decider.decide_with_stats ~pool tgds in
        let tag (s : Chase_termination.Sticky_decider.stats) =
          match s.Chase_termination.Sticky_decider.decision with
          | Chase_termination.Sticky_decider.All_terminating -> "terminating"
          | Chase_termination.Sticky_decider.Non_terminating _ -> "diverging"
          | Chase_termination.Sticky_decider.Inconclusive _ -> "inconclusive"
        in
        let base = stats Exec.inline in
        let base_ns = ref nan in
        List.map
          (fun j ->
            Exec.with_pool ~jobs:j @@ fun pool ->
            let s = stats pool in
            assert (
              tag s = tag base
              && s.Chase_termination.Sticky_decider.explored_states
                 = base.Chase_termination.Sticky_decider.explored_states);
            let ns =
              measure_ns ~quota
                (Printf.sprintf "%s/jobs=%d" name j)
                (fun () -> Chase_termination.Sticky_decider.decide ~pool tgds)
            in
            if j = 1 then base_ns := ns;
            let speedup = !base_ns /. ns in
            record "E12"
              [
                ("family", Str ("buchi/" ^ name));
                ("jobs", Int j);
                ("states", Int base.Chase_termination.Sticky_decider.explored_states);
                ("ns", Num ns);
                ("speedup_vs_jobs1", Num speedup);
              ];
            [
              "büchi " ^ name;
              string_of_int j;
              string_of_int base.Chase_termination.Sticky_decider.explored_states;
              pretty_ns ns;
              Printf.sprintf "%.2fx" speedup;
            ])
          sweep)
      sticky_sets
  in
  table
    ~title:
      (Printf.sprintf
         "E12  multicore scaling, 1..%d domains (recommended_domain_count here: %d); \
          parallel runs bit-identical to sequential"
         mj
         (Domain.recommended_domain_count ()))
    ~header:[ "workload"; "jobs"; "steps/states"; "time"; "speedup vs jobs=1" ]
    (chase_rows @ sticky_rows)

(* ------------------------------------------------------------------ *)
(* E14: the columnar interned store vs the hash-indexed Minstance at    *)
(* 10M facts (≈100k under --smoke).  One skewed-hub scenario where the  *)
(* database dwarfs the derivation: hub_propagation's chase runs exactly *)
(* n existential-free steps over 3n+pad+1 facts, so the row measures    *)
(* store traversal and probe cost, not trigger scheduling.  Both        *)
(* backends are asserted bit-identical before timing (and columnar      *)
(* again at jobs=2 against jobs=1), mirroring the lib/check oracle's    *)
(* backend/jobs-agreement invariants at benchmark scale.  One-shot      *)
(* timings: bechamel sampling would re-run a multi-second chase dozens  *)
(* of times for no extra digit.  The headline is the pair (wall-time    *)
(* multiple, allocation multiple) of compiled over columnar.            *)
(* ------------------------------------------------------------------ *)

let e14 () =
  let n, pad = if !smoke then (2_000, 94_000) else (40_000, 9_880_000) in
  let s = Chase_workload.St_mapping.hub_propagation ~n ~pad in
  let tgds = s.Chase_workload.St_mapping.tgds in
  let db = s.Chase_workload.St_mapping.database in
  let facts = s.Chase_workload.St_mapping.facts in
  let run ?pool backend () = Restricted.run ~backend ?pool ~max_steps:200_000 tgds db in
  (* compact before each measured run: without it the second backend
     pays major-GC slices marking and sweeping the first one's garbage,
     which skews a one-shot A/B by tens of percent at 10M facts *)
  Gc.compact ();
  let d_comp, comp_ns, comp_gc = once_gc (run `Compiled) in
  Gc.compact ();
  let d_col, col_ns, col_gc = once_gc (run `Columnar) in
  (* n-1 existential-free steps: r walks the cycle until the wrap-around
     trigger's head r(v0) is already present, hence inactive. *)
  assert (Derivation.terminated d_comp);
  assert (Derivation.length d_comp = n - 1);
  assert (same_derivation d_comp d_col);
  (* jobs-agreement at scale: the parallel speculative activity scan
     over the frozen columnar store must not change the derivation. *)
  Chase_exec.Pool.with_pool ~jobs:2 (fun pool ->
      assert (same_derivation d_col (run ~pool `Columnar ())));
  let steps = Derivation.length d_col in
  let alloc d = d.Bench_util.minor_words +. d.Bench_util.promoted_words in
  let wall_multiple = comp_ns /. col_ns in
  let alloc_multiple = alloc comp_gc /. alloc col_gc in
  List.iter
    (fun (backend, ns, gc) ->
      record "E14"
        ([
           ("family", Str s.Chase_workload.St_mapping.name);
           ("backend", Str backend);
           ("facts", Int facts);
           ("chase_steps", Int steps);
           ("ns", Num ns);
           ("steps_per_s", Num (float_of_int steps /. (ns /. 1e9)));
         ]
        @ gc_fields gc))
    [ ("compiled", comp_ns, comp_gc); ("columnar", col_ns, col_gc) ];
  record "E14"
    [
      ("family", Str s.Chase_workload.St_mapping.name);
      ("backend", Str "compiled-over-columnar");
      ("facts", Int facts);
      ("wall_multiple", Num wall_multiple);
      ("alloc_multiple", Num alloc_multiple);
      ("bit_identical", Bool true);
      ("jobs_checked", Int 2);
    ];
  table
    ~title:
      (Printf.sprintf
         "E14  columnar interned store vs hash-indexed instance, %d facts (derivations \
          bit-identical, columnar re-checked at jobs=2)"
         facts)
    ~header:[ "backend"; "steps"; "time"; "steps/s"; "alloc words"; "major GCs" ]
    [
      [
        "compiled";
        string_of_int steps;
        pretty_ns comp_ns;
        Printf.sprintf "%.0f" (float_of_int steps /. (comp_ns /. 1e9));
        Printf.sprintf "%.3g" (alloc comp_gc);
        string_of_int comp_gc.Bench_util.major_collections;
      ];
      [
        "columnar";
        string_of_int steps;
        pretty_ns col_ns;
        Printf.sprintf "%.0f" (float_of_int steps /. (col_ns /. 1e9));
        Printf.sprintf "%.3g" (alloc col_gc);
        string_of_int col_gc.Bench_util.major_collections;
      ];
      [
        "compiled/columnar";
        "";
        Printf.sprintf "%.2fx" wall_multiple;
        "";
        Printf.sprintf "%.2fx" alloc_multiple;
        "";
      ];
    ]

(* ------------------------------------------------------------------ *)
(* E15: the portfolio front-end vs fixed dispatch across the gallery:  *)
(* which procedure wins per dispatch class, and what the race costs    *)
(* (or saves) in wall time.  Sequential portfolio — the racers run in  *)
(* priority order with cooperative cancellation, so the numbers are    *)
(* deterministic and comparable across hosts.                          *)
(* ------------------------------------------------------------------ *)

let e15 () =
  let module D = Chase_termination.Decider in
  let answer = function
    | D.Terminating -> "terminating"
    | D.Non_terminating -> "non-terminating"
    | D.Unknown -> "unknown"
  in
  let cases =
    List.map
      (fun (s : Chase_workload.Scenarios.t) ->
        (s.Chase_workload.Scenarios.name, Chase_workload.Scenarios.tgds s))
      Chase_workload.Scenarios.all
  in
  let wins = Hashtbl.create 8 in
  let rows =
    List.map
      (fun (name, tgds) ->
        let fixed = D.decide tgds in
        let port = D.decide_portfolio tgds in
        assert (
          fixed.D.answer = D.Unknown || port.D.answer = fixed.D.answer);
        let fixed_ns = measure_ns (name ^ "/fixed") (fun () -> D.decide tgds) in
        let port_ns = measure_ns (name ^ "/portfolio") (fun () -> D.decide_portfolio tgds) in
        let fixed_m = D.method_name fixed.D.method_used in
        let winner = D.method_name port.D.method_used in
        let key = (fixed_m, winner) in
        Hashtbl.replace wins key (1 + Option.value ~default:0 (Hashtbl.find_opt wins key));
        record "E15"
          [
            ("scenario", Str name);
            ("tgds", Int (List.length tgds));
            ("fixed_method", Str fixed_m);
            ("fixed_answer", Str (answer fixed.D.answer));
            ("portfolio_winner", Str winner);
            ("portfolio_answer", Str (answer port.D.answer));
            ("racers", Int (List.length port.D.procedures));
            ("fixed_ns", Num fixed_ns);
            ("portfolio_ns", Num port_ns);
          ];
        [
          name;
          fixed_m;
          answer fixed.D.answer;
          pretty_ns fixed_ns;
          winner;
          pretty_ns port_ns;
          Printf.sprintf "%.2fx" (port_ns /. fixed_ns);
          string_of_int (List.length port.D.procedures);
        ])
      cases
  in
  table ~title:"E15a  portfolio vs fixed dispatch across the gallery (sequential race)"
    ~header:
      [ "scenario"; "fixed method"; "answer"; "fixed time"; "winner"; "portfolio time";
        "port/fixed"; "racers" ]
    rows;
  (* win rates per dispatch class: how often the raced winner differs
     from the statically chosen procedure *)
  let rows =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) wins []
    |> List.sort compare
    |> List.map (fun ((fixed_m, winner), n) ->
           record "E15"
             [
               ("fixed_method", Str fixed_m);
               ("portfolio_winner", Str winner);
               ("wins", Int n);
             ];
           [ fixed_m; winner; string_of_int n ])
  in
  table ~title:"E15b  win counts: fixed dispatch class vs raced winner"
    ~header:[ "fixed method"; "portfolio winner"; "wins" ]
    rows

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6); ("E7", e7);
    ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12); ("E14", e14);
    ("E15", e15);
  ]

(* Each experiment runs under a stats sink so BENCH_results.json carries
   a per-experiment counter snapshot (which engine paths fired, how
   often) next to the timings — regressions become diagnosable, not just
   detectable.  Timed closures are exempt: measure_ns/once_ns suspend
   the sink, so the numbers are those of the uninstrumented hot path.
   The wall-clock row covers the whole experiment (setup, asserts and
   bechamel calibration included), making trajectory entries comparable
   at a glance even where no bechamel measurement exists. *)
let run_with_counters name f =
  let st = Obs.Stats.create () in
  let t0 = Unix.gettimeofday () in
  let (), gc = with_gc_delta (fun () -> Obs.with_sink (Obs.Stats.sink st) f) in
  let wall = Unix.gettimeofday () -. t0 in
  let fields = List.map (fun (k, v) -> (k, Int v)) (Obs.Stats.counters st) in
  record name
    ((("wall_s", Num wall) :: gc_fields gc)
    @ (if fields = [] then [] else [ ("counters", Obj fields) ]))

let () =
  Obs.set_clock Unix.gettimeofday;
  let json = ref false in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--jobs" :: n :: rest ->
        max_jobs := int_of_string n;
        parse rest
    | arg :: rest when String.starts_with ~prefix:"--jobs=" arg ->
        max_jobs :=
          int_of_string (String.sub arg (String.length "--jobs=")
                           (String.length arg - String.length "--jobs="));
        parse rest
    | arg :: rest when String.starts_with ~prefix:"--" arg ->
        Printf.eprintf "unknown flag %s\n" arg;
        parse rest
    | arg :: rest ->
        names := arg :: !names;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let names = List.rev !names in
  let selected = match names with [] -> List.map fst experiments | _ -> names in
  (* The environment row makes the trajectory file self-describing: which
     jobs cap the E12 sweep used, and how many cores the host admits. *)
  if !json then
    record "env"
      [
        ("jobs", Int (e12_max_jobs ()));
        ("recommended_domain_count", Int (Domain.recommended_domain_count ()));
        ("smoke", Bool !smoke);
      ];
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> run_with_counters name f
      | None -> Printf.eprintf "unknown experiment %s\n" name)
    selected;
  if !json then begin
    write_json "BENCH_results.json";
    print_endline "wrote BENCH_results.json"
  end
