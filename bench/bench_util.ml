(* Shared helpers for the benchmark harness: Bechamel-based timing and
   plain-text table rendering. *)

(* Timed closures always run with observability suspended: the driver
   may have a stats sink installed to snapshot counters per experiment,
   and measured throughput must stay sink-free (BENCH acceptance: the
   instrumented engine with no sink is within noise of the PR 1 one). *)
let measure_ns ?(quota = 0.25) name fn =
  Obs.suspended @@ fun () ->
  let open Bechamel in
  let test = Test.make ~name (Staged.stage fn) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let tbl = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let est = ref nan in
  Hashtbl.iter
    (fun _ v -> match Analyze.OLS.estimates v with Some (x :: _) -> est := x | _ -> ())
    tbl;
  !est

let pretty_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f µs" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

(* One-shot wall-clock for heavyweight runs where Bechamel sampling would
   be too slow.  Reported in the same pretty format. *)
let once_ns fn =
  Obs.suspended @@ fun () ->
  let t0 = Unix.gettimeofday () in
  ignore (fn ());
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9

(* GC deltas around a closure: allocation pressure (minor + promoted
   words) and full collections.  Words, not bytes — multiply by the word
   size to compare against RSS. *)
type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_collections : int;
}

let with_gc_delta f =
  let g0 = Gc.quick_stat () in
  let r = f () in
  let g1 = Gc.quick_stat () in
  ( r,
    {
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
      major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    } )

(* [once_ns] that also hands back the run's result and GC delta — for
   one-shot A/B rows where the allocation multiple is the headline. *)
let once_gc fn =
  Obs.suspended @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let r, gc = with_gc_delta fn in
  let t1 = Unix.gettimeofday () in
  (r, (t1 -. t0) *. 1e9, gc)

(* Minimal fixed-width table printer. *)
let table ~title ~header rows =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) header;
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols && String.length cell > widths.(i) then widths.(i) <- String.length cell)
        row)
    rows;
  let print_row cells =
    let padded =
      List.mapi
        (fun i c -> c ^ String.make (max 0 (widths.(i) - String.length c)) ' ')
        cells
    in
    print_endline ("  " ^ String.concat "  " padded)
  in
  Printf.printf "\n## %s\n\n" title;
  print_row header;
  print_row (List.mapi (fun i _ -> String.make widths.(i) '-') header);
  List.iter print_row rows;
  print_newline ()

let program src =
  let p = Chase_parser.Parser.parse_program src in
  (Chase_parser.Program.tgds p, Chase_parser.Program.database p)

(* Machine-readable results (--json): experiments push records here; the
   driver dumps them to BENCH_results.json.  Hand-rolled writer — the
   rows are shallow (one [Obj] level for counter snapshots) and the tree
   has no JSON dependency. *)
type json_value =
  | Num of float
  | Int of int
  | Str of string
  | Bool of bool
  | Obj of (string * json_value) list

let json_rows : (string * (string * json_value) list) list ref = ref []

let record experiment fields = json_rows := (experiment, fields) :: !json_rows

(* A gc_delta as JSON fields, for splicing into a [record] row. *)
let gc_fields d =
  [
    ("minor_words", Num d.minor_words);
    ("promoted_words", Num d.promoted_words);
    ("major_collections", Int d.major_collections);
  ]

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (experiment, fields) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Printf.sprintf "  {\"experiment\": \"%s\"" (json_escape experiment));
      let rec value_str = function
        | Num f -> if Float.is_nan f then "null" else Printf.sprintf "%.6g" f
        | Int n -> string_of_int n
        | Str s -> "\"" ^ json_escape s ^ "\""
        | Bool b -> string_of_bool b
        | Obj kvs ->
            "{"
            ^ String.concat ", "
                (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) (value_str v)) kvs)
            ^ "}"
      in
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (Printf.sprintf ", \"%s\": %s" (json_escape k) (value_str v)))
        fields;
      Buffer.add_string buf "}")
    (List.rev !json_rows);
  Buffer.add_string buf "\n]\n";
  Out_channel.with_open_text path (fun oc -> output_string oc (Buffer.contents buf))
