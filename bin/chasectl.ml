(* chasectl — the command-line surface of the library.

     chasectl classify FILE          class membership report
     chasectl chase FILE             run a chase engine, print the result
     chasectl decide FILE            decide all-instances restricted
                                     chase termination (the paper's problem)
     chasectl query FILE -q QUERY    certain answers via materialization
     chasectl automaton FILE         sticky Büchi automaton anatomy
     chasectl scenarios              list the built-in scenario gallery

   FILE contains TGDs and facts in the surface syntax; use '-' for stdin.

   chase, decide, automaton and ochase take --stats (counter/span summary
   on stderr) and --trace-json FILE (JSON-lines event trace; the schema
   is documented in docs/OBSERVABILITY.md). *)

open Cmdliner

let read_input path =
  if String.equal path "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_bin path In_channel.input_all

let load path =
  let src = read_input path in
  match Chase_parser.Parser.parse_program src with
  | p -> Ok p
  | exception Chase_parser.Parser.Error { line; col; msg } ->
      Error (Printf.sprintf "%s:%d:%d: %s" path line col msg)
  | exception Chase_parser.Lexer.Error { line; col; msg } ->
      Error (Printf.sprintf "%s:%d:%d: %s" path line col msg)

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Program file ('-' for stdin).")

let or_die = function
  | Ok x -> x
  | Error msg ->
      prerr_endline msg;
      exit 2

(* --- observability --------------------------------------------------- *)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"After the run, print engine counters, gauges and span timings to stderr.")

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "Write the observability event stream to $(docv) as JSON lines (one object per \
           counter/gauge/span/event; schema in docs/OBSERVABILITY.md).")

(* Run [f] with the sinks requested by --stats/--trace-json installed;
   with neither flag, no sink is installed and instrumentation stays
   near-free.  The stats table lands on stderr so stdout remains the
   machine-readable result. *)
let with_obs ~stats ~trace_json f =
  let stats_t = if stats then Some (Obs.Stats.create ()) else None in
  let trace_oc = Option.map open_out trace_json in
  let sinks =
    Option.to_list (Option.map Obs.Stats.sink stats_t)
    @ Option.to_list (Option.map Obs.Jsonl.channel_sink trace_oc)
  in
  match sinks with
  | [] -> f ()
  | first :: rest ->
      Obs.set_clock Unix.gettimeofday;
      Fun.protect
        ~finally:(fun () ->
          Option.iter close_out trace_oc;
          Option.iter (fun t -> Format.eprintf "%a@." Obs.Stats.pp t) stats_t)
        (fun () -> Obs.with_sink (List.fold_left Obs.tee first rest) f)

(* --- backends --------------------------------------------------------- *)

(* One parser for every --backend flag (chase, fuzz, serve), built on
   Chase_engine.Backend.of_name so all surfaces reject unknown names
   with the same message; cmdliner attributes it to the offending
   option.  [store_backend_conv] is the restriction to store-backed
   backends for surfaces that cannot run naive (serve, fuzz). *)
let backend_conv : Chase_engine.Backend.t Arg.conv =
  let parse s =
    match Chase_engine.Backend.of_name s with Ok b -> Ok b | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (Chase_engine.Backend.name b))

let store_backend_conv : Chase_engine.Store.backend Arg.conv =
  let parse s =
    match Chase_engine.Store.backend_of_name s with
    | Ok b -> Ok b
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun ppf b ->
        Format.pp_print_string ppf (Chase_engine.Backend.name (b :> Chase_engine.Backend.t)) )

let backend_arg =
  Arg.(
    value
    & opt backend_conv `Compiled
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "Matching backend: $(b,compiled) (hash-indexed, default), $(b,columnar) (interned \
           int columns, for large databases) or $(b,naive) (generic search, the oracle).  \
           All three produce bit-identical derivations.")

(* --- parallelism ------------------------------------------------------ *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run on $(docv) domains (default 1 = sequential).  Parallel runs produce \
           bit-identical derivations and verdicts; only wall-clock changes.")

(* The pool is created inside the obs scope so its pool.* signals reach
   the --stats/--trace-json sinks, and always torn down. *)
let with_jobs jobs f = Chase_exec.Pool.with_pool ~jobs f

(* --- classify -------------------------------------------------------- *)

let classify_cmd =
  let run file =
    let p = or_die (load file) in
    let report = Chase_classes.Classification.classify (Chase_parser.Program.tgds p) in
    Format.printf "%a@." Chase_classes.Classification.pp report
  in
  Cmd.v (Cmd.info "classify" ~doc:"Report class membership (guarded, sticky, …).")
    Term.(const run $ file_arg)

(* --- chase ----------------------------------------------------------- *)

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("restricted", `Restricted); ("oblivious", `Oblivious); ("semi", `Semi) ])
        `Restricted
    & info [ "engine" ] ~docv:"ENGINE" ~doc:"Chase engine: restricted, oblivious or semi.")

let strategy_arg =
  Arg.(
    value
    & opt (enum [ ("fifo", `Fifo); ("lifo", `Lifo); ("random", `Random) ]) `Fifo
    & info [ "strategy" ] ~docv:"S" ~doc:"Restricted-chase trigger strategy.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random strategy seed.")

let max_steps_arg =
  Arg.(value & opt int 10_000 & info [ "max-steps" ] ~docv:"N" ~doc:"Step budget.")

let trace_arg = Arg.(value & flag & info [ "trace" ] ~doc:"Print the derivation trace.")

let chase_cmd =
  let run file engine backend strategy seed max_steps trace stats trace_json jobs =
    let p = or_die (load file) in
    let tgds = Chase_parser.Program.tgds p in
    let db = Chase_parser.Program.database p in
    with_obs ~stats ~trace_json @@ fun () ->
    with_jobs jobs @@ fun pool ->
    match engine with
    | `Restricted ->
        let strategy =
          match strategy with
          | `Fifo -> Chase_engine.Restricted.Fifo
          | `Lifo -> Chase_engine.Restricted.Lifo
          | `Random -> Chase_engine.Restricted.Random seed
        in
        let d = Chase_engine.Restricted.run ~backend ~strategy ~max_steps ~pool tgds db in
        if trace then Format.printf "%a@." Chase_engine.Derivation.pp d
        else begin
          Format.printf "%a@." Chase_core.Instance.pp (Chase_engine.Derivation.final d);
          Format.printf "steps: %d, status: %s@."
            (Chase_engine.Derivation.length d)
            (match Chase_engine.Derivation.status d with
            | Chase_engine.Derivation.Terminated -> "terminated"
            | Chase_engine.Derivation.Out_of_budget -> "out of budget")
        end
    | (`Oblivious | `Semi) as v ->
        let variant =
          match v with
          | `Oblivious -> Chase_engine.Oblivious.Oblivious
          | `Semi -> Chase_engine.Oblivious.Semi_oblivious
        in
        let r = Chase_engine.Oblivious.run ~backend ~variant ~max_steps tgds db in
        Format.printf "%a@." Chase_core.Instance.pp r.Chase_engine.Oblivious.instance;
        Format.printf "applications: %d, saturated: %b@." r.Chase_engine.Oblivious.applications
          r.Chase_engine.Oblivious.saturated
  in
  Cmd.v (Cmd.info "chase" ~doc:"Run a chase engine on the program's database.")
    Term.(
      const run $ file_arg $ engine_arg $ backend_arg $ strategy_arg $ seed_arg $ max_steps_arg
      $ trace_arg $ stats_arg $ trace_json_arg $ jobs_arg)

(* --- decide ---------------------------------------------------------- *)

let decide_cmd =
  let run file portfolio max_states max_depth json stats trace_json jobs =
    let p = or_die (load file) in
    let open Chase_termination.Decider in
    let report =
      with_obs ~stats ~trace_json @@ fun () ->
      with_jobs jobs @@ fun pool ->
      let tgds = Chase_parser.Program.tgds p in
      if portfolio then
        decide_portfolio ?sticky_max_states:max_states ?guarded_max_depth:max_depth ~pool tgds
      else decide ?sticky_max_states:max_states ?guarded_max_depth:max_depth ~pool tgds
    in
    let answer_str = function
      | Terminating -> "terminating"
      | Non_terminating -> "non-terminating"
      | Unknown -> "unknown"
    in
    if json then begin
      let module J = Chase_serve.Json in
      let procedures =
        if report.procedures = [] then []
        else
          [
            ( "procedures",
              J.Arr
                (List.map
                   (fun pr ->
                     J.Obj
                       [
                         ("name", J.Str (method_name pr.procedure));
                         ("outcome", J.Str (answer_str pr.outcome));
                         ("conclusive", J.Bool pr.conclusive);
                         ("cancelled", J.Bool pr.cancelled);
                         ("wall_ms", J.Float pr.wall_ms);
                         ("note", J.Str pr.note);
                       ])
                   report.procedures) );
          ]
      in
      print_endline
        (J.to_string
           (J.Obj
              ([
                 ("answer", J.Str (answer_str report.answer));
                 ("method", J.Str (method_name report.method_used));
                 ("detail", J.Str report.detail);
               ]
              @ procedures)))
    end
    else Format.printf "%a@." pp report;
    match report.answer with
    | Terminating -> exit 0
    | Non_terminating -> exit 1
    | Unknown -> exit 3
  in
  let portfolio_arg =
    Arg.(
      value & flag
      & info [ "portfolio" ]
          ~doc:
            "Race every procedure valid for the classified class (weak/joint acyclicity, MFA, \
             sticky B\xC3\xBCchi, guarded search); first conclusive answer wins.")
  in
  let max_states_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-states" ] ~docv:"N"
          ~doc:"Sticky B\xC3\xBCchi state budget per component (default 50000).")
  in
  let max_depth_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-depth" ] ~docv:"D"
          ~doc:"Guarded divergence-search depth budget (default 200).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as one JSON object.")
  in
  Cmd.v
    (Cmd.info "decide"
       ~doc:
         "Decide all-instances restricted chase termination (exit 0 = terminating, 1 = \
          non-terminating, 3 = unknown).")
    Term.(
      const run $ file_arg $ portfolio_arg $ max_states_arg $ max_depth_arg $ json_arg
      $ stats_arg $ trace_json_arg $ jobs_arg)

(* --- query ----------------------------------------------------------- *)

let query_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"CQ as 'body -> ans(X,...).'")

let query_cmd =
  let run file query max_steps =
    let p = or_die (load file) in
    let tgds = Chase_parser.Program.tgds p in
    let database = Chase_parser.Program.database p in
    let q = Chase_query.Conjunctive_query.parse query in
    match Chase_query.Certain_answers.compute_checked ~max_steps ~tgds ~database q with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok r ->
        List.iter
          (fun t -> print_endline (Chase_query.Conjunctive_query.tuple_to_string t))
          r.Chase_query.Certain_answers.answers;
        Format.eprintf "(%d answers; chase: %d atoms in %d steps)@."
          (List.length r.Chase_query.Certain_answers.answers)
          r.Chase_query.Certain_answers.chase_size r.Chase_query.Certain_answers.chase_steps
  in
  Cmd.v (Cmd.info "query" ~doc:"Certain answers by chase materialization.")
    Term.(const run $ file_arg $ query_arg $ max_steps_arg)

(* --- automaton ------------------------------------------------------- *)

let automaton_cmd =
  let run file stats trace_json jobs =
    let p = or_die (load file) in
    let tgds = Chase_parser.Program.tgds p in
    (match Chase_classes.Stickiness.is_sticky tgds with
    | false ->
        prerr_endline "the TGD set is not sticky";
        exit 2
    | true -> ());
    with_obs ~stats ~trace_json @@ fun () ->
    with_jobs jobs @@ fun pool ->
    let ctx = Chase_termination.Sticky_automaton.make_context tgds in
    let comps = Chase_termination.Sticky_automaton.components ctx in
    Format.printf "alphabet: %d letters, components: %d@."
      (List.length (Chase_termination.Sticky_automaton.alphabet ctx))
      (List.length comps);
    List.iter
      (fun ((e, cls), a) ->
        (* one pass per component: emptiness and anatomy together *)
        let verdict, s = Chase_automata.Buchi.emptiness_with_stats ~pool a in
        let verdict =
          match verdict with
          | Chase_automata.Buchi.Empty -> "empty"
          | Chase_automata.Buchi.Nonempty _ -> "NONEMPTY"
          | Chase_automata.Buchi.Budget_exceeded _ -> "budget"
          | Chase_automata.Buchi.Cancelled _ -> "cancelled"
        in
        Format.printf "  (e=%s, Π=class %d): %d states, %d transitions — %s@."
          (Chase_core.Equality_type.to_string e)
          cls s.Chase_automata.Buchi.states s.Chase_automata.Buchi.transitions verdict)
      comps
  in
  Cmd.v (Cmd.info "automaton" ~doc:"Anatomy of the sticky Büchi automaton A_T.")
    Term.(const run $ file_arg $ stats_arg $ trace_json_arg $ jobs_arg)

(* --- ochase ---------------------------------------------------------- *)

let ochase_cmd =
  let run file max_depth dot stats trace_json =
    let p = or_die (load file) in
    let tgds = Chase_parser.Program.tgds p in
    let db = Chase_parser.Program.database p in
    let g =
      with_obs ~stats ~trace_json @@ fun () ->
      Chase_engine.Real_oblivious.build ~max_depth ~max_nodes:2_000 tgds db
    in
    if dot then print_string (Chase_termination.Dot.real_oblivious g)
    else Format.printf "%a@." Chase_engine.Real_oblivious.pp g
  in
  let depth_arg =
    Arg.(value & opt int 4 & info [ "max-depth" ] ~docv:"D" ~doc:"Depth horizon.")
  in
  let dot_arg = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT.") in
  Cmd.v
    (Cmd.info "ochase" ~doc:"Materialize the real oblivious chase (Def 3.3), optionally as DOT.")
    Term.(const run $ file_arg $ depth_arg $ dot_arg $ stats_arg $ trace_json_arg)

(* --- extract --------------------------------------------------------- *)

let extract_cmd =
  let run file max_steps =
    let p = or_die (load file) in
    let tgds = Chase_parser.Program.tgds p in
    let db = Chase_parser.Program.database p in
    let d =
      Chase_engine.Restricted.run ~strategy:Chase_engine.Restricted.Lifo ~max_steps tgds db
    in
    (match Chase_engine.Derivation.status d with
    | Chase_engine.Derivation.Terminated ->
        prerr_endline "the chase terminated: nothing to extract";
        exit 1
    | Chase_engine.Derivation.Out_of_budget -> ());
    match Chase_termination.Caterpillar_extract.extract tgds d with
    | Ok cat ->
        Format.printf "%a@." Chase_termination.Caterpillar.pp cat;
        Format.printf "pass-on gaps: %s@."
          (String.concat ","
             (List.map string_of_int (Chase_termination.Caterpillar.pass_on_gaps cat)))
    | Error e ->
        prerr_endline e;
        exit 1
  in
  Cmd.v
    (Cmd.info "extract"
       ~doc:"Extract a free connected caterpillar from a diverging prefix (§6.2).")
    Term.(const run $ file_arg $ max_steps_arg)

(* --- treeify --------------------------------------------------------- *)

let treeify_cmd =
  let run file dot =
    let p = or_die (load file) in
    let tgds = Chase_parser.Program.tgds p in
    let db = Chase_parser.Program.database p in
    match Chase_termination.Treeify.treeify tgds db with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok r when dot ->
        print_string (Chase_termination.Dot.join_tree r.Chase_termination.Treeify.tree)
    | Ok r ->
        Format.printf "α∞ = %s@." (Chase_core.Atom.to_string r.Chase_termination.Treeify.alpha_infinity);
        Format.printf "longs-for edges:@.";
        List.iter
          (fun (a, b) ->
            Format.printf "  %s ⟶ %s@." (Chase_core.Atom.to_string a) (Chase_core.Atom.to_string b))
          r.Chase_termination.Treeify.longs_for;
        Format.printf "D_ac (path bound %d): %a@." r.Chase_termination.Treeify.depth
          Chase_core.Instance.pp r.Chase_termination.Treeify.dac;
        Format.printf "join tree:@.%a@." Chase_termination.Join_tree.pp
          r.Chase_termination.Treeify.tree
  in
  let dot_arg = Arg.(value & flag & info [ "dot" ] ~doc:"Emit the join tree as Graphviz DOT.") in
  Cmd.v (Cmd.info "treeify" ~doc:"Run the Treeification Theorem construction (Thm 5.5).")
    Term.(const run $ file_arg $ dot_arg)

(* --- msol ------------------------------------------------------------ *)

let msol_cmd =
  let run file print =
    let p = or_die (load file) in
    let tgds = Chase_parser.Program.tgds p in
    let phi = Chase_termination.Msol.phi_t tgds in
    let fo, so = Chase_termination.Msol.quantifier_count phi in
    Format.printf "|Λ_T| = %d labels@." (Chase_termination.Msol.alphabet_size tgds);
    Format.printf "|φ_T| = %d nodes, %d first-order and %d second-order quantifiers@."
      (Chase_termination.Msol.size phi) fo so;
    Format.printf "closed: %b@." (Chase_termination.Msol.is_closed phi);
    if print then Format.printf "@.%a@." Chase_termination.Msol.pp phi
  in
  let print_arg = Arg.(value & flag & info [ "print" ] ~doc:"Print the whole sentence.") in
  Cmd.v
    (Cmd.info "msol" ~doc:"Build the MSOL sentence φ_T of Lemma 5.12 and report its shape.")
    Term.(const run $ file_arg $ print_arg)

(* --- fuzz ------------------------------------------------------------ *)

let fuzz_cmd =
  let run cases seed profiles backends portfolio jobs no_shrink corpus_dir json stats trace_json
      =
    let profiles =
      match profiles with
      | [] -> Chase_check.Profile.all
      | names ->
          List.map (fun n -> or_die (Chase_check.Profile.of_name n)) names
    in
    let backends =
      match backends with [] -> Chase_check.Oracle.all_store_backends | bs -> bs
    in
    let config =
      {
        Chase_check.Harness.cases;
        seed;
        profiles;
        jobs;
        shrink = not no_shrink;
        corpus_dir;
        backends;
        portfolio;
      }
    in
    let report =
      with_obs ~stats ~trace_json @@ fun () ->
      with_jobs jobs @@ fun pool -> Chase_check.Harness.run ~pool config
    in
    if json then print_endline (Chase_check.Harness.json report)
    else begin
      List.iter
        (fun (f : Chase_check.Harness.failure) ->
          Format.eprintf "--- %s seed %d ---@."
            (Chase_check.Profile.name f.Chase_check.Harness.profile)
            f.Chase_check.Harness.case_seed;
          List.iter
            (fun d -> Format.eprintf "  %a@." Chase_check.Oracle.pp_discrepancy d)
            f.Chase_check.Harness.discrepancies;
          Format.eprintf "  minimal repro:@.%s@." f.Chase_check.Harness.repro;
          Option.iter
            (fun p -> Format.eprintf "  written to %s@." p)
            f.Chase_check.Harness.written)
        report.Chase_check.Harness.failures;
      print_endline (Chase_check.Harness.summary report)
    end;
    if report.Chase_check.Harness.failures <> [] then exit 1
  in
  let cases_arg =
    Arg.(value & opt int 200 & info [ "cases"; "n" ] ~docv:"N" ~doc:"Number of random cases.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Master seed (runs are deterministic in it).")
  in
  let profile_arg =
    Arg.(
      value & opt_all string []
      & info [ "profile"; "p" ] ~docv:"P"
          ~doc:
            (Printf.sprintf "Fuzzing profile, repeatable (default: all of %s)."
               (String.concat ", " Chase_check.Profile.names)))
  in
  let fuzz_backend_arg =
    Arg.(
      value
      & opt_all store_backend_conv []
      & info [ "backend" ] ~docv:"B"
          ~doc:
            "Store backend to compare against the naive reference, repeatable: $(b,compiled) \
             or $(b,columnar) (default: both).")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report raw failing cases without delta-debugging.")
  in
  let portfolio_arg =
    Arg.(
      value & flag
      & info [ "portfolio" ]
          ~doc:
            "Add the portfolio-vs-fixed decider cross-exam and the subsumption-pruning \
             cross-check to every case.")
  in
  let corpus_arg =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Write shrunk repros to $(docv) as corpus files.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the machine-readable report on stdout.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random programs through every engine configuration, checking \
          cross-engine invariants; failures are delta-debugged to minimal repros (exit 1 on \
          any discrepancy).")
    Term.(
      const run $ cases_arg $ seed_arg $ profile_arg $ fuzz_backend_arg $ portfolio_arg
      $ jobs_arg $ no_shrink_arg $ corpus_arg $ json_arg $ stats_arg $ trace_json_arg)

(* --- serve ----------------------------------------------------------- *)

let serve_cmd =
  let run socket tcp max_sessions max_steps max_facts max_wall_ms backend stats trace_json jobs
      =
    let defaults =
      {
        Chase_serve.Session.max_steps;
        max_facts;
        max_wall_ms;
      }
    in
    with_obs ~stats ~trace_json @@ fun () ->
    with_jobs jobs @@ fun epool ->
    let server =
      Chase_serve.Server.create ~epool { Chase_serve.Server.max_sessions; defaults; backend }
    in
    match (socket, tcp) with
    | Some _, Some _ -> or_die (Error "serve: pass at most one of --socket and --tcp")
    | Some path, None -> (
        Format.eprintf "chasectl serve: listening on unix socket %s@." path;
        try Chase_serve.Server.serve_unix server path
        with Failure msg -> or_die (Error (Printf.sprintf "serve: %s" msg)))
    | None, Some port ->
        Format.eprintf "chasectl serve: listening on 127.0.0.1:%d@." port;
        Chase_serve.Server.serve_tcp server port
    | None, None -> Chase_serve.Server.serve_stdio server
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv) instead of stdin/stdout.")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT" ~doc:"Listen on loopback TCP port $(docv).")
  in
  let max_sessions_arg =
    Arg.(
      value
      & opt int Chase_serve.Server.default_config.Chase_serve.Server.max_sessions
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Admission control: refuse new sessions (error code $(b,busy)) beyond $(docv).")
  in
  let d = Chase_serve.Session.default_budgets in
  let max_steps_arg =
    Arg.(
      value
      & opt int d.Chase_serve.Session.max_steps
      & info [ "max-steps" ] ~docv:"N" ~doc:"Default per-$(b,chase)-call step budget.")
  in
  let max_facts_arg =
    Arg.(
      value
      & opt int d.Chase_serve.Session.max_facts
      & info [ "max-facts" ] ~docv:"N" ~doc:"Default per-session instance-cardinality cap.")
  in
  let max_wall_ms_arg =
    Arg.(
      value
      & opt float d.Chase_serve.Session.max_wall_ms
      & info [ "max-wall-ms" ] ~docv:"MS"
          ~doc:"Default per-$(b,chase)-call wall-clock budget in milliseconds.")
  in
  let serve_backend_arg =
    Arg.(
      value
      & opt store_backend_conv `Compiled
      & info [ "backend" ] ~docv:"B"
          ~doc:
            "Default store backend for new sessions: $(b,compiled) or $(b,columnar).  A \
             $(b,load-program) request may override it per session with a \"backend\" field.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived chase service: named sessions with incremental re-chase over a \
          JSON-lines protocol (docs/SERVICE.md).")
    Term.(
      const run $ socket_arg $ tcp_arg $ max_sessions_arg $ max_steps_arg $ max_facts_arg
      $ max_wall_ms_arg $ serve_backend_arg $ stats_arg $ trace_json_arg $ jobs_arg)

(* --- scenarios ------------------------------------------------------- *)

let scenarios_cmd =
  let run () =
    List.iter
      (fun (s : Chase_workload.Scenarios.t) ->
        Format.printf "%-28s  %-9s  %s@." s.Chase_workload.Scenarios.name
          (match s.Chase_workload.Scenarios.truth with
          | Chase_workload.Scenarios.All_terminating -> "term"
          | Chase_workload.Scenarios.Diverging -> "diverge")
          s.Chase_workload.Scenarios.description)
      Chase_workload.Scenarios.all
  in
  Cmd.v (Cmd.info "scenarios" ~doc:"List the built-in scenario gallery.") Term.(const run $ const ())

let main =
  let info =
    Cmd.info "chasectl" ~version:"1.0.0"
      ~doc:"Restricted chase engines and all-instances termination decision procedures."
  in
  Cmd.group info
    [
      classify_cmd; chase_cmd; decide_cmd; query_cmd; automaton_cmd; ochase_cmd;
      extract_cmd; treeify_cmd; msol_cmd; fuzz_cmd; serve_cmd; scenarios_cmd;
    ]

let () = exit (Cmd.eval main)
