bench/bench_util.ml: Analyze Array Bechamel Benchmark Chase_parser Float Hashtbl List Measure Printf Staged String Test Time Toolkit Unix
