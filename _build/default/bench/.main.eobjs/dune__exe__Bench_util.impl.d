bench/bench_util.ml: Analyze Array Bechamel Benchmark Buffer Char Chase_parser Float Hashtbl List Measure Out_channel Printf Staged String Test Time Toolkit Unix
