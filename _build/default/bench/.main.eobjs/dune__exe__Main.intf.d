bench/main.mli:
