(* Tests for the §6.3–§6.4 pipeline: caterpillar words simulated on A_T,
   uniform connectedness of lasso unrollings (Observation 1), and the
   Lemma 6.13 finitarization. *)

open Chase_termination

let parse = Chase_parser.Parser.parse_tgds

let with_certificate tgds f =
  match Sticky_decider.decide ~unroll_turns:6 tgds with
  | Sticky_decider.Non_terminating cert -> f cert
  | Sticky_decider.All_terminating -> Alcotest.fail "expected non-termination"
  | Sticky_decider.Inconclusive m -> Alcotest.failf "inconclusive: %s" m

let legs_set = parse "s1: p(X,Y), u(W) -> exists Z. p(Y,Z)."
let successor = parse "r(X,Y) -> exists Z. r(Y,Z)."

let unit_tests =
  [
    Alcotest.test_case "lassos simulate on A_T and keep accepting" `Quick (fun () ->
        with_certificate successor (fun cert ->
            let ctx = Sticky_automaton.make_context successor in
            let word =
              cert.Sticky_decider.lasso.Chase_automata.Buchi.prefix
              @ List.concat
                  (List.init 4 (fun _ -> cert.Sticky_decider.lasso.Chase_automata.Buchi.cycle))
            in
            match
              Sticky_automaton.simulate ctx ~start_et:cert.Sticky_decider.start_et
                ~start_class:cert.Sticky_decider.start_class word
            with
            | None -> Alcotest.fail "the lasso word fell into the reject sink"
            | Some s -> Alcotest.(check bool) "last step is a pass-on" true s.Sticky_automaton.pass));
    Alcotest.test_case "corrupted words are rejected" `Quick (fun () ->
        with_certificate successor (fun cert ->
            let ctx = Sticky_automaton.make_context successor in
            let cycle = cert.Sticky_decider.lasso.Chase_automata.Buchi.cycle in
            (* repeat a pass-on letter with an empty pass-on set: the relay
               term dies (δpos of a dropped Π₁), or the stop check fires *)
            let stutter =
              List.map
                (fun (l : Sticky_automaton.letter) -> { l with Sticky_automaton.pass_on = [] })
                cycle
            in
            let word =
              cert.Sticky_decider.lasso.Chase_automata.Buchi.prefix
              @ stutter @ stutter @ stutter @ stutter
            in
            match
              Sticky_automaton.simulate ctx ~start_et:cert.Sticky_decider.start_et
                ~start_class:cert.Sticky_decider.start_class word
            with
            | None -> ()
            | Some s ->
                (* if not rejected, it must at least never accept again *)
                Alcotest.(check bool) "no pass-on" false s.Sticky_automaton.pass));
    Alcotest.test_case "lasso unrollings are uniformly connected (Observation 1)" `Quick
      (fun () ->
        with_certificate legs_set (fun cert ->
            let cycle_len =
              List.length cert.Sticky_decider.lasso.Chase_automata.Buchi.cycle
            in
            let prefix_len =
              List.length cert.Sticky_decider.lasso.Chase_automata.Buchi.prefix
            in
            Alcotest.(check bool) "gaps bounded by the lasso size" true
              (Caterpillar.is_uniformly_connected
                 ~bound:(max 1 (prefix_len + cycle_len))
                 cert.Sticky_decider.prefix)));
    Alcotest.test_case "finitarization collapses growing legs (Lemma 6.13)" `Quick (fun () ->
        with_certificate legs_set (fun cert ->
            let cat = cert.Sticky_decider.prefix in
            let before = Chase_core.Instance.cardinal (Caterpillar.legs cat) in
            Alcotest.(check bool) "legs grew with the unrolling" true (before >= 5);
            match Finitary.finitarize_checked legs_set cat with
            | Error e -> Alcotest.failf "finitarization failed: %s" e
            | Ok (cat', stats) ->
                Alcotest.(check bool) "legs collapsed" true
                  (stats.Finitary.leg_atoms_after < before);
                Alcotest.(check bool) "bounded vocabulary" true
                  (stats.Finitary.leg_terms_after <= (2 * stats.Finitary.bank_size) + 4);
                Alcotest.(check int) "same body length" (Caterpillar.length cat)
                  (Caterpillar.length cat')));
    Alcotest.test_case "finitarization is the identity on leg-free caterpillars" `Quick
      (fun () ->
        with_certificate successor (fun cert ->
            let cat = cert.Sticky_decider.prefix in
            match Finitary.finitarize_checked successor cat with
            | Error e -> Alcotest.failf "failed: %s" e
            | Ok (_, stats) ->
                Alcotest.(check int) "no legs before" 0 stats.Finitary.leg_atoms_before;
                Alcotest.(check int) "no legs after" 0 stats.Finitary.leg_atoms_after));
    Alcotest.test_case "sticky-with-legs scenario diverges with legs in the certificate"
      `Quick (fun () ->
        with_certificate legs_set (fun cert ->
            Alcotest.(check bool) "has legs" true
              (not (Chase_core.Instance.is_empty (Caterpillar.legs cert.Sticky_decider.prefix)));
            match Sticky_decider.check_certificate legs_set cert with
            | Ok () -> ()
            | Error e -> Alcotest.failf "certificate invalid: %s" e));
  ]

let suite = [ ("finitary-and-words", unit_tests) ]
