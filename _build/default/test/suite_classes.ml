(* Tests for the TGD class recognizers (paper §2 + weak acyclicity). *)

open Chase_classes

let parse = Chase_parser.Parser.parse_tgds

let sticky_pair =
  parse
    {|s1: t(X,Y,Z) -> exists W. s(Y,W).
      s2: r(X,Y), p(Y,Z) -> exists W. t(X,Y,W).|}

let non_sticky_pair =
  parse
    {|s1: t(X,Y,Z) -> exists W. s(X,W).
      s2: r(X,Y), p(Y,Z) -> exists W. t(X,Y,W).|}

let example_5_6 =
  parse
    {|s1: s(X,Y) -> t(X).
      s2: r(X,Y), t(Y) -> p(X,Y).
      s3: p(X,Y) -> exists Z. p(Y,Z).|}

let unit_tests =
  [
    Alcotest.test_case "guard is the left-most qualifying atom" `Quick (fun () ->
        let t = Chase_parser.Parser.parse_tgd "a(X), g(X,Y), h(X,Y) -> exists Z. b(X,Z)." in
        Alcotest.(check (option int)) "guard index" (Some 1) (Guardedness.guard_index t));
    Alcotest.test_case "unguarded TGD detected" `Quick (fun () ->
        let t = Chase_parser.Parser.parse_tgd "a(X,Y), b(Y,Z) -> c(X,Z)." in
        Alcotest.(check bool) "unguarded" false (Guardedness.is_guarded_tgd t));
    Alcotest.test_case "linear implies guarded" `Quick (fun () ->
        let t = Chase_parser.Parser.parse_tgd "a(X,Y) -> exists Z. a(Y,Z)." in
        Alcotest.(check bool) "linear" true (Guardedness.is_linear_tgd t);
        Alcotest.(check bool) "guarded" true (Guardedness.is_guarded_tgd t));
    Alcotest.test_case "paper §2: the sticky/non-sticky pair" `Quick (fun () ->
        Alcotest.(check bool) "first is sticky" true (Stickiness.is_sticky sticky_pair);
        Alcotest.(check bool) "second is not" false (Stickiness.is_sticky non_sticky_pair));
    Alcotest.test_case "non-sticky witness names the doubled variable" `Quick (fun () ->
        let m = Stickiness.marking non_sticky_pair in
        match Stickiness.violation m with
        | Some (_, v) -> Alcotest.(check string) "variable" "Y" v
        | None -> Alcotest.fail "expected a violation");
    Alcotest.test_case "Example 5.6 is guarded but not sticky" `Quick (fun () ->
        Alcotest.(check bool) "guarded" true (Guardedness.is_guarded example_5_6);
        Alcotest.(check bool) "not sticky" false (Stickiness.is_sticky example_5_6));
    Alcotest.test_case "marking: base case marks dropped variables" `Quick (fun () ->
        let tgds = parse "r(X,Y) -> s(X)." in
        let m = Stickiness.marking tgds in
        Alcotest.(check bool) "Y marked" true (Stickiness.is_marked m ~tgd_index:0 ~var:"Y");
        Alcotest.(check bool) "X unmarked" false (Stickiness.is_marked m ~tgd_index:0 ~var:"X"));
    Alcotest.test_case "marking propagates head-to-body" `Quick (fun () ->
        (* X flows into position 0 of c, which s2 drops: X becomes marked *)
        let tgds = parse "s1: a(X) -> exists Y. c(X,Y).\ns2: c(X,Y) -> a(Y)." in
        let m = Stickiness.marking tgds in
        Alcotest.(check bool) "X of s1 marked" true
          (Stickiness.is_marked m ~tgd_index:0 ~var:"X"));
    Alcotest.test_case "immortal positions: unmarked frontier variables" `Quick (fun () ->
        (* In r(X,Y) → ∃Z r(X,Z): X is never dropped downstream, so the
           head position 0 is immortal; position 1 is existential. *)
        let tgds = parse "r(X,Y) -> exists Z. r(X,Z)." in
        let m = Stickiness.marking tgds in
        let imm = Stickiness.immortal_positions m 0 in
        Alcotest.(check bool) "pos 0 immortal" true imm.(0);
        Alcotest.(check bool) "pos 1 mortal" false imm.(1));
    Alcotest.test_case "weak acyclicity: data exchange set is WA" `Quick (fun () ->
        let tgds =
          parse
            "s1: emp(X) -> exists Y. reports(X,Y).\ns2: reports(X,Y) -> mgr(Y).\n\
             s3: mgr(Y) -> person(Y)."
        in
        Alcotest.(check bool) "wa" true (Weak_acyclicity.is_weakly_acyclic tgds));
    Alcotest.test_case "weak acyclicity: successor rule is not WA" `Quick (fun () ->
        let tgds = parse "r(X,Y) -> exists Z. r(Y,Z)." in
        Alcotest.(check bool) "not wa" false (Weak_acyclicity.is_weakly_acyclic tgds);
        match Weak_acyclicity.violation tgds with
        | Some ((p1, _), (p2, _)) ->
            Alcotest.(check string) "from r" "r" p1;
            Alcotest.(check string) "to r" "r" p2
        | None -> Alcotest.fail "expected a special edge in a cycle");
    Alcotest.test_case "WA certifies the restricted chase, not the oblivious one" `Quick
      (fun () ->
        (* r(X,Y) → ∃Z r(X,Z) is weakly acyclic (Y contributes no special
           edge into a cycle): the restricted chase terminates on every
           database, even though the oblivious chase diverges.  WA speaks
           about the restricted chase. *)
        let tgds = parse "r(X,Y) -> exists Z. r(X,Z)." in
        Alcotest.(check bool) "wa" true (Weak_acyclicity.is_weakly_acyclic tgds));
    Alcotest.test_case "WA is incomplete for CTres∀∀" `Quick (fun () ->
        (* s1's head is satisfied by s1's own body atom, so the restricted
           chase never fires it — terminating for every database — yet the
           symmetry rule closes a cycle through s1's special edge, so the
           set is not weakly acyclic. *)
        let tgds = parse "s1: r(X,Y) -> exists Z. r(X,Z).\ns2: r(X,Y) -> r(Y,X)." in
        Alcotest.(check bool) "not wa" false (Weak_acyclicity.is_weakly_acyclic tgds));
    Alcotest.test_case "joint acyclicity strictly extends weak acyclicity" `Quick (fun () ->
        (* the invented null can never reach bb, so the A/R/B loop is JA
           although the position graph has a special cycle *)
        let tgds = parse "a1: aa(X) -> exists V. rr(X,V).\na2: rr(X,Y), bb(Y) -> aa(Y)." in
        Alcotest.(check bool) "not WA" false (Weak_acyclicity.is_weakly_acyclic tgds);
        Alcotest.(check bool) "JA" true (Joint_acyclicity.is_jointly_acyclic tgds));
    Alcotest.test_case "joint acyclicity rejects the successor rule" `Quick (fun () ->
        let tgds = parse "r(X,Y) -> exists Z. r(Y,Z)." in
        Alcotest.(check bool) "not JA" false (Joint_acyclicity.is_jointly_acyclic tgds);
        match Joint_acyclicity.violation tgds with
        | Some ev -> Alcotest.(check string) "the Z variable" "Z" ev.Joint_acyclicity.var
        | None -> Alcotest.fail "expected a violation witness");
    Alcotest.test_case "JA never certifies a diverging gallery set" `Quick (fun () ->
        List.iter
          (fun (s : Chase_workload.Scenarios.t) ->
            if s.Chase_workload.Scenarios.truth = Chase_workload.Scenarios.Diverging then
              Alcotest.(check bool)
                (s.Chase_workload.Scenarios.name ^ " not JA")
                false
                (Joint_acyclicity.is_jointly_acyclic (Chase_workload.Scenarios.tgds s)))
          Chase_workload.Scenarios.all);
    Alcotest.test_case "classification report" `Quick (fun () ->
        let r = Classification.classify example_5_6 in
        Alcotest.(check bool) "single head" true r.Classification.single_head;
        Alcotest.(check bool) "guarded" true r.Classification.guarded;
        Alcotest.(check bool) "not sticky" false r.Classification.sticky;
        Alcotest.(check bool) "not wa" false r.Classification.weakly_acyclic;
        Alcotest.(check bool) "not linear" false r.Classification.linear;
        Alcotest.(check int) "arity" 2 r.Classification.max_arity);
    Alcotest.test_case "multi-head classification" `Quick (fun () ->
        let tgds = parse "r(X,Y,Y) -> exists Z. r(X,Z,Y), r(Z,Y,Y)." in
        let r = Classification.classify tgds in
        Alcotest.(check bool) "multi-head" false r.Classification.single_head;
        Alcotest.(check bool) "sticky is false for multi-head" false r.Classification.sticky);
  ]

let property_tests =
  let cfg seed = { Chase_workload.Tgd_gen.default with Chase_workload.Tgd_gen.seed } in
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"generated guarded sets are guarded" ~count:100 (Gen.int_bound 10_000)
         (fun seed -> Guardedness.is_guarded (Chase_workload.Tgd_gen.guarded_set (cfg seed))));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"generated sticky sets are sticky" ~count:100 (Gen.int_bound 10_000)
         (fun seed -> Stickiness.is_sticky (Chase_workload.Tgd_gen.sticky_set (cfg seed))));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"generated linear sets are linear (hence guarded)" ~count:100
         (Gen.int_bound 10_000) (fun seed ->
           let ts = Chase_workload.Tgd_gen.linear_set (cfg seed) in
           Guardedness.is_linear ts && Guardedness.is_guarded ts));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"generated weakly acyclic sets are weakly acyclic" ~count:100
         (Gen.int_bound 10_000) (fun seed ->
           Weak_acyclicity.is_weakly_acyclic (Chase_workload.Tgd_gen.weakly_acyclic_set (cfg seed))));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"weak acyclicity implies joint acyclicity" ~count:150
         (Gen.int_bound 100_000) (fun seed ->
           let tgds =
             match seed mod 3 with
             | 0 -> Chase_workload.Tgd_gen.weakly_acyclic_set (cfg seed)
             | 1 -> Chase_workload.Tgd_gen.guarded_set (cfg seed)
             | _ -> Chase_workload.Tgd_gen.linear_set (cfg seed)
           in
           (not (Weak_acyclicity.is_weakly_acyclic tgds))
           || Joint_acyclicity.is_jointly_acyclic tgds));
  ]

let suite = [ ("classes", unit_tests @ property_tests) ]
