(* Breadth tests over API surfaces the focused suites do not hit, all via
   the Chase umbrella module (which doubles as its integration test). *)

let program src =
  let p = Chase.Parser.parse_program src in
  (Chase.Program.tgds p, Chase.Program.database p)

let unit_tests =
  [
    Alcotest.test_case "umbrella module wires every layer" `Quick (fun () ->
        let tgds, db = program "r(X,Y) -> exists Z. r(X,Z).\nr(a,b)." in
        let final = Chase.Restricted.run_exn tgds db in
        Alcotest.(check bool) "model" true (Chase.Model_check.is_model ~database:db ~tgds final);
        let report = Chase.Decider.decide tgds in
        Alcotest.(check bool) "terminating" true
          (report.Chase.Decider.answer = Chase.Decider.Terminating));
    Alcotest.test_case "null generators count and stay distinct" `Quick (fun () ->
        let g = Chase.Term.Gen.create ~prefix:"t" () in
        let a = Chase.Term.Gen.fresh g and b = Chase.Term.Gen.fresh g in
        Alcotest.(check bool) "distinct" false (Chase.Term.equal a b);
        Alcotest.(check int) "count" 2 (Chase.Term.Gen.count g));
    Alcotest.test_case "schema positions enumerate every argument" `Quick (fun () ->
        let s = Chase.Schema.add "r" 2 (Chase.Schema.add "p" 1 Chase.Schema.empty) in
        Alcotest.(check int) "three positions" 3 (List.length (Chase.Schema.positions s));
        Alcotest.(check int) "max arity" 2 (Chase.Schema.max_arity s));
    Alcotest.test_case "substitution restrict and extends" `Quick (fun () ->
        let x = Chase.Term.Var "X" and y = Chase.Term.Var "Y" in
        let s =
          Chase.Substitution.bind x (Chase.Term.Const "a")
            (Chase.Substitution.bind y (Chase.Term.Const "b") Chase.Substitution.empty)
        in
        let r = Chase.Substitution.restrict (Chase.Term.Set.singleton x) s in
        Alcotest.(check int) "restricted to one" 1 (Chase.Substitution.cardinal r);
        Alcotest.(check bool) "s extends r" true (Chase.Substitution.extends ~base:r s);
        Alcotest.(check bool) "r does not extend s" false
          (Chase.Substitution.extends ~base:s r));
    Alcotest.test_case "retracts_away spots redundant atoms" `Quick (fun () ->
        let c v = Chase.Term.Const v and n v = Chase.Term.Null v in
        let i =
          Chase.Instance.of_list
            [ Chase.Atom.make "r" [ c "a"; c "b" ]; Chase.Atom.make "r" [ c "a"; n "x" ] ]
        in
        Alcotest.(check bool) "null atom is redundant" true
          (Chase.Homomorphism.retracts_away i (Chase.Atom.make "r" [ c "a"; n "x" ]));
        Alcotest.(check bool) "fact is not" false
          (Chase.Homomorphism.retracts_away i (Chase.Atom.make "r" [ c "a"; c "b" ])));
    Alcotest.test_case "oblivious terminates_within and derivation snapshots" `Quick
      (fun () ->
        let tgds, db = program "p(X,Y) -> q(Y).\np(a,b)." in
        Alcotest.(check bool) "saturates" true
          (Chase.Oblivious.terminates_within ~max_steps:10 tgds db);
        let d = Chase.Restricted.run tgds db in
        Alcotest.(check int) "I0 is the database" (Chase.Instance.cardinal db)
          (Chase.Instance.cardinal (Chase.Derivation.instance_at d 0));
        Alcotest.(check int) "one step" 1 (Chase.Derivation.length d);
        Alcotest.(check int) "I1 grew" (1 + Chase.Instance.cardinal db)
          (Chase.Instance.cardinal (Chase.Derivation.instance_at d 1)));
    Alcotest.test_case "real oblivious children and per-pred node index" `Quick (fun () ->
        let tgds, db = program "p(X) -> q(X).\nq(X) -> s(X).\np(a)." in
        let g = Chase.Real_oblivious.build tgds db in
        Alcotest.(check int) "three nodes" 3 (Chase.Real_oblivious.size g);
        Alcotest.(check bool) "complete" true (Chase.Real_oblivious.complete g);
        Alcotest.(check (list int)) "root's children" [ 1 ] (Chase.Real_oblivious.children g 0);
        Alcotest.(check int) "q node" 1
          (List.length (Chase.Real_oblivious.nodes_with_pred g "q")));
    Alcotest.test_case "universal-model check against alternatives" `Quick (fun () ->
        let tgds, db = program "emp(X) -> exists Y. mgr(X,Y).\nemp(a)." in
        let chased = Chase.Restricted.run_exn tgds db in
        let bigger =
          Chase.Instance.add
            (Chase.Atom.make "mgr" [ Chase.Term.Const "a"; Chase.Term.Const "boss" ])
            db
        in
        Alcotest.(check bool) "universal among models" true
          (Chase.Model_check.is_universal_among ~database:db ~tgds chased ~others:[ bigger ]));
    Alcotest.test_case "caterpillar to_instance covers legs and body" `Quick (fun () ->
        let tgds = Chase.Parser.parse_tgds "s1: p(X,Y), u(W) -> exists Z. p(Y,Z)." in
        match Chase.Sticky_decider.decide tgds with
        | Chase.Sticky_decider.Non_terminating cert ->
            let cat = cert.Chase.Sticky_decider.prefix in
            let all = Chase.Caterpillar.to_instance cat in
            Alcotest.(check bool) "start present" true
              (Chase.Instance.mem (Chase.Caterpillar.start cat) all);
            Chase.Instance.iter
              (fun leg ->
                Alcotest.(check bool) "leg present" true (Chase.Instance.mem leg all))
              (Chase.Caterpillar.legs cat)
        | _ -> Alcotest.fail "expected divergence");
    Alcotest.test_case "MSOL pretty-printer renders a small formula" `Quick (fun () ->
        let f =
          Chase.Msol.Forall1
            ("x", Chase.Msol.Implies (Chase.Msol.Edge ("x", "x"), Chase.Msol.False))
        in
        let s = Format.asprintf "%a" Chase.Msol.pp f in
        Alcotest.(check bool) "mentions the edge" true
          (String.length s > 0 && String.contains s 'x'));
    Alcotest.test_case "printer quotes odd constants" `Quick (fun () ->
        Alcotest.(check bool) "bare" true (Chase.Printer.is_bare_const "abc_1");
        Alcotest.(check bool) "not bare" false (Chase.Printer.is_bare_const "Odd Constant");
        let fact = Chase.Atom.make "r" [ Chase.Term.Const "Odd Constant" ] in
        let printed = Chase.Printer.print_fact fact in
        let reparsed = Chase.Parser.parse_database printed in
        Alcotest.(check bool) "round-trips" true (Chase.Instance.mem fact reparsed));
    Alcotest.test_case "join tree fold and size agree" `Quick (fun () ->
        let db = Chase.Db_gen.chain ~pred:"e" ~length:6 in
        let jt = Option.get (Chase.Join_tree.gyo db) in
        Alcotest.(check int) "size = atoms" (Chase.Instance.cardinal db)
          (Chase.Join_tree.size jt);
        Alcotest.(check int) "fold counts too" (Chase.Instance.cardinal db)
          (List.length (Chase.Join_tree.atoms jt)));
    Alcotest.test_case "DOT exports name every node" `Quick (fun () ->
        let contains haystack needle =
          let nl = String.length needle and hl = String.length haystack in
          let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
          go 0
        in
        let tgds, db = program "p(X) -> q(X).\nq(X) -> exists Y. e(X,Y).\np(a)." in
        let g = Chase.Real_oblivious.build tgds db in
        let dot = Chase.Dot.real_oblivious g in
        Alcotest.(check bool) "digraph" true (String.length dot > 0);
        Array.iter
          (fun n ->
            let needle = Printf.sprintf "n%d " n.Chase.Real_oblivious.id in
            Alcotest.(check bool) ("mentions " ^ needle) true (contains dot needle))
          (Chase.Real_oblivious.nodes g);
        (* join tree export *)
        let jt = Option.get (Chase.Join_tree.gyo (Chase.Db_gen.chain ~pred:"e" ~length:3)) in
        Alcotest.(check bool) "join tree graph" true
          (contains (Chase.Dot.join_tree jt) "graph jointree"));
    Alcotest.test_case "tgd satisfied_by_all and rename_apart" `Quick (fun () ->
        let tgds =
          Chase.Parser.parse_tgds "a(X) -> b(X).\nb(X) -> c(X)."
        in
        let renamed = Chase.Tgd.rename_apart tgds in
        let vars t = Chase.Term.Set.elements (Chase.Tgd.all_vars t) in
        (match renamed with
        | [ t1; t2 ] ->
            List.iter
              (fun v1 ->
                List.iter
                  (fun v2 ->
                    Alcotest.(check bool) "disjoint vars" false (Chase.Term.equal v1 v2))
                  (vars t2))
              (vars t1)
        | _ -> Alcotest.fail "expected two TGDs");
        let i =
          Chase.Instance.of_list
            [
              Chase.Atom.make "a" [ Chase.Term.Const "k" ];
              Chase.Atom.make "b" [ Chase.Term.Const "k" ];
              Chase.Atom.make "c" [ Chase.Term.Const "k" ];
            ]
        in
        Alcotest.(check bool) "satisfied" true (Chase.Tgd.satisfied_by_all i tgds));
  ]

let suite = [ ("api", unit_tests) ]
