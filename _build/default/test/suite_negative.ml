(* Negative tests: the validators must actually reject corrupted
   certificates — a validator that accepts everything would silently
   void half the suite's positive evidence. *)

open Chase_core
open Chase_engine
open Chase_termination

let program src =
  let p = Chase_parser.Parser.parse_program src in
  (Chase_parser.Program.tgds p, Chase_parser.Program.database p)

let example_5_6 =
  "s1: s(X,Y) -> t(X).\ns2: r(X,Y), t(Y) -> p(X,Y).\ns3: p(X,Y) -> exists Z. p(Y,Z).\n\
   r(a,b). s(b,c)."

(* A valid encoded abstract join tree to corrupt. *)
let valid_tree () =
  let tgds, db = program example_5_6 in
  let d = Restricted.run ~naming:`Canonical ~max_steps:5 tgds db in
  match Abstract_join_tree.encode tgds ~database:db d with
  | Ok t -> (tgds, t)
  | Error e -> Alcotest.failf "setup failed: %s" e

let rec corrupt_first_rule_pred (n : Abstract_join_tree.node) =
  match n.Abstract_join_tree.org with
  | Abstract_join_tree.Rule _ -> { n with Abstract_join_tree.pr = "zz_wrong" }
  | Abstract_join_tree.F ->
      {
        n with
        Abstract_join_tree.children =
          (match n.Abstract_join_tree.children with
          | c :: rest -> corrupt_first_rule_pred c :: rest
          | [] -> []);
      }

let rec corrupt_first_rule_to_f (n : Abstract_join_tree.node) =
  match n.Abstract_join_tree.org with
  | Abstract_join_tree.Rule _ -> (
      (* make a generated node an F node with an F child's parent being
         generated: violates Def 5.8 (2) when it has F below — instead,
         just relabel a generated child under a generated parent as F *)
      match n.Abstract_join_tree.children with
      | c :: rest -> { n with Abstract_join_tree.children = ({ c with Abstract_join_tree.org = Abstract_join_tree.F } :: rest) }
      | [] -> n)
  | Abstract_join_tree.F ->
      {
        n with
        Abstract_join_tree.children =
          List.map corrupt_first_rule_to_f n.Abstract_join_tree.children;
      }

let abstract_tests =
  [
    Alcotest.test_case "validate rejects wrong head predicates" `Quick (fun () ->
        let tgds, t = valid_tree () in
        let t' = corrupt_first_rule_pred t in
        match Abstract_join_tree.validate tgds t' with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "corrupted tree accepted");
    Alcotest.test_case "validate rejects F nodes below generated nodes" `Quick (fun () ->
        let tgds, t = valid_tree () in
        let t' = corrupt_first_rule_to_f t in
        if t' = t then () (* nothing to corrupt in this shape *)
        else
          match Abstract_join_tree.validate tgds t' with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "corrupted tree accepted");
  ]

(* A valid caterpillar to corrupt. *)
let valid_cat () =
  let tgds = Chase_parser.Parser.parse_tgds "r(X,Y) -> exists Z. r(Y,Z)." in
  match Sticky_decider.decide tgds with
  | Sticky_decider.Non_terminating cert -> (tgds, cert.Sticky_decider.prefix)
  | _ -> Alcotest.fail "setup failed"

let caterpillar_tests =
  [
    Alcotest.test_case "validate_proto rejects stale existential witnesses" `Quick (fun () ->
        let tgds, cat = valid_cat () in
        (* duplicate an earlier null at a fresh position *)
        let steps = Caterpillar.steps cat in
        let corrupted =
          match steps with
          | s1 :: s2 :: rest ->
              let stolen = Atom.arg s1.Caterpillar.atom 1 in
              let atom' =
                Atom.make_a
                  (Atom.pred s2.Caterpillar.atom)
                  [| Atom.arg s2.Caterpillar.atom 0; stolen |]
              in
              { cat with Caterpillar.steps = s1 :: { s2 with Caterpillar.atom = atom' } :: rest }
          | _ -> Alcotest.fail "setup: too short"
        in
        match Caterpillar.validate_proto tgds corrupted with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "corrupted caterpillar accepted");
    Alcotest.test_case "validate_stops rejects duplicated body atoms" `Quick (fun () ->
        let tgds, cat = valid_cat () in
        ignore tgds;
        (* copy the start atom over a later body atom: copies stop each other *)
        let steps = Caterpillar.steps cat in
        let corrupted =
          match steps with
          | s1 :: rest ->
              { cat with Caterpillar.steps = { s1 with Caterpillar.atom = Caterpillar.start cat } :: rest }
          | _ -> Alcotest.fail "setup: too short"
        in
        match Caterpillar.validate_stops corrupted with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "duplicate body atom accepted");
    Alcotest.test_case "validate_connected rejects dropped relay annotations" `Quick
      (fun () ->
        let tgds, cat = valid_cat () in
        ignore tgds;
        (* claim a pass-on at a position carrying an inconsistent pair *)
        let steps = Caterpillar.steps cat in
        let corrupted =
          match steps with
          | s1 :: rest -> { cat with Caterpillar.steps = { s1 with Caterpillar.pass_on = [ 0; 1 ] } :: rest }
          | _ -> Alcotest.fail "setup: too short"
        in
        match Caterpillar.validate_connected corrupted with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "inconsistent pass-on accepted");
    Alcotest.test_case "derivation validation rejects inactive steps" `Quick (fun () ->
        let tgds, db = program "r(X,Y) -> exists Z. r(X,Z).\nr(a,b)." in
        (* manually force the (inactive) trigger through *)
        let trigger =
          List.of_seq (Trigger.all tgds db) |> List.hd
        in
        let after, produced = Trigger.apply db trigger in
        let step =
          {
            Derivation.index = 0;
            trigger;
            produced;
            frontier = Trigger.frontier_terms trigger;
            after = Lazy.from_val after;
          }
        in
        let d = Derivation.make ~database:db ~steps:[ step ] ~status:Derivation.Out_of_budget in
        Alcotest.(check bool) "rejected" false (Derivation.validate tgds d));
    Alcotest.test_case "certificate checking rejects foreign TGD sets" `Quick (fun () ->
        let tgds, cat = valid_cat () in
        ignore tgds;
        let other = Chase_parser.Parser.parse_tgds "q(X) -> exists Y. q(Y)." in
        match Caterpillar.validate_proto other cat with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "foreign TGD set accepted");
  ]

let decider_candidate_tests =
  [
    Alcotest.test_case "frozen bodies cover every variable partition" `Quick (fun () ->
        let tgd = Chase_parser.Parser.parse_tgd "g(X,Y), t(Y) -> exists Z. p(X,Z)." in
        let bodies = Guarded_decider.frozen_bodies_all_partitions tgd in
        (* two body variables: Bell(2) = 2 partitions *)
        Alcotest.(check int) "two candidates" 2 (List.length bodies);
        List.iter
          (fun db ->
            Alcotest.(check bool) "matches the body" true
              (Chase_core.Homomorphism.exists (Tgd.body tgd) db))
          bodies);
    Alcotest.test_case "candidate family is duplicate-free" `Quick (fun () ->
        let tgds =
          Chase_parser.Parser.parse_tgds
            "s1: s(X,Y) -> t(X).\ns2: r(X,Y), t(Y) -> p(X,Y).\ns3: p(X,Y) -> exists Z. p(Y,Z)."
        in
        let cands = Guarded_decider.candidate_databases tgds in
        let rec pairwise = function
          | [] -> true
          | d :: rest -> List.for_all (fun d' -> not (Instance.equal d d')) rest && pairwise rest
        in
        Alcotest.(check bool) "no duplicates" true (pairwise cands));
  ]

let suite =
  [
    ("negative-abstract-join-tree", abstract_tests);
    ("negative-caterpillar", caterpillar_tests);
    ("decider-candidates", decider_candidate_tests);
  ]
