(* Tests for the Fairness Theorem machinery (paper §4, App. B). *)

open Chase_engine
open Chase_termination

let program src =
  let p = Chase_parser.Parser.parse_program src in
  (Chase_parser.Program.tgds p, Chase_parser.Program.database p)

let example_b1 =
  "m1: r(X,Y,Y) -> exists Z. r(X,Z,Y), r(Z,Y,Y).\nm2: r(X,Y,Z) -> r(Z,Z,Z).\nr(a,b,b)."

let unit_tests =
  [
    Alcotest.test_case "Lemma 4.4 bound is positive and finite" `Quick (fun () ->
        let tgds, _ = program "r(X,Y) -> exists Z. r(Y,Z)." in
        Alcotest.(check bool) "bound > 0" true (Fairness.equality_type_bound tgds > 0));
    Alcotest.test_case "Lemma 4.4: no mutual stopping within a derivation" `Quick (fun () ->
        let tgds, db = program "r(X,Y) -> exists Z. r(Y,Z).\nr(a,b)." in
        let d = Restricted.run ~max_steps:30 tgds db in
        Alcotest.(check bool) "no mutual stops" true (Fairness.lemma_4_4_witness d = None));
    Alcotest.test_case "fairness theorem demo: FIFO diverges whenever LIFO does (single-head)"
      `Quick (fun () ->
        let check src =
          let tgds, db = program src in
          let status s =
            Derivation.status (Restricted.run ~strategy:s ~max_steps:150 tgds db)
          in
          Alcotest.(check bool)
            (Printf.sprintf "agree on %s" src)
            true
            (status Restricted.Fifo = status Restricted.Lifo)
        in
        check "r(X,Y) -> exists Z. r(Y,Z).\nr(a,b).";
        check "s1: q(X) -> exists Y. r(X,Y).\ns2: r(X,Y) -> q(Y).\nq(a).";
        check "r(X,Y) -> exists Z. r(X,Z).\nr(a,b).");
    Alcotest.test_case "Example B.1: unfair divergence exists but fair runs terminate" `Quick
      (fun () ->
        let tgds, db = program example_b1 in
        (* a fair (FIFO) run terminates *)
        let fifo = Restricted.run ~strategy:Restricted.Fifo ~max_steps:500 tgds db in
        Alcotest.(check bool) "FIFO terminates" true (Derivation.terminated fifo);
        (* yet some derivation is infinite: exhaustive search finds one *)
        match Derivation_search.divergence_evidence ~max_depth:40 ~max_states:5_000 tgds db with
        | Some d ->
            Alcotest.(check bool) "evidence is a valid derivation" true
              (Derivation.validate tgds d)
        | None -> Alcotest.fail "expected an (unfair) infinite derivation");
    Alcotest.test_case "fairify inserts the starved trigger (§4 construction)" `Quick
      (fun () ->
        let tgds, db =
          program "s1: q(X) -> exists Y. r(X,Y).\ns2: r(X,Y) -> q(Y).\nq(a). q(b)."
        in
        (* LIFO starves the q(b) branch for a while; take a short prefix *)
        let d =
          Restricted.run ~strategy:Restricted.Lifo ~naming:`Canonical ~max_steps:10 tgds db
        in
        Alcotest.(check bool) "prefix is unfinished" true
          (Derivation.status d = Derivation.Out_of_budget);
        match Fairness.persistent_active_triggers tgds d with
        | [] -> Alcotest.fail "expected a persistently active trigger"
        | _ :: _ -> (
            match Fairness.fairify ~rounds:3 tgds d with
            | Error e -> Alcotest.failf "fairify failed: %s" e
            | Ok d' ->
                Alcotest.(check bool) "still a valid derivation" true
                  (Derivation.validate tgds d');
                Alcotest.(check bool) "longer than the input" true
                  (Derivation.length d' > Derivation.length d)));
    Alcotest.test_case "single-head requirement is enforced" `Quick (fun () ->
        let tgds, db = program example_b1 in
        let d = Restricted.run ~max_steps:5 tgds db in
        Alcotest.check_raises "invalid" (Invalid_argument "Fairness: single-head TGDs required")
          (fun () -> ignore (Fairness.fairify tgds d)));
  ]

let suite = [ ("fairness", unit_tests) ]
