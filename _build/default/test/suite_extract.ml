(* Tests for the caterpillar extraction of §6.2 (Lemmas 6.9–6.11): from a
   diverging derivation prefix of a sticky set to a validated free
   connected caterpillar prefix. *)

open Chase_engine
open Chase_termination

let program src =
  let p = Chase_parser.Parser.parse_program src in
  (Chase_parser.Program.tgds p, Chase_parser.Program.database p)

let extract_ok name src () =
  let tgds, db = program src in
  let d = Restricted.run ~strategy:Restricted.Lifo ~max_steps:40 tgds db in
  Alcotest.(check bool) (name ^ ": prefix diverging") true
    (Derivation.status d = Derivation.Out_of_budget);
  match Caterpillar_extract.extract tgds d with
  | Ok cat ->
      Alcotest.(check bool) (name ^ ": nonempty") true (Caterpillar.length cat > 0);
      (* validation happens inside extract; re-run it for belt and braces *)
      (match Caterpillar.validate tgds cat with
      | Ok () -> ()
      | Error e -> Alcotest.failf "revalidation failed: %s" e)
  | Error e -> Alcotest.failf "extraction failed: %s" e

let unit_tests =
  [
    Alcotest.test_case "linear successor" `Quick
      (extract_ok "succ" "r(X,Y) -> exists Z. r(Y,Z).\nr(a,b).");
    Alcotest.test_case "two-rule relay" `Quick
      (extract_ok "relay" "s1: p(X) -> exists Y. q(X,Y).\ns2: q(X,Y) -> p(Y).\np(a).");
    Alcotest.test_case "swap rule" `Quick
      (extract_ok "swap" "r(X,Y) -> exists Z. r(Z,X).\nr(a,b).");
    Alcotest.test_case "projection chain" `Quick
      (extract_ok "proj" "s1: q(X) -> exists Y. r(X,Y).\ns2: r(X,Y) -> q(Y).\nq(a).");
    Alcotest.test_case "binary tree (branching derivation, path-like extraction)" `Quick
      (extract_ok "tree"
         "s1: n(X) -> exists Y. l(X,Y).\ns2: n(X) -> exists Y. r(X,Y).\n\
          s3: l(X,Y) -> n(Y).\ns4: r(X,Y) -> n(Y).\nn(a).");
    Alcotest.test_case "non-sticky input is rejected" `Quick (fun () ->
        let tgds, db =
          program "s1: s(X,Y) -> t(X).\ns2: r(X,Y), t(Y) -> p(X,Y).\n\
                   s3: p(X,Y) -> exists Z. p(Y,Z).\nr(a,b). s(b,c)."
        in
        let d = Restricted.run ~max_steps:20 tgds db in
        Alcotest.check_raises "invalid"
          (Invalid_argument "Caterpillar_extract: sticky TGDs required") (fun () ->
            ignore (Caterpillar_extract.extract tgds d)));
    Alcotest.test_case "terminating derivation has no long relay chain" `Quick (fun () ->
        let tgds, db = program "r(X,Y) -> exists Z. r(X,Z).\nr(a,b)." in
        let d = Restricted.run ~max_steps:40 tgds db in
        match Caterpillar_extract.extract tgds d with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected failure on a terminating prefix");
    Alcotest.test_case "extracted pass-on points carry fresh relay terms" `Quick (fun () ->
        let tgds, db = program "r(X,Y) -> exists Z. r(Y,Z).\nr(a,b)." in
        let d = Restricted.run ~max_steps:30 tgds db in
        match Caterpillar_extract.extract tgds d with
        | Error e -> Alcotest.failf "extraction failed: %s" e
        | Ok cat ->
            let pass_ons =
              List.filter (fun s -> s.Caterpillar.pass_on <> []) (Caterpillar.steps cat)
            in
            Alcotest.(check bool) "several pass-ons" true (List.length pass_ons >= 2));
  ]

(* Property: on random diverging sticky sets, extraction from a diverging
   prefix either succeeds with a valid caterpillar or fails explicitly —
   it never produces an invalid object (validate is called inside, so the
   property is that extraction is total and sound). *)
let property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"extraction is sound on random sticky sets" ~count:40
       (QCheck2.Gen.int_bound 100_000) (fun seed ->
         let tgds =
           Chase_workload.Tgd_gen.sticky_set
             { Chase_workload.Tgd_gen.default with Chase_workload.Tgd_gen.seed; tgds = 3 }
         in
         let db =
           Chase_workload.Db_gen.random
             ~schema:(Chase_core.Schema.of_tgds tgds)
             ~atoms:4 ~domain:3 ~seed
         in
         let d = Restricted.run ~strategy:Restricted.Lifo ~max_steps:30 tgds db in
         match Caterpillar_extract.extract tgds d with
         | Ok cat -> Caterpillar.validate tgds cat = Ok ()
         | Error _ -> true))

let suite = [ ("caterpillar-extract", unit_tests @ [ property ]) ]
