(* Direct tests for the Büchi substrate: hand-built automata with known
   languages, lasso validation, budgets. *)

open Chase_automata

(* States and letters are ints; transitions given as a function. *)
let make ~initial ~alphabet ~next ~accepting =
  Buchi.make ~initial ~alphabet ~next ~accepting ~state_key:string_of_int

let unit_tests =
  [
    Alcotest.test_case "empty language: no accepting cycle" `Quick (fun () ->
        (* 0 -a-> 1 -a-> 2 (sink, non-accepting self loop) *)
        let a =
          make ~initial:0 ~alphabet:[ 'a' ]
            ~next:(fun s _ -> match s with 0 -> Some 1 | 1 -> Some 2 | _ -> Some 2)
            ~accepting:(fun s -> s = 1)
        in
        Alcotest.(check bool) "empty" true (Buchi.is_empty a));
    Alcotest.test_case "accepting self-loop is non-empty with a unit cycle" `Quick (fun () ->
        let a =
          make ~initial:0 ~alphabet:[ 'a'; 'b' ]
            ~next:(fun s c ->
              match (s, c) with 0, 'a' -> Some 1 | 1, 'b' -> Some 1 | _ -> None)
            ~accepting:(fun s -> s = 1)
        in
        match Buchi.emptiness a with
        | Buchi.Nonempty lasso ->
            Alcotest.(check (list char)) "prefix" [ 'a' ] lasso.Buchi.prefix;
            Alcotest.(check (list char)) "cycle" [ 'b' ] lasso.Buchi.cycle;
            Alcotest.(check bool) "validates" true (Buchi.accepts_lasso a lasso)
        | _ -> Alcotest.fail "expected non-empty");
    Alcotest.test_case "accepting state outside any cycle does not count" `Quick (fun () ->
        (* 0 -a-> 1 (accepting) -a-> 0 : cycle through accepting — nonempty;
           variant: 1 -a-> 2 sink: empty *)
        let cyc =
          make ~initial:0 ~alphabet:[ 'a' ]
            ~next:(fun s _ -> match s with 0 -> Some 1 | 1 -> Some 0 | _ -> None)
            ~accepting:(fun s -> s = 1)
        in
        Alcotest.(check bool) "cycle accepted" false (Buchi.is_empty cyc);
        let nocyc =
          make ~initial:0 ~alphabet:[ 'a' ]
            ~next:(fun s _ -> match s with 0 -> Some 1 | 1 -> Some 2 | _ -> None)
            ~accepting:(fun s -> s = 1)
        in
        Alcotest.(check bool) "no cycle" true (Buchi.is_empty nocyc));
    Alcotest.test_case "lasso validation rejects wrong cycles" `Quick (fun () ->
        let a =
          make ~initial:0 ~alphabet:[ 'a'; 'b' ]
            ~next:(fun s c ->
              match (s, c) with 0, 'a' -> Some 1 | 1, 'b' -> Some 1 | _ -> None)
            ~accepting:(fun s -> s = 1)
        in
        Alcotest.(check bool) "empty cycle rejected" false
          (Buchi.accepts_lasso a { Buchi.prefix = [ 'a' ]; cycle = [] });
        Alcotest.(check bool) "non-returning cycle rejected" false
          (Buchi.accepts_lasso a { Buchi.prefix = []; cycle = [ 'a' ] });
        Alcotest.(check bool) "rejecting letter rejected" false
          (Buchi.accepts_lasso a { Buchi.prefix = [ 'a' ]; cycle = [ 'a' ] }));
    Alcotest.test_case "budget exceeded on an unbounded state space" `Quick (fun () ->
        let a =
          make ~initial:0 ~alphabet:[ 'a' ] ~next:(fun s _ -> Some (s + 1)) ~accepting:(fun _ -> false)
        in
        match Buchi.emptiness ~max_states:50 a with
        | Buchi.Budget_exceeded n -> Alcotest.(check bool) "counted" true (n >= 50)
        | _ -> Alcotest.fail "expected budget exhaustion");
    Alcotest.test_case "stats count reachable states and transitions" `Quick (fun () ->
        let a =
          make ~initial:0 ~alphabet:[ 'a'; 'b' ]
            ~next:(fun s c ->
              match (s, c) with
              | 0, 'a' -> Some 1
              | 0, 'b' -> Some 2
              | 1, 'a' -> Some 2
              | _ -> None)
            ~accepting:(fun _ -> false)
        in
        let st = Buchi.stats a in
        Alcotest.(check int) "states" 3 st.Buchi.states;
        Alcotest.(check int) "transitions" 3 st.Buchi.transitions);
    Alcotest.test_case "long chains do not overflow the stack" `Quick (fun () ->
        (* 100k-state chain into an accepting loop: exercises the
           iterative Tarjan *)
        let n = 100_000 in
        let a =
          make ~initial:0 ~alphabet:[ 'a' ]
            ~next:(fun s _ -> if s < n then Some (s + 1) else Some n)
            ~accepting:(fun s -> s = n)
        in
        match Buchi.emptiness ~max_states:(n + 10) a with
        | Buchi.Nonempty lasso ->
            Alcotest.(check int) "prefix length" n (List.length lasso.Buchi.prefix);
            Alcotest.(check bool) "validates" true (Buchi.accepts_lasso a lasso)
        | _ -> Alcotest.fail "expected non-empty");
  ]

let suite = [ ("buchi", unit_tests) ]
