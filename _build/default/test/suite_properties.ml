(* Cross-cutting property tests: engine laws, parser round-trips, memo-key
   invariance, GYO on shaped databases — the randomized glue between the
   per-module suites. *)

open Chase_core
open Chase_engine

let wa_cfg seed =
  { Chase_workload.Tgd_gen.default with Chase_workload.Tgd_gen.seed; tgds = 4 }

let random_db tgds seed =
  Chase_workload.Db_gen.random ~schema:(Schema.of_tgds tgds) ~atoms:5 ~domain:3 ~seed

let properties =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"printer/parser round-trip on generated TGD sets" ~count:150
         (Gen.int_bound 100_000) (fun seed ->
           let tgds =
             if seed mod 2 = 0 then Chase_workload.Tgd_gen.guarded_set (wa_cfg seed)
             else Chase_workload.Tgd_gen.linear_set (wa_cfg seed)
           in
           let printed =
             String.concat "\n" (List.map Chase_parser.Printer.print_tgd tgds)
           in
           let reparsed = Chase_parser.Parser.parse_tgds printed in
           List.length tgds = List.length reparsed
           && List.for_all2
                (fun a b -> String.equal (Tgd.to_string a) (Tgd.to_string b))
                tgds reparsed));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"chase results contain the database" ~count:100
         (Gen.int_bound 100_000) (fun seed ->
           let tgds = Chase_workload.Tgd_gen.weakly_acyclic_set (wa_cfg seed) in
           let db = random_db tgds seed in
           let d = Restricted.run ~max_steps:500 tgds db in
           Instance.subset db (Derivation.final d)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"canonical restricted atoms live inside the oblivious chase" ~count:100
         (Gen.int_bound 100_000) (fun seed ->
           (* layered WA sets: both chases terminate *)
           let tgds = Chase_workload.Tgd_gen.weakly_acyclic_set (wa_cfg seed) in
           let db = random_db tgds seed in
           let r = Restricted.run ~naming:`Canonical ~max_steps:2_000 tgds db in
           let ob = Oblivious.run ~max_steps:20_000 tgds db in
           (not (Derivation.terminated r))
           || (not ob.Oblivious.saturated)
           || Instance.subset (Derivation.final r) ob.Oblivious.instance));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"instance keys are invariant under null renaming" ~count:150
         Tgen.instance_gen (fun i ->
           let rn = function Term.Null x -> Term.Null ("zz" ^ x) | t -> t in
           let j = Instance.map (Atom.map rn) i in
           String.equal
             (Chase_termination.Derivation_search.instance_key i)
             (Chase_termination.Derivation_search.instance_key j)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"every atom stops its own copy" ~count:150 Tgen.ground_atom_gen
         (fun a ->
           (* frozen set = all its terms: the identity map witnesses it *)
           Stop.stops ~frontier:(Atom.term_set a) ~candidate:a ~result:a));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"GYO accepts chains, stars and 1-wide grids; rejects triangles"
         ~count:50 (Gen.int_range 2 8) (fun n ->
           let chain = Chase_workload.Db_gen.chain ~pred:"e" ~length:n in
           let star = Chase_workload.Db_gen.star ~pred:"e" ~rays:n in
           let tri =
             Instance.of_list
               [
                 Atom.make "e" [ Term.Const "x"; Term.Const "y" ];
                 Atom.make "e" [ Term.Const "y"; Term.Const "z" ];
                 Atom.make "e" [ Term.Const "z"; Term.Const "x" ];
               ]
           in
           Chase_termination.Join_tree.is_acyclic chain
           && Chase_termination.Join_tree.is_acyclic star
           && not (Chase_termination.Join_tree.is_acyclic tri)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"GYO join trees satisfy Def 5.4 when they exist" ~count:100
         Tgen.instance_gen (fun i ->
           match Chase_termination.Join_tree.gyo i with
           | None -> true
           | Some jt -> Chase_termination.Join_tree.is_join_tree_of jt i));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"sequentialized parallel runs are valid models" ~count:60
         (Gen.int_bound 100_000) (fun seed ->
           let tgds = Chase_workload.Tgd_gen.weakly_acyclic_set (wa_cfg seed) in
           let db = random_db tgds seed in
           let out = Sequentialize.parallel_then_extract ~max_rounds:50 tgds db in
           Derivation.validate tgds out.Sequentialize.derivation
           && ((not (Derivation.terminated out.Sequentialize.derivation))
              || Model_check.is_model ~database:db ~tgds
                   (Derivation.final out.Sequentialize.derivation))));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"parallel rounds never exceed sequential steps" ~count:60
         (Gen.int_bound 100_000) (fun seed ->
           let tgds = Chase_workload.Tgd_gen.weakly_acyclic_set (wa_cfg seed) in
           let db = random_db tgds seed in
           let p = Parallel.run ~max_rounds:100 tgds db in
           let s = Restricted.run ~max_steps:5_000 tgds db in
           (not p.Parallel.saturated)
           || (not (Derivation.terminated s))
           || Parallel.round_count p <= max 1 (Derivation.length s)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"equality types of isomorphic atoms coincide" ~count:150
         Tgen.ground_atom_gen (fun a ->
           let rn = function
             | Term.Null x -> Term.Null ("q" ^ x)
             | Term.Const c -> Term.Const ("q" ^ c)
             | t -> t
           in
           Equality_type.equal (Equality_type.of_atom a)
             (Equality_type.of_atom (Atom.map rn a))));
  ]

let suite = [ ("properties", properties) ]
