(* Tests for the parallel (weakly restricted) chase and the core chase. *)

open Chase_core
open Chase_engine

let program src =
  let p = Chase_parser.Parser.parse_program src in
  (Chase_parser.Program.tgds p, Chase_parser.Program.database p)

let parallel_tests =
  [
    Alcotest.test_case "parallel chase result is a model" `Quick (fun () ->
        let tgds, db =
          program
            "o1: employee(E) -> exists T. member(E,T).\no2: member(E,T) -> team(T).\n\
             o3: team(T) -> exists E. member(E,T).\no4: member(E,T) -> employee(E).\n\
             employee(a). employee(b). team(t)."
        in
        let r = Parallel.run tgds db in
        Alcotest.(check bool) "saturated" true r.Parallel.saturated;
        Alcotest.(check bool) "model" true (Model_check.is_model ~database:db ~tgds r.Parallel.final));
    Alcotest.test_case "parallel rounds bound sequential depth" `Quick (fun () ->
        let tgds, db =
          program
            "m1: employee(X,D), dept_city(D,C) -> works_in(X,C).\n\
             m2: employee(X,D) -> exists K. office(X,K).\n\
             m3: works_in(X,C) -> city(C).\n\
             employee(e1,d). employee(e2,d). dept_city(d,c)."
        in
        let p = Parallel.run tgds db in
        let s = Restricted.run tgds db in
        Alcotest.(check bool) "few rounds" true
          (Parallel.round_count p <= Derivation.length s);
        Alcotest.(check bool) "at least as many atoms" true
          (Instance.cardinal p.Parallel.final >= Instance.cardinal (Derivation.final s)));
    Alcotest.test_case "simultaneous application can overshoot (Def C.4 subtlety)" `Quick
      (fun () ->
        (* two triggers, each would deactivate the other: both fire in the
           first round of the weakly restricted chase *)
        let tgds, db =
          program "s1: a(X) -> exists Y. e(X,Y).\ns2: b(X) -> exists Y. e(X,Y).\na(k). b(k)."
        in
        let p = Parallel.run tgds db in
        let s = Restricted.run_exn tgds db in
        Alcotest.(check bool) "parallel ≥ sequential" true
          (Instance.cardinal p.Parallel.final >= Instance.cardinal s));
    Alcotest.test_case "parallel chase diverges where restricted does" `Quick (fun () ->
        let tgds, db = program "r(X,Y) -> exists Z. r(Y,Z).\nr(a,b)." in
        let p = Parallel.run ~max_rounds:20 tgds db in
        Alcotest.(check bool) "not saturated" false p.Parallel.saturated);
  ]

let core_tests =
  [
    Alcotest.test_case "core collapses redundant nulls" `Quick (fun () ->
        let n s = Term.Null s and c s = Term.Const s in
        let i =
          Instance.of_list
            [
              Atom.make "r" [ c "a"; c "b" ];
              Atom.make "r" [ c "a"; n "x" ];  (* retracts onto r(a,b) *)
            ]
        in
        let k = Core_chase.core i in
        Alcotest.(check int) "one atom" 1 (Instance.cardinal k);
        Alcotest.(check bool) "is core" true (Core_chase.is_core k));
    Alcotest.test_case "facts are their own core" `Quick (fun () ->
        let db = Chase_workload.Db_gen.chain ~pred:"e" ~length:4 in
        Alcotest.(check bool) "core" true (Core_chase.is_core db);
        Alcotest.(check bool) "unchanged" true (Instance.equal db (Core_chase.core db)));
    Alcotest.test_case "core chase result is a minimal model" `Quick (fun () ->
        let tgds, db =
          program
            "o1: employee(E) -> exists T. member(E,T).\no2: member(E,T) -> team(T).\n\
             o3: team(T) -> exists E. member(E,T).\no4: member(E,T) -> employee(E).\n\
             employee(a). team(t)."
        in
        let r = Core_chase.run tgds db in
        Alcotest.(check bool) "saturated" true r.Core_chase.saturated;
        Alcotest.(check bool) "model" true
          (Model_check.is_model ~database:db ~tgds r.Core_chase.final);
        Alcotest.(check bool) "core" true (Core_chase.is_core r.Core_chase.final);
        (* minimality: no larger than the restricted result *)
        let s = Restricted.run_exn tgds db in
        Alcotest.(check bool) "≤ restricted" true
          (Instance.cardinal r.Core_chase.final <= Instance.cardinal s));
    Alcotest.test_case "core chase and restricted chase results are hom-equivalent" `Quick
      (fun () ->
        let tgds, db =
          program
            "m1: emp(X) -> exists Y. mgr(X,Y).\nm2: mgr(X,Y) -> person(X).\nemp(a). emp(b)."
        in
        let r = Core_chase.run tgds db in
        let s = Restricted.run_exn tgds db in
        Alcotest.(check bool) "hom-equivalent" true
          (Model_check.hom_equivalent r.Core_chase.final s));
    Alcotest.test_case "core chase diverges only without finite universal models" `Quick
      (fun () ->
        (* r(X,Y) → ∃Z r(Y,Z) over r(a,b): no finite universal model *)
        let tgds, db = program "r(X,Y) -> exists Z. r(Y,Z).\nr(a,b)." in
        let r = Core_chase.run ~max_rounds:10 tgds db in
        Alcotest.(check bool) "not saturated" false r.Core_chase.saturated);
  ]

let sequentialize_tests =
  [
    Alcotest.test_case "extraction of a saturated parallel run is a valid derivation" `Quick
      (fun () ->
        let tgds, db =
          program
            "o1: employee(E) -> exists T. member(E,T).\no2: member(E,T) -> team(T).\n\
             o3: team(T) -> exists E. member(E,T).\no4: member(E,T) -> employee(E).\n\
             employee(a). employee(b). team(t)."
        in
        let out = Sequentialize.parallel_then_extract tgds db in
        Alcotest.(check bool) "valid" true (Derivation.validate tgds out.Sequentialize.derivation);
        Alcotest.(check bool) "terminated" true
          (Derivation.terminated out.Sequentialize.derivation);
        Alcotest.(check bool) "model" true
          (Model_check.is_model ~database:db ~tgds
             (Derivation.final out.Sequentialize.derivation)));
    Alcotest.test_case "overshooting rounds get stopped in extraction" `Quick (fun () ->
        (* both a- and b-triggers fire in round 1 of the parallel chase,
           but sequentially the second is deactivated by the first *)
        let tgds, db =
          program
            "s1: a(X) -> exists Y. e(X,Y).\ns2: b(X) -> exists Y. e(X,Y).\na(k). b(k)."
        in
        ignore tgds;
        ignore db;
        (* e(X,Y) heads differ per rule only through the body: with frontier
           {X} both rules are satisfied by any e(k,_) atom *)
        let out = Sequentialize.parallel_then_extract tgds db in
        Alcotest.(check bool) "valid" true (Derivation.validate tgds out.Sequentialize.derivation);
        Alcotest.(check int) "one born" 1 out.Sequentialize.born;
        Alcotest.(check int) "one stopped" 1 out.Sequentialize.stopped);
    Alcotest.test_case "extraction equals a plain restricted result up to isomorphism" `Quick
      (fun () ->
        let tgds, db =
          program
            "m1: emp(X) -> exists Y. mgr(X,Y).\nm2: mgr(X,Y) -> person(X).\nemp(a). emp(b)."
        in
        let out = Sequentialize.parallel_then_extract tgds db in
        let direct = Restricted.run_exn tgds db in
        Alcotest.(check bool) "isomorphic" true
          (Chase_core.Homomorphism.isomorphic
             (Derivation.final out.Sequentialize.derivation)
             direct));
  ]

let suite =
  [
    ("parallel-chase", parallel_tests);
    ("core-chase", core_tests);
    ("sequentialize", sequentialize_tests);
  ]
