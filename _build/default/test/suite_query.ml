(* Tests for conjunctive queries, certain answers, and containment under
   TGDs — the applications that motivate the paper (§1). *)

open Chase_core
open Chase_query

let parse_q = Conjunctive_query.parse
let parse = Chase_parser.Parser.parse_tgds

let program src =
  let p = Chase_parser.Parser.parse_program src in
  (Chase_parser.Program.tgds p, Chase_parser.Program.database p)

let unit_tests =
  [
    Alcotest.test_case "query evaluation with join" `Quick (fun () ->
        let q = parse_q "e(X,Y), e(Y,Z) -> ans(X,Z)." in
        let db = Chase_workload.Db_gen.chain ~pred:"e" ~length:3 in
        let answers = Conjunctive_query.answers q db in
        Alcotest.(check int) "two 2-paths" 2 (List.length answers));
    Alcotest.test_case "unsafe queries are rejected" `Quick (fun () ->
        match
          Conjunctive_query.make ~answer_vars:[ Term.Var "W" ]
            ~body:[ Atom.make "e" [ Term.Var "X"; Term.Var "Y" ] ]
            ()
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "certain answers exclude nulls" `Quick (fun () ->
        let tgds, db = program "emp(X) -> exists Y. mgr(X,Y).\nemp(ada)." in
        let q = parse_q "mgr(X,Y) -> ans(Y)." in
        let r = Certain_answers.compute ~tgds ~database:db q in
        Alcotest.(check int) "no certain managers" 0 (List.length r.Certain_answers.answers);
        let q2 = parse_q "mgr(X,Y) -> ans(X)." in
        let r2 = Certain_answers.compute ~tgds ~database:db q2 in
        Alcotest.(check int) "one certain employee" 1 (List.length r2.Certain_answers.answers));
    Alcotest.test_case "certain answers raise on diverging sets" `Quick (fun () ->
        let tgds, db = program "r(X,Y) -> exists Z. r(Y,Z).\nr(a,b)." in
        let q = parse_q "r(X,Y) -> ans(X)." in
        match Certain_answers.compute ~max_steps:100 ~tgds ~database:db q with
        | exception Certain_answers.Chase_diverged _ -> ()
        | _ -> Alcotest.fail "expected Chase_diverged");
    Alcotest.test_case "checked computation refuses non-terminating sets" `Quick (fun () ->
        let tgds, db = program "r(X,Y) -> exists Z. r(Y,Z).\nr(a,b)." in
        let q = parse_q "r(X,Y) -> ans(X)." in
        match Certain_answers.compute_checked ~tgds ~database:db q with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected refusal");
    Alcotest.test_case "containment under TGDs (r ⊑ s via r(X,Y)→s(X))" `Quick (fun () ->
        let tgds = parse "r(X,Y) -> s(X)." in
        let q1 = parse_q "r(X,Y) -> ans(X)." in
        let q2 = parse_q "s(X) -> ans(X)." in
        Alcotest.(check (result bool string)) "q1 ⊑ q2" (Ok true)
          (Containment.contained_in ~tgds q1 q2);
        Alcotest.(check (result bool string)) "q2 ⋢ q1" (Ok false)
          (Containment.contained_in ~tgds q2 q1));
    Alcotest.test_case "containment with existentials" `Quick (fun () ->
        (* under person(X) → ∃Y parent(X,Y)… wait, that set diverges; use a
           terminating one: emp(X) → ∃Y mgr(X,Y) with mgr unconstrained *)
        let tgds = parse "emp(X) -> exists Y. mgr(X,Y)." in
        let q1 = parse_q "emp(X) -> ans(X)." in
        let q2 = parse_q "emp(X), mgr(X,Y) -> ans(X)." in
        Alcotest.(check (result bool string)) "q1 ⊑ q2" (Ok true)
          (Containment.contained_in ~tgds q1 q2);
        (* without the TGD, the containment fails *)
        Alcotest.(check (result bool string)) "plainly not" (Ok false)
          (Containment.contained_in_plain q1 q2));
    Alcotest.test_case "plain containment is the homomorphism check" `Quick (fun () ->
        let q_path = parse_q "e(X,Y), e(Y,Z) -> ans(X,Z)." in
        let q_edge = parse_q "e(X,Z) -> ans(X,Z)." in
        (* every 1-edge answer pattern maps into the 2-path pattern?  no:
           e(X,Z) needs a direct edge between the answers *)
        Alcotest.(check (result bool string)) "path ⋢ edge" (Ok false)
          (Containment.contained_in_plain q_path q_edge);
        (* but the triangle query is contained in the edge query *)
        let q_tri = parse_q "e(X,Z), e(Z,W), e(W,X) -> ans(X,Z)." in
        Alcotest.(check (result bool string)) "triangle ⊑ edge" (Ok true)
          (Containment.contained_in_plain q_tri q_edge));
    Alcotest.test_case "containment reports divergence" `Quick (fun () ->
        let tgds = parse "r(X,Y) -> exists Z. r(Y,Z)." in
        let q1 = parse_q "r(X,Y) -> ans(X)." in
        match Containment.contained_in ~max_steps:100 ~tgds q1 q1 with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected divergence error");
    Alcotest.test_case "equivalence under constraints" `Quick (fun () ->
        let tgds = parse "p(X,Y) -> q(Y,X).\nq(X,Y) -> p(Y,X)." in
        let q1 = parse_q "p(X,Y) -> ans(X,Y)." in
        let q2 = parse_q "q(Y,X) -> ans(X,Y)." in
        Alcotest.(check (result bool string)) "equivalent" (Ok true)
          (Containment.equivalent ~tgds q1 q2));
  ]

let suite = [ ("query", unit_tests) ]
