(* The gallery agreement tests: on every scenario with known ground truth,
   the facade decider must answer correctly (experiment E7's claim). *)

open Chase_termination
open Chase_workload

let decider_agrees (s : Scenarios.t) () =
  let tgds = Scenarios.tgds s in
  let report = Decider.decide tgds in
  match (s.Scenarios.truth, report.Decider.answer) with
  | Scenarios.All_terminating, Decider.Terminating -> ()
  | Scenarios.Diverging, Decider.Non_terminating -> ()
  | Scenarios.All_terminating, Decider.Unknown | Scenarios.Diverging, Decider.Unknown ->
      (* Unknown is allowed only outside the implemented decidable classes
         (multi-head, or neither sticky nor guarded with WA failing). *)
      let c = report.Decider.classification in
      if
        c.Chase_classes.Classification.single_head
        && (c.Chase_classes.Classification.sticky || c.Chase_classes.Classification.guarded)
      then
        Alcotest.failf "decider returned Unknown on in-scope scenario %s (%s)"
          s.Scenarios.name report.Decider.detail
  | Scenarios.All_terminating, Decider.Non_terminating ->
      Alcotest.failf "decider claims divergence on terminating scenario %s (%s)"
        s.Scenarios.name report.Decider.detail
  | Scenarios.Diverging, Decider.Terminating ->
      Alcotest.failf "decider claims termination on diverging scenario %s (%s)"
        s.Scenarios.name report.Decider.detail

(* Empirically cross-check the ground truth itself on the representative
   database: diverging scenarios must show divergence evidence, and
   all-terminating ones must terminate on every strategy. *)
let truth_consistent (s : Scenarios.t) () =
  let tgds = Scenarios.tgds s in
  let db = Scenarios.database s in
  match s.Scenarios.truth with
  | Scenarios.Diverging -> (
      match Derivation_search.divergence_evidence ~max_depth:150 tgds db with
      | Some _ -> ()
      | None ->
          (* the representative database may not witness it; only fail for
             scenarios that are supposed to diverge on their own database *)
          Alcotest.failf "no divergence evidence on scenario %s's database" s.Scenarios.name)
  | Scenarios.All_terminating ->
      List.iter
        (fun strat ->
          let d = Chase_engine.Restricted.run ~strategy:strat ~max_steps:2_000 tgds db in
          if not (Chase_engine.Derivation.terminated d) then
            Alcotest.failf "scenario %s did not terminate" s.Scenarios.name)
        [ Chase_engine.Restricted.Fifo; Chase_engine.Restricted.Random 3 ]

let suite =
  [
    ( "scenario-decider-agreement",
      List.map
        (fun s -> Alcotest.test_case s.Scenarios.name `Quick (decider_agrees s))
        Scenarios.all );
    ( "scenario-truth-consistency",
      List.map
        (fun s -> Alcotest.test_case s.Scenarios.name `Quick (truth_consistent s))
        Scenarios.all );
  ]
