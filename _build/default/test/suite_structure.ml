(* Tests for the guard/side-parent structure over ochase (App. C.2) and
   the caterpillar-word agreement checks (Def D.2). *)

open Chase_core
open Chase_engine
open Chase_termination

let program src =
  let p = Chase_parser.Parser.parse_program src in
  (Chase_parser.Program.tgds p, Chase_parser.Program.database p)

let example_5_6 =
  "s1: s(X,Y) -> t(X).\ns2: r(X,Y), t(Y) -> p(X,Y).\ns3: p(X,Y) -> exists Z. p(Y,Z).\n\
   r(a,b). s(b,c)."

let structure_tests =
  [
    Alcotest.test_case "guard parents form a forest rooted at the database" `Quick (fun () ->
        let tgds, db = program example_5_6 in
        let graph = Real_oblivious.build ~max_depth:5 ~max_nodes:300 tgds db in
        let s = Guarded_structure.build tgds graph in
        Array.iter
          (fun node ->
            let id = node.Real_oblivious.id in
            let r = Guarded_structure.root s id in
            let root_node = Real_oblivious.node graph r in
            Alcotest.(check bool) "root is a database node" true
              (root_node.Real_oblivious.origin = None);
            match node.Real_oblivious.origin with
            | None ->
                Alcotest.(check (option int)) "roots have no guard parent" None
                  (Guarded_structure.guard_parent s id)
            | Some _ ->
                Alcotest.(check bool) "generated nodes have one" true
                  (Guarded_structure.guard_parent s id <> None))
          (Real_oblivious.nodes graph));
    Alcotest.test_case "remote-side-parent situation of Example 5.6" `Quick (fun () ->
        let tgds, db = program example_5_6 in
        let graph = Real_oblivious.build ~max_depth:5 ~max_nodes:300 tgds db in
        let s = Guarded_structure.build tgds graph in
        let lf = Guarded_structure.longs_for s in
        let r_ab = Atom.make "r" [ Term.Const "a"; Term.Const "b" ] in
        let s_bc = Atom.make "s" [ Term.Const "b"; Term.Const "c" ] in
        Alcotest.(check bool) "r(a,b) longs for s(b,c)" true
          (List.exists (fun (x, y) -> Atom.equal x r_ab && Atom.equal y s_bc) lf));
    Alcotest.test_case "graph-based and derivation-based longs-for agree" `Quick (fun () ->
        let tgds, db = program example_5_6 in
        let graph = Real_oblivious.build ~max_depth:5 ~max_nodes:300 tgds db in
        let s = Guarded_structure.build tgds graph in
        let graph_lf = Guarded_structure.longs_for s in
        match Derivation_search.divergence_evidence ~max_depth:40 tgds db with
        | None -> Alcotest.fail "expected divergence"
        | Some d ->
            let deriv_lf = Treeify.longs_for_edges db d in
            (* every derivation-observed edge appears in the graph version *)
            List.iter
              (fun (a, b) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s⟶%s found" (Atom.to_string a) (Atom.to_string b))
                  true
                  (List.exists
                     (fun (x, y) -> Atom.equal x a && Atom.equal y b)
                     graph_lf))
              deriv_lf);
    Alcotest.test_case "guard subtrees partition the generated nodes" `Quick (fun () ->
        let tgds, db = program example_5_6 in
        let graph = Real_oblivious.build ~max_depth:4 ~max_nodes:300 tgds db in
        let s = Guarded_structure.build tgds graph in
        let sizes = Guarded_structure.subtree_sizes s in
        let total = Hashtbl.fold (fun _ c acc -> acc + c) sizes 0 in
        Alcotest.(check int) "all nodes counted once" (Real_oblivious.size graph) total);
    Alcotest.test_case "side-parents carry valid sideatom types" `Quick (fun () ->
        let tgds, db = program example_5_6 in
        let graph = Real_oblivious.build ~max_depth:4 ~max_nodes:300 tgds db in
        let s = Guarded_structure.build tgds graph in
        Array.iter
          (fun node ->
            let id = node.Real_oblivious.id in
            List.iter
              (fun (sp, pi) ->
                let sp_atom = (Real_oblivious.node graph sp).Real_oblivious.atom in
                let gp = Option.get (Guarded_structure.guard_parent s id) in
                let gp_atom = (Real_oblivious.node graph gp).Real_oblivious.atom in
                Alcotest.(check bool) "π-sideatom" true
                  (Sideatom_type.is_sideatom pi sp_atom ~of_:gp_atom))
              (Guarded_structure.side_parents s id))
          (Real_oblivious.nodes graph));
  ]

let word_tests =
  [
    Alcotest.test_case "decider certificates agree with the automaton step-by-step" `Quick
      (fun () ->
        let check src =
          let tgds = Chase_parser.Parser.parse_tgds src in
          match Sticky_decider.decide tgds with
          | Sticky_decider.Non_terminating cert -> (
              let ctx = Sticky_automaton.make_context tgds in
              match
                Caterpillar_word.check_against_automaton
                  ~start:(cert.Sticky_decider.start_et, cert.Sticky_decider.start_class)
                  ctx cert.Sticky_decider.prefix
              with
              | Ok () -> ()
              | Error e -> Alcotest.failf "disagreement on %s: %s" src e)
          | _ -> Alcotest.failf "expected divergence for %s" src
        in
        check "r(X,Y) -> exists Z. r(Y,Z).";
        check "s1: p(X) -> exists Y. q(X,Y).\ns2: q(X,Y) -> p(Y).";
        check "s1: p(X,Y), u(W) -> exists Z. p(Y,Z).");
    Alcotest.test_case "encode is the left inverse of the decoder" `Quick (fun () ->
        let tgds = Chase_parser.Parser.parse_tgds "r(X,Y) -> exists Z. r(Y,Z)." in
        match Sticky_decider.decide ~unroll_turns:4 tgds with
        | Sticky_decider.Non_terminating cert -> (
            match Caterpillar_word.encode tgds cert.Sticky_decider.prefix with
            | Error e -> Alcotest.failf "encode failed: %s" e
            | Ok word ->
                let expected =
                  cert.Sticky_decider.lasso.Chase_automata.Buchi.prefix
                  @ List.concat
                      (List.init 4 (fun _ ->
                           cert.Sticky_decider.lasso.Chase_automata.Buchi.cycle))
                in
                Alcotest.(check int) "same length" (List.length expected) (List.length word);
                List.iter2
                  (fun (a : Sticky_automaton.letter) (b : Sticky_automaton.letter) ->
                    Alcotest.(check int) "tgd" a.Sticky_automaton.tgd_index
                      b.Sticky_automaton.tgd_index;
                    Alcotest.(check int) "gamma" a.Sticky_automaton.gamma_index
                      b.Sticky_automaton.gamma_index;
                    Alcotest.(check (list int)) "pass" a.Sticky_automaton.pass_on
                      b.Sticky_automaton.pass_on)
                  expected word)
        | _ -> Alcotest.fail "expected divergence");
    Alcotest.test_case "extracted caterpillars also agree with the automaton" `Quick
      (fun () ->
        let tgds = Chase_parser.Parser.parse_tgds "r(X,Y) -> exists Z. r(Y,Z)." in
        let db =
          Instance.singleton (Atom.make "r" [ Term.Const "a"; Term.Const "b" ])
        in
        let d = Restricted.run ~strategy:Restricted.Lifo ~max_steps:25 tgds db in
        match Caterpillar_extract.extract tgds d with
        | Error e -> Alcotest.failf "extract failed: %s" e
        | Ok cat -> (
            let ctx = Sticky_automaton.make_context tgds in
            match Caterpillar_word.check_against_automaton ctx cat with
            | Ok () -> ()
            | Error e -> Alcotest.failf "disagreement: %s" e));
  ]

let suite = [ ("guarded-structure", structure_tests); ("caterpillar-words", word_tests) ]
