(* Tests for the chase engines (paper §3). *)

open Chase_core
open Chase_engine

let parse = Chase_parser.Parser.parse_program
let instance = Alcotest.testable Instance.pp Instance.equal

let program src =
  let p = parse src in
  (Chase_parser.Program.tgds p, Chase_parser.Program.database p)

let unit_tests =
  [
    Alcotest.test_case "intro example: restricted adds nothing, oblivious diverges" `Quick
      (fun () ->
        let tgds, db = program "r(X,Y) -> exists Z. r(X,Z).\nr(a,b)." in
        let d = Restricted.run tgds db in
        Alcotest.(check bool) "terminated" true (Derivation.terminated d);
        Alcotest.(check int) "no growth" 0 (Derivation.growth d);
        let ob = Oblivious.run ~max_steps:50 tgds db in
        Alcotest.(check bool) "oblivious does not saturate" false ob.Oblivious.saturated);
    Alcotest.test_case "restricted chase result is a model" `Quick (fun () ->
        let tgds, db =
          program
            "s1: p(X,Y) -> r(X,Y).\ns2: p(X,Y) -> s(X).\ns3: r(X,Y) -> s(X).\n\
             s4: s(X) -> exists Y. r(X,Y).\np(a,b)."
        in
        let final = Restricted.run_exn tgds db in
        Alcotest.(check bool) "model" true (Model_check.is_model ~database:db ~tgds final));
    Alcotest.test_case "restricted result maps into oblivious result" `Quick (fun () ->
        let tgds, db =
          program
            "s1: p(X,Y) -> r(X,Y).\ns2: p(X,Y) -> s(X).\ns3: r(X,Y) -> s(X).\n\
             s4: s(X) -> exists Y. r(X,Y).\np(a,b)."
        in
        let fin = Restricted.run_exn tgds db in
        let ob = Oblivious.run tgds db in
        Alcotest.(check bool) "saturated" true ob.Oblivious.saturated;
        Alcotest.(check bool) "hom both ways" true
          (Model_check.hom_equivalent fin ob.Oblivious.instance);
        Alcotest.(check bool) "restricted smaller" true
          (Instance.cardinal fin <= Instance.cardinal ob.Oblivious.instance));
    Alcotest.test_case "semi-oblivious between restricted and oblivious" `Quick (fun () ->
        let tgds, db = program "s(X) -> exists Y. r(X,Y).\nr(X,Y) -> s(X).\ns(a)." in
        let ob = Oblivious.run tgds db in
        let sob = Oblivious.run ~variant:Oblivious.Semi_oblivious tgds db in
        Alcotest.(check bool) "both saturate" true
          (ob.Oblivious.saturated && sob.Oblivious.saturated);
        Alcotest.(check bool) "semi ≤ oblivious" true
          (Instance.cardinal sob.Oblivious.instance <= Instance.cardinal ob.Oblivious.instance));
    Alcotest.test_case "derivations validate" `Quick (fun () ->
        let tgds, db =
          program "s1: n(X) -> exists Y. e(X,Y).\ns2: e(X,Y) -> n(X).\nn(a). n(b)."
        in
        let d = Restricted.run tgds db in
        Alcotest.(check bool) "valid" true (Derivation.validate tgds d));
    Alcotest.test_case "strategies agree on termination status (single-head, terminating)"
      `Quick (fun () ->
        let tgds, db =
          program
            "s1: emp(X) -> exists Y. reports(X,Y).\ns2: reports(X,Y) -> mgr(Y).\n\
             s3: mgr(Y) -> person(Y).\nemp(alice). emp(bob)."
        in
        let check s =
          let d = Restricted.run ~strategy:s tgds db in
          Derivation.terminated d
        in
        Alcotest.(check bool) "fifo" true (check Restricted.Fifo);
        Alcotest.(check bool) "lifo" true (check Restricted.Lifo);
        Alcotest.(check bool) "random" true (check (Restricted.Random 7)));
    Alcotest.test_case "canonical naming makes runs order-insensitive" `Quick (fun () ->
        let tgds, db =
          program "s1: n(X) -> exists Y. e(X,Y).\ns2: e(X,Y) -> m(Y).\nn(a). n(b)."
        in
        let f1 = Restricted.run_exn ~naming:`Canonical ~strategy:Restricted.Fifo tgds db in
        let f2 = Restricted.run_exn ~naming:`Canonical ~strategy:Restricted.Lifo tgds db in
        Alcotest.check instance "same instance" f1 f2);
    Alcotest.test_case "real oblivious chase: Example 3.2 has two copies of S(a)" `Quick
      (fun () ->
        let tgds, db =
          program
            "s1: p(X,Y) -> r(X,Y).\ns2: p(X,Y) -> s(X).\ns3: r(X,Y) -> s(X).\n\
             s4: s(X) -> exists Y. r(X,Y).\np(a,b)."
        in
        let g = Real_oblivious.build ~max_depth:3 ~max_nodes:500 tgds db in
        let s_a = Atom.make "s" [ Term.Const "a" ] in
        Alcotest.(check bool) "multiset: ≥ 2 copies of s(a)" true (Real_oblivious.copies g s_a >= 2);
        (* the set of atoms coincides with the oblivious chase *)
        let ob = Oblivious.run ~max_steps:1000 tgds db in
        Alcotest.(check bool) "atoms ⊆ oblivious" true
          (Instance.subset (Real_oblivious.atom_set g)
             ob.Oblivious.instance));
    Alcotest.test_case "real oblivious: parents aligned with body order" `Quick (fun () ->
        let tgds, db = program "s1: r(X,Y), t(Y) -> exists Z. p(X,Z).\nr(a,b). t(b)." in
        let g = Real_oblivious.build tgds db in
        let produced =
          Array.to_list (Real_oblivious.nodes g)
          |> List.filter (fun n -> n.Real_oblivious.origin <> None)
        in
        Alcotest.(check int) "one node" 1 (List.length produced);
        let n = List.hd produced in
        Alcotest.(check int) "two parents" 2 (Array.length n.Real_oblivious.parents);
        let p0 = Real_oblivious.node g n.Real_oblivious.parents.(0) in
        Alcotest.(check string) "first parent is the r atom" "r"
          (Atom.pred p0.Real_oblivious.atom));
    Alcotest.test_case "multi-head trigger application shares witnesses" `Quick (fun () ->
        let tgds, db = program "r(X,Y,Y) -> exists Z. r(X,Z,Y), r(Z,Y,Y).\nr(a,b,b)." in
        let d = Restricted.run ~max_steps:1 tgds db in
        match Derivation.steps d with
        | [ s ] -> (
            match s.Derivation.produced with
            | [ a1; a2 ] ->
                (* the Z in both atoms is the same null *)
                Alcotest.(check bool) "shared null" true
                  (Term.equal (Atom.arg a1 1) (Atom.arg a2 0))
            | _ -> Alcotest.fail "expected two produced atoms")
        | _ -> Alcotest.fail "expected one step");
  ]

(* Fact 3.5: the head-extension activeness test coincides with the
   stop-relation test, on random instances and TGDs. *)
let property_tests =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"Fact 3.5: is_active ⟺ no stopper (single-head)" ~count:300
         (QCheck2.Gen.pair Tgen.tgd_gen Tgen.instance_gen)
         (fun (tgd, inst) ->
           Trigger.all [ tgd ] inst
           |> Seq.for_all (fun tr ->
                  Bool.equal (Trigger.is_active inst tr) (Stop.is_active_via_stop inst tr))));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"terminated restricted chase satisfies the TGDs" ~count:100
         (QCheck2.Gen.pair
            (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 2) Tgen.tgd_gen)
            Tgen.instance_gen)
         (fun (tgds, inst) ->
           (* ground the instance: keep only a database-like fragment *)
           let db = Instance.filter Atom.is_ground inst in
           let d = Restricted.run ~max_steps:200 tgds db in
           (not (Derivation.terminated d)) || Tgd.satisfied_by_all (Derivation.final d) tgds));
  ]

let suite = [ ("engine", unit_tests @ property_tests) ]
