(* QCheck generators shared by the property tests. *)

open Chase_core

let small_consts = [ "a"; "b"; "c"; "d" ]
let small_nulls = [ "n1"; "n2"; "n3" ]

let ground_term_gen =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.map (fun c -> Term.Const c) (QCheck2.Gen.oneofl small_consts);
      QCheck2.Gen.map (fun n -> Term.Null n) (QCheck2.Gen.oneofl small_nulls);
    ]

(* Fixed small schema: r/2, s/1, t/3. *)
let schema_preds = [ ("r", 2); ("s", 1); ("t", 3) ]

let ground_atom_gen =
  let open QCheck2.Gen in
  let* p, ar = oneofl schema_preds in
  let* args = list_repeat ar ground_term_gen in
  return (Atom.make p args)

let instance_gen =
  let open QCheck2.Gen in
  let* atoms = list_size (int_range 0 12) ground_atom_gen in
  return (Instance.of_list atoms)

(* Random variable-only atoms for TGD parts. *)
let var_pool = [ "X"; "Y"; "Z"; "W" ]

let var_term_gen = QCheck2.Gen.map (fun v -> Term.Var v) (QCheck2.Gen.oneofl var_pool)

let var_atom_gen =
  let open QCheck2.Gen in
  let* p, ar = oneofl schema_preds in
  let* args = list_repeat ar var_term_gen in
  return (Atom.make p args)

let tgd_gen =
  let open QCheck2.Gen in
  let* body = list_size (int_range 1 2) var_atom_gen in
  let* head0 = var_atom_gen in
  (* make sure head has some connection or existential; any var atom works *)
  return (Tgd.make ~name:"q" ~body ~head:[ head0 ] ())

let substitution_gen =
  let open QCheck2.Gen in
  let* pairs =
    list_size (int_range 0 4)
      (pair (map (fun v -> Term.Var v) (oneofl var_pool)) ground_term_gen)
  in
  return
    (List.fold_left
       (fun s (v, t) -> if Substitution.mem v s then s else Substitution.bind v t s)
       Substitution.empty pairs)
