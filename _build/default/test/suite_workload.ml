(* Tests for the workload library: the scenario gallery's metadata, the
   ChaseBench-style scalable scenarios, and the database shapes. *)

open Chase_core
open Chase_workload

let unit_tests =
  [
    Alcotest.test_case "gallery names are unique and programs parse" `Quick (fun () ->
        let names = List.map (fun s -> s.Scenarios.name) Scenarios.all in
        Alcotest.(check int) "unique names" (List.length names)
          (List.length (List.sort_uniq String.compare names));
        List.iter
          (fun s ->
            let tgds = Scenarios.tgds s in
            Alcotest.(check bool) (s.Scenarios.name ^ " has TGDs") true (tgds <> []))
          Scenarios.all);
    Alcotest.test_case "gallery databases are databases" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (s.Scenarios.name ^ " db is ground")
              true
              (Instance.is_database (Scenarios.database s)))
          Scenarios.all);
    Alcotest.test_case "by_name finds every scenario" `Quick (fun () ->
        List.iter
          (fun s ->
            match Scenarios.by_name s.Scenarios.name with
            | Some s' -> Alcotest.(check string) "same" s.Scenarios.name s'.Scenarios.name
            | None -> Alcotest.failf "missing %s" s.Scenarios.name)
          Scenarios.all);
    Alcotest.test_case "st-mapping scenarios are weakly acyclic and terminate" `Quick
      (fun () ->
        List.iter
          (fun (s : St_mapping.scenario) ->
            Alcotest.(check bool)
              (s.St_mapping.name ^ " WA")
              true
              (Chase_classes.Weak_acyclicity.is_weakly_acyclic s.St_mapping.tgds);
            let d =
              Chase_engine.Restricted.run ~max_steps:50_000 s.St_mapping.tgds
                s.St_mapping.database
            in
            Alcotest.(check bool) (s.St_mapping.name ^ " terminates") true
              (Chase_engine.Derivation.terminated d))
          [
            St_mapping.doctors ~patients:40;
            St_mapping.deep ~depth:10 ~width:4;
            St_mapping.join_heavy ~rows:30;
          ]);
    Alcotest.test_case "deep scenario chases through every layer" `Quick (fun () ->
        let s = St_mapping.deep ~depth:7 ~width:3 in
        let final =
          Chase_engine.Restricted.run_exn s.St_mapping.tgds s.St_mapping.database
        in
        (* 3 facts per layer, 8 layers *)
        Alcotest.(check int) "atoms" (3 * 8) (Instance.cardinal final));
    Alcotest.test_case "db shapes have the advertised sizes" `Quick (fun () ->
        Alcotest.(check int) "chain" 5 (Instance.cardinal (Db_gen.chain ~pred:"e" ~length:5));
        Alcotest.(check int) "star" 7 (Instance.cardinal (Db_gen.star ~pred:"e" ~rays:7));
        Alcotest.(check int) "unary" 9 (Instance.cardinal (Db_gen.unary ~pred:"p" ~count:9));
        (* n×n grid: 2·n·(n−1) edges *)
        Alcotest.(check int) "grid" (2 * 4 * 3) (Instance.cardinal (Db_gen.grid ~pred:"e" ~n:4)));
    Alcotest.test_case "random databases respect the schema" `Quick (fun () ->
        let schema = Schema.of_atoms [ Atom.make "r" [ Term.Const "x"; Term.Const "y" ] ] in
        let db = Db_gen.random ~schema ~atoms:20 ~domain:4 ~seed:5 in
        Instance.iter
          (fun a ->
            Alcotest.(check string) "pred" "r" (Atom.pred a);
            Alcotest.(check int) "arity" 2 (Atom.arity a))
          db);
    Alcotest.test_case "generators are deterministic in the seed" `Quick (fun () ->
        let cfg = { Tgd_gen.default with Tgd_gen.seed = 99 } in
        let a = Tgd_gen.guarded_set cfg and b = Tgd_gen.guarded_set cfg in
        List.iter2
          (fun x y -> Alcotest.(check string) "same" (Tgd.to_string x) (Tgd.to_string y))
          a b);
  ]

let suite = [ ("workload", unit_tests) ]
