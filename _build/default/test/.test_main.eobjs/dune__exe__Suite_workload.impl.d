test/suite_workload.ml: Alcotest Atom Chase_classes Chase_core Chase_engine Chase_workload Db_gen Instance List Scenarios Schema St_mapping String Term Tgd Tgd_gen
