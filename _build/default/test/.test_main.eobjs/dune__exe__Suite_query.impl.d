test/suite_query.ml: Alcotest Atom Certain_answers Chase_core Chase_parser Chase_query Chase_workload Conjunctive_query Containment List Term
