test/suite_api.ml: Alcotest Array Chase Format List Option Printf String
