test/suite_compiled.ml: Atom Chase_core Chase_engine Chase_workload Derivation Gen Instance List Minstance Oblivious Plan QCheck2 QCheck_alcotest Restricted Schema Seq Set Test Tgen Trigger
