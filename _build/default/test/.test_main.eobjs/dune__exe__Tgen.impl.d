test/tgen.ml: Atom Chase_core Instance List QCheck2 Substitution Term Tgd
