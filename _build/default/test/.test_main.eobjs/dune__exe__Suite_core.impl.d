test/suite_core.ml: Alcotest Atom Chase_core Chase_parser Equality_type Homomorphism Instance List Option Printf QCheck2 QCheck_alcotest Schema Sideatom_type Substitution Term Test Tgd Tgen
