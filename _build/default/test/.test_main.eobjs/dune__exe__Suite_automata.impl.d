test/suite_automata.ml: Alcotest Buchi Chase_automata List
