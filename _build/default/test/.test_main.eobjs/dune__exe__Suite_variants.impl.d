test/suite_variants.ml: Alcotest Atom Chase_core Chase_engine Chase_parser Chase_workload Core_chase Derivation Instance Model_check Parallel Restricted Sequentialize Term
