test/suite_msol.ml: Abstract_join_tree Alcotest Array Chase_core Chase_engine Chase_parser Chase_termination Fun List Msol Msol_eval
