test/suite_parser.ml: Alcotest Array Atom Chase_core Chase_parser Filename Instance Lexer List Parser Printer Program Schema Sys Term Tgd
