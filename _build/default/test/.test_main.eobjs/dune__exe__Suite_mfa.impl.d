test/suite_mfa.ml: Alcotest Chase_classes Chase_core Chase_engine Chase_parser Chase_termination Chase_workload Gen List Mfa QCheck2 QCheck_alcotest Test
