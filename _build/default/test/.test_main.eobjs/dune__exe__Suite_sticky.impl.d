test/suite_sticky.ml: Alcotest Chase_parser Chase_termination Sticky_decider
