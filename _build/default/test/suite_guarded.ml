(* Tests for the guarded machinery (paper §5): join trees, chaseable sets,
   treeification, abstract join trees, and the guarded decider. *)

open Chase_core
open Chase_engine
open Chase_termination

let program src =
  let p = Chase_parser.Parser.parse_program src in
  (Chase_parser.Program.tgds p, Chase_parser.Program.database p)

let example_5_6 =
  "s1: s(X,Y) -> t(X).\ns2: r(X,Y), t(Y) -> p(X,Y).\ns3: p(X,Y) -> exists Z. p(Y,Z).\n\
   r(a,b). s(b,c)."

let join_tree_tests =
  [
    Alcotest.test_case "a chain is acyclic" `Quick (fun () ->
        let db = Chase_workload.Db_gen.chain ~pred:"e" ~length:5 in
        Alcotest.(check bool) "acyclic" true (Join_tree.is_acyclic db);
        let jt = Option.get (Join_tree.gyo db) in
        Alcotest.(check bool) "valid join tree" true (Join_tree.is_join_tree_of jt db));
    Alcotest.test_case "a triangle is cyclic" `Quick (fun () ->
        let c i = Term.Const (string_of_int i) in
        let db =
          Instance.of_list
            [
              Atom.make "e" [ c 0; c 1 ]; Atom.make "e" [ c 1; c 2 ]; Atom.make "e" [ c 2; c 0 ];
            ]
        in
        Alcotest.(check bool) "cyclic" false (Join_tree.is_acyclic db));
    Alcotest.test_case "guard-covered side atoms are acyclic" `Quick (fun () ->
        let _, db = program "r(a,b). t(b). p(a,b)." in
        Alcotest.(check bool) "acyclic" true (Join_tree.is_acyclic db));
    Alcotest.test_case "Example 5.6's database is acyclic" `Quick (fun () ->
        let _, db = program example_5_6 in
        Alcotest.(check bool) "acyclic" true (Join_tree.is_acyclic db));
  ]

let chaseable_tests =
  [
    Alcotest.test_case "Thm 5.3 (1)⇒(2)⇒(1) on a finite fragment" `Quick (fun () ->
        let tgds, db = program example_5_6 in
        (* a canonical-naming derivation prefix *)
        let d = Restricted.run ~naming:`Canonical ~max_steps:6 tgds db in
        let graph = Real_oblivious.build ~max_depth:8 ~max_nodes:800 tgds db in
        match Chaseable.of_derivation graph d with
        | None -> Alcotest.fail "derivation did not map into ochase"
        | Some nodes -> (
            Alcotest.(check bool) "chaseable" true (Chaseable.is_chaseable graph nodes);
            match Chaseable.to_derivation graph nodes with
            | Error e -> Alcotest.failf "extraction failed: %s" e
            | Ok d' ->
                Alcotest.(check bool) "valid derivation" true (Derivation.validate tgds d');
                Alcotest.(check int) "same growth" (Derivation.growth d) (Derivation.growth d')));
    Alcotest.test_case "two copies of one atom are never chaseable" `Quick (fun () ->
        let tgds, db =
          program
            "s1: p(X,Y) -> r(X,Y).\ns2: p(X,Y) -> s(X).\ns3: r(X,Y) -> s(X).\n\
             s4: s(X) -> exists Y. r(X,Y).\np(a,b)."
        in
        let graph = Real_oblivious.build ~max_depth:3 ~max_nodes:500 tgds db in
        let s_a = Atom.make "s" [ Term.Const "a" ] in
        let copies =
          Array.to_list (Real_oblivious.nodes graph)
          |> List.filter_map (fun n ->
                 if Atom.equal n.Real_oblivious.atom s_a then Some n.Real_oblivious.id else None)
        in
        Alcotest.(check bool) "at least two copies" true (List.length copies >= 2);
        (* both copies plus all their ancestors *)
        let rec ancestors acc id =
          List.fold_left ancestors (id :: acc) (Real_oblivious.parents graph id)
        in
        let set = List.sort_uniq Int.compare (List.fold_left ancestors [] copies) in
        Alcotest.(check bool) "not chaseable" false (Chaseable.is_chaseable graph set));
  ]

let treeify_tests =
  [
    Alcotest.test_case "Example 5.6: treeification of a cyclic variant diverges" `Quick
      (fun () ->
        (* make the input database cyclic by adding a back edge through the
           same constants, then treeify *)
        let tgds, db =
          program
            "s1: s(X,Y) -> t(X).\ns2: r(X,Y), t(Y) -> p(X,Y).\n\
             s3: p(X,Y) -> exists Z. p(Y,Z).\nr(a,b). s(b,c). w(c,a)."
        in
        Alcotest.(check bool) "cyclic input" false (Join_tree.is_acyclic db);
        match Treeify.treeify tgds db with
        | Error e -> Alcotest.failf "treeify failed: %s" e
        | Ok r ->
            Alcotest.(check bool) "D_ac acyclic" true (Join_tree.is_acyclic r.Treeify.dac);
            Alcotest.(check bool) "divergence evidence on D_ac" true
              (Derivation.status r.Treeify.evidence = Derivation.Out_of_budget));
    Alcotest.test_case "longs-for edges found on Example 5.6" `Quick (fun () ->
        let tgds, db = program example_5_6 in
        match Derivation_search.divergence_evidence ~max_depth:50 tgds db with
        | None -> Alcotest.fail "expected divergence"
        | Some d ->
            let edges = Treeify.longs_for_edges db d in
            (* r(a,b) longs for s(b,c): the p-chain under r(a,b) needs t(b)
               which lives under s(b,c) *)
            let r_ab = Atom.make "r" [ Term.Const "a"; Term.Const "b" ] in
            let s_bc = Atom.make "s" [ Term.Const "b"; Term.Const "c" ] in
            Alcotest.(check bool) "r(a,b) longs for s(b,c)" true
              (List.exists
                 (fun (x, y) -> Atom.equal x r_ab && Atom.equal y s_bc)
                 edges));
  ]

let abstract_tests =
  [
    Alcotest.test_case "encode/decode: ∆ of the encoding is isomorphic to the chase" `Quick
      (fun () ->
        let tgds, db = program example_5_6 in
        let d = Restricted.run ~naming:`Canonical ~max_steps:5 tgds db in
        match Abstract_join_tree.encode tgds ~database:db d with
        | Error e -> Alcotest.failf "encode failed: %s" e
        | Ok t ->
            (match Abstract_join_tree.validate tgds t with
            | Error e -> Alcotest.failf "Def 5.8 violated: %s" e
            | Ok () -> ());
            let decoded = Abstract_join_tree.delta t in
            let original = Derivation.final d in
            Alcotest.(check bool) "isomorphic" true
              (Chase_core.Homomorphism.isomorphic_upto_constants decoded original);
            let decoded_f = Abstract_join_tree.delta_f t in
            Alcotest.(check bool) "F-part isomorphic to D" true
              (Chase_core.Homomorphism.isomorphic_upto_constants decoded_f db));
    Alcotest.test_case "chaseability of the encoded tree (Def 5.10)" `Quick (fun () ->
        let tgds, db = program example_5_6 in
        let d = Restricted.run ~naming:`Canonical ~max_steps:5 tgds db in
        match Abstract_join_tree.encode tgds ~database:db d with
        | Error e -> Alcotest.failf "encode failed: %s" e
        | Ok t -> (
            match Abstract_join_tree.is_chaseable tgds t with
            | Ok () -> ()
            | Error e -> Alcotest.failf "not chaseable: %s" e));
  ]

let decider_tests =
  let decide src =
    let tgds, _ = program src in
    Guarded_decider.decide tgds
  in
  [
    Alcotest.test_case "weakly acyclic set proves terminating" `Quick (fun () ->
        match
          decide
            "s1: emp(X) -> exists Y. reports(X,Y).\ns2: reports(X,Y) -> mgr(Y).\n\
             s3: mgr(Y) -> person(Y)."
        with
        | Guarded_decider.Terminating Guarded_decider.Weakly_acyclic -> ()
        | _ -> Alcotest.fail "expected WA termination proof");
    Alcotest.test_case "Example 5.6 set is non-terminating with acyclic evidence" `Quick
      (fun () ->
        match decide "s1: s(X,Y) -> t(X).\ns2: r(X,Y), t(Y) -> p(X,Y).\ns3: p(X,Y) -> exists Z. p(Y,Z)." with
        | Guarded_decider.Non_terminating ev ->
            Alcotest.(check bool) "derivation validates" true
              (Derivation.validate
                 (Chase_parser.Parser.parse_tgds
                    "s1: s(X,Y) -> t(X).\ns2: r(X,Y), t(Y) -> p(X,Y).\ns3: p(X,Y) -> exists Z. p(Y,Z).")
                 ev.Guarded_decider.derivation);
            Alcotest.(check bool) "abstract tree chaseable" true ev.Guarded_decider.chaseable
        | Guarded_decider.Terminating _ -> Alcotest.fail "expected non-termination"
        | Guarded_decider.No_divergence_found _ -> Alcotest.fail "search found nothing");
    Alcotest.test_case "binary tree set diverges" `Quick (fun () ->
        match
          decide
            "s1: n(X) -> exists Y. l(X,Y).\ns2: n(X) -> exists Y. r(X,Y).\n\
             s3: l(X,Y) -> n(Y).\ns4: r(X,Y) -> n(Y)."
        with
        | Guarded_decider.Non_terminating _ -> ()
        | _ -> Alcotest.fail "expected non-termination");
    Alcotest.test_case "restricted-terminating loop: no divergence found" `Quick (fun () ->
        (* node/edge loop terminates under the restricted chase but is not
           WA: the honest answer is No_divergence_found *)
        match decide "s1: node(X) -> exists Y. edge(X,Y).\ns2: edge(X,Y) -> node(X)." with
        | Guarded_decider.No_divergence_found _ -> ()
        | Guarded_decider.Terminating _ -> ()
        | Guarded_decider.Non_terminating _ -> Alcotest.fail "false divergence");
    Alcotest.test_case "unguarded input is rejected" `Quick (fun () ->
        let tgds = Chase_parser.Parser.parse_tgds "a(X,Y), b(Y,Z) -> c(X,Z)." in
        Alcotest.check_raises "invalid"
          (Invalid_argument "Guarded_decider: guarded TGDs required") (fun () ->
            ignore (Guarded_decider.decide tgds)));
  ]

let suite =
  [
    ("join-tree", join_tree_tests);
    ("chaseable", chaseable_tests);
    ("treeify", treeify_tests);
    ("abstract-join-tree", abstract_tests);
    ("guarded-decider", decider_tests);
  ]
