(* Tests for the explicit MSOL sentence φ_T of Lemma 5.12. *)

open Chase_termination

let parse = Chase_parser.Parser.parse_tgds

let linear = parse "r(X,Y) -> exists Z. r(Y,Z)."

let example_5_6 =
  parse
    "s1: s(X,Y) -> t(X).\ns2: r(X,Y), t(Y) -> p(X,Y).\ns3: p(X,Y) -> exists Z. p(Y,Z)."

let unit_tests =
  [
    Alcotest.test_case "φ_T is a closed sentence" `Quick (fun () ->
        Alcotest.(check bool) "closed (linear)" true (Msol.is_closed (Msol.phi_t linear));
        Alcotest.(check bool) "closed (Ex. 5.6)" true (Msol.is_closed (Msol.phi_t example_5_6)));
    Alcotest.test_case "Λ_T size: predicates × origins × partitions" `Quick (fun () ->
        (* linear: 1 predicate, 2 origins (F, σ₀), Bell(4)=15 partitions *)
        Alcotest.(check int) "1·2·15" 30 (Msol.alphabet_size linear));
    Alcotest.test_case "the sentence uses both quantifier orders" `Quick (fun () ->
        let fo, so = Msol.quantifier_count (Msol.phi_t linear) in
        Alcotest.(check bool) "first-order" true (fo > 0);
        Alcotest.(check bool) "second-order" true (so > 0));
    Alcotest.test_case "φ_T grows with the TGD set" `Quick (fun () ->
        let s1 = Msol.size (Msol.phi_t linear) in
        let s2 = Msol.size (Msol.phi_t example_5_6) in
        Alcotest.(check bool) "bigger set, bigger sentence" true (s2 > s1));
    Alcotest.test_case "auxiliary formulas are well-scoped" `Quick (fun () ->
        let ctx = Msol.make_context linear in
        let close2 v f = Msol.Forall2 (v, f) in
        let close v f = Msol.Forall1 (v, f) in
        Alcotest.(check bool) "ϕ_fin" true (Msol.is_closed (close2 "A" (Msol.phi_fin "A")));
        Alcotest.(check bool) "ϕ_s" true
          (Msol.is_closed (close "x" (close "y" (Msol.phi_s ctx "x" "y"))));
        Alcotest.(check bool) "ψ_b" true
          (Msol.is_closed (close "x" (close "y" (Msol.psi_b ctx "x" "y"))));
        Alcotest.(check bool) "ϕ_b" true
          (Msol.is_closed (close "x" (close "y" (Msol.phi_b ctx "x" "y")))));
    Alcotest.test_case "unguarded sets are rejected" `Quick (fun () ->
        let unguarded = parse "a(X,Y), b(Y,Z) -> c(X,Z)." in
        Alcotest.check_raises "invalid" (Invalid_argument "Msol.phi_t: guarded TGDs required")
          (fun () -> ignore (Msol.phi_t unguarded)));
    Alcotest.test_case "eq_related reads the flattened partition" `Quick (fun () ->
        (* ar = 1: slots are (f,0),(m,0); partition [0;0] relates them *)
        let l =
          { Msol.l_pred = "p"; l_org = Abstract_join_tree.F; l_eq = [| 0; 0 |] }
        in
        Alcotest.(check bool) "related" true
          (Msol.eq_related ~ar:1 l (Msol.F_side, 0) (Msol.M_side, 0));
        let l2 =
          { Msol.l_pred = "p"; l_org = Abstract_join_tree.F; l_eq = [| 0; 1 |] }
        in
        Alcotest.(check bool) "unrelated" false
          (Msol.eq_related ~ar:1 l2 (Msol.F_side, 0) (Msol.M_side, 0)));
  ]

(* Semantic validation of the Lemma 5.12 formulas: evaluate them on a
   small finite abstract join tree and compare with the ground truth
   computed directly from the decoded instance. *)
let semantic_tests =
  let setup () =
    let tgds = example_5_6 in
    let p =
      Chase_parser.Parser.parse_program
        "s1: s(X,Y) -> t(X).\ns2: r(X,Y), t(Y) -> p(X,Y).\n\
         s3: p(X,Y) -> exists Z. p(Y,Z).\nr(a,b). s(b,c)."
    in
    let db = Chase_parser.Program.database p in
    let d = Chase_engine.Restricted.run ~naming:`Canonical ~max_steps:2 tgds db in
    match Abstract_join_tree.encode tgds ~database:db d with
    | Error e -> Alcotest.failf "setup failed: %s" e
    | Ok t ->
        let ctx = Msol.make_context tgds in
        let schema = Chase_core.Schema.of_tgds tgds in
        let ar = Chase_core.Schema.max_arity schema in
        let tree = Msol_eval.of_abstract_join_tree ~ar t in
        let atoms = Abstract_join_tree.atoms_with_ids t in
        (tgds, ctx, ar, tree, atoms)
  in
  [
    Alcotest.test_case "ϕ^{i,j}_= agrees with decoded term equality" `Quick (fun () ->
        let _, ctx, ar, tree, atoms = setup () in
        List.iter
          (fun (xid, xa) ->
            List.iter
              (fun (yid, ya) ->
                for i = 0 to Chase_core.Atom.arity xa - 1 do
                  for j = 0 to Chase_core.Atom.arity ya - 1 do
                    let truth =
                      Chase_core.Term.equal (Chase_core.Atom.arg xa i)
                        (Chase_core.Atom.arg ya j)
                    in
                    let formula = Msol.phi_eq ctx i j "x" "y" in
                    let sym =
                      Msol_eval.eval ~fo:[ ("x", xid); ("y", yid) ] ~ar tree formula
                    in
                    if truth <> sym then
                      Alcotest.failf "ϕ_= disagrees at (%d.%d, %d.%d): truth %b, formula %b"
                        xid i yid j truth sym
                  done
                done)
              atoms)
          atoms);
    Alcotest.test_case "ϕ_s agrees with the concrete stop relation" `Quick (fun () ->
        let tgds, ctx, ar, tree, atoms = setup () in
        let tgds_arr = Array.of_list tgds in
        (* recompute ground truth from the decoded atoms: y generated by
           σᵣ; x stops y iff a frontier-fixing hom maps δ(y) onto δ(x) *)
        let node_org id =
          (* node ids are pre-order; recompute from the tree structure by
             evaluating the org label disjunction *)
          List.find_map
            (fun r ->
              if
                Msol_eval.eval ~fo:[ ("y", id) ] ~ar tree
                  (Msol.conj [ Msol.Eq ("y", "y") ])
                && Msol_eval.eval ~fo:[ ("y", id) ] ~ar tree
                     (* org(y) = σ_r? *)
                     (Msol.disj
                        (List.filter_map
                           (fun (l : Msol.label) ->
                             if l.Msol.l_org = Abstract_join_tree.Rule r then
                               Some (Msol.Label (l, "y"))
                             else None)
                           (Msol.alphabet tgds)))
              then Some r
              else None)
            (List.init (Array.length tgds_arr) Fun.id)
        in
        List.iter
          (fun (yid, ya) ->
            match node_org yid with
            | None -> () (* an F node: ϕ_s is false for it by construction *)
            | Some r ->
                let tgd = tgds_arr.(r) in
                let frontier =
                  List.fold_left
                    (fun acc i -> Chase_core.Term.Set.add (Chase_core.Atom.arg ya i) acc)
                    Chase_core.Term.Set.empty
                    (Chase_core.Tgd.frontier_positions tgd)
                in
                List.iter
                  (fun (xid, xa) ->
                    if xid <> yid then begin
                      let truth =
                        Chase_engine.Stop.stops ~frontier ~candidate:xa ~result:ya
                      in
                      let sym =
                        Msol_eval.eval ~fo:[ ("x", xid); ("y", yid) ] ~ar tree
                          (Msol.phi_s ctx "x" "y")
                      in
                      if truth <> sym then
                        Alcotest.failf "ϕ_s disagrees at (%d stops %d): truth %b, formula %b"
                          xid yid truth sym
                    end)
                  atoms)
          atoms);
    Alcotest.test_case "ϕ_π agrees with the concrete sideatom relation" `Quick (fun () ->
        let _, ctx, ar, tree, atoms = setup () in
        List.iter
          (fun (xid, xa) ->
            List.iter
              (fun (yid, ya) ->
                List.iter
                  (fun pi ->
                    let truth = Chase_core.Sideatom_type.is_sideatom pi xa ~of_:ya in
                    let sym =
                      Msol_eval.eval ~fo:[ ("x", xid); ("y", yid) ] ~ar tree
                        (Msol.phi_pi ctx pi "x" "y")
                    in
                    if truth <> sym then
                      Alcotest.failf "ϕ_π disagrees at (%d ⊆π %d): truth %b, formula %b" xid
                        yid truth sym)
                  (Chase_core.Sideatom_type.all_of_pair xa ~of_:ya))
              atoms)
          atoms);
    Alcotest.test_case "ψ_b includes edges and database-first pairs" `Quick (fun () ->
        let _, ctx, ar, tree, atoms = setup () in
        (* the root (id 0, an F node) is ≺b-before every generated node *)
        List.iter
          (fun (yid, _) ->
            if yid <> 0 then begin
              let sym =
                Msol_eval.eval ~fo:[ ("x", 0); ("y", yid) ] ~ar tree (Msol.psi_b ctx "x" "y")
              in
              (* 0 is an F node: ψ_b holds whenever y is generated; it
                 also holds for F children via the tree edge *)
              if not sym then
                Alcotest.failf "ψ_b misses the database-first/edge pair (0, %d)" yid
            end)
          atoms);
  ]

let suite = [ ("msol", unit_tests); ("msol-semantics", semantic_tests) ]
