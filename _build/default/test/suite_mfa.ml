(* Tests for model-faithful acyclicity (the paper's reference [16]). *)

open Chase_termination

let parse = Chase_parser.Parser.parse_tgds

let unit_tests =
  [
    Alcotest.test_case "WA data-exchange set is MFA" `Quick (fun () ->
        let tgds =
          parse
            "s1: emp(X) -> exists Y. reports(X,Y).\ns2: reports(X,Y) -> mgr(Y).\n\
             s3: mgr(Y) -> person(Y)."
        in
        Alcotest.(check bool) "mfa" true (Mfa.is_mfa tgds));
    Alcotest.test_case "successor rule has a cyclic term" `Quick (fun () ->
        match Mfa.decide (parse "r(X,Y) -> exists Z. r(Y,Z).") with
        | Mfa.Cyclic_term { var; _ } -> Alcotest.(check string) "Z nested in Z" "Z" var
        | Mfa.Mfa _ -> Alcotest.fail "expected a cyclic term"
        | Mfa.Budget _ -> Alcotest.fail "budget hit unexpectedly");
    Alcotest.test_case "the JA-not-WA set is MFA too" `Quick (fun () ->
        let tgds = parse "a1: aa(X) -> exists V. rr(X,V).\na2: rr(X,Y), bb(Y) -> aa(Y)." in
        Alcotest.(check bool) "mfa" true (Mfa.is_mfa tgds));
    Alcotest.test_case "the intro rule is MFA (skolem chase saturates)" `Quick (fun () ->
        (* skolemized: r(X,Y) → r(X, f(X)) — one new atom per X *)
        match Mfa.decide (parse "r(X,Y) -> exists Z. r(X,Z).") with
        | Mfa.Mfa _ -> ()
        | Mfa.Cyclic_term _ -> Alcotest.fail "f(X) never nests in itself"
        | Mfa.Budget _ -> Alcotest.fail "budget hit unexpectedly");
    Alcotest.test_case "restricted-only termination is beyond MFA" `Quick (fun () ->
        (* the witness-reuse ontology is restricted-terminating but its
           skolem chase diverges (f nests via g): the gap the paper's
           exact procedures fill *)
        let tgds =
          parse
            "o1: employee(E) -> exists T. member(E,T).\no2: member(E,T) -> team(T).\n\
             o3: team(T) -> exists E. member(E,T).\no4: member(E,T) -> employee(E)."
        in
        match Mfa.decide tgds with
        | Mfa.Cyclic_term _ -> ()
        | Mfa.Mfa _ -> Alcotest.fail "the skolem chase of the witness-reuse ontology diverges"
        | Mfa.Budget _ -> Alcotest.fail "budget hit unexpectedly");
    Alcotest.test_case "MFA never certifies a diverging gallery set" `Quick (fun () ->
        List.iter
          (fun (s : Chase_workload.Scenarios.t) ->
            if s.Chase_workload.Scenarios.truth = Chase_workload.Scenarios.Diverging then
              Alcotest.(check bool)
                (s.Chase_workload.Scenarios.name ^ " not MFA")
                false
                (Mfa.is_mfa (Chase_workload.Scenarios.tgds s)))
          Chase_workload.Scenarios.all);
    Alcotest.test_case "MFA subsumes JA on the gallery" `Quick (fun () ->
        List.iter
          (fun (s : Chase_workload.Scenarios.t) ->
            let tgds = Chase_workload.Scenarios.tgds s in
            if Chase_classes.Joint_acyclicity.is_jointly_acyclic tgds then
              Alcotest.(check bool) (s.Chase_workload.Scenarios.name ^ " JA⇒MFA") true
                (Mfa.is_mfa tgds))
          Chase_workload.Scenarios.all);
  ]

let property_tests =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"jointly acyclic generated sets are MFA" ~count:80
         (Gen.int_bound 100_000) (fun seed ->
           let tgds =
             Chase_workload.Tgd_gen.weakly_acyclic_set
               { Chase_workload.Tgd_gen.default with Chase_workload.Tgd_gen.seed }
           in
           (not (Chase_classes.Joint_acyclicity.is_jointly_acyclic tgds))
           || Mfa.is_mfa tgds));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"MFA sets restricted-terminate on random databases" ~count:60
         (Gen.int_bound 100_000) (fun seed ->
           let tgds =
             Chase_workload.Tgd_gen.guarded_set
               { Chase_workload.Tgd_gen.default with Chase_workload.Tgd_gen.seed; tgds = 3 }
           in
           if not (Mfa.is_mfa ~max_steps:2_000 tgds) then true
           else
             let db =
               Chase_workload.Db_gen.random
                 ~schema:(Chase_core.Schema.of_tgds tgds)
                 ~atoms:5 ~domain:3 ~seed
             in
             Chase_engine.Derivation.terminated
               (Chase_engine.Restricted.run ~max_steps:5_000 tgds db)));
  ]

let suite = [ ("mfa", unit_tests @ property_tests) ]
