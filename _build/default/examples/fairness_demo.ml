(* The Fairness Theorem, §4, step by step — including the liberal CT∀∃
   variant the paper's §7 leaves open, probed on finite objects.

     dune exec examples/fairness_demo.exe *)

open Chase_engine
open Chase_termination

let program src =
  let p = Chase_parser.Parser.parse_program src in
  (Chase_parser.Program.tgds p, Chase_parser.Program.database p)

let () =
  (* A single-head set where LIFO starves one branch. *)
  let tgds, db =
    program "s1: q(X) -> exists Y. r(X,Y).\ns2: r(X,Y) -> q(Y).\nq(a). q(b)."
  in
  Format.printf "=== single-head: the §4 construction ===@.";
  let d = Restricted.run ~strategy:Restricted.Lifo ~naming:`Canonical ~max_steps:8 tgds db in
  Format.printf "LIFO prefix (8 steps):@.%a@.@." Derivation.pp d;

  let starved = Fairness.persistent_active_triggers tgds d in
  Format.printf "persistently active (starved) triggers: %d@."
    (List.length starved);
  List.iter (fun t -> Format.printf "  %s@." (Chase_engine.Trigger.to_string t)) starved;

  (* One step of the diagonalization: serve the earliest starved trigger
     at an index past its Lemma 4.4 set A. *)
  (match starved with
  | t :: _ -> (
      match Fairness.insert_step tgds d t with
      | Ok d' ->
          Format.printf "@.after one fairification step (%d → %d steps), still valid: %b@."
            (Derivation.length d) (Derivation.length d') (Derivation.validate tgds d')
      | Error e -> Format.printf "insertion failed: %s@." e)
  | [] -> ());

  (* The equality-type bound behind Lemma 4.4. *)
  Format.printf "@.Lemma 4.4 equality-type bound for this schema: %d@.@."
    (Fairness.equality_type_bound tgds);

  (* Example B.1: multi-head, where the theorem fails. *)
  Format.printf "=== multi-head: Example B.1 ===@.";
  let tgds, db =
    program
      "m1: r(X,Y,Y) -> exists Z. r(X,Z,Y), r(Z,Y,Y).\nm2: r(X,Y,Z) -> r(Z,Z,Z).\nr(a,b,b)."
  in
  let fifo = Restricted.run ~strategy:Restricted.Fifo ~max_steps:100 tgds db in
  Format.printf "fair FIFO derivation: %s after %d steps@."
    (if Derivation.terminated fifo then "terminates" else "runs on")
    (Derivation.length fifo);
  (match Derivation_search.divergence_evidence ~max_depth:30 tgds db with
  | Some d ->
      Format.printf "an unfair infinite derivation exists: %d-step valid prefix found@."
        (Derivation.length d)
  | None -> Format.printf "no divergence found (unexpected)@.");

  (* CT∀∃, the paper's §7 question 3, on finite objects: does SOME
     derivation terminate?  For B.1: yes (the fair ones).  For the
     successor rule: no derivation ever terminates. *)
  Format.printf "@.=== the liberal variant (§7, question 3) ===@.";
  (match Derivation_search.some_terminating_derivation tgds db with
  | Some d ->
      Format.printf "B.1: some finite derivation exists (%d steps) — B.1 ∈ CTres∀∃@."
        (Derivation.length d)
  | None -> Format.printf "B.1: no finite derivation found@.");
  let tgds, db = program "r(X,Y) -> exists Z. r(Y,Z).\nr(a,b)." in
  match Derivation_search.some_terminating_derivation ~max_depth:25 ~max_states:500 tgds db with
  | Some _ -> Format.printf "successor: unexpectedly found a finite derivation@."
  | None ->
      Format.printf
        "successor rule: no finite derivation in the explored space (every order diverges)@."
