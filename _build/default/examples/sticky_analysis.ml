(* Anatomy of the sticky decision procedure (paper §6, App. D): build the
   Büchi automaton A_T for a sticky set, report per-component sizes, and
   when the language is non-empty, print the lasso and the caterpillar
   prefix it unrolls to — the paper's central objects, concretely.

     dune exec examples/sticky_analysis.exe *)

open Chase_termination

let analyze title src =
  Format.printf "=== %s ===@.%s@." title (String.trim src);
  let tgds = Chase_parser.Parser.parse_tgds src in
  let ctx = Sticky_automaton.make_context tgds in
  let alphabet = Sticky_automaton.alphabet ctx in
  Format.printf "|Λ_T| = %d letters, %d start pairs (e₀, Π₀)@." (List.length alphabet)
    (List.length (Sticky_automaton.start_pairs ctx));
  (* per-component reachable sizes *)
  let total = ref 0 in
  List.iter
    (fun (_, a) ->
      let s = Chase_automata.Buchi.stats a in
      total := !total + s.Chase_automata.Buchi.states)
    (Sticky_automaton.components ctx);
  Format.printf "reachable product states across components: %d@." !total;
  (match Sticky_decider.decide tgds with
  | Sticky_decider.All_terminating -> Format.printf "verdict: L(A_T) = ∅ — T ∈ CTres∀∀@."
  | Sticky_decider.Inconclusive m -> Format.printf "verdict: inconclusive (%s)@." m
  | Sticky_decider.Non_terminating cert ->
      let tgd_arr = Array.of_list tgds in
      let show letters =
        String.concat " " (List.map (Sticky_automaton.letter_to_string tgd_arr) letters)
      in
      Format.printf "verdict: non-terminating@.";
      Format.printf "  start: %s, relay class %d@."
        (Chase_core.Equality_type.to_string cert.Sticky_decider.start_et)
        cert.Sticky_decider.start_class;
      Format.printf "  lasso prefix: %s@." (show cert.Sticky_decider.lasso.Chase_automata.Buchi.prefix);
      Format.printf "  lasso cycle:  %s@." (show cert.Sticky_decider.lasso.Chase_automata.Buchi.cycle);
      Format.printf "  unrolled caterpillar prefix:@.  %a@." Caterpillar.pp
        cert.Sticky_decider.prefix;
      (match Sticky_decider.check_certificate tgds cert with
      | Ok () -> Format.printf "  certificate validated against Defs 6.2/6.3/6.6 ✓@."
      | Error e -> Format.printf "  CERTIFICATE INVALID: %s@." e));
  Format.printf "@."

let () =
  analyze "terminating: the §1 intro example" "r(X,Y) -> exists Z. r(X,Z).";
  analyze "diverging: fresh successor" "r(X,Y) -> exists Z. r(Y,Z).";
  analyze "diverging: two-rule relay"
    "s1: p(X) -> exists Y. q(X,Y).\ns2: q(X,Y) -> p(Y).";
  analyze "terminating: the paper's §2 sticky pair"
    "s1: t(X,Y,Z) -> exists W. s(Y,W).\ns2: r(X,Y), p(Y,Z) -> exists W. t(X,Y,W)."
