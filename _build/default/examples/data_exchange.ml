(* Data exchange (paper §1, [Fagin et al. TCS'05]): materialize a
   universal solution for a source database under source-to-target TGDs,
   then answer target queries certainly.

     dune exec examples/data_exchange.exe *)

open Chase_core

let mapping =
  {|% Source schema: employee(name, dept) ; dept_city(dept, city)
    % Target schema: works_in(name, city) ; office(name, desk) ; city(c)

    m1: employee(X,D), dept_city(D,C) -> works_in(X,C).
    m2: employee(X,D) -> exists K. office(X,K).
    m3: works_in(X,C) -> city(C).

    employee(ada, maths). employee(alan, crypto).
    dept_city(maths, cambridge). dept_city(crypto, bletchley).
|}

let () =
  let program = Chase_parser.Parser.parse_program mapping in
  let tgds = Chase_parser.Program.tgds program in
  let source = Chase_parser.Program.database program in

  (* The mapping is weakly acyclic, hence chase-terminating on every
     source database — verified, not assumed. *)
  (match Chase_termination.Decider.decide tgds with
  | { Chase_termination.Decider.answer = Chase_termination.Decider.Terminating; _ } ->
      Format.printf "mapping is all-instances terminating ✓@.@."
  | r -> Format.printf "unexpected verdict:@.%a@.@." Chase_termination.Decider.pp r);

  (* Materialize the universal solution. *)
  let solution = Chase_engine.Restricted.run_exn tgds source in
  Format.printf "Universal solution (%d atoms):@.%a@.@." (Instance.cardinal solution)
    Instance.pp solution;

  (* The solution is a model and embeds into the oblivious-chase result:
     universality in action. *)
  assert (Chase_engine.Model_check.is_model ~database:source ~tgds solution);

  (* Certain answers: nulls (the invented desks) are not certain. *)
  let q1 = Chase_query.Conjunctive_query.parse "works_in(X,C) -> ans(X,C)." in
  let r1 = Chase_query.Certain_answers.compute ~tgds ~database:source q1 in
  Format.printf "certain answers to %a:@." Chase_query.Conjunctive_query.pp q1;
  List.iter
    (fun t -> Format.printf "  %s@." (Chase_query.Conjunctive_query.tuple_to_string t))
    r1.Chase_query.Certain_answers.answers;

  let q2 = Chase_query.Conjunctive_query.parse "office(X,K) -> ans(K)." in
  let r2 = Chase_query.Certain_answers.compute ~tgds ~database:source q2 in
  Format.printf "certain answers to %a: %d (desks are labeled nulls — none certain)@."
    Chase_query.Conjunctive_query.pp q2
    (List.length r2.Chase_query.Certain_answers.answers);

  (* A join query across the two target relations: who both works
     somewhere and has an office?  The office's desk stays unprojected. *)
  let q4 = Chase_query.Conjunctive_query.parse "works_in(X,C), office(X,K) -> ans(X)." in
  let r4 = Chase_query.Certain_answers.compute ~tgds ~database:source q4 in
  Format.printf "employees with both a city and an office: %s@."
    (String.concat ", "
       (List.map Chase_query.Conjunctive_query.tuple_to_string
          r4.Chase_query.Certain_answers.answers))
