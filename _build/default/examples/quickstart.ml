(* Quickstart: parse a program, classify the TGDs, run the restricted
   chase, and decide all-instances termination.

     dune exec examples/quickstart.exe *)

let program_text =
  {|% A tiny ontology with one existential rule and one projection rule.
    s1: person(X) -> exists Y. parent(X,Y).
    s2: parent(X,Y) -> person(Y).

    person(ada).
|}

let () =
  (* 1. Parse: a program is a TGD set plus a database of facts. *)
  let program = Chase_parser.Parser.parse_program program_text in
  let tgds = Chase_parser.Program.tgds program in
  let database = Chase_parser.Program.database program in
  Format.printf "TGDs:@.%a@.@.Database: %a@.@." Chase_core.Tgd.pp_set tgds
    Chase_core.Instance.pp database;

  (* 2. Classify: which of the paper's classes does the set belong to? *)
  let report = Chase_classes.Classification.classify tgds in
  Format.printf "%a@.@." Chase_classes.Classification.pp report;

  (* 3. Chase: the restricted (standard) chase applies only violated
     TGDs.  Here it diverges — each person needs a fresh parent — so we
     run with a small budget and inspect the prefix. *)
  let derivation = Chase_engine.Restricted.run ~max_steps:6 tgds database in
  Format.printf "Restricted chase (budget 6):@.%a@.@." Chase_engine.Derivation.pp derivation;

  (* 4. Decide termination for *all* databases (the paper's problem).
     The set is sticky, so the Büchi-automaton procedure of §6 applies
     and is sound and complete. *)
  let verdict = Chase_termination.Decider.decide tgds in
  Format.printf "%a@." Chase_termination.Decider.pp verdict;

  (* 5. Contrast with a set the chase closes immediately. *)
  let closed = Chase_parser.Parser.parse_tgds "r(X,Y) -> exists Z. r(X,Z)." in
  let verdict' = Chase_termination.Decider.decide closed in
  Format.printf "@.For r(X,Y) -> exists Z. r(X,Z):@.%a@." Chase_termination.Decider.pp
    verdict'
