(* Ontology-mediated query answering with guarded TGDs (paper §1, §5):
   a guarded ontology whose restricted chase terminates even though the
   oblivious chase does not — materialization is only safe because the
   engine is restricted, and only known-safe because of the termination
   decision.

     dune exec examples/ontology_reasoning.exe *)

open Chase_core

let ontology =
  {|% Employees belong to teams, teams have members, members are
    % employees.  Both existential rules are satisfied by the membership
    % atom the other one creates, so the restricted chase closes the loop
    % after one round — while the oblivious chase spins forever.
    o1: employee(E) -> exists T. member(E,T).
    o2: member(E,T) -> team(T).
    o3: team(T) -> exists E. member(E,T).
    o4: member(E,T) -> employee(E).

    employee(margaret).
    team(apollo).
|}

let () =
  let program = Chase_parser.Parser.parse_program ontology in
  let tgds = Chase_parser.Program.tgds program in
  let database = Chase_parser.Program.database program in

  let report = Chase_classes.Classification.classify tgds in
  Format.printf "%a@.@." Chase_classes.Classification.pp report;

  (* All-instances termination: the set is linear (⊆ guarded) and sticky,
     so both of the paper's deciders apply; the facade picks the sticky
     one.  Note it is NOT weakly acyclic — the baseline cannot certify
     it, the paper's machinery can. *)
  let verdict = Chase_termination.Decider.decide tgds in
  Format.printf "%a@.@." Chase_termination.Decider.pp verdict;

  (* Materialize and compare with the oblivious chase. *)
  let restricted = Chase_engine.Restricted.run_exn tgds database in
  Format.printf "restricted chase: %d atoms@." (Instance.cardinal restricted);
  let oblivious = Chase_engine.Oblivious.run ~max_steps:200 tgds database in
  Format.printf "oblivious chase within 200 steps: %d atoms, saturated: %b@.@."
    (Instance.cardinal oblivious.Chase_engine.Oblivious.instance)
    oblivious.Chase_engine.Oblivious.saturated;

  Format.printf "materialized instance:@.%a@.@." Instance.pp restricted;

  (* Ontological query answering over the materialization. *)
  let queries =
    [
      "member(E,T) -> ans(E,T).";
      "employee(E), member(E,T) -> ans(E).";
      "team(T) -> ans(T).";
    ]
  in
  List.iter
    (fun src ->
      let q = Chase_query.Conjunctive_query.parse src in
      match Chase_query.Certain_answers.compute_checked ~tgds ~database q with
      | Ok r ->
          Format.printf "%a@.  certain: {%s}@." Chase_query.Conjunctive_query.pp q
            (String.concat "; "
               (List.map Chase_query.Conjunctive_query.tuple_to_string
                  r.Chase_query.Certain_answers.answers))
      | Error e -> Format.printf "%a@.  refused: %s@." Chase_query.Conjunctive_query.pp q e)
    queries;

  (* The same pipeline refuses a diverging ontology. *)
  let bad = Chase_parser.Parser.parse_tgds "succ(X,Y) -> exists Z. succ(Y,Z)." in
  let q = Chase_query.Conjunctive_query.parse "succ(X,Y) -> ans(X)." in
  (match
     Chase_query.Certain_answers.compute_checked ~tgds:bad
       ~database:(Instance.of_list [ Atom.make "succ" [ Term.Const "o"; Term.Const "i" ] ])
       q
   with
  | Ok _ -> Format.printf "@.unexpected success on the diverging ontology@."
  | Error e -> Format.printf "@.diverging ontology: %s@." e)
