examples/chase_variants.ml: Atom Chase_core Chase_engine Chase_parser Core_chase Derivation Format Instance Model_check Oblivious Parallel Printf Real_oblivious Restricted Sequentialize Term
