examples/sticky_analysis.mli:
