examples/data_exchange.ml: Chase_core Chase_engine Chase_parser Chase_query Chase_termination Format Instance List String
