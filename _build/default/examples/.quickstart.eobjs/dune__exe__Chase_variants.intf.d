examples/chase_variants.mli:
