examples/quickstart.mli:
