examples/termination_gallery.mli:
