examples/ontology_reasoning.ml: Atom Chase_classes Chase_core Chase_engine Chase_parser Chase_query Chase_termination Format Instance List String Term
