(* A tour of the five chase engines on one scenario — the §3 landscape
   (restricted, oblivious, semi-oblivious, real oblivious) plus the
   App. C parallel chase and the core chase baseline.

     dune exec examples/chase_variants.exe *)

open Chase_core
open Chase_engine

let scenario =
  {|o1: employee(E) -> exists T. member(E,T).
    o2: member(E,T) -> team(T).
    o3: team(T) -> exists E. member(E,T).
    o4: member(E,T) -> employee(E).

    employee(ada). employee(grace). team(apollo).
|}

let () =
  let p = Chase_parser.Parser.parse_program scenario in
  let tgds = Chase_parser.Program.tgds p in
  let db = Chase_parser.Program.database p in
  Format.printf "database: %a@.@." Instance.pp db;

  let row name atoms note = Format.printf "  %-18s %-10s %s@." name atoms note in
  Format.printf "engine comparison:@.";
  row "engine" "atoms" "notes";
  row "------" "-----" "-----";

  (* restricted: applies only violated TGDs — terminates, small *)
  let restricted = Restricted.run_exn tgds db in
  row "restricted" (string_of_int (Instance.cardinal restricted)) "terminates (Def 3.1 activeness)";

  (* parallel (weakly restricted, Def C.4): all active triggers per round *)
  let par = Parallel.run tgds db in
  row "parallel"
    (string_of_int (Instance.cardinal par.Parallel.final))
    (Printf.sprintf "%d rounds; may overshoot the sequential result" (Parallel.round_count par));

  (* sequentialized parallel run (Extract(K,T), App. C.2) *)
  let seq = Sequentialize.parallel_then_extract tgds db in
  row "extract(parallel)"
    (string_of_int (Instance.cardinal (Derivation.final seq.Sequentialize.derivation)))
    (Printf.sprintf "born %d, stopped %d" seq.Sequentialize.born seq.Sequentialize.stopped);

  (* core chase: minimal universal model *)
  let core = Core_chase.run tgds db in
  row "core chase"
    (string_of_int (Instance.cardinal core.Core_chase.final))
    "the unique minimal universal model";

  (* semi-oblivious and oblivious: diverge on this set *)
  let semi = Oblivious.run ~variant:Oblivious.Semi_oblivious ~max_steps:500 tgds db in
  row "semi-oblivious"
    (Printf.sprintf ">=%d" (Instance.cardinal semi.Oblivious.instance))
    "diverges: refires on invented witnesses";
  let obl = Oblivious.run ~max_steps:500 tgds db in
  row "oblivious"
    (Printf.sprintf ">=%d" (Instance.cardinal obl.Oblivious.instance))
    "diverges even faster";

  (* all finite results are models, and all are hom-equivalent *)
  assert (Model_check.is_model ~database:db ~tgds restricted);
  assert (Model_check.is_model ~database:db ~tgds par.Parallel.final);
  assert (Model_check.is_model ~database:db ~tgds core.Core_chase.final);
  assert (Model_check.hom_equivalent restricted core.Core_chase.final);
  Format.printf "@.all finite results are models and homomorphically equivalent ✓@.@.";

  (* the real oblivious chase of Example 3.2: a multiset with parents *)
  Format.printf "real oblivious chase of Example 3.2 (depth <= 3):@.";
  let p2 =
    Chase_parser.Parser.parse_program
      "s1: p(X,Y) -> r(X,Y).\ns2: p(X,Y) -> s(X).\ns3: r(X,Y) -> s(X).\n\
       s4: s(X) -> exists Y. r(X,Y).\np(a,b)."
  in
  let g =
    Real_oblivious.build ~max_depth:3 ~max_nodes:100
      (Chase_parser.Program.tgds p2)
      (Chase_parser.Program.database p2)
  in
  Format.printf "%a@." Real_oblivious.pp g;
  Format.printf "copies of s(a): %d — the ambiguity of Example 3.2, disambiguated@."
    (Real_oblivious.copies g (Atom.make "s" [ Term.Const "a" ]))
