(* Weak acyclicity [Fagin et al., TCS'05] — the standard sufficient
   condition for all-instances termination of the restricted (standard)
   chase, used here as the baseline the paper's §1.1 discusses.  (It does
   not bound the oblivious chase: r(X,Y) → ∃Z r(X,Z) is weakly acyclic
   yet oblivious-diverging.)

   The position dependency graph has the schema positions as vertices.
   For every TGD σ, every frontier variable x occurring in the body at
   position πb and in the head at position πh contributes a normal edge
   πb → πh; and for every existential variable z at head position πz, a
   special edge πb → πz for every body position πb of every frontier
   variable of σ.  T is weakly acyclic iff no cycle goes through a
   special edge, iff no SCC contains a special edge. *)

open Chase_core

type edge_kind = Normal | Special

type t = {
  positions : (string * int) array;
  index_of : (string * int, int) Hashtbl.t;
  edges : (int * edge_kind * int) list;  (* from, kind, to *)
}

let positions g = Array.to_list g.positions
let edges g = g.edges

let build tgds =
  let schema = Schema.of_tgds tgds in
  let positions = Array.of_list (Schema.positions schema) in
  let index_of = Hashtbl.create 32 in
  Array.iteri (fun i p -> Hashtbl.add index_of p i) positions;
  let idx p = Hashtbl.find index_of p in
  let edges = ref [] in
  let add_edge a kind b = edges := (idx a, kind, idx b) :: !edges in
  List.iter
    (fun tgd ->
      let body = Tgd.body tgd and head = Tgd.head tgd in
      let frontier = Tgd.frontier tgd in
      let existentials = Tgd.existential_vars tgd in
      let body_positions_of x =
        List.concat_map
          (fun a -> List.map (fun i -> (Atom.pred a, i)) (Atom.positions_of a x))
          body
      in
      let head_positions_of x =
        List.concat_map
          (fun a -> List.map (fun i -> (Atom.pred a, i)) (Atom.positions_of a x))
          head
      in
      Term.Set.iter
        (fun x ->
          let bps = body_positions_of x in
          (* normal edges for the frontier variable itself *)
          List.iter
            (fun bp -> List.iter (fun hp -> add_edge bp Normal hp) (head_positions_of x))
            bps;
          (* special edges into every existential position *)
          Term.Set.iter
            (fun z ->
              List.iter
                (fun bp -> List.iter (fun zp -> add_edge bp Special zp) (head_positions_of z))
                bps)
            existentials)
        frontier)
    tgds;
  { positions; index_of; edges = !edges }

(* Tarjan SCC over the dependency graph. *)
let sccs g =
  let n = Array.length g.positions in
  let adj = Array.make n [] in
  List.iter (fun (a, _, b) -> adj.(a) <- b :: adj.(a)) g.edges;
  let index = Array.make n (-1) and low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 and comps = ref [] in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      adj.(v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strong v
  done;
  !comps

(* A special edge inside one SCC witnesses non-weak-acyclicity. *)
let special_edge_in_cycle g =
  let comp_of = Hashtbl.create 32 in
  List.iteri (fun c vs -> List.iter (fun v -> Hashtbl.add comp_of v c) vs) (sccs g);
  List.find_opt
    (fun (a, kind, b) ->
      kind = Special && Hashtbl.find comp_of a = Hashtbl.find comp_of b)
    g.edges

let is_weakly_acyclic tgds = Option.is_none (special_edge_in_cycle (build tgds))

(* Diagnostics: the offending special edge as schema positions. *)
let violation tgds =
  let g = build tgds in
  Option.map
    (fun (a, _, b) -> (g.positions.(a), g.positions.(b)))
    (special_edge_in_cycle g)
