(* Joint acyclicity [Krötzsch & Rudolph, IJCAI'11] — a strictly more
   general sufficient condition for chase termination than weak
   acyclicity, used as the second baseline tier in experiment E7
   (WA ⊂ JA ⊂ the paper's exact procedures).

   For each existentially quantified variable y of a rule ρ, compute the
   set Pos(y) of schema positions where the nulls invented for y can ever
   appear: initially the head positions of y, closed under propagation —
   whenever every body occurrence of a frontier variable x of some rule
   ρ' lies in Pos(y), the head positions of x join Pos(y).  The JA
   dependency graph has the existential variables as vertices and an edge
   y → y' when the rule of y' has a frontier variable all of whose body
   occurrences lie in Pos(y) — firing for y-nulls can feed the rule that
   invents y'.  T is jointly acyclic iff this graph is acyclic. *)

open Chase_core

module PosSet = Set.Make (struct
  type t = string * int

  let compare (p1, i1) (p2, i2) =
    let c = String.compare p1 p2 in
    if c <> 0 then c else Int.compare i1 i2
end)

type exvar = { rule : int; var : string }

type t = {
  exvars : exvar array;
  pos : PosSet.t array;  (* Pos(y) per existential variable *)
  edges : (int * int) list;
}

let positions_in_atoms atoms v =
  List.concat_map
    (fun a -> List.map (fun i -> (Atom.pred a, i)) (Atom.positions_of a (Term.Var v)))
    atoms

let build tgds =
  let tgds_arr = Array.of_list tgds in
  let exvars =
    Array.to_list tgds_arr
    |> List.mapi (fun r tgd ->
           Term.Set.elements (Tgd.existential_vars tgd)
           |> List.filter_map (fun t ->
                  match t with Term.Var v -> Some { rule = r; var = v } | _ -> None))
    |> List.concat |> Array.of_list
  in
  let n = Array.length exvars in
  let pos = Array.make n PosSet.empty in
  (* initial: head positions of y *)
  Array.iteri
    (fun k ev ->
      pos.(k) <-
        PosSet.of_list (positions_in_atoms (Tgd.head tgds_arr.(ev.rule)) ev.var))
    exvars;
  (* closure: frontier variables fully covered propagate their head
     positions *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun k _ ->
        Array.iteri
          (fun r tgd ->
            ignore r;
            Term.Set.iter
              (fun x ->
                match x with
                | Term.Var v ->
                    let body_pos = positions_in_atoms (Tgd.body tgd) v in
                    if
                      body_pos <> []
                      && List.for_all (fun p -> PosSet.mem p pos.(k)) body_pos
                    then begin
                      let head_pos = PosSet.of_list (positions_in_atoms (Tgd.head tgd) v) in
                      if not (PosSet.subset head_pos pos.(k)) then begin
                        pos.(k) <- PosSet.union head_pos pos.(k);
                        changed := true
                      end
                    end
                | _ -> ())
              (Tgd.frontier tgd))
          tgds_arr)
      exvars
  done;
  (* edges: y → y' when y-nulls can reach every body occurrence of some
     frontier variable of y''s rule *)
  let edges = ref [] in
  Array.iteri
    (fun k _ ->
      Array.iteri
        (fun k' ev' ->
          let tgd' = tgds_arr.(ev'.rule) in
          let feeds =
            Term.Set.exists
              (fun x ->
                match x with
                | Term.Var v ->
                    let body_pos = positions_in_atoms (Tgd.body tgd') v in
                    body_pos <> [] && List.for_all (fun p -> PosSet.mem p pos.(k)) body_pos
                | _ -> false)
              (Tgd.frontier tgd')
          in
          if feeds then edges := (k, k') :: !edges)
        exvars)
    exvars;
  { exvars; pos = Array.copy pos; edges = !edges }

(* Cycle detection over the JA graph. *)
let has_cycle g =
  let n = Array.length g.exvars in
  let adj = Array.make n [] in
  List.iter (fun (a, b) -> adj.(a) <- b :: adj.(a)) g.edges;
  let color = Array.make n 0 in
  let rec dfs v =
    if color.(v) = 1 then true
    else if color.(v) = 2 then false
    else begin
      color.(v) <- 1;
      let c = List.exists dfs adj.(v) in
      color.(v) <- 2;
      c
    end
  in
  let rec any v = v < n && (dfs v || any (v + 1)) in
  any 0

let is_jointly_acyclic tgds = not (has_cycle (build tgds))

(* Diagnostics: an edge on a cycle, as (rule, var) pairs. *)
let violation tgds =
  let g = build tgds in
  if not (has_cycle g) then None
  else
    (* find a self-reachable vertex *)
    let n = Array.length g.exvars in
    let adj = Array.make n [] in
    List.iter (fun (a, b) -> adj.(a) <- b :: adj.(a)) g.edges;
    let reaches src dst =
      let seen = Array.make n false in
      let rec go v =
        List.exists (fun w -> w = dst || ((not seen.(w)) && (seen.(w) <- true; go w))) adj.(v)
      in
      go src
    in
    let rec find k = if k >= n then None else if reaches k k then Some g.exvars.(k) else find (k + 1) in
    find 0
