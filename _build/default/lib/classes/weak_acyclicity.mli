(** Weak acyclicity \[Fagin et al., TCS'05\]: the classic sufficient
    condition for all-instances termination of the restricted chase, the
    baseline of the paper's §1.1 discussion. *)

open Chase_core

type edge_kind = Normal | Special

type t
(** The position dependency graph. *)

val build : Tgd.t list -> t
val positions : t -> (string * int) list
val edges : t -> (int * edge_kind * int) list

(** Strongly connected components (vertex index lists). *)
val sccs : t -> int list list

(** A special edge lying in a cycle, if any. *)
val special_edge_in_cycle : t -> (int * edge_kind * int) option

val is_weakly_acyclic : Tgd.t list -> bool

(** The offending special edge as schema positions, for diagnostics. *)
val violation : Tgd.t list -> ((string * int) * (string * int)) option
