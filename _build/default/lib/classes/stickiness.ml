(* Stickiness (paper §2): the marking procedure.

   Working on a variable-disjoint copy of the TGD set (assumed w.l.o.g. in
   the paper), a body variable x of σ is *marked* when

     (1) x does not occur in head(σ); or
     (2) head(σ) = R(t̄), x ∈ t̄, and there is σ' with an atom R(t̄') in its
         body such that every variable of R(t̄') at a position of
         pos(R(t̄), x) is marked.

   T is sticky iff no TGD has a marked variable occurring twice in its
   body.  The marking also determines the *immortal* positions used by the
   sticky decision procedure (App. D.2): the i-th position of head(σ) is
   immortal iff the variable there is NOT marked — a term at an immortal
   position is propagated by every later trigger. *)

open Chase_core

type t = {
  tgds : Tgd.t array;  (* the original TGDs, in input order *)
  marked : (int * string, unit) Hashtbl.t;  (* (tgd index, original var name) *)
}

let require_single_head tgds =
  List.iter
    (fun t ->
      if not (Tgd.is_single_head t) then
        invalid_arg "Stickiness: single-head TGDs required")
    tgds

(* Count occurrences of a variable in a list of atoms. *)
let occurrences v atoms =
  List.fold_left
    (fun n a ->
      Array.fold_left
        (fun n t -> match t with Term.Var w when String.equal w v -> n + 1 | _ -> n)
        n (Atom.args_a a))
    0 atoms

let marking tgds =
  require_single_head tgds;
  let tgds_arr = Array.of_list tgds in
  let n = Array.length tgds_arr in
  let marked = Hashtbl.create 64 in
  let is_marked i v = Hashtbl.mem marked (i, v) in
  let mark i v = if not (is_marked i v) then (Hashtbl.add marked (i, v) (); true) else false in
  (* Base step: body variables absent from the head. *)
  for i = 0 to n - 1 do
    let t = tgds_arr.(i) in
    let head_vars = Tgd.head_vars t in
    Term.Set.iter
      (fun x ->
        match x with
        | Term.Var v -> if not (Term.Set.mem x head_vars) then ignore (mark i v)
        | Term.Const _ | Term.Null _ -> ())
      (Tgd.body_vars t)
  done;
  (* Inductive step, to fixpoint: propagate head-to-body. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let t = tgds_arr.(i) in
      let head = Tgd.head_atom t in
      let hpred = Atom.pred head in
      Term.Set.iter
        (fun x ->
          match x with
          | Term.Var v when not (is_marked i v) ->
              let positions = Atom.positions_of head x in
              if positions <> [] then
                (* Look for σ' with a body atom R(t̄') all of whose
                   variables at [positions] are marked in σ'. *)
                let witnessed = ref false in
                for j = 0 to n - 1 do
                  if
                    (not !witnessed)
                    && List.exists
                         (fun b ->
                           String.equal (Atom.pred b) hpred
                           && Atom.arity b = Atom.arity head
                           && List.for_all
                                (fun p ->
                                  match Atom.arg b p with
                                  | Term.Var w -> is_marked j w
                                  | Term.Const _ | Term.Null _ -> false)
                                positions)
                         (Tgd.body tgds_arr.(j))
                  then witnessed := true
                done;
                let witnessed = !witnessed in
                if witnessed && mark i v then changed := true
          | _ -> ())
        (Tgd.body_vars t)
    done
  done;
  { tgds = tgds_arr; marked }

let is_marked m ~tgd_index ~var = Hashtbl.mem m.marked (tgd_index, var)

let marked_vars m tgd_index =
  Hashtbl.fold (fun (i, v) () acc -> if i = tgd_index then v :: acc else acc) m.marked []
  |> List.sort String.compare

(* First (TGD, variable) with a marked variable occurring twice in the
   body — the stickiness violation witness. *)
let violation m =
  let n = Array.length m.tgds in
  let rec go i =
    if i >= n then None
    else
      let t = m.tgds.(i) in
      let body = Tgd.body t in
      let bad =
        Term.Set.elements (Tgd.body_vars t)
        |> List.find_opt (fun x ->
               match x with
               | Term.Var v -> is_marked m ~tgd_index:i ~var:v && occurrences v body >= 2
               | Term.Const _ | Term.Null _ -> false)
      in
      match bad with
      | Some (Term.Var v) -> Some (t, v)
      | _ -> go (i + 1)
  in
  go 0

let is_sticky tgds =
  match tgds with [] -> true | _ -> Option.is_none (violation (marking tgds))

(* Immortality (App. D.2): the i-th position (0-based) of head(σ) is
   immortal iff the variable there is not marked.  (Existential variables
   in the head: an existential variable is not a body variable; marking is
   defined on body variables.  An existential variable never "survives
   from the body", and the automaton only queries positions that received
   a propagated term, which are frontier positions; for uniformity we
   report existential positions as mortal.) *)
let immortal_positions m tgd_index =
  let t = m.tgds.(tgd_index) in
  let head = Tgd.head_atom t in
  let fr = Tgd.frontier t in
  Array.init (Atom.arity head) (fun i ->
      match Atom.arg head i with
      | Term.Var v -> Term.Set.mem (Term.Var v) fr && not (is_marked m ~tgd_index ~var:v)
      | Term.Const _ | Term.Null _ -> false)

let tgd m i = m.tgds.(i)
let tgd_count m = Array.length m.tgds

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i t ->
      Format.fprintf ppf "%s: marked {%s}@," (Tgd.to_string t)
        (String.concat ", " (marked_vars m i)))
    m.tgds;
  Format.fprintf ppf "@]"
