(** Joint acyclicity \[Krötzsch & Rudolph, IJCAI'11\]: a sufficient
    condition for all-instances chase termination strictly more general
    than weak acyclicity — the second baseline tier of experiment E7. *)

open Chase_core

type exvar = { rule : int; var : string }

type t
(** The JA dependency graph over existential variables. *)

val build : Tgd.t list -> t
val has_cycle : t -> bool
val is_jointly_acyclic : Tgd.t list -> bool

(** An existential variable on a cycle, if any. *)
val violation : Tgd.t list -> exvar option
