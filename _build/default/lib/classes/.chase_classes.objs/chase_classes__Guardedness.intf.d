lib/classes/guardedness.mli: Atom Chase_core Tgd
