lib/classes/weak_acyclicity.mli: Chase_core Tgd
