lib/classes/guardedness.ml: Atom Chase_core List Option Term Tgd
