lib/classes/joint_acyclicity.ml: Array Atom Chase_core Int List Set String Term Tgd
