lib/classes/classification.mli: Chase_core Format Schema Tgd
