lib/classes/stickiness.mli: Chase_core Format Tgd
