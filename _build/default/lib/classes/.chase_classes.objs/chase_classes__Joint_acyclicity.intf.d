lib/classes/joint_acyclicity.mli: Chase_core Tgd
