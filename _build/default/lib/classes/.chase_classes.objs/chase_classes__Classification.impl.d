lib/classes/classification.ml: Chase_core Format Guardedness Joint_acyclicity List Option Schema Stickiness Tgd Weak_acyclicity
