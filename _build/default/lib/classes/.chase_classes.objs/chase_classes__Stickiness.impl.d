lib/classes/stickiness.ml: Array Atom Chase_core Format Hashtbl List Option String Term Tgd
