lib/classes/weak_acyclicity.ml: Array Atom Chase_core Hashtbl List Option Schema Term Tgd
