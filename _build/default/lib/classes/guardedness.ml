(* Guardedness (paper §2): a TGD is guarded when some body atom contains
   every universally quantified (body) variable.  When several atoms
   qualify, the left-most is *the* guard.  Linear TGDs (one body atom) are
   the special case with a trivially unique guard. *)

open Chase_core

(* Index of guard(σ) in the body, left-most qualifying atom. *)
let guard_index tgd =
  let body_vars = Tgd.body_vars tgd in
  let rec go i = function
    | [] -> None
    | a :: rest ->
        if Term.Set.subset body_vars (Atom.var_set a) then Some i else go (i + 1) rest
  in
  go 0 (Tgd.body tgd)

let guard tgd = Option.map (fun i -> List.nth (Tgd.body tgd) i) (guard_index tgd)

let is_guarded_tgd tgd = Option.is_some (guard_index tgd)

let is_guarded tgds = List.for_all is_guarded_tgd tgds

(* The side atoms: body atoms other than the guard. *)
let side_atoms tgd =
  match guard_index tgd with
  | None -> invalid_arg "Guardedness.side_atoms: not guarded"
  | Some g -> List.filteri (fun i _ -> i <> g) (Tgd.body tgd)

let is_linear_tgd tgd = match Tgd.body tgd with [ _ ] -> true | _ -> false

let is_linear tgds = List.for_all is_linear_tgd tgds

(* First offending TGD, for diagnostics. *)
let violation tgds = List.find_opt (fun t -> not (is_guarded_tgd t)) tgds
