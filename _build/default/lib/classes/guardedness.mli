(** Guardedness and linearity (paper §2). *)

open Chase_core

(** Index in the body of guard(σ) — the left-most atom containing all body
    variables — or [None] when the TGD is unguarded. *)
val guard_index : Tgd.t -> int option

val guard : Tgd.t -> Atom.t option
val is_guarded_tgd : Tgd.t -> bool

(** Membership in the class G (applied TGD-wise). *)
val is_guarded : Tgd.t list -> bool

(** Body atoms other than the guard.
    @raise Invalid_argument when unguarded. *)
val side_atoms : Tgd.t -> Atom.t list

val is_linear_tgd : Tgd.t -> bool
val is_linear : Tgd.t list -> bool

(** First unguarded TGD, for diagnostics. *)
val violation : Tgd.t list -> Tgd.t option
