(* A one-stop classification report for a TGD set: which of the paper's
   classes it belongs to, with witnesses for the violations. *)

open Chase_core

type report = {
  tgd_count : int;
  schema : Schema.t;
  max_arity : int;
  single_head : bool;
  linear : bool;
  guarded : bool;
  sticky : bool;
  weakly_acyclic : bool;
  jointly_acyclic : bool;
  guard_violation : Tgd.t option;
  sticky_violation : (Tgd.t * string) option;
  wa_violation : ((string * int) * (string * int)) option;
}

let classify tgds =
  let single_head = List.for_all Tgd.is_single_head tgds in
  let schema = Schema.of_tgds tgds in
  let sticky_violation =
    if single_head && tgds <> [] then Stickiness.violation (Stickiness.marking tgds) else None
  in
  {
    tgd_count = List.length tgds;
    schema;
    max_arity = Schema.max_arity schema;
    single_head;
    linear = Guardedness.is_linear tgds;
    guarded = Guardedness.is_guarded tgds;
    sticky = (if single_head then Option.is_none sticky_violation else false);
    weakly_acyclic = Weak_acyclicity.is_weakly_acyclic tgds;
    jointly_acyclic = Joint_acyclicity.is_jointly_acyclic tgds;
    guard_violation = Guardedness.violation tgds;
    sticky_violation;
    wa_violation = Weak_acyclicity.violation tgds;
  }

let pp ppf r =
  let b = function true -> "yes" | false -> "no" in
  Format.fprintf ppf
    "@[<v>TGDs: %d over %s (max arity %d)@,single-head: %s@,linear: %s@,guarded: \
     %s@,sticky: %s@,weakly acyclic: %s@,jointly acyclic: %s@]"
    r.tgd_count (Schema.to_string r.schema) r.max_arity (b r.single_head) (b r.linear)
    (b r.guarded) (b r.sticky) (b r.weakly_acyclic) (b r.jointly_acyclic)
