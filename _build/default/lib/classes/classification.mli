(** A one-stop classification report for a TGD set: membership in the
    paper's classes, with violation witnesses for diagnostics. *)

open Chase_core

type report = {
  tgd_count : int;
  schema : Schema.t;
  max_arity : int;
  single_head : bool;
  linear : bool;
  guarded : bool;
  sticky : bool;  (** false for multi-head sets (stickiness is defined
                      single-head here) *)
  weakly_acyclic : bool;
  jointly_acyclic : bool;
  guard_violation : Tgd.t option;
  sticky_violation : (Tgd.t * string) option;
  wa_violation : ((string * int) * (string * int)) option;
}

val classify : Tgd.t list -> report
val pp : Format.formatter -> report -> unit
