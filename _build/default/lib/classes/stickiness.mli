(** Stickiness (paper §2): the variable-marking procedure, the class S,
    and the immortal positions used by the sticky decision procedure
    (App. D.2). *)

open Chase_core

type t
(** A completed marking for a TGD list (indices refer to input order). *)

(** Run the marking to fixpoint.
    @raise Invalid_argument on multi-head TGDs. *)
val marking : Tgd.t list -> t

val is_marked : t -> tgd_index:int -> var:string -> bool

(** Marked variables of one TGD, sorted. *)
val marked_vars : t -> int -> string list

(** A TGD with a marked variable occurring twice in its body, if any —
    the witness that the set is not sticky. *)
val violation : t -> (Tgd.t * string) option

(** Membership in the class S. *)
val is_sticky : Tgd.t list -> bool

(** [immortal_positions m i].(p) — is the p-th (0-based) position of
    head(σᵢ) immortal, i.e. does it hold an unmarked frontier variable?
    A term sitting at an immortal position is propagated forever. *)
val immortal_positions : t -> int -> bool array

val tgd : t -> int -> Tgd.t
val tgd_count : t -> int
val pp : Format.formatter -> t -> unit
