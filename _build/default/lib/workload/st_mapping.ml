(* Source-to-target data exchange workloads in the style of ChaseBench
   [Benedikt et al., PODS'17] — the paper's reference [4] for practical
   chase engines.  Each scenario is a scalable (TGDs, database) pair with
   a guaranteed-terminating mapping, so E8-style scaling measurements are
   about engine throughput, not termination luck. *)

open Chase_core

type scenario = {
  name : string;
  tgds : Tgd.t list;
  database : Instance.t;
  facts : int;
}

let c fmt = Format.kasprintf (fun s -> Term.Const s) fmt

(* A simplified "doctors" scenario: source doctors, patients and
   treatments; the mapping invents offices and prescriptions and derives
   layered target facts. *)
let doctors ~patients =
  let tgds =
    Chase_parser.Parser.parse_tgds
      {|m1: doctor(D,H) -> exists O. works_at(D,H,O).
        m2: treats(D,P), doctor(D,H) -> exists M. prescribed(P,M,D).
        m3: prescribed(P,M,D) -> patient_of(P,D).
        m4: works_at(D,H,O) -> hospital(H).
        m5: patient_of(P,D), works_at(D,H,O) -> visits(P,H).|}
  in
  let database = ref Instance.empty in
  let add a = database := Instance.add a !database in
  let doctors_n = max 1 (patients / 4) in
  for d = 0 to doctors_n - 1 do
    add (Atom.make "doctor" [ c "d%d" d; c "h%d" (d mod 5) ])
  done;
  for p = 0 to patients - 1 do
    add (Atom.make "patient" [ c "p%d" p ]);
    add (Atom.make "treats" [ c "d%d" (p mod doctors_n); c "p%d" p ])
  done;
  { name = Printf.sprintf "doctors-%d" patients; tgds; database = !database; facts = Instance.cardinal !database }

(* A deep scenario: a chain of mappings copy-with-invention through
   [depth] layers; every source fact causes [depth] chased atoms. *)
let deep ~depth ~width =
  let layer i = Printf.sprintf "l%d" i in
  let tgds =
    List.init depth (fun i ->
        Tgd.make
          ~name:(Printf.sprintf "step%d" i)
          ~body:[ Atom.make (layer i) [ Term.Var "X"; Term.Var "Y" ] ]
          ~head:[ Atom.make (layer (i + 1)) [ Term.Var "Y"; Term.Var "Z" ] ]
          ())
  in
  let database = ref Instance.empty in
  for k = 0 to width - 1 do
    database := Instance.add (Atom.make (layer 0) [ c "a%d" k; c "b%d" k ]) !database
  done;
  {
    name = Printf.sprintf "deep-%dx%d" depth width;
    tgds;
    database = !database;
    facts = width;
  }

(* A join-heavy scenario: target facts require two-way joins, stressing
   the homomorphism search's index. *)
let join_heavy ~rows =
  let tgds =
    Chase_parser.Parser.parse_tgds
      {|j1: a(X,Y), b(Y,Z) -> ab(X,Z).
        j2: ab(X,Z), cdim(Z) -> exists W. out(X,W).
        j3: out(X,W) -> seen(X).|}
  in
  let database = ref Instance.empty in
  let add a = database := Instance.add a !database in
  for i = 0 to rows - 1 do
    add (Atom.make "a" [ c "x%d" i; c "y%d" (i mod 20) ]);
    add (Atom.make "b" [ c "y%d" (i mod 20); c "z%d" (i mod 7) ])
  done;
  for z = 0 to 6 do
    add (Atom.make "cdim" [ c "z%d" z ])
  done;
  { name = Printf.sprintf "join-%d" rows; tgds; database = !database; facts = Instance.cardinal !database }

(* Skewed-join scenarios: one "hub" constant owns a bucket of [n + pad]
   atoms at a join position, the realistic shape of hub nodes in graph
   data.  A matcher that inspects bucket *cardinalities* to pick an index
   pays for the fat bucket on every probe unless the count is O(1), so
   these separate count-based index selection from candidate scanning. *)

(* Propagation around an [n]-cycle: each step joins through the hub
   bucket; head is existential-free, so the chase makes exactly [n]
   steps. *)
let hub_propagation ~n ~pad =
  let tgds =
    Chase_parser.Parser.parse_tgds {|t: r(X), e(X,Y), eZ(X,Z), m(Y,Z) -> r(Y).|}
  in
  let database = ref Instance.empty in
  let add a = database := Instance.add a !database in
  for i = 0 to n - 1 do
    add (Atom.make "e" [ c "v%d" i; c "v%d" ((i + 1) mod n) ]);
    add (Atom.make "eZ" [ c "v%d" i; Term.Const "hub" ]);
    add (Atom.make "m" [ c "v%d" i; Term.Const "hub" ])
  done;
  for j = 0 to pad - 1 do
    add (Atom.make "m" [ c "d%d" j; Term.Const "hub" ])
  done;
  add (Atom.make "r" [ c "v%d" 0 ]);
  {
    name = Printf.sprintf "hub-%d+%d" n pad;
    tgds;
    database = !database;
    facts = Instance.cardinal !database;
  }

(* The source-to-target variant: the skewed join feeds an existential,
   and a second mapping folds the invented value back into the source
   side, so the chase alternates invention and propagation (2n steps). *)
let hub_exchange ~n ~pad =
  let tgds =
    Chase_parser.Parser.parse_tgds
      {|s1: src(X), e(X,Y), near(X,H), link(Y,H) -> exists W. tgt(Y,W).
        s2: tgt(Y,W) -> src(Y).|}
  in
  let database = ref Instance.empty in
  let add a = database := Instance.add a !database in
  for i = 0 to n - 1 do
    add (Atom.make "e" [ c "v%d" i; c "v%d" ((i + 1) mod n) ]);
    add (Atom.make "near" [ c "v%d" i; Term.Const "hub" ]);
    add (Atom.make "link" [ c "v%d" i; Term.Const "hub" ])
  done;
  for j = 0 to pad - 1 do
    add (Atom.make "link" [ c "d%d" j; Term.Const "hub" ])
  done;
  add (Atom.make "src" [ c "v%d" 0 ]);
  {
    name = Printf.sprintf "hubx-%d+%d" n pad;
    tgds;
    database = !database;
    facts = Instance.cardinal !database;
  }
