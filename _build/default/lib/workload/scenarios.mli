(** The scenario gallery: every worked example of the paper plus classic
    TGD sets, each with its ground-truth CTres∀∀ status.  Drives the
    agreement tests and experiments E6/E7. *)

open Chase_core

type truth =
  | All_terminating  (** T ∈ CTres∀∀ *)
  | Diverging  (** some database admits an infinite valid derivation *)

type t = {
  name : string;
  description : string;
  source : string;  (** provenance in the paper / literature *)
  program : string;  (** surface syntax: TGDs and a representative database *)
  truth : truth;
}

val all : t list
val by_name : string -> t option
val tgds : t -> Tgd.t list
val database : t -> Instance.t
val single_head : t -> bool
