(** Synthetic database generators for benchmarks and property tests. *)

open Chase_core

(** Uniform random facts over a schema. *)
val random : schema:Schema.t -> atoms:int -> domain:int -> seed:int -> Instance.t

(** A chain c₀ → … → cₙ in a binary predicate. *)
val chain : pred:string -> length:int -> Instance.t

(** A star c₀ → cᵢ, i ∈ 1..rays. *)
val star : pred:string -> rays:int -> Instance.t

(** An n×n grid with right/down edges. *)
val grid : pred:string -> n:int -> Instance.t

(** Unary population p(c₀) … p(cₙ₋₁). *)
val unary : pred:string -> count:int -> Instance.t
