lib/workload/tgd_gen.mli: Chase_core Tgd
