lib/workload/scenarios.ml: Chase_core Chase_parser List String Tgd
