lib/workload/st_mapping.mli: Chase_core Instance Tgd
