lib/workload/db_gen.mli: Chase_core Instance Schema
