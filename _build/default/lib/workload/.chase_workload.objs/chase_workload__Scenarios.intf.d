lib/workload/scenarios.mli: Chase_core Instance Tgd
