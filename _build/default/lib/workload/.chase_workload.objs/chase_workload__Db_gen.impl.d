lib/workload/db_gen.ml: Array Atom Chase_core Instance List Printf Random Schema Term
