lib/workload/tgd_gen.ml: Array Atom Chase_classes Chase_core List Printf Random Term Tgd
