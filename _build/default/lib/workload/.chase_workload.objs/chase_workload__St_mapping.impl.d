lib/workload/st_mapping.ml: Atom Chase_core Chase_parser Format Instance List Printf Term Tgd
