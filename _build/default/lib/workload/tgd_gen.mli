(** Seeded random TGD-set generators, one per class, used by property
    tests and scaling benchmarks.  Each generator's output provably
    belongs to its class (checked by property tests). *)

open Chase_core

type config = {
  predicates : int;
  max_arity : int;
  tgds : int;
  max_body : int;  (** max body atoms beyond the guard *)
  seed : int;
}

val default : config

(** The fixed schema used by a configuration: predicate pᵢ with arity
    1 + (i mod max_arity). *)
val schema_of : config -> (string * int) list

(** Guarded single-head TGDs: a full-variable guard plus side atoms over
    its variables. *)
val guarded_set : config -> Tgd.t list

(** Linear TGDs (single body atom, possibly repeated variables). *)
val linear_set : config -> Tgd.t list

(** Sticky sets by rejection sampling over linear-leaning candidates. *)
val sticky_set : config -> Tgd.t list

(** Weakly acyclic sets by layering the schema. *)
val weakly_acyclic_set : config -> Tgd.t list
