(* Random TGD-set generators, seeded and reproducible.  Used by the
   property tests ("generated guarded sets really are guarded", engine
   laws hold on random inputs) and by the scaling benchmarks (E8). *)

open Chase_core

type config = {
  predicates : int;  (* number of predicates *)
  max_arity : int;
  tgds : int;  (* number of TGDs *)
  max_body : int;  (* max body atoms *)
  seed : int;
}

let default = { predicates = 4; max_arity = 3; tgds = 4; max_body = 2; seed = 42 }

let pred_name i = Printf.sprintf "p%d" i

(* A fixed schema: predicate pᵢ has arity 1 + (i mod max_arity). *)
let schema_of cfg =
  List.init cfg.predicates (fun i -> (pred_name i, 1 + (i mod cfg.max_arity)))

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

(* A random guarded single-head TGD: draw a guard atom with distinct
   variables, side atoms over subsets of the guard's variables, and a
   head that mixes frontier variables with fresh existentials. *)
let random_guarded_tgd rng cfg idx =
  let schema = schema_of cfg in
  let gpred, gar = pick rng schema in
  let guard_vars = List.init gar (fun i -> Term.Var (Printf.sprintf "X%d" i)) in
  let guard = Atom.make gpred guard_vars in
  let n_side = Random.State.int rng cfg.max_body in
  let sides =
    List.init n_side (fun _ ->
        let p, ar = pick rng schema in
        Atom.make p (List.init ar (fun _ -> pick rng guard_vars)))
  in
  let hpred, har = pick rng schema in
  let head_args =
    List.init har (fun i ->
        if Random.State.bool rng then pick rng guard_vars
        else Term.Var (Printf.sprintf "Z%d" i))
  in
  let head = Atom.make hpred head_args in
  Tgd.make ~name:(Printf.sprintf "g%d" idx) ~body:(guard :: sides) ~head:[ head ] ()

let guarded_set cfg =
  let rng = Random.State.make [| cfg.seed |] in
  List.init cfg.tgds (fun i -> random_guarded_tgd rng cfg i)

(* A random linear TGD: single body atom with possibly repeated variables. *)
let random_linear_tgd rng cfg idx =
  let schema = schema_of cfg in
  let bpred, bar = pick rng schema in
  let vars = List.init (max 1 bar) (fun i -> Term.Var (Printf.sprintf "X%d" i)) in
  let body = Atom.make bpred (List.init bar (fun _ -> pick rng vars)) in
  let hpred, har = pick rng schema in
  let head_args =
    List.init har (fun i ->
        if Random.State.bool rng then pick rng (Atom.terms body)
        else Term.Var (Printf.sprintf "Z%d" i))
  in
  Tgd.make ~name:(Printf.sprintf "l%d" idx) ~body:[ body ] ~head:[ Atom.make hpred head_args ] ()

let linear_set cfg =
  let rng = Random.State.make [| cfg.seed |] in
  List.init cfg.tgds (fun i -> random_linear_tgd rng cfg i)

(* Sticky sets: rejection-sample linear-leaning candidates (linear TGDs
   with distinct body variables are always sticky; mixing in a few
   repeated-variable atoms keeps the generator honest) until the marking
   accepts. *)
let sticky_set cfg =
  let rng = Random.State.make [| cfg.seed |] in
  let rec attempt tries =
    if tries > 200 then
      (* fall back to plain linear with distinct variables, always sticky *)
      List.init cfg.tgds (fun i ->
          let schema = schema_of cfg in
          let bpred, bar = pick rng schema in
          let body = Atom.make bpred (List.init bar (fun j -> Term.Var (Printf.sprintf "X%d" j))) in
          let hpred, har = pick rng schema in
          let head =
            Atom.make hpred
              (List.init har (fun j ->
                   if j < bar && Random.State.bool rng then Term.Var (Printf.sprintf "X%d" j)
                   else Term.Var (Printf.sprintf "Z%d" j)))
          in
          Tgd.make ~name:(Printf.sprintf "s%d" i) ~body:[ body ] ~head:[ head ] ())
    else
      let candidate = List.init cfg.tgds (fun i -> random_linear_tgd rng cfg i) in
      if Chase_classes.Stickiness.is_sticky candidate then candidate else attempt (tries + 1)
  in
  attempt 0

(* Weakly acyclic sets: layer the predicates and only allow TGDs from
   lower to strictly higher layers, so the dependency graph is a DAG. *)
let weakly_acyclic_set cfg =
  let rng = Random.State.make [| cfg.seed |] in
  let schema = Array.of_list (schema_of cfg) in
  let n = Array.length schema in
  if n < 2 then []
  else
    List.init cfg.tgds (fun idx ->
        let bi = Random.State.int rng (n - 1) in
        let hi = bi + 1 + Random.State.int rng (n - bi - 1) in
        let bpred, bar = schema.(bi) and hpred, har = schema.(hi) in
        let vars = List.init bar (fun i -> Term.Var (Printf.sprintf "X%d" i)) in
        let body = Atom.make bpred vars in
        let head =
          Atom.make hpred
            (List.init har (fun i ->
                 if i < bar then Term.Var (Printf.sprintf "X%d" i)
                 else Term.Var (Printf.sprintf "Z%d" i)))
        in
        Tgd.make ~name:(Printf.sprintf "w%d" idx) ~body:[ body ] ~head:[ head ] ())
