(* The scenario gallery: every worked example of the paper plus classic
   TGD sets, each with its ground-truth CTres∀∀ status.  The gallery
   drives the tests (deciders must agree with the truth) and the
   benchmark harness (experiment E6/E7). *)

open Chase_core

type truth =
  | All_terminating  (* T ∈ CTres∀∀ *)
  | Diverging  (* some database admits an infinite (valid) derivation *)

type t = {
  name : string;
  description : string;
  source : string;  (* where in the paper / literature it comes from *)
  program : string;  (* surface syntax: TGDs and a representative database *)
  truth : truth;
}

let scenarios =
  [
    {
      name = "intro-oblivious-divergence";
      description =
        "The §1 example: the restricted chase sees the TGD satisfied and adds \
         nothing, while the oblivious chase diverges.";
      source = "paper §1";
      program = "r(X,Y) -> exists Z. r(X,Z).\nr(a,b).";
      truth = All_terminating;
    };
    {
      name = "linear-successor";
      description = "A fresh successor each step: diverges on every strategy.";
      source = "folklore; paper §1.1 motivation";
      program = "r(X,Y) -> exists Z. r(Y,Z).\nr(a,b).";
      truth = Diverging;
    };
    {
      name = "example-3-2";
      description =
        "The real-oblivious-chase example: S(a)'s parent is ambiguous in the \
         plain oblivious chase.";
      source = "paper Example 3.2 / 3.4";
      program =
        "s1: p(X,Y) -> r(X,Y).\n\
         s2: p(X,Y) -> s(X).\n\
         s3: r(X,Y) -> s(X).\n\
         s4: s(X) -> exists Y. r(X,Y).\n\
         p(a,b).";
      truth = All_terminating;
    };
    {
      name = "example-5-6";
      description =
        "Remote side-parents: {R(a,b), S(b,c)} diverges but {R(a,b)} alone \
         terminates, defeating the naive critical database.";
      source = "paper Example 5.6";
      program =
        "s1: s(X,Y) -> t(X).\n\
         s2: r(X,Y), t(Y) -> p(X,Y).\n\
         s3: p(X,Y) -> exists Z. p(Y,Z).\n\
         r(a,b). s(b,c).";
      truth = Diverging;
    };
    {
      name = "example-B1-multihead";
      description =
        "The multi-head counterexample to the Fairness Theorem: an infinite \
         unfair derivation exists, yet every fair derivation is finite — so \
         the set is in CTres∀∀ (valid derivations only).";
      source = "paper Example B.1";
      program =
        "m1: r(X,Y,Y) -> exists Z. r(X,Z,Y), r(Z,Y,Y).\n\
         m2: r(X,Y,Z) -> r(Z,Z,Z).\n\
         r(a,b,b).";
      truth = All_terminating;
    };
    {
      name = "sticky-paper-pair";
      description = "The §2 stickiness illustration (the sticky one of the two).";
      source = "paper §2";
      program =
        "s1: t(X,Y,Z) -> exists W. s(Y,W).\n\
         s2: r(X,Y), p(Y,Z) -> exists W. t(X,Y,W).\n\
         r(a,b). p(b,c).";
      truth = All_terminating;
    };
    {
      name = "sticky-relay-cycle";
      description = "A two-rule frontier cycle: p feeds q feeds p with a live relay term.";
      source = "this work";
      program = "s1: p(X) -> exists Y. q(X,Y).\ns2: q(X,Y) -> p(Y).\np(a).";
      truth = Diverging;
    };
    {
      name = "sticky-empty-frontier";
      description =
        "Same shape but with an empty frontier in the second rule: any p-atom \
         deactivates it, so the set terminates.";
      source = "this work";
      program = "s1: p(X) -> exists Y. q(X,Y).\ns2: q(X,Y) -> exists Z. p(Z).\nq(a,b).";
      truth = All_terminating;
    };
    {
      name = "sticky-swap";
      description = "r(X,Y) → ∃Z r(Z,X): the invented null keeps moving left.";
      source = "this work";
      program = "r(X,Y) -> exists Z. r(Z,X).\nr(a,b).";
      truth = Diverging;
    };
    {
      name = "guarded-side-condition";
      description =
        "Guarded divergence needing a side atom: the guard alone is harmless.";
      source = "variation on paper Example 5.6";
      program =
        "s1: r(X,Y), t(Y) -> exists Z. r(Y,Z).\n\
         s2: r(X,Y) -> t(Y).\n\
         r(a,b).";
      truth = Diverging;
    };
    {
      name = "weakly-acyclic-data-exchange";
      description = "A small data-exchange style weakly acyclic set.";
      source = "Fagin et al. TCS'05 style";
      program =
        "s1: emp(X) -> exists Y. reports(X,Y).\n\
         s2: reports(X,Y) -> mgr(Y).\n\
         s3: mgr(Y) -> person(Y).\n\
         emp(alice). emp(bob).";
      truth = All_terminating;
    };
    {
      name = "guarded-terminating-loop";
      description =
        "A loop through existentials that the restricted chase always closes \
         after one round (the oblivious chase does not).";
      source = "this work";
      program =
        "s1: node(X) -> exists Y. edge(X,Y).\n\
         s2: edge(X,Y) -> node(X).\n\
         node(a).";
      truth = All_terminating;
    };
    {
      name = "witness-reuse-ontology";
      description =
        "Employees/teams with mutual existential membership rules: each rule's \
         head is satisfied by the atom the other one creates, so the restricted \
         chase closes after one round while both oblivious variants diverge.";
      source = "this work; separates CTres from CTsobl";
      program =
        "o1: employee(E) -> exists T. member(E,T).\n\
         o2: member(E,T) -> team(T).\n\
         o3: team(T) -> exists E. member(E,T).\n\
         o4: member(E,T) -> employee(E).\n\
         employee(margaret). team(apollo).";
      truth = All_terminating;
    };
    {
      name = "ja-not-wa";
      description =
        "Kroetzsch-Rudolph style: the invented null can never reach bb, so the \
         set is jointly acyclic (and terminating) although the position graph \
         has a special cycle — separates the JA baseline from WA.";
      source = "Kroetzsch & Rudolph IJCAI'11 style";
      program =
        "a1: aa(X) -> exists V. rr(X,V).\n\
         a2: rr(X,Y), bb(Y) -> aa(Y).\n\
         aa(k). bb(k). rr(k,k).";
      truth = All_terminating;
    };
    {
      name = "guarded-binary-tree";
      description = "Two successors per node: diverges with exponential growth.";
      source = "this work";
      program =
        "s1: n(X) -> exists Y. l(X,Y).\n\
         s2: n(X) -> exists Y. r(X,Y).\n\
         s3: l(X,Y) -> n(Y).\n\
         s4: r(X,Y) -> n(Y).\n\
         n(a).";
      truth = Diverging;
    };
    {
      name = "sticky-join-detector";
      description =
        "A multi-atom sticky set: the repeated variables of the detector rule \
         stay unmarked because nothing consumes q, while the linear driver \
         diverges.";
      source = "this work";
      program =
        "s1: p(X,Y) -> exists Z. p(Y,Z).\n\
         s2: p(X,Y), p(Y,X) -> q(X,Y).\n\
         p(a,b).";
      truth = Diverging;
    };
    {
      name = "sticky-with-legs";
      description =
        "An unguarded sticky rule whose side atom u(W) becomes a fresh leg at \
         every caterpillar step — the Lemma 6.13 finitarization showcase.";
      source = "this work";
      program = "s1: p(X,Y), u(W) -> exists Z. p(Y,Z).\np(a,b). u(k).";
      truth = Diverging;
    };
    {
      name = "linear-copy-terminates";
      description = "Pure copying between predicates: no invention, terminates.";
      source = "this work";
      program = "s1: p(X,Y) -> q(Y,X).\ns2: q(X,Y) -> p(Y,X).\np(a,b).";
      truth = All_terminating;
    };
    {
      name = "linear-projection-chain";
      description =
        "Projection then re-invention: q(X) → ∃Y r(X,Y) → q(Y) — a fresh \
         element each round.";
      source = "this work";
      program = "s1: q(X) -> exists Y. r(X,Y).\ns2: r(X,Y) -> q(Y).\nq(a).";
      truth = Diverging;
    };
  ]

let all = scenarios

let by_name name = List.find_opt (fun s -> String.equal s.name name) scenarios

let tgds s = Chase_parser.Program.tgds (Chase_parser.Parser.parse_program s.program)

let database s = Chase_parser.Program.database (Chase_parser.Parser.parse_program s.program)

let single_head s = List.for_all Tgd.is_single_head (tgds s)
