(* Synthetic database generators for the scaling benchmarks (E8) and the
   property tests: random databases over a schema, plus shaped relations
   (chains, stars, grids) that exercise the chase differently. *)

open Chase_core

let const i = Term.Const (Printf.sprintf "c%d" i)

(* [random ~schema ~atoms ~domain ~seed]: uniform facts. *)
let random ~schema ~atoms ~domain ~seed =
  let rng = Random.State.make [| seed |] in
  let preds = Array.of_list (Schema.bindings schema) in
  if Array.length preds = 0 then Instance.empty
  else
    let rec add acc k =
      if k = 0 then acc
      else
        let p, ar = preds.(Random.State.int rng (Array.length preds)) in
        let atom = Atom.make p (List.init ar (fun _ -> const (Random.State.int rng domain))) in
        add (Instance.add atom acc) (k - 1)
    in
    add Instance.empty atoms

(* A chain c₀ → c₁ → … → cₙ in a binary predicate. *)
let chain ~pred ~length =
  let rec go acc i =
    if i >= length then acc
    else go (Instance.add (Atom.make pred [ const i; const (i + 1) ]) acc) (i + 1)
  in
  go Instance.empty 0

(* A star: c₀ → cᵢ for i ∈ [1..n]. *)
let star ~pred ~rays =
  let rec go acc i =
    if i > rays then acc else go (Instance.add (Atom.make pred [ const 0; const i ]) acc) (i + 1)
  in
  go Instance.empty 1

(* An n×n grid with right/down edges in a binary predicate. *)
let grid ~pred ~n =
  let idx i j = (i * n) + j in
  let acc = ref Instance.empty in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if j + 1 < n then
        acc := Instance.add (Atom.make pred [ const (idx i j); const (idx i (j + 1)) ]) !acc;
      if i + 1 < n then
        acc := Instance.add (Atom.make pred [ const (idx i j); const (idx (i + 1) j) ]) !acc
    done
  done;
  !acc

(* Unary population: p(c₀) … p(cₙ₋₁). *)
let unary ~pred ~count =
  let rec go acc i =
    if i >= count then acc else go (Instance.add (Atom.make pred [ const i ]) acc) (i + 1)
  in
  go Instance.empty 0
