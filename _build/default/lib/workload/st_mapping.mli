(** ChaseBench-style scalable data-exchange workloads (cf. the paper's
    reference \[4\]): guaranteed-terminating mappings with size knobs, so
    scaling measurements are about engine throughput. *)

open Chase_core

type scenario = {
  name : string;
  tgds : Tgd.t list;
  database : Instance.t;
  facts : int;
}

(** Doctors/patients/prescriptions with invented offices and
    prescriptions. *)
val doctors : patients:int -> scenario

(** A depth-layered copy-with-invention chain: every source fact chases
    through [depth] layers. *)
val deep : depth:int -> width:int -> scenario

(** Two-way joins feeding an existential — stresses the homomorphism
    index. *)
val join_heavy : rows:int -> scenario

(** Propagation around an [n]-cycle joining through a skewed hub bucket
    of [n + pad] atoms; terminates after exactly [n] steps. *)
val hub_propagation : n:int -> pad:int -> scenario

(** Source-to-target variant of the skewed hub join: invention plus
    fold-back, 2[n] steps. *)
val hub_exchange : n:int -> pad:int -> scenario
