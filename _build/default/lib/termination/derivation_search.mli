(** Exhaustive exploration of the restricted chase's non-determinism:
    CTres∀∀ quantifies over {e all} derivations, so this module walks the
    tree of active-trigger choices, memoizing instances up to null
    renaming (canonical trigger naming makes permuted derivations
    literally equal). *)

open Chase_core
open Chase_engine

type stats = { states_explored : int; final_instances : int; longest : int }

type outcome =
  | All_terminate of stats
      (** every restricted derivation of the database is finite *)
  | Divergence_evidence of Derivation.t
      (** a valid derivation prefix that exceeded the depth budget *)
  | State_budget of stats  (** no conclusion *)

(** A memo key invariant under null renaming (equal keys ⇒ isomorphic by
    a null bijection). *)
val instance_key : Instance.t -> string

val default_max_depth : int
val default_max_states : int

val explore : ?max_depth:int -> ?max_states:int -> Tgd.t list -> Instance.t -> outcome

(** Depth-first strategies first, then {!explore}: [Some] diverging
    prefix if any derivation exceeds the depth budget. *)
val divergence_evidence :
  ?max_depth:int -> ?max_states:int -> Tgd.t list -> Instance.t -> Derivation.t option

(** The liberal variant the paper's §7 poses as future work: is there
    {e some} finite (hence valid) restricted chase derivation of the
    database?  Returns the first terminating derivation found, [None]
    when the explored space has none (or a budget interrupts). *)
val some_terminating_derivation :
  ?max_depth:int -> ?max_states:int -> Tgd.t list -> Instance.t -> Derivation.t option
