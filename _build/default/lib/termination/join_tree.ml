(* Join trees and acyclic instances (paper Def 5.4).

   An instance is acyclic when its atoms can be arranged in a tree such
   that, for every term, the atoms mentioning it form a connected subtree.
   We decide acyclicity with the classic GYO ear-removal on the hypergraph
   whose hyperedges are the atoms' term sets, and build the join tree as
   ears are removed. *)

open Chase_core

type t = { atom : Atom.t; children : t list }

let rec fold f acc n = List.fold_left (fold f) (f acc n.atom) n.children

let atoms root = List.rev (fold (fun acc a -> a :: acc) [] root)

let rec size n = 1 + List.fold_left (fun s c -> s + size c) 0 n.children

(* Is (T, id) a join tree of I (Def 5.4)?  (1) every atom appears, and
   (2) for every term, the nodes mentioning it are connected. *)
let is_join_tree_of root instance =
  let tree_atoms = Instance.of_list (atoms root) in
  let covers = Instance.equal tree_atoms instance in
  (* For each term t: the subgraph of tree nodes mentioning t must be
     connected.  We check top-down: count the "entry points" — nodes
     mentioning t whose parent does not mention t — which must be ≤ 1. *)
  let entry_points : (Term.t, int) Hashtbl.t = Hashtbl.create 16 in
  let bump t =
    Hashtbl.replace entry_points t (1 + Option.value ~default:0 (Hashtbl.find_opt entry_points t))
  in
  let rec walk parent_terms n =
    let terms = Atom.term_set n.atom in
    Term.Set.iter (fun t -> if not (Term.Set.mem t parent_terms) then bump t) terms;
    List.iter (walk terms) n.children
  in
  walk Term.Set.empty root;
  covers && Hashtbl.fold (fun _ c ok -> ok && c <= 1) entry_points true

(* GYO ear removal.  An atom α is an ear when the terms it shares with
   other atoms are all contained in a single other atom β (its witness),
   or when it shares nothing (witness: any remaining atom).  Returns a
   join tree when the hypergraph is acyclic. *)
let gyo instance =
  let atoms0 = Instance.to_list instance in
  match atoms0 with
  | [] -> None
  | _ ->
      (* children collected as ears attach to witnesses *)
      let children : (Atom.t, t list) Hashtbl.t = Hashtbl.create 16 in
      let get_children a = Option.value ~default:[] (Hashtbl.find_opt children a) in
      let remaining = ref atoms0 in
      let removed_something = ref true in
      while List.length !remaining > 1 && !removed_something do
        removed_something := false;
        let rec try_remove before = function
          | [] -> ()
          | alpha :: after ->
              let others = List.rev_append before after in
              let shared =
                Term.Set.filter
                  (fun t -> List.exists (fun b -> Atom.mem_term b t) others)
                  (Atom.term_set alpha)
              in
              let witness =
                List.find_opt (fun b -> Term.Set.subset shared (Atom.term_set b)) others
              in
              (match witness with
              | Some beta ->
                  Hashtbl.replace children beta
                    ({ atom = alpha; children = get_children alpha } :: get_children beta);
                  Hashtbl.remove children alpha;
                  remaining := others;
                  removed_something := true
              | None -> try_remove (alpha :: before) after)
        in
        try_remove [] !remaining
      done;
      (match !remaining with
      | [ last ] -> Some { atom = last; children = get_children last }
      | _ -> None)

let is_acyclic instance = Instance.is_empty instance || Option.is_some (gyo instance)

let rec pp_node ppf n =
  Format.fprintf ppf "@[<v 2>%s" (Atom.to_string n.atom);
  List.iter (fun c -> Format.fprintf ppf "@,%a" pp_node c) n.children;
  Format.fprintf ppf "@]"

let pp = pp_node
