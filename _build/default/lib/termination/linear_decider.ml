(* A decision procedure for CTres∀∀ on single-head *linear* TGDs.

   The paper (§1.2) observes that for single-head linear TGDs the critical
   database approach works, with a critical database consisting of a
   single atom — this is the setting of Leclère, Mugnier, Thomazo &
   Ulliana [ICDT'19], developed independently.  Concretely: if any
   database admits an infinite restricted derivation, then already some
   database {α}, with α a single atom, does.  (Intuition: with one body
   atom per TGD, every derived atom hangs below a single database atom;
   atoms outside that atom's subtree can only *deactivate* triggers, so
   dropping them preserves an infinite derivation.)

   Single-atom databases matter only up to isomorphism, i.e., up to the
   equality type of the atom — finitely many candidates.  For each we
   explore the whole derivation space ({!Derivation_search.explore}); the
   procedure is conclusive whenever every exploration either finds
   divergence evidence or exhausts the space within its budgets.

   This decider overlaps with the sticky one on linear ∩ sticky sets —
   the test suite cross-validates the two against each other on random
   inputs, which is strong evidence for the Büchi construction. *)

open Chase_core
open Chase_classes

type evidence = { database : Instance.t; derivation : Chase_engine.Derivation.t }

type verdict =
  | All_terminating of { candidates : int }  (* conclusive within budgets *)
  | Non_terminating of evidence
  | Inconclusive of string

let require_linear tgds =
  if not (Guardedness.is_linear tgds) then invalid_arg "Linear_decider: linear TGDs required";
  List.iter
    (fun t ->
      if not (Tgd.is_single_head t) then
        invalid_arg "Linear_decider: single-head TGDs required")
    tgds

(* One single-atom database per equality type over sch(T). *)
let critical_databases tgds =
  let schema = Schema.of_tgds tgds in
  Equality_type.all_of_schema schema
  |> List.map (fun e ->
         Instance.singleton
           (Equality_type.canonical_atom
              ~term_of_class:(fun c -> Term.Const (Printf.sprintf "k%d" c))
              e))

let default_max_depth = 150
let default_max_states = 20_000

let decide ?(max_depth = default_max_depth) ?(max_states = default_max_states) tgds =
  require_linear tgds;
  let candidates = critical_databases tgds in
  let budget_hit = ref false in
  let rec search = function
    | [] ->
        if !budget_hit then Inconclusive "state budget exceeded on some candidate"
        else All_terminating { candidates = List.length candidates }
    | database :: rest -> (
        (* cheap depth-first pre-checks, then the exhaustive walk *)
        let quick strategy =
          let d = Chase_engine.Restricted.run ~strategy ~max_steps:max_depth tgds database in
          match Chase_engine.Derivation.status d with
          | Chase_engine.Derivation.Out_of_budget -> Some d
          | Chase_engine.Derivation.Terminated -> None
        in
        match quick Chase_engine.Restricted.Lifo with
        | Some d -> Non_terminating { database; derivation = d }
        | None -> (
            match Derivation_search.explore ~max_depth ~max_states tgds database with
            | Derivation_search.Divergence_evidence d ->
                Non_terminating { database; derivation = d }
            | Derivation_search.All_terminate _ -> search rest
            | Derivation_search.State_budget _ ->
                budget_hit := true;
                search rest))
  in
  search candidates
