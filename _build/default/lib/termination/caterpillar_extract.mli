(** Extracting a free connected caterpillar from a diverging restricted
    chase derivation prefix — the (1)⇒(2) direction of Theorem 6.5,
    following the three-step construction of §6.2 (Lemmas 6.9–6.11):
    relay-term chain by ranks and favourite parents (Step 1/♣), dropping
    immortal-touching relay terms (Step 2/♠), and the ≃*-class freeness
    renaming (Step 3/♥), whose consistency on triggers is exactly what
    stickiness guarantees.  The result is validated by
    {!Caterpillar.validate} before being returned. *)

open Chase_core
open Chase_engine

(** [extract tgds derivation] builds a validated free connected
    caterpillar prefix, or explains why none was found (e.g. the relay
    chain of the prefix is shorter than [min_chain]).
    @raise Invalid_argument on non-sticky or multi-head TGDs. *)
val extract : ?min_chain:int -> Tgd.t list -> Derivation.t -> (Caterpillar.t, string) result
