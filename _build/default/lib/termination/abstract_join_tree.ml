(* Abstract join trees (paper Def 5.8) and their chaseability (Def 5.10).

   An abstract join tree encodes an instance as a tree labeled over the
   finite alphabet Λ_T = sch(T) × ({F} ∪ T) × EQ_T: each node carries a
   predicate, an origin (database fact F, or the TGD that generated the
   atom), and an equivalence relation over {father, me} × positions
   stating which argument positions share terms, within the node and with
   its father.  ∆(T) decodes the tree back into an instance by closing
   these equalities transitively.

   The paper feeds such trees to an MSOL sentence over infinite trees; we
   provide the finite-tree data structure, the Def 5.8 validity check, the
   ∆ decoding, the derived parent/stop/before relations of §5.3, and the
   Def 5.10 chaseability check on finite trees — plus the encoding
   direction: turning a (finite fragment of a) guarded chase into an
   abstract join tree.  The guarded decider uses these as its certificate
   language. *)

open Chase_core
open Chase_classes

type origin = F | Rule of int  (* index into the TGD list *)

(* The equivalence relation of a node's label, over
   {f, m} × {0..ar-1}: [fm_class.(0).(i)] is the class of (f, i),
   [fm_class.(1).(i)] of (m, i).  Canonicalized as a restricted growth
   string over the concatenation f-positions ++ m-positions.  The root
   has no father: its f-part has length 0. *)
type eq_rel = { f_classes : int array; m_classes : int array }

let eq_canonicalize f_raw m_raw =
  let n_f = Array.length f_raw and n_m = Array.length m_raw in
  let seen = Hashtbl.create 8 in
  let next = ref 0 in
  let canon raw =
    Array.map
      (fun c ->
        match Hashtbl.find_opt seen c with
        | Some x -> x
        | None ->
            let x = !next in
            incr next;
            Hashtbl.add seen c x;
            x)
      raw
  in
  ignore n_f;
  ignore n_m;
  let f_classes = canon f_raw in
  let m_classes = canon m_raw in
  { f_classes; m_classes }

type node = {
  pr : string;  (* predicate *)
  org : origin;
  eq : eq_rel;
  children : node list;
}

type t = node

let rec fold f acc n = List.fold_left (fold f) (f acc n) n.children
let size t = fold (fun acc _ -> acc + 1) 0 t

(* --- Def 5.8 validity ------------------------------------------------ *)

let ( let* ) = Result.bind
let error fmt = Format.kasprintf (fun s -> Error s) fmt

let rec check_all f = function
  | [] -> Ok ()
  | x :: rest ->
      let* () = f x in
      check_all f rest

let validate tgds (root : t) =
  let tgds = Array.of_list tgds in
  let arity_of_pred p =
    let schema = Schema.of_tgds (Array.to_list tgds) in
    Schema.arity p schema
  in
  (* (1) the F-nodes are non-empty (finiteness is automatic here) *)
  let f_count = fold (fun acc n -> if n.org = F then acc + 1 else acc) 0 root in
  let* () = if f_count > 0 then Ok () else error "no F-labeled nodes" in
  let rec walk parent n =
    (* arity sanity *)
    let* ar =
      match arity_of_pred n.pr with
      | Some ar -> Ok ar
      | None -> error "unknown predicate %s" n.pr
    in
    let* () =
      if Array.length n.eq.m_classes = ar then Ok ()
      else error "m-part of eq has wrong arity at a %s node" n.pr
    in
    let* () =
      match parent with
      | None ->
          if Array.length n.eq.f_classes = 0 then Ok ()
          else error "root node has a non-empty f-part"
      | Some p ->
          if Array.length n.eq.f_classes = Array.length p.eq.m_classes then Ok ()
          else error "f-part arity does not match the father's predicate"
    in
    (* (2) children of a non-F node are non-F *)
    let* () =
      match parent with
      | Some p when n.org = F && p.org <> F -> error "an F node below a generated node"
      | _ -> Ok ()
    in
    (* (3)–(5) for generated nodes *)
    let* () =
      match (n.org, parent) with
      | F, _ -> Ok ()
      | Rule _, None -> error "the root must be an F node"
      | Rule r, Some p ->
          let* tgd =
            if r >= 0 && r < Array.length tgds then Ok tgds.(r)
            else error "TGD index %d out of range" r
          in
          let* guard =
            match Guardedness.guard tgd with
            | Some g -> Ok g
            | None -> error "TGD %s is not guarded" (Tgd.name tgd)
          in
          let head = Tgd.head_atom tgd in
          (* (3) predicates match guard and head *)
          let* () =
            if String.equal p.pr (Atom.pred guard) then Ok ()
            else error "father predicate %s is not the guard predicate of %s" p.pr (Tgd.name tgd)
          in
          let* () =
            if String.equal n.pr (Atom.pred head) then Ok ()
            else error "node predicate %s is not the head predicate of %s" n.pr (Tgd.name tgd)
          in
          (* (4) the f-part mirrors the father's m-part *)
          let nf = Array.length n.eq.f_classes in
          let* () =
            let ok = ref true in
            for i = 0 to nf - 1 do
              for j = 0 to nf - 1 do
                let father_eq = p.eq.m_classes.(i) = p.eq.m_classes.(j) in
                let here_eq = n.eq.f_classes.(i) = n.eq.f_classes.(j) in
                if father_eq <> here_eq then ok := false
              done
            done;
            if !ok then Ok () else error "condition (4) violated at a %s node" n.pr
          in
          (* (5a) guard[i] = head[j] implies (f,i) ~ (m,j) *)
          let* () =
            let ok = ref true in
            for i = 0 to Atom.arity guard - 1 do
              for j = 0 to Atom.arity head - 1 do
                if
                  Term.equal (Atom.arg guard i) (Atom.arg head j)
                  && n.eq.f_classes.(i) <> n.eq.m_classes.(j)
                then ok := false
              done
            done;
            if !ok then Ok () else error "condition (5a) violated at a %s node" n.pr
          in
          (* (5b) guard[i] = guard[j] implies (f,i) ~ (f,j) *)
          let* () =
            let ok = ref true in
            for i = 0 to Atom.arity guard - 1 do
              for j = 0 to Atom.arity guard - 1 do
                if
                  Term.equal (Atom.arg guard i) (Atom.arg guard j)
                  && n.eq.f_classes.(i) <> n.eq.f_classes.(j)
                then ok := false
              done
            done;
            if !ok then Ok () else error "condition (5b) violated at a %s node" n.pr
          in
          (* (5c) existential head[j]: (m,i) ~ (m,j) iff head[i] = head[j] *)
          let existential = Tgd.existential_vars tgd in
          let* () =
            let ok = ref true in
            for j = 0 to Atom.arity head - 1 do
              if Term.Set.mem (Atom.arg head j) existential then
                for i = 0 to Atom.arity head - 1 do
                  let syntactic = Term.equal (Atom.arg head i) (Atom.arg head j) in
                  let semantic = n.eq.m_classes.(i) = n.eq.m_classes.(j) in
                  if syntactic <> semantic then ok := false
                done
            done;
            if !ok then Ok () else error "condition (5c) violated at a %s node" n.pr
          in
          Ok ()
    in
    check_all (walk (Some n)) n.children
  in
  walk None root

(* --- ∆ decoding ------------------------------------------------------- *)

(* Union-find over (node id, position) pairs, driven by each node's eq
   relation: (m,i) ~ (m,j) within a node, and (f,i) ~ (m-of-father,i)
   across the edge. *)
let decode root =
  (* assign ids *)
  let nodes = ref [] in
  let rec number parent_id n =
    let id = List.length !nodes in
    nodes := (id, parent_id, n) :: !nodes;
    List.iter (number (Some id)) n.children
  in
  number None root;
  let nodes = List.rev !nodes in
  let uf : (int * int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let rec find x =
    match Hashtbl.find_opt uf x with
    | None -> x
    | Some p ->
        let r = find p in
        Hashtbl.replace uf x r;
        r
  in
  let union x y =
    let rx = find x and ry = find y in
    if rx <> ry then Hashtbl.replace uf rx ry
  in
  List.iter
    (fun (id, parent_id, n) ->
      let ar = Array.length n.eq.m_classes in
      (* within the node *)
      for i = 0 to ar - 1 do
        for j = i + 1 to ar - 1 do
          if n.eq.m_classes.(i) = n.eq.m_classes.(j) then union (id, i) (id, j)
        done
      done;
      (* with the father *)
      match parent_id with
      | None -> ()
      | Some pid ->
          let nf = Array.length n.eq.f_classes in
          for i = 0 to nf - 1 do
            (* (f,i) of this node is position i of the father *)
            union (id + 0, -1 - i) (pid, i)
            (* encode father positions seen from here as negative indices *)
          done;
          for i = 0 to nf - 1 do
            for j = 0 to ar - 1 do
              if n.eq.f_classes.(i) = n.eq.m_classes.(j) then union (id, -1 - i) (id, j)
            done
          done;
          for i = 0 to nf - 1 do
            for j = 0 to nf - 1 do
              if n.eq.f_classes.(i) = n.eq.f_classes.(j) then union (id, -1 - i) (id, -1 - j)
            done
          done)
    nodes;
  (* terms per class *)
  let term_of : (int * int, Term.t) Hashtbl.t = Hashtbl.create 64 in
  let counter = ref 0 in
  let term_for key =
    let r = find key in
    match Hashtbl.find_opt term_of r with
    | Some t -> t
    | None ->
        let t = Term.Const (Printf.sprintf "d%d" !counter) in
        incr counter;
        Hashtbl.add term_of r t;
        t
  in
  let atoms =
    List.map
      (fun (id, _, n) ->
        let ar = Array.length n.eq.m_classes in
        (id, n, Atom.make n.pr (List.init ar (fun i -> term_for (id, i)))))
      nodes
  in
  (nodes, atoms)

(* ∆(T): the decoded instance. *)
let delta root =
  let _, atoms = decode root in
  Instance.of_list (List.map (fun (_, _, a) -> a) atoms)

(* The decoded atoms with their pre-order node ids (the numbering the
   MSOL evaluator uses as well). *)
let atoms_with_ids root =
  let _, atoms = decode root in
  List.map (fun (id, _, a) -> (id, a)) atoms

(* ∆(T|F): the decoded database — the F-labeled fragment. *)
let delta_f root =
  let _, atoms = decode root in
  Instance.of_list (List.filter_map (fun (_, n, a) -> if n.org = F then Some a else None) atoms)

(* --- Encoding: a guarded chase fragment as an abstract join tree ------ *)

(* Joint canonicalization of father/me argument tuples by term equality. *)
let eq_of_atoms ~father ~me =
  let seen = ref Term.Map.empty in
  let next = ref 0 in
  let class_of t =
    match Term.Map.find_opt t !seen with
    | Some c -> c
    | None ->
        let c = !next in
        incr next;
        seen := Term.Map.add t c !seen;
        c
  in
  let f_raw =
    match father with
    | None -> [||]
    | Some fa -> Array.map class_of (Atom.args_a fa)
  in
  let m_raw = Array.map class_of (Atom.args_a me) in
  { f_classes = f_raw; m_classes = m_raw }

(* Encode a database (which must be acyclic) together with a derivation's
   produced atoms into an abstract join tree: the F-part is a GYO join
   tree of the database; every produced atom hangs below its guard-parent
   atom's node.  Lemma 5.9's reading: ∆ of the result decodes back to an
   isomorphic instance (tested). *)
let encode tgds ~database derivation =
  let tgds_arr = Array.of_list tgds in
  let rule_index tgd =
    let rec go i = if i >= Array.length tgds_arr then None
      else if Tgd.equal tgds_arr.(i) tgd then Some i else go (i + 1)
    in
    go 0
  in
  match Join_tree.gyo database with
  | None -> Error "database is not acyclic"
  | Some skeleton ->
      (* children of each atom contributed by the derivation *)
      let produced_children : (Atom.t, (Atom.t * int) list) Hashtbl.t = Hashtbl.create 64 in
      let record_step (s : Chase_engine.Derivation.step) =
        let tgd = Chase_engine.Trigger.tgd s.Chase_engine.Derivation.trigger in
        let hom = Chase_engine.Trigger.hom s.Chase_engine.Derivation.trigger in
        match (Guardedness.guard tgd, rule_index tgd, s.Chase_engine.Derivation.produced) with
        | Some guard, Some r, [ atom ] ->
            let gp = Substitution.apply_atom hom guard in
            let prev = Option.value ~default:[] (Hashtbl.find_opt produced_children gp) in
            Hashtbl.replace produced_children gp ((atom, r) :: prev);
            Ok ()
        | None, _, _ -> Error "unguarded TGD in derivation"
        | _, None, _ -> Error "derivation uses a TGD outside the given set"
        | _, _, _ -> Error "multi-head step in derivation"
      in
      let rec record = function
        | [] -> Ok ()
        | s :: rest -> ( match record_step s with Ok () -> record rest | Error e -> Error e)
      in
      (match record (Chase_engine.Derivation.steps derivation) with
      | Error e -> Error e
      | Ok () ->
          (* build generated subtrees below an atom *)
          let rec generated_below father_atom =
            Option.value ~default:[] (Hashtbl.find_opt produced_children father_atom)
            |> List.rev
            |> List.map (fun (atom, r) ->
                   {
                     pr = Atom.pred atom;
                     org = Rule r;
                     eq = eq_of_atoms ~father:(Some father_atom) ~me:atom;
                     children = generated_below atom;
                   })
          in
          let rec of_skeleton father_atom (jt : Join_tree.t) =
            let atom = jt.Join_tree.atom in
            {
              pr = Atom.pred atom;
              org = F;
              eq = eq_of_atoms ~father:father_atom ~me:atom;
              children =
                List.map (of_skeleton (Some atom)) jt.Join_tree.children
                @ generated_below atom;
            }
          in
          Ok (of_skeleton None skeleton))

(* --- Chaseability (Def 5.10) on finite trees -------------------------- *)

(* Relations of §5.3 over the decoded nodes. *)
let is_chaseable tgds root =
  let tgds_arr = Array.of_list tgds in
  let nodes, atoms = decode root in
  let atom_of = Hashtbl.create 64 in
  List.iter (fun (id, _, a) -> Hashtbl.replace atom_of id a) atoms;
  let node_of = Hashtbl.create 64 in
  List.iter (fun (id, _, n) -> Hashtbl.replace node_of id n) nodes;
  let parent_of = Hashtbl.create 64 in
  List.iter
    (fun (id, pid, _) -> match pid with Some p -> Hashtbl.replace parent_of id p | None -> ())
    nodes;
  let all_ids = List.map (fun (id, _, _) -> id) nodes in
  let frontier_terms_of id =
    let n : node = Hashtbl.find node_of id in
    match n.org with
    | F -> None
    | Rule r ->
        let tgd = tgds_arr.(r) in
        let a : Atom.t = Hashtbl.find atom_of id in
        let fr_pos = Tgd.frontier_positions tgd in
        Some
          (List.fold_left
             (fun acc i -> Term.Set.add (Atom.arg a i) acc)
             Term.Set.empty fr_pos)
  in
  (* ≺p over nodes: the tree edge (guard-parent) plus side-parents — any
     node whose atom is a π-sideatom of the father's atom, for a side
     atom of the generating TGD. *)
  let side_requirements id =
    let n : node = Hashtbl.find node_of id in
    match n.org with
    | F -> []
    | Rule r ->
        let tgd = tgds_arr.(r) in
        let guard = Option.get (Guardedness.guard tgd) in
        Guardedness.side_atoms tgd
        |> List.map (fun side -> Sideatom_type.all_of_pair side ~of_:guard)
  in
  let before_edges = ref [] in
  let add_edge a b = before_edges := (a, b) :: !before_edges in
  let cond2_ok = ref (Ok ()) in
  List.iter
    (fun id ->
      let n : node = Hashtbl.find node_of id in
      (* database-first edges *)
      (match n.org with
      | F ->
          List.iter
            (fun id' ->
              let n' : node = Hashtbl.find node_of id' in
              if n'.org <> F then add_edge id id')
            all_ids
      | Rule _ -> ());
      (* tree (guard) parent *)
      (match Hashtbl.find_opt parent_of id with
      | Some p when (Hashtbl.find node_of id : node).org <> F -> add_edge p id
      | _ -> ());
      (* side-parents; also check Def 5.10 (2): each side atom is served *)
      match Hashtbl.find_opt parent_of id with
      | None -> ()
      | Some p ->
          let father_atom : Atom.t = Hashtbl.find atom_of p in
          List.iter
            (fun pis ->
              (* pis: the admissible sideatom types for one side atom *)
              let servers =
                List.filter
                  (fun z ->
                    let za : Atom.t = Hashtbl.find atom_of z in
                    List.exists (fun pi -> Sideatom_type.is_sideatom pi za ~of_:father_atom) pis)
                  all_ids
              in
              match servers with
              | [] ->
                  if !cond2_ok = Ok () then
                    cond2_ok :=
                      Error
                        (Printf.sprintf "node %d: a side atom has no side-parent (Def 5.10 (2))"
                           id)
              | zs -> List.iter (fun z -> add_edge z id) zs)
            (side_requirements id))
    all_ids;
  (* stop edges: x ≺s y contributes y → x *)
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          if x <> y then
            match frontier_terms_of y with
            | None -> ()
            | Some frontier ->
                let ax : Atom.t = Hashtbl.find atom_of x in
                let ay : Atom.t = Hashtbl.find atom_of y in
                if Chase_engine.Stop.stops ~frontier ~candidate:ax ~result:ay then
                  add_edge y x)
        all_ids)
    all_ids;
  match !cond2_ok with
  | Error e -> Error e
  | Ok () ->
      (* Def 5.10 (3): ≺b acyclic.  Kahn's algorithm. *)
      let indeg = Hashtbl.create 64 in
      let succ = Hashtbl.create 64 in
      List.iter (fun id -> Hashtbl.replace indeg id 0) all_ids;
      List.iter
        (fun (a, b) ->
          Hashtbl.replace succ a (b :: Option.value ~default:[] (Hashtbl.find_opt succ a));
          Hashtbl.replace indeg b (1 + Hashtbl.find indeg b))
        !before_edges;
      let queue = Queue.create () in
      List.iter (fun id -> if Hashtbl.find indeg id = 0 then Queue.add id queue) all_ids;
      let seen = ref 0 in
      while not (Queue.is_empty queue) do
        let id = Queue.pop queue in
        incr seen;
        List.iter
          (fun b ->
            let d = Hashtbl.find indeg b - 1 in
            Hashtbl.replace indeg b d;
            if d = 0 then Queue.add b queue)
          (Option.value ~default:[] (Hashtbl.find_opt succ id))
      done;
      if !seen = List.length all_ids then Ok ()
      else Error "the before relation ≺b has a cycle (Def 5.10 (3))"
