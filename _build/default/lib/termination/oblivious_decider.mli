(** All-instances termination of the (semi-)oblivious chase via the
    critical database D* = \{R(c,…,c)\} (Marnette PODS'09) — the baseline
    the paper's restricted-chase results are measured against.
    Saturation of the chase of D* within the budget is a proof of
    all-instances oblivious termination; exceeding it is divergence
    evidence. *)

open Chase_core
open Chase_engine

type verdict =
  | All_terminating of { atoms : int; applications : int }  (** proof *)
  | Diverging_on_critical of { prefix_atoms : int }  (** budget evidence *)

(** D*: one R(c,…,c) per predicate. *)
val critical_database : Tgd.t list -> Instance.t

val default_max_steps : int

val decide : ?variant:Oblivious.variant -> ?max_steps:int -> Tgd.t list -> verdict

(** Does the {e restricted} chase terminate on D*?  §1.2's warning: this
    says nothing about other databases (Example 5.6 separates them). *)
val restricted_terminates_on_critical : ?max_steps:int -> Tgd.t list -> bool
