(** Abstract join trees (paper Def 5.8) and their chaseability (Def 5.10):
    trees over the finite alphabet Λ_T = sch(T) × ({F} ∪ T) × EQ_T that
    encode instances; ∆ decodes them back.  The MSOL sentence of §5.3
    quantifies over exactly these objects; here they are the certificate
    language of the guarded decider on finite trees. *)

open Chase_core
open Chase_engine

type origin = F  (** database fact *) | Rule of int  (** index into the TGD list *)

type eq_rel = { f_classes : int array; m_classes : int array }
(** The label's equivalence relation over {father, me} × positions,
    jointly canonicalized; the root has an empty f-part. *)

val eq_canonicalize : int array -> int array -> eq_rel

type node = { pr : string; org : origin; eq : eq_rel; children : node list }
type t = node

val fold : ('a -> node -> 'a) -> 'a -> t -> 'a
val size : t -> int

(** Check the conditions (1)–(5) of Def 5.8. *)
val validate : Tgd.t list -> t -> (unit, string) result

(** ∆(T): decode the tree into an instance (fresh constants per
    equivalence class of the position equalities). *)
val delta : t -> Instance.t

(** ∆(T|F): the decoded database (the F-labeled fragment). *)
val delta_f : t -> Instance.t

(** The decoded atoms with their pre-order node ids — the numbering
    {!Msol_eval.of_abstract_join_tree} uses. *)
val atoms_with_ids : t -> (int * Atom.t) list

(** Joint canonicalization of a father/me argument pair by term
    equality. *)
val eq_of_atoms : father:Atom.t option -> me:Atom.t -> eq_rel

(** Encode an acyclic database plus a guarded derivation's produced atoms
    as an abstract join tree: the F-part is a GYO join tree of the
    database, generated atoms hang below their guard-parents.  Lemma 5.9
    reading: [delta] of the result is isomorphic (up to constant
    renaming) to the chased instance — tested. *)
val encode : Tgd.t list -> database:Instance.t -> Derivation.t -> (t, string) result

(** The chaseability conditions of Def 5.10 over the decoded nodes:
    side-parents exist for every side atom, and the before relation
    (database-first ∪ parents ∪ stop⁻¹) is acyclic. *)
val is_chaseable : Tgd.t list -> t -> (unit, string) result
