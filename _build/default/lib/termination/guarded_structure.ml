(* The guard-parent and side-parent structure over the real oblivious
   chase (paper App. C.2, "Guard- and Side-Parent Relation").

   For guarded single-head TGDs, every generated node of ochase(D,T) has
   a unique guard-parent — the node matched against guard(σ) — which
   makes ochase a forest under ≺gp with the database nodes as roots.  The
   remaining parents are side-parents, refined by sideatom types π
   recording how the side atom plugs into the guard (v ≺π_sp u).

   On top of these we detect the remote-side-parent situations of
   Def 5.7/C.1 — ⟨α, α′, β, β′⟩ with α ≺⁺gp α′, β ≺⁺gp β′ (reflexively),
   β′ ≺sp α′ — and the induced "longs for" graph over the database, this
   time over the graph itself rather than over a derivation (compare
   {!Treeify.longs_for_edges}, which derives the same information from a
   concrete derivation; the tests check they agree). *)

open Chase_core
open Chase_engine
open Chase_classes

type t = {
  graph : Real_oblivious.t;
  guard_parent : int array;  (* node id -> guard-parent id, -1 for roots *)
  root : int array;  (* node id -> database root id of its ≺gp chain *)
}

let require_guarded tgds =
  if not (Guardedness.is_guarded tgds) then
    invalid_arg "Guarded_structure: guarded TGDs required"

let build tgds graph =
  require_guarded tgds;
  let n = Real_oblivious.size graph in
  let guard_parent = Array.make n (-1) in
  let root = Array.make n (-1) in
  Array.iter
    (fun node ->
      let id = node.Real_oblivious.id in
      match node.Real_oblivious.origin with
      | None -> root.(id) <- id
      | Some trigger ->
          let tgd = Trigger.tgd trigger in
          let gi = Option.get (Guardedness.guard_index tgd) in
          let gp = node.Real_oblivious.parents.(gi) in
          guard_parent.(id) <- gp;
          root.(id) <- root.(gp)
          (* parents precede children in id order, so root.(gp) is set *))
    (Real_oblivious.nodes graph);
  { graph; guard_parent; root }

let guard_parent s id = if s.guard_parent.(id) < 0 then None else Some s.guard_parent.(id)

let root s id = s.root.(id)

(* v ≺⁺gp u (proper ancestors). *)
let rec is_gp_ancestor s ~ancestor ~of_ =
  match guard_parent s of_ with
  | None -> false
  | Some p -> p = ancestor || is_gp_ancestor s ~ancestor ~of_:p

(* The guard subtree below a node (including it). *)
let guard_subtree s id =
  let n = Real_oblivious.size s.graph in
  let members = ref [] in
  for v = n - 1 downto 0 do
    if v = id || is_gp_ancestor s ~ancestor:id ~of_:v then members := v :: !members
  done;
  !members

(* The side-parents of a generated node, with their sideatom types
   relative to the guard-parent's atom: v ≺π_sp u. *)
let side_parents s id =
  let node = Real_oblivious.node s.graph id in
  match node.Real_oblivious.origin with
  | None -> []
  | Some trigger ->
      let tgd = Trigger.tgd trigger in
      let gi = Option.get (Guardedness.guard_index tgd) in
      let gp_atom =
        (Real_oblivious.node s.graph node.Real_oblivious.parents.(gi)).Real_oblivious.atom
      in
      List.concat
        (List.mapi
           (fun k parent_id ->
             if k = gi then []
             else
               let atom = (Real_oblivious.node s.graph parent_id).Real_oblivious.atom in
               List.map (fun pi -> (parent_id, pi)) (Sideatom_type.all_of_pair atom ~of_:gp_atom))
           (Array.to_list node.Real_oblivious.parents))

(* Remote-side-parent situations ⟨α, α′, β, β′⟩ (Def 5.7, with β ≺*gp β′
   read reflexively so that database side atoms are covered): α and β are
   distinct database roots, α′ lies in α's guard subtree, and one of α′'s
   side-parents β′ lies in β's subtree. *)
type remote_situation = {
  alpha : int;  (* a database node *)
  alpha' : int;  (* α ≺⁺gp α′ *)
  beta : int;  (* another database node *)
  beta' : int;  (* β ≺*gp β′, and β′ ≺sp α′ *)
}

let remote_situations s =
  let acc = ref [] in
  Array.iter
    (fun node ->
      let id = node.Real_oblivious.id in
      if node.Real_oblivious.origin <> None then begin
        let alpha = root s id in
        List.iter
          (fun (sp, _pi) ->
            let beta = root s sp in
            if beta <> alpha then
              acc := { alpha; alpha' = id; beta; beta' = sp } :: !acc)
          (side_parents s id)
      end)
    (Real_oblivious.nodes s.graph);
  List.rev !acc

(* The longs-for graph over database atoms (cf. Treeify.longs_for_edges,
   which computes it from a derivation instead). *)
let longs_for s =
  remote_situations s
  |> List.map (fun r ->
         ( (Real_oblivious.node s.graph r.alpha).Real_oblivious.atom,
           (Real_oblivious.node s.graph r.beta).Real_oblivious.atom ))
  |> List.sort_uniq (fun (a, b) (c, d) ->
         let x = Atom.compare a c in
         if x <> 0 then x else Atom.compare b d)

(* Guard-subtree sizes per database root — the α∞ selector of §5.2. *)
let subtree_sizes s =
  let count = Hashtbl.create 16 in
  Array.iter
    (fun node ->
      let r = root s node.Real_oblivious.id in
      Hashtbl.replace count r (1 + Option.value ~default:0 (Hashtbl.find_opt count r)))
    (Real_oblivious.nodes s.graph);
  count
