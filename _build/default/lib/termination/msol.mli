(** The MSOL sentence φ_T of Lemma 5.12 (paper §5.3, App. C.3),
    constructed explicitly over the alphabet Λ_T: φ_T holds exactly on
    the chaseable abstract join trees for T.  The sentence is the
    reproducible artifact of the paper's reduction (satisfiability over
    infinite trees — the k-EXPTIME step — is substituted per DESIGN.md);
    it is closed, measurable, and its labels range over the alphabet that
    {!Abstract_join_tree} implements. *)

open Chase_core

type side = F_side | M_side

type label = {
  l_pred : string;
  l_org : Abstract_join_tree.origin;
  l_eq : int array;  (** classes of (f,0..ar-1) ++ (m,0..ar-1) *)
}

val label_to_string : label -> string
val eq_related : ar:int -> label -> side * int -> side * int -> bool

(** Λ_T, enumerated: predicates × origins × partitions of 2·ar(T)
    slots. *)
val alphabet : Tgd.t list -> label list

val alphabet_size : Tgd.t list -> int

type formula =
  | True
  | False
  | Label of label * string  (** M_τ(x) *)
  | Edge of string * string  (** tree child relation *)
  | Eq of string * string
  | Mem of string * string  (** x ∈ A *)
  | Not of formula
  | And of formula list
  | Or of formula list
  | Implies of formula * formula
  | Iff of formula * formula
  | Forall1 of string * formula
  | Exists1 of string * formula
  | Forall2 of string * formula
  | Exists2 of string * formula

val conj : formula list -> formula
val disj : formula list -> formula
val size : formula -> int

(** (first-order, second-order) quantifier counts. *)
val quantifier_count : formula -> int * int

val is_closed : formula -> bool
val pp : Format.formatter -> formula -> unit

type context

val make_context : Tgd.t list -> context

(** ϕ_fin(A): the named set is finite (App. C.3 encoding). *)
val phi_fin : string -> formula

(** ϕ^{i,j}_=(x,y): the i-th term of δ(x) equals the j-th of δ(y). *)
val phi_eq : context -> int -> int -> string -> string -> formula

(** ϕ_π(x,y): δ(x) ⊆π δ(y). *)
val phi_pi : context -> Sideatom_type.t -> string -> string -> formula

(** ϕ_s(x,y): x ≺s y. *)
val phi_s : context -> string -> string -> formula

(** ψ_b(x,y): x ≺b y. *)
val psi_b : context -> string -> string -> formula

(** ϕ_b(x,y): x ≺⁺b y, via downward-closed sets. *)
val phi_b : context -> string -> string -> formula

val phi_jt : context -> formula
val phi_1 : context -> formula
val phi_2 : context -> formula
val phi_3 : context -> formula

(** φ_T = ϕ_jt ∧ ϕ₁ ∧ ϕ₂ ∧ ϕ₃.
    @raise Invalid_argument on unguarded TGDs. *)
val phi_t : Tgd.t list -> formula
