(** From a free uniformly connected caterpillar to a finitary one
    (paper Lemma 6.13, §6.4), on prefixes: unify the leg-only terms
    window-by-window into two alternating banks of fresh terms, then
    re-validate.  A successful result is a caterpillar prefix with the
    same body and a leg vocabulary bounded by 2·[bank_size]. *)

open Chase_core

type stats = {
  leg_atoms_before : int;
  leg_atoms_after : int;
  leg_terms_before : int;
  leg_terms_after : int;
  bank_size : int;  (** m: terms per bank *)
}

(** Leg terms eligible for unification: in the legs, in no body atom. *)
val leg_only_terms : Caterpillar.t -> Term.Set.t

(** The legs used by one step. *)
val step_legs : Caterpillar.step -> Atom.t list

(** Steps grouped into pass-on windows. *)
val windows : Caterpillar.t -> Caterpillar.step list list

(** The raw unification (not validated). *)
val finitarize : Caterpillar.t -> Caterpillar.t * stats

(** Unify and validate against Defs 6.2/6.3/6.6. *)
val finitarize_checked :
  Tgd.t list -> Caterpillar.t -> (Caterpillar.t * stats, string) result
