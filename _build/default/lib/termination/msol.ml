(* The MSOL sentence φ_T of Lemma 5.12 (paper §5.3 and App. C.3),
   constructed explicitly.

   The paper reduces CTres∀∀(G) to the satisfiability of an MSOL sentence
   over Λ_T-labeled infinite trees of bounded degree: φ_T holds exactly on
   the chaseable abstract join trees for T.  We build that sentence as a
   concrete formula object — the label alphabet Λ_T = sch(T) × ({F} ∪ T) ×
   EQ_T is enumerated, the auxiliary formulas of Appendix C.3 (ϕ_fin,
   ϕ^{i,j}_=, ϕ_π, ϕ_s, ψ_b, ϕ_cl, ϕ_b) are assembled literally, and the
   top level is ϕ_jt ∧ ϕ₁ ∧ ϕ₂ ∧ ϕ₃ following Definition 5.10.

   We do not *decide* satisfiability over infinite trees (that is the
   k-EXPTIME step DESIGN.md substitutes); the sentence itself is the
   reproducible artifact: it is closed, its size is measurable, and its
   label predicates range over exactly the alphabet that the
   Abstract_join_tree module implements.  The tests check those
   properties, tying §5.3's two halves together. *)

open Chase_core
open Chase_classes

(* ------------------------------------------------------------------ *)
(* Labels: Λ_T.                                                        *)
(* ------------------------------------------------------------------ *)

type side = F_side | M_side  (* father / me *)

type label = {
  l_pred : string;
  l_org : Abstract_join_tree.origin;
  l_eq : int array;  (* class of (f,0..ar-1) ++ (m,0..ar-1), canonical RGS *)
}

let label_to_string l =
  Printf.sprintf "⟨%s,%s,[%s]⟩" l.l_pred
    (match l.l_org with Abstract_join_tree.F -> "F" | Abstract_join_tree.Rule i -> Printf.sprintf "σ%d" i)
    (String.concat "" (List.map string_of_int (Array.to_list l.l_eq)))

(* The index of (side, i) into the flattened eq array. *)
let slot ~ar side i = match side with F_side -> i | M_side -> ar + i

let eq_related ~ar l (s1, i) (s2, j) = l.l_eq.(slot ~ar s1 i) = l.l_eq.(slot ~ar s2 j)

(* Enumerate Λ_T: predicates × origins × partitions of 2·ar(T) slots.
   (The paper fixes the eq domain to {f,m} × {1..ar(T)} uniformly.) *)
let alphabet tgds =
  let schema = Schema.of_tgds tgds in
  let ar = Schema.max_arity schema in
  let partitions = Equality_type.partitions (2 * ar) in
  let origins =
    Abstract_join_tree.F :: List.mapi (fun i _ -> Abstract_join_tree.Rule i) tgds
  in
  Schema.fold
    (fun p _ acc ->
      List.fold_left
        (fun acc org ->
          List.fold_left
            (fun acc eq -> { l_pred = p; l_org = org; l_eq = eq } :: acc)
            acc partitions)
        acc origins)
    schema []
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Formulas.                                                           *)
(* ------------------------------------------------------------------ *)

type formula =
  | True
  | False
  | Label of label * string  (* M_τ(x) *)
  | Edge of string * string  (* x ≺ y, the tree child relation *)
  | Eq of string * string
  | Mem of string * string  (* x ∈ A *)
  | Not of formula
  | And of formula list
  | Or of formula list
  | Implies of formula * formula
  | Iff of formula * formula
  | Forall1 of string * formula
  | Exists1 of string * formula
  | Forall2 of string * formula
  | Exists2 of string * formula

let conj = function [] -> True | [ f ] -> f | fs -> And fs
let disj = function [] -> False | [ f ] -> f | fs -> Or fs

let rec size = function
  | True | False -> 1
  | Label _ | Edge _ | Eq _ | Mem _ -> 1
  | Not f -> 1 + size f
  | And fs | Or fs -> 1 + List.fold_left (fun a f -> a + size f) 0 fs
  | Implies (a, b) | Iff (a, b) -> 1 + size a + size b
  | Forall1 (_, f) | Exists1 (_, f) | Forall2 (_, f) | Exists2 (_, f) -> 1 + size f

let rec quantifier_count = function
  | True | False | Label _ | Edge _ | Eq _ | Mem _ -> (0, 0)
  | Not f -> quantifier_count f
  | And fs | Or fs ->
      List.fold_left
        (fun (a, b) f ->
          let x, y = quantifier_count f in
          (a + x, b + y))
        (0, 0) fs
  | Implies (a, b) | Iff (a, b) ->
      let x1, y1 = quantifier_count a and x2, y2 = quantifier_count b in
      (x1 + x2, y1 + y2)
  | Forall1 (_, f) | Exists1 (_, f) ->
      let x, y = quantifier_count f in
      (x + 1, y)
  | Forall2 (_, f) | Exists2 (_, f) ->
      let x, y = quantifier_count f in
      (x, y + 1)

(* Closedness check: every variable occurrence is bound. *)
let is_closed formula =
  let module SS = Set.Make (String) in
  let rec go fo so = function
    | True | False -> true
    | Label (_, x) -> SS.mem x fo
    | Edge (x, y) | Eq (x, y) -> SS.mem x fo && SS.mem y fo
    | Mem (x, a) -> SS.mem x fo && SS.mem a so
    | Not f -> go fo so f
    | And fs | Or fs -> List.for_all (go fo so) fs
    | Implies (a, b) | Iff (a, b) -> go fo so a && go fo so b
    | Forall1 (x, f) | Exists1 (x, f) -> go (SS.add x fo) so f
    | Forall2 (a, f) | Exists2 (a, f) -> go fo (SS.add a so) f
  in
  go SS.empty SS.empty formula

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "⊤"
  | False -> Format.pp_print_string ppf "⊥"
  | Label (l, x) -> Format.fprintf ppf "M%s(%s)" (label_to_string l) x
  | Edge (x, y) -> Format.fprintf ppf "%s≺%s" x y
  | Eq (x, y) -> Format.fprintf ppf "%s=%s" x y
  | Mem (x, a) -> Format.fprintf ppf "%s∈%s" x a
  | Not f -> Format.fprintf ppf "¬%a" pp f
  | And fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∧ ") pp)
        fs
  | Or fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∨ ") pp)
        fs
  | Implies (a, b) -> Format.fprintf ppf "(%a → %a)" pp a pp b
  | Iff (a, b) -> Format.fprintf ppf "(%a ↔ %a)" pp a pp b
  | Forall1 (x, f) -> Format.fprintf ppf "∀%s.%a" x pp f
  | Exists1 (x, f) -> Format.fprintf ppf "∃%s.%a" x pp f
  | Forall2 (a, f) -> Format.fprintf ppf "∀%s.%a" a pp f
  | Exists2 (a, f) -> Format.fprintf ppf "∃%s.%a" a pp f

(* ------------------------------------------------------------------ *)
(* The auxiliary formulas of Appendix C.3.                             *)
(* ------------------------------------------------------------------ *)

type context = {
  tgds : Tgd.t array;
  labels : label list;
  ar : int;
}

let make_context tgds =
  let schema = Schema.of_tgds tgds in
  { tgds = Array.of_list tgds; labels = alphabet tgds; ar = Schema.max_arity schema }

(* org(x) = F / org(x) = σᵣ: disjunction of label predicates. *)
let org_is ctx org x =
  disj
    (List.filter_map
       (fun l -> if l.l_org = org then Some (Label (l, x)) else None)
       ctx.labels)

let pred_is ctx p x =
  disj
    (List.filter_map
       (fun l -> if String.equal l.l_pred p then Some (Label (l, x)) else None)
       ctx.labels)

(* "the pair ((s1,i),(s2,j)) is in eq(x)": a label disjunction. *)
let eq_pair ctx (s1, i) (s2, j) x =
  disj
    (List.filter_map
       (fun l ->
         if eq_related ~ar:ctx.ar l (s1, i) (s2, j) then Some (Label (l, x)) else None)
       ctx.labels)

(* A is closed under Edge: ∀z∀w (z∈A ∧ z≺w → w∈A). *)
let edge_closed a =
  Forall1 ("z", Forall1 ("w", Implies (And [ Mem ("z", a); Edge ("z", "w") ], Mem ("w", a))))

(* reach(x,y): y is an Edge-descendant-or-equal of x, second-order style. *)
let reach x y =
  Forall2
    ("R", Implies (And [ Mem (x, "R"); edge_closed "R" ], Mem (y, "R")))

(* ϕ_fin(A): every infinite directed path from the root has an infinite
   sub-path disjoint from A.  Following the appendix's recipe, with
   "infinite path" encoded as: a non-empty Edge-chain without a maximal
   element.  (On finite trees the formula is vacuously true of every set,
   which is the right reading: finiteness only bites on infinite trees.) *)
let phi_fin a =
  let is_chain b =
    (* b is totally ordered by reachability *)
    Forall1
      ( "u",
        Forall1
          ( "v",
            Implies
              ( And [ Mem ("u", b); Mem ("v", b) ],
                Or [ reach "u" "v"; reach "v" "u" ] ) ) )
  in
  let endless b =
    (* every element of b has a successor in b *)
    Forall1
      ( "u",
        Implies
          ( Mem ("u", b),
            Exists1 ("v", And [ Mem ("v", b); Edge ("u", "v") ]) ) )
  in
  let nonempty b = Exists1 ("u", Mem ("u", b)) in
  let disjoint b =
    Forall1 ("u", Not (And [ Mem ("u", b); Mem ("u", a) ]))
  in
  Forall2
    ( "B",
      Implies
        ( And [ nonempty "B"; is_chain "B"; endless "B" ],
          Exists2
            ( "C",
              And
                [
                  nonempty "C";
                  is_chain "C";
                  endless "C";
                  disjoint "C";
                  (* C is a sub-path of B *)
                  Forall1 ("u", Implies (Mem ("u", "C"), Mem ("u", "B")));
                ] ) ) )

(* ϕ^{i,j}_=(x,y): the i-th term of δ(x) equals the j-th term of δ(y).
   Appendix C.3 routes the equality along the (undirected) tree path
   between x and y through the eq labels: ar(T) sets A_0..A_{ar-1} mark,
   per node, the positions carrying the witnessed term; every tree edge
   inside ∪A must relate the marked father/me position pairs in the
   child's label; and ∪A must be connected towards a common top — every
   member either reaches all members (the top) or has its parent in ∪A.
   (A path between x and y climbs to their meet and descends, so the
   members are not a reach-chain — connectivity-to-top is the right
   condition.) *)
let phi_eq ctx i j x y =
  let ar = ctx.ar in
  let sets = List.init ar (fun k -> Printf.sprintf "A%d" k) in
  let member_of_some z = disj (List.map (fun s -> Mem (z, s)) sets) in
  let consecutive =
    (* for z ≺ w inside ∪A: z ∈ A_k ∧ w ∈ A_ℓ ⇒ ((f,k),(m,ℓ)) ∈ eq(w) *)
    Forall1
      ( "z",
        Forall1
          ( "w",
            Implies
              ( And [ member_of_some "z"; member_of_some "w"; Edge ("z", "w") ],
                conj
                  (List.concat
                     (List.init ar (fun k ->
                          List.init ar (fun l ->
                              Implies
                                ( And
                                    [ Mem ("z", List.nth sets k); Mem ("w", List.nth sets l) ],
                                  eq_pair ctx (F_side, k) (M_side, l) "w" ))))) ) ) )
  in
  let connected_to_top =
    Forall1
      ( "w",
        Implies
          ( member_of_some "w",
            Or
              [
                (* w is the top: it reaches every member *)
                Forall1 ("u", Implies (member_of_some "u", reach "w" "u"));
                (* or w's parent is a member too *)
                Exists1 ("p", And [ Edge ("p", "w"); member_of_some "p" ]);
              ] ) )
  in
  (* within one node: marked positions must carry equal terms *)
  let within =
    Forall1
      ( "w",
        conj
          (List.concat
             (List.init ar (fun k ->
                  List.init ar (fun l ->
                      if k < l then
                        Implies
                          ( And [ Mem ("w", List.nth sets k); Mem ("w", List.nth sets l) ],
                            eq_pair ctx (M_side, k) (M_side, l) "w" )
                      else True)))) )
  in
  let body =
    And
      [
        Mem (x, List.nth sets (min i (ar - 1)));
        Mem (y, List.nth sets (min j (ar - 1)));
        consecutive;
        within;
        connected_to_top;
      ]
  in
  List.fold_left (fun f s -> Exists2 (s, f)) body (List.rev sets)

(* ϕ_π(x,y): δ(x) ⊆π δ(y). *)
let phi_pi ctx pi x y =
  let xi = Sideatom_type.xi pi in
  conj
    (pred_is ctx (Sideatom_type.pred pi) x
    :: Array.to_list (Array.mapi (fun i j -> phi_eq ctx i j x y) xi))

(* ϕ_s(x,y): x ≺s y — x stops y. *)
let phi_s ctx x y =
  disj
    (List.concat
       (List.mapi
          (fun r tgd ->
            let head = Tgd.head_atom tgd in
            let hp = Atom.pred head in
            let har = Atom.arity head in
            let fr_positions = Tgd.frontier_positions tgd in
            [
              conj
                ([
                   org_is ctx (Abstract_join_tree.Rule r) y;
                   pred_is ctx hp x;
                 ]
                (* frontier positions are fixed *)
                @ List.map (fun i -> phi_eq ctx i i x y) fr_positions
                (* consistency: equal in y implies equal in x *)
                @ List.concat
                    (List.init har (fun i ->
                         List.init har (fun j ->
                             if i < j then
                               Implies (phi_eq ctx i j y y, phi_eq ctx i j x x)
                             else True))));
            ])
          (Array.to_list ctx.tgds)))

(* ψ_b(x,y): x ≺b y. *)
let psi_b ctx x y =
  let side_parent =
    (* x is a π-side-parent of y, for some TGD generating y *)
    disj
      (List.concat
         (List.mapi
            (fun r tgd ->
              match Guardedness.guard tgd with
              | None -> []
              | Some guard ->
                  Guardedness.side_atoms tgd
                  |> List.concat_map (fun side -> Sideatom_type.all_of_pair side ~of_:guard)
                  |> List.map (fun pi ->
                         And
                           [
                             org_is ctx (Abstract_join_tree.Rule r) y;
                             Exists1
                               ( "f",
                                 And [ Edge ("f", y); phi_pi ctx pi x "f" ] );
                           ]))
            (Array.to_list ctx.tgds)))
  in
  Or
    [
      And [ org_is ctx Abstract_join_tree.F x; Not (org_is ctx Abstract_join_tree.F y) ];
      Edge (x, y);
      side_parent;
      phi_s ctx y x;  (* ≺s⁻¹ *)
    ]

(* ϕ_cl(A): A is ≺b-downward closed. *)
let phi_cl ctx a =
  Forall1
    ( "x",
      Forall1
        ("y", Implies (And [ psi_b ctx "x" "y"; Mem ("y", a) ], Mem ("x", a))) )

(* ϕ_b(x,y): x ≺⁺b y. *)
let phi_b ctx x y =
  Forall2 ("A", Implies (And [ phi_cl ctx "A"; Mem (y, "A") ], Mem (x, "A")))

(* ------------------------------------------------------------------ *)
(* The top level: φ_T = ϕ_jt ∧ ϕ₁ ∧ ϕ₂ ∧ ϕ₃ (§C.3).                    *)
(* ------------------------------------------------------------------ *)

(* ϕ_jt: the first-order conditions of Def 5.8, plus finiteness of the
   F-part via ϕ_fin.  Conditions (3)–(5) are label-local: they prune the
   alphabet pairs allowed on an edge. *)
let phi_jt ctx =
  let allowed_edge l_parent l_child =
    match l_child.l_org with
    | Abstract_join_tree.F -> l_parent.l_org = Abstract_join_tree.F
    | Abstract_join_tree.Rule r ->
        let tgd = ctx.tgds.(r) in
        let head = Tgd.head_atom tgd in
        (match Guardedness.guard tgd with
        | None -> false
        | Some guard ->
            String.equal l_parent.l_pred (Atom.pred guard)
            && String.equal l_child.l_pred (Atom.pred head)
            (* (4): the child's f-part mirrors the parent's m-part *)
            && (let ok = ref true in
                for i = 0 to ctx.ar - 1 do
                  for j = 0 to ctx.ar - 1 do
                    if
                      eq_related ~ar:ctx.ar l_parent (M_side, i) (M_side, j)
                      <> eq_related ~ar:ctx.ar l_child (F_side, i) (F_side, j)
                    then ok := false
                  done
                done;
                !ok)
            (* (5a) *)
            && (let ok = ref true in
                for i = 0 to Atom.arity guard - 1 do
                  for j = 0 to Atom.arity head - 1 do
                    if
                      Term.equal (Atom.arg guard i) (Atom.arg head j)
                      && not (eq_related ~ar:ctx.ar l_child (F_side, i) (M_side, j))
                    then ok := false
                  done
                done;
                !ok)
            (* (5c) *)
            &&
            let existential = Tgd.existential_vars tgd in
            let ok = ref true in
            for j = 0 to Atom.arity head - 1 do
              if Term.Set.mem (Atom.arg head j) existential then
                for i = 0 to Atom.arity head - 1 do
                  let syntactic = Term.equal (Atom.arg head i) (Atom.arg head j) in
                  if syntactic <> eq_related ~ar:ctx.ar l_child (M_side, i) (M_side, j) then
                    ok := false
                done
            done;
            !ok)
  in
  let edge_condition =
    Forall1
      ( "x",
        Forall1
          ( "y",
            Implies
              ( Edge ("x", "y"),
                disj
                  (List.concat_map
                     (fun lp ->
                       List.filter_map
                         (fun lc ->
                           if allowed_edge lp lc then
                             Some (And [ Label (lp, "x"); Label (lc, "y") ])
                           else None)
                         ctx.labels)
                     ctx.labels) ) ) )
  in
  let f_nonempty = Exists1 ("x", org_is ctx Abstract_join_tree.F "x") in
  let f_finite =
    Exists2
      ( "A",
        And
          [
            Forall1
              ("x", Iff (Mem ("x", "A"), org_is ctx Abstract_join_tree.F "x"));
            phi_fin "A";
          ] )
  in
  And [ edge_condition; f_nonempty; f_finite ]

(* ϕ₁: finitely many ≺⁺b-predecessors per node. *)
let phi_1 ctx =
  Forall1
    ( "x",
      Forall2
        ( "A",
          Implies
            ( Forall1 ("y", Iff (phi_b ctx "y" "x", Mem ("y", "A"))),
              phi_fin "A" ) ) )

(* ϕ₂: every side atom of a generated node is served by a side-parent. *)
let phi_2 ctx =
  Forall1
    ( "x",
      Forall1
        ( "y",
          conj
            (List.mapi
               (fun r tgd ->
                 match Guardedness.guard tgd with
                 | None -> True
                 | Some guard ->
                     Implies
                       ( And [ Edge ("x", "y"); org_is ctx (Abstract_join_tree.Rule r) "y" ],
                         conj
                           (Guardedness.side_atoms tgd
                           |> List.map (fun side ->
                                  let pis = Sideatom_type.all_of_pair side ~of_:guard in
                                  Exists1
                                    ( "z",
                                      disj (List.map (fun pi -> phi_pi ctx pi "z" "x") pis) ))) ))
               (Array.to_list ctx.tgds)) ) )

(* ϕ₃: ≺b is acyclic. *)
let phi_3 ctx = Forall1 ("x", Not (phi_b ctx "x" "x"))

let phi_t tgds =
  if not (Guardedness.is_guarded tgds) then invalid_arg "Msol.phi_t: guarded TGDs required";
  let ctx = make_context tgds in
  And [ phi_jt ctx; phi_1 ctx; phi_2 ctx; phi_3 ctx ]

let alphabet_size tgds = List.length (alphabet tgds)
