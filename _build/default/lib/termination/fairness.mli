(** The Fairness Theorem machinery (paper §4): the §4 construction on
    finite derivation prefixes, and Lemma 4.4 as an executable check.
    The theorem fails for multi-head TGDs (Example B.1) — the single-head
    requirement is enforced. *)

open Chase_core
open Chase_engine

(** Lemma 4.4's bound: the number of equality types over sch(T). *)
val equality_type_bound : Tgd.t list -> int

(** The core claim of Lemma 4.4 on a prefix: two same-TGD atoms that stop
    each other may never both be generated.  Returns an offending pair if
    one exists (it never should on a valid derivation). *)
val lemma_4_4_witness : Derivation.t -> (Atom.t * Atom.t) option

(** Triggers that became active in the prefix and are still active at the
    end — the candidates fairification must serve, earliest first. *)
val persistent_active_triggers : Tgd.t list -> Derivation.t -> Trigger.t list

(** One step of the §4 construction: insert the application of the
    trigger at an index ℓ past its activation point and past every
    element of A = \{ i : result(σ,h) ≺s result(σᵢ,hᵢ) \}; every later
    step is re-checked for activeness (Lemma 4.5).  The derivation must
    use canonical null naming.
    @raise Invalid_argument on multi-head TGDs. *)
val insert_step : Tgd.t list -> Derivation.t -> Trigger.t -> (Derivation.t, string) result

(** Iterate {!insert_step} for the earliest persistent triggers — the
    diagonal of the s_{D,T} matrix, on a prefix.
    @raise Invalid_argument on multi-head TGDs. *)
val fairify : ?rounds:int -> Tgd.t list -> Derivation.t -> (Derivation.t, string) result
