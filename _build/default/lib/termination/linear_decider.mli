(** CTres∀∀ for single-head {e linear} TGDs via single-atom critical
    databases (paper §1.2; the setting of Leclère et al., ICDT'19): if
    any database diverges, some single-atom database does, and single
    atoms matter only up to equality type — finitely many candidates,
    each explored exhaustively.  Cross-validated against the sticky
    decider on linear ∩ sticky inputs by the test suite. *)

open Chase_core

type evidence = { database : Instance.t; derivation : Chase_engine.Derivation.t }

type verdict =
  | All_terminating of { candidates : int }  (** conclusive within budgets *)
  | Non_terminating of evidence
  | Inconclusive of string

(** One single-atom database per equality type over sch(T). *)
val critical_databases : Tgd.t list -> Instance.t list

val default_max_depth : int
val default_max_states : int

(** @raise Invalid_argument on non-linear or multi-head TGDs. *)
val decide : ?max_depth:int -> ?max_states:int -> Tgd.t list -> verdict
