(** Join trees and acyclic instances (paper Def 5.4): an instance is
    acyclic when its atoms can be arranged in a tree where, for every
    term, the atoms mentioning it form a connected subtree.  Decided by
    GYO ear removal. *)

open Chase_core

type t = { atom : Atom.t; children : t list }

val fold : ('a -> Atom.t -> 'a) -> 'a -> t -> 'a
val atoms : t -> Atom.t list
val size : t -> int

(** Is the tree a join tree of the instance (both conditions of
    Def 5.4)? *)
val is_join_tree_of : t -> Instance.t -> bool

(** GYO ear removal; [Some] join tree iff the instance is acyclic and
    non-empty. *)
val gyo : Instance.t -> t option

val is_acyclic : Instance.t -> bool
val pp : Format.formatter -> t -> unit
