(** Caterpillar words (paper Def D.2): the symbolic face of caterpillars,
    and the step-by-step agreement between the App. D.2 automaton and the
    §6.1 concrete objects.  Decoding (word → caterpillar) lives in
    {!Sticky_decider.unroll}. *)

open Chase_core

type t = Sticky_automaton.letter list

(** The word of a caterpillar prefix. *)
val encode : Tgd.t list -> Caterpillar.t -> (t, string) result

(** A plausible start pair (e₀, Π₀-class) of a caterpillar prefix. *)
val start_pair : Caterpillar.t -> Equality_type.t * int

(** Run A_T symbolically alongside the concrete caterpillar: after every
    letter, A_pc's tracked equality type must equal the equality type of
    the concrete body atom. *)
val check_against_automaton :
  ?start:Equality_type.t * int ->
  Sticky_automaton.context ->
  Caterpillar.t ->
  (unit, string) result
