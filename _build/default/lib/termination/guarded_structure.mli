(** Guard-parent / side-parent structure over the real oblivious chase
    (paper App. C.2): the ≺gp forest, π-refined side-parents, the
    remote-side-parent situations of Def 5.7, and the induced longs-for
    graph — computed over the graph itself (the derivation-based
    counterpart lives in {!Treeify}). *)

open Chase_core
open Chase_engine

type t

(** @raise Invalid_argument on unguarded TGDs. *)
val build : Tgd.t list -> Real_oblivious.t -> t

(** The unique guard-parent of a generated node; [None] on roots. *)
val guard_parent : t -> int -> int option

(** The database node rooting the ≺gp chain. *)
val root : t -> int -> int

(** v ≺⁺gp u (proper ancestor). *)
val is_gp_ancestor : t -> ancestor:int -> of_:int -> bool

(** The guard subtree below a node, including it. *)
val guard_subtree : t -> int -> int list

(** Side-parents of a generated node with their sideatom types relative
    to the guard-parent's atom (v ≺π_sp u). *)
val side_parents : t -> int -> (int * Sideatom_type.t) list

type remote_situation = {
  alpha : int;  (** a database node *)
  alpha' : int;  (** α ≺⁺gp α′ *)
  beta : int;  (** another database node *)
  beta' : int;  (** β ≺*gp β′ and β′ ≺sp α′ *)
}

(** All remote-side-parent situations (Def 5.7, β ≺*gp β′ reflexive). *)
val remote_situations : t -> remote_situation list

(** The longs-for graph over database atoms. *)
val longs_for : t -> (Atom.t * Atom.t) list

(** Guard-subtree sizes per database root. *)
val subtree_sizes : t -> (int, int) Hashtbl.t
