(** Caterpillars (paper §6.1, Defs 6.2–6.4): "path-like" chase
    derivations.  This module represents finite {e prefixes} — which is
    what the decision procedure's lasso witnesses unroll to — and
    validates the paper's conditions on them. *)

open Chase_core
open Chase_engine

type step = {
  trigger : Trigger.t;  (** (σᵢ, hᵢ) *)
  gamma_index : int;  (** index of γᵢ in body(σᵢ) *)
  atom : Atom.t;  (** αᵢ = result(σᵢ, hᵢ) *)
  pass_on : int list;
      (** 0-based head positions of a newly born relay term, when this
          step is a pass-on point of the connectedness structure *)
}

type t = { legs : Instance.t; start : Atom.t; steps : step list }

val legs : t -> Instance.t
val start : t -> Atom.t
val steps : t -> step list
val length : t -> int

(** The body B: α₀ followed by the step atoms. *)
val body : t -> Atom.t list

(** Def 6.2 conditions on the prefix. *)
val validate_proto : Tgd.t list -> t -> (unit, string) result

(** Def 6.3 conditions on the prefix: no leg stops a body atom, no body
    atom stops a later one. *)
val validate_stops : t -> (unit, string) result

(** Connectedness (Def 6.6) relative to the recorded pass-on points. *)
val validate_connected : t -> (unit, string) result

(** All of the above. *)
val validate : Tgd.t list -> t -> (unit, string) result

(** 1-based step indices of the pass-on points. *)
val pass_on_points : t -> int list

(** Gaps between consecutive pass-on points. *)
val pass_on_gaps : t -> int list

(** Uniform connectedness (Def 6.7): all gaps ≤ bound. *)
val is_uniformly_connected : bound:int -> t -> bool

(** L ∪ B as an instance. *)
val to_instance : t -> Instance.t

val pp : Format.formatter -> t -> unit
