(* A brute-force MSOL evaluator over finite labeled trees.

   The paper's φ_T (Lemma 5.12) lives on *infinite* trees, where only
   automata-theoretic methods decide it; but its building blocks —
   ϕ^{i,j}_=, ϕ_π, ϕ_s, ψ_b — speak about finite neighbourhoods, and on
   finite abstract join trees they can be evaluated by sheer enumeration:
   first-order variables range over the nodes, second-order variables
   over all subsets (as bit sets).  The test suite uses this to check the
   formulas of {!Msol} against the ground truth computed directly from
   the decoded instance — the semantic soundness of the Lemma 5.12
   construction, on finite instances.

   Exponential by design; meant for trees of ≤ ~10 nodes. *)


type tree = {
  labels : Msol.label array;  (* per node id *)
  parent : int array;  (* -1 for the root *)
}

exception Unbound of string

(* Flatten an abstract join tree into indexable arrays, padding every
   label's eq relation to the uniform 2·ar(T) slots of Λ_T (padded slots
   get fresh singleton classes, related to nothing). *)
let of_abstract_join_tree ~ar (t : Abstract_join_tree.t) =
  let nodes = ref [] in
  let rec walk parent (n : Abstract_join_tree.node) =
    let id = List.length !nodes in
    nodes := (id, parent, n) :: !nodes;
    List.iter (walk id) n.Abstract_join_tree.children
  in
  walk (-1) t;
  let nodes = List.rev !nodes in
  let count = List.length nodes in
  let labels = Array.make count None in
  let parent = Array.make count (-1) in
  List.iter
    (fun (id, pid, (n : Abstract_join_tree.node)) ->
      parent.(id) <- pid;
      let f = n.Abstract_join_tree.eq.Abstract_join_tree.f_classes in
      let m = n.Abstract_join_tree.eq.Abstract_join_tree.m_classes in
      (* joint class space, padded with fresh ids *)
      let fresh = ref 10_000 in
      let slot side i =
        let arr = match side with `F -> f | `M -> m in
        if i < Array.length arr then arr.(i)
        else begin
          incr fresh;
          !fresh
        end
      in
      let eq = Array.init (2 * ar) (fun k -> if k < ar then slot `F k else slot `M (k - ar)) in
      labels.(id) <-
        Some
          {
            Msol.l_pred = n.Abstract_join_tree.pr;
            l_org = n.Abstract_join_tree.org;
            l_eq = eq;
          })
    nodes;
  { labels = Array.map Option.get labels; parent }

let size t = Array.length t.labels

(* Does node [x] carry label [l]?  Labels are compared by predicate,
   origin and the equality relation *restricted to meaningful slots*:
   padded singleton classes match any singleton structure, so we compare
   the induced relation "slots k, k' related", which canonicalization
   makes stable. *)
let label_matches ~ar (node_label : Msol.label) (l : Msol.label) =
  String.equal node_label.Msol.l_pred l.Msol.l_pred
  && node_label.Msol.l_org = l.Msol.l_org
  &&
  let related (lab : Msol.label) k k' = lab.Msol.l_eq.(k) = lab.Msol.l_eq.(k') in
  let ok = ref true in
  for k = 0 to (2 * ar) - 1 do
    for k' = 0 to (2 * ar) - 1 do
      if related node_label k k' <> related l k k' then ok := false
    done
  done;
  !ok

(* Evaluate a formula.  Environments: first-order vars → node ids,
   second-order vars → bitsets over nodes; free variables may be
   pre-bound through [fo] / [so]. *)
let eval ?(fo = []) ?(so = []) ~ar tree formula =
  let fo0 = fo and so0 = so in
  let n = size tree in
  let subsets = 1 lsl n in
  let mem set i = set land (1 lsl i) <> 0 in
  let rec go fo so = function
    | Msol.True -> true
    | Msol.False -> false
    | Msol.Label (l, x) -> (
        match List.assoc_opt x fo with
        | Some id -> label_matches ~ar tree.labels.(id) l
        | None -> raise (Unbound x))
    | Msol.Edge (x, y) -> (
        match (List.assoc_opt x fo, List.assoc_opt y fo) with
        | Some a, Some b -> tree.parent.(b) = a
        | _ -> raise (Unbound (x ^ "/" ^ y)))
    | Msol.Eq (x, y) -> (
        match (List.assoc_opt x fo, List.assoc_opt y fo) with
        | Some a, Some b -> a = b
        | _ -> raise (Unbound (x ^ "/" ^ y)))
    | Msol.Mem (x, a) -> (
        match (List.assoc_opt x fo, List.assoc_opt a so) with
        | Some id, Some set -> mem set id
        | _ -> raise (Unbound (x ^ "∈" ^ a)))
    | Msol.Not f -> not (go fo so f)
    | Msol.And fs -> List.for_all (go fo so) fs
    | Msol.Or fs -> List.exists (go fo so) fs
    | Msol.Implies (p, q) -> (not (go fo so p)) || go fo so q
    | Msol.Iff (p, q) -> go fo so p = go fo so q
    | Msol.Forall1 (x, f) ->
        let ok = ref true in
        let i = ref 0 in
        while !ok && !i < n do
          if not (go ((x, !i) :: fo) so f) then ok := false;
          incr i
        done;
        !ok
    | Msol.Exists1 (x, f) ->
        let found = ref false in
        let i = ref 0 in
        while (not !found) && !i < n do
          if go ((x, !i) :: fo) so f then found := true;
          incr i
        done;
        !found
    | Msol.Forall2 (a, f) ->
        let ok = ref true in
        let s = ref 0 in
        while !ok && !s < subsets do
          if not (go fo ((a, !s) :: so) f) then ok := false;
          incr s
        done;
        !ok
    | Msol.Exists2 (a, f) ->
        let found = ref false in
        let s = ref 0 in
        while (not !found) && !s < subsets do
          if go fo ((a, !s) :: so) f then found := true;
          incr s
        done;
        !found
  in
  go fo0 so0 formula
