(** Graphviz (DOT) exports for the paper's graph-shaped objects; pipe
    into [dot -Tsvg].  Exposed via [chasectl … --dot]. *)

open Chase_engine

(** ochase(D,T) with its ≺p edges (database nodes shaded). *)
val real_oblivious : Real_oblivious.t -> string

(** A join tree (Def 5.4), as an undirected tree. *)
val join_tree : Join_tree.t -> string

(** An abstract join tree (Def 5.8) with decoded atoms per node. *)
val abstract_join_tree : Abstract_join_tree.t -> string
