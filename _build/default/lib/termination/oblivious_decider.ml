(* All-instances termination of the (semi-)oblivious chase via the
   critical database (Marnette PODS'09; used by [Calautti-Gottlob-Pieris
   PODS'15] and [Calautti-Pieris ICDT'19], the oblivious-chase papers the
   paper builds on).

   For the oblivious and semi-oblivious chase — unlike the restricted one
   (paper §1.2) — the database D* collecting every atom R(c,…,c) is
   critical: if any database leads to an infinite chase, D* does.  So
   all-instances oblivious termination reduces to termination on D*,
   which we semi-decide by running the chase with a budget:

     - saturation within the budget is a *proof* of all-instances
       oblivious termination;
     - exceeding the budget is evidence of divergence (single-instance
       oblivious termination is itself undecidable, so no budget-free
       answer exists).

   This module is the baseline against which the paper's restricted-chase
   results are compared (experiment E9): sets in CTres∀∀ \ CTobl∀∀ are
   exactly where the restricted chase earns its activeness checks. *)

open Chase_core
open Chase_engine

type verdict =
  | All_terminating of { atoms : int; applications : int }  (* proof *)
  | Diverging_on_critical of { prefix_atoms : int }  (* budget evidence *)

(* D*: every R(c, …, c). *)
let critical_database tgds =
  let schema = Schema.of_tgds tgds in
  Schema.fold
    (fun p ar acc -> Instance.add (Atom.make p (List.init ar (fun _ -> Term.Const "c"))) acc)
    schema Instance.empty

let default_max_steps = 20_000

let decide ?(variant = Oblivious.Oblivious) ?(max_steps = default_max_steps) tgds =
  let d_star = critical_database tgds in
  let r = Oblivious.run ~variant ~max_steps tgds d_star in
  if r.Oblivious.saturated then
    All_terminating
      { atoms = Instance.cardinal r.Oblivious.instance; applications = r.Oblivious.applications }
  else Diverging_on_critical { prefix_atoms = Instance.cardinal r.Oblivious.instance }

(* The naive transfer to the restricted chase that the paper's §1.2 warns
   about: D* is NOT critical for the restricted chase.  Exposed so that
   tests and benches can exhibit a counterexample (Example 5.6: the
   critical database terminates under the restricted chase while
   {R(a,b), S(b,c)} does not). *)
let restricted_terminates_on_critical ?(max_steps = default_max_steps) tgds =
  let d_star = critical_database tgds in
  Derivation.terminated (Restricted.run ~max_steps tgds d_star)
