(* The Treeification Theorem, executably (paper Thm 5.5, App. C.2).

   If a database D admits an infinite restricted chase derivation w.r.t. a
   guarded single-head set T, then some *acyclic* database does.  The
   proof turns D into D_ac: it finds the database atom α∞ with an infinite
   guard-subtree, builds the "longs for" graph over D from the
   remote-side-parent situations (Def 5.7) that the derivation exhibits,
   and unfolds it into a tree T_ac of directed paths from α∞ of bounded
   length, each node labeled by a constant-renamed copy of its endpoint
   that shares constants with its parent exactly as the original atoms
   share them.

   This implementation derives the guard-subtree and longs-for structure
   from a (budget-cut) diverging derivation prefix, and *validates* the
   construction by iterative deepening: it returns the shallowest D_ac on
   which divergence evidence reappears, together with its join tree.  On
   terminating inputs it reports failure. *)

open Chase_core
open Chase_engine
open Chase_classes

type result = {
  alpha_infinity : Atom.t;  (* the D-atom with the largest guard subtree *)
  longs_for : (Atom.t * Atom.t) list;  (* edges of the longs-for graph over D *)
  dac : Instance.t;  (* the acyclic database *)
  tree : Join_tree.t;  (* its join tree (T_ac) *)
  depth : int;  (* path-length bound ℓ at which divergence reappeared *)
  evidence : Derivation.t;  (* diverging derivation prefix on D_ac *)
}

let require_guarded tgds =
  if not (Guardedness.is_guarded tgds) then invalid_arg "Treeify: guarded TGDs required";
  List.iter
    (fun t ->
      if not (Tgd.is_single_head t) then invalid_arg "Treeify: single-head TGDs required")
    tgds

(* Guard- and side-parent images of every step of a derivation. *)
let step_parents (s : Derivation.step) =
  let tgd = Trigger.tgd s.Derivation.trigger in
  let hom = Trigger.hom s.Derivation.trigger in
  let gi = Option.get (Guardedness.guard_index tgd) in
  let body = Tgd.body tgd in
  let images = List.map (Substitution.apply_atom hom) body in
  let guard = List.nth images gi in
  let sides = List.filteri (fun i _ -> i <> gi) images in
  (guard, sides)

(* Roots of the guard-parent forest: map every atom of the derivation to
   the database atom at the top of its guard-parent chain. *)
let guard_roots database derivation =
  let root : (Atom.t, Atom.t) Hashtbl.t = Hashtbl.create 64 in
  Instance.iter (fun a -> Hashtbl.replace root a a) database;
  List.iter
    (fun (s : Derivation.step) ->
      let guard, _ = step_parents s in
      match Hashtbl.find_opt root guard with
      | Some r -> List.iter (fun a -> Hashtbl.replace root a r) s.Derivation.produced
      | None -> () (* guard not rooted (multi-head produced?) — skip *))
    (Derivation.steps derivation);
  root

(* The longs-for graph: α longs for β (α ≠ β ∈ D) when some atom in α's
   guard subtree uses, as a side-parent, an atom of β's guard subtree
   (including β itself). *)
let longs_for_edges database derivation =
  let root = guard_roots database derivation in
  let edges = ref [] in
  List.iter
    (fun (s : Derivation.step) ->
      let guard, sides = step_parents s in
      match Hashtbl.find_opt root guard with
      | None -> ()
      | Some alpha ->
          List.iter
            (fun side ->
              match Hashtbl.find_opt root side with
              | Some beta when not (Atom.equal alpha beta) -> edges := (alpha, beta) :: !edges
              | _ -> ())
            sides)
    (Derivation.steps derivation);
  List.sort_uniq (fun (a, b) (c, d) ->
      let x = Atom.compare a c in
      if x <> 0 then x else Atom.compare b d)
    !edges

(* Guard-subtree sizes per database atom. *)
let subtree_sizes database derivation =
  let root = guard_roots database derivation in
  let count : (Atom.t, int) Hashtbl.t = Hashtbl.create 16 in
  Instance.iter (fun a -> Hashtbl.replace count a 0) database;
  List.iter
    (fun (s : Derivation.step) ->
      List.iter
        (fun a ->
          match Hashtbl.find_opt root a with
          | Some r ->
              Hashtbl.replace count r (1 + Option.value ~default:0 (Hashtbl.find_opt count r))
          | None -> ())
        s.Derivation.produced)
    (Derivation.steps derivation);
  count

(* Build T_ac for a given path-length bound: unfold the longs-for graph
   from α∞ into paths of length ≤ depth; each node is labeled with a
   renamed copy of its endpoint sharing constants with its parent's label
   exactly where the original atoms share them (App. C.2). *)
let build_tree ~alpha_infinity ~edges ~depth =
  let node_counter = ref 0 in
  let successors a = List.filter_map (fun (x, y) -> if Atom.equal x a then Some y else None) edges in
  (* label(child original β | parent original α, parent label λx) *)
  let label_child ~beta ~alpha ~lambda_x node_id =
    let n = Atom.arity beta in
    let args = Array.make n (Term.Const "?") in
    for i = 0 to n - 1 do
      let bi = Atom.arg beta i in
      (* share within the atom *)
      let earlier =
        let rec find j = if j >= i then None else if Term.equal (Atom.arg beta j) bi then Some j else find (j + 1) in
        find 0
      in
      match earlier with
      | Some j -> args.(i) <- args.(j)
      | None -> (
          (* share with the parent where β shares with α *)
          match Atom.positions_of alpha bi with
          | j :: _ -> args.(i) <- Atom.arg lambda_x j
          | [] -> args.(i) <- Term.Const (Printf.sprintf "%s@%d" (Term.to_string bi) node_id))
    done;
    Atom.make_a (Atom.pred beta) args
  in
  let rec unfold original lambda remaining =
    incr node_counter;
    let children =
      if remaining <= 0 then []
      else
        List.map
          (fun beta ->
            incr node_counter;
            let lab = label_child ~beta ~alpha:original ~lambda_x:lambda !node_counter in
            unfold beta lab (remaining - 1))
          (successors original)
    in
    { Join_tree.atom = lambda; children }
  in
  unfold alpha_infinity alpha_infinity depth

let default_max_depth_bound = 4
let default_chase_budget = 300

(* The full pipeline with iterative deepening and validation. *)
let treeify ?(max_depth_bound = default_max_depth_bound) ?(chase_budget = default_chase_budget)
    tgds database =
  require_guarded tgds;
  match Derivation_search.divergence_evidence ~max_depth:chase_budget tgds database with
  | None -> Error "no divergence evidence on the input database"
  | Some derivation ->
      let sizes = subtree_sizes database derivation in
      let alpha_infinity =
        Instance.fold
          (fun a best ->
            match best with
            | None -> Some a
            | Some b ->
                let ca = Option.value ~default:0 (Hashtbl.find_opt sizes a) in
                let cb = Option.value ~default:0 (Hashtbl.find_opt sizes b) in
                if ca > cb then Some a else best)
          database None
      in
      (match alpha_infinity with
      | None -> Error "empty database"
      | Some alpha_infinity ->
          let edges = longs_for_edges database derivation in
          let rec deepen depth =
            if depth > max_depth_bound then
              Error
                (Printf.sprintf "no divergence on D_ac up to path bound %d" max_depth_bound)
            else
              let tree = build_tree ~alpha_infinity ~edges ~depth in
              let dac = Instance.of_list (Join_tree.atoms tree) in
              match Derivation_search.divergence_evidence ~max_depth:chase_budget tgds dac with
              | Some evidence ->
                  Ok { alpha_infinity; longs_for = edges; dac; tree; depth; evidence }
              | None -> deepen (depth + 1)
          in
          deepen 0)
