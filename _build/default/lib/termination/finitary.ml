(* From a free uniformly connected caterpillar to a finitary one
   (paper Lemma 6.13, §6.4), on prefixes.

   A caterpillar's legs may grow forever — the free caterpillar extracted
   from a derivation, or unrolled from a lasso, invents fresh leg terms at
   every step.  Lemma 6.13 unifies leg terms through a *unifying function*
   h : V → T, where V collects the leg terms not tied to immortal
   positions and T is a fixed set of 2m fresh terms (m bounded by the
   uniform pass-on distance d times the maximal TGD width).  The key
   facts — (i) |Vᵢ| ≤ m per pass-on window, and (ii) a term shared with an
   earlier window already occurs in the window before it — let two
   alternating banks of m terms suffice: windows of even parity draw from
   bank A, odd from bank B, so adjacent windows never collide while
   distant windows happily reuse names.

   This module implements exactly that two-bank scheme on caterpillar
   prefixes and re-validates the result — {!Caterpillar.validate} is the
   soundness oracle, so a successful return *is* a finitary caterpillar
   prefix with the same body. *)

open Chase_core
open Chase_engine

type stats = {
  leg_atoms_before : int;
  leg_atoms_after : int;
  leg_terms_before : int;
  leg_terms_after : int;
  bank_size : int;  (* m: terms per bank *)
}

(* Terms eligible for unification: occurring in legs but in no body atom
   (relay and frontier terms of the path are off-limits). *)
let leg_only_terms cat =
  let body_terms =
    List.fold_left
      (fun acc a -> Term.Set.union (Atom.term_set a) acc)
      Term.Set.empty (Caterpillar.body cat)
  in
  Term.Set.diff (Instance.active_domain (Caterpillar.legs cat)) body_terms
  |> Term.Set.filter Term.is_null

(* The legs used by one step: body images other than the γ-image. *)
let step_legs (s : Caterpillar.step) =
  let tgd = Trigger.tgd s.Caterpillar.trigger in
  let hom = Trigger.hom s.Caterpillar.trigger in
  List.mapi (fun i b -> (i, Substitution.apply_atom hom b)) (Tgd.body tgd)
  |> List.filter_map (fun (i, img) ->
         if i <> s.Caterpillar.gamma_index then Some img else None)

(* Split the steps into pass-on windows: window k runs from (and
   including) the k-th pass-on step (window 0 is the prefix before the
   first pass-on). *)
let windows cat =
  let rec go current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | (s : Caterpillar.step) :: rest ->
        if s.Caterpillar.pass_on <> [] && current <> [] then
          go [ s ] (List.rev current :: acc) rest
        else go (s :: current) acc rest
  in
  match go [] [] (Caterpillar.steps cat) with [] -> [ [] ] | ws -> ws

let finitarize cat =
  let eligible = leg_only_terms cat in
  let ws = windows cat in
  (* V_i: eligible terms used by window i's legs *)
  let window_terms =
    List.map
      (fun steps ->
        List.fold_left
          (fun acc s ->
            List.fold_left
              (fun acc leg -> Term.Set.union (Term.Set.inter (Atom.term_set leg) eligible) acc)
              acc (step_legs s))
          Term.Set.empty steps)
      ws
  in
  let bank_size = List.fold_left (fun m v -> max m (Term.Set.cardinal v)) 0 window_terms in
  (* two alternating banks of [bank_size] fresh terms *)
  let bank parity j = Term.Null (Printf.sprintf "t%c%d" (if parity = 0 then 'A' else 'B') j) in
  let mapping = Hashtbl.create 32 in
  List.iteri
    (fun i v ->
      let parity = i mod 2 in
      (* names already taken inside this window by terms mapped earlier
         (they persist from the previous window, fact (ii)) *)
      let taken = Hashtbl.create 8 in
      Term.Set.iter
        (fun t ->
          match Hashtbl.find_opt mapping t with
          | Some name -> Hashtbl.replace taken name ()
          | None -> ())
        v;
      let next_free = ref 0 in
      Term.Set.iter
        (fun t ->
          if not (Hashtbl.mem mapping t) then begin
            while Hashtbl.mem taken (bank parity !next_free) do
              incr next_free
            done;
            let name = bank parity !next_free in
            Hashtbl.add mapping t name;
            Hashtbl.replace taken name ()
          end)
        v)
    window_terms;
  let unify t = match Hashtbl.find_opt mapping t with Some u -> u | None -> t in
  let rename_atom a = Atom.map unify a in
  let rename_trigger tr =
    let hom' =
      Substitution.bindings (Trigger.hom tr)
      |> List.map (fun (v, t) -> (v, unify t))
      |> Substitution.of_bindings
    in
    Trigger.make (Trigger.tgd tr) hom'
  in
  let legs_before = Caterpillar.legs cat in
  let cat' =
    {
      Caterpillar.legs = Instance.map rename_atom legs_before;
      start = cat.Caterpillar.start;  (* body terms are untouched *)
      steps =
        List.map
          (fun (s : Caterpillar.step) ->
            { s with Caterpillar.trigger = rename_trigger s.Caterpillar.trigger })
          (Caterpillar.steps cat);
    }
  in
  let stats =
    {
      leg_atoms_before = Instance.cardinal legs_before;
      leg_atoms_after = Instance.cardinal (Caterpillar.legs cat');
      leg_terms_before = Term.Set.cardinal (Instance.active_domain legs_before);
      leg_terms_after = Term.Set.cardinal (Instance.active_domain (Caterpillar.legs cat'));
      bank_size;
    }
  in
  (cat', stats)

(* The validated pipeline: unify, then let the caterpillar validator
   decide whether the result still satisfies Defs 6.2/6.3/6.6. *)
let finitarize_checked tgds cat =
  let cat', stats = finitarize cat in
  match Caterpillar.validate tgds cat' with
  | Ok () -> Ok (cat', stats)
  | Error e -> Error ("unification broke the caterpillar: " ^ e)
