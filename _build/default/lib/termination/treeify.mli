(** The Treeification Theorem, executably (paper Thm 5.5, App. C.2): turn
    a cyclic database with divergence evidence into an {e acyclic} one
    with the same behaviour, by unfolding the "longs for" graph of
    remote-side-parent situations (Def 5.7) from the atom α∞ with the
    largest guard subtree.  Validated by iterative deepening: the
    returned [dac] is the shallowest unfolding on which divergence
    evidence reappears. *)

open Chase_core
open Chase_engine

type result = {
  alpha_infinity : Atom.t;  (** the D-atom with the largest guard subtree *)
  longs_for : (Atom.t * Atom.t) list;  (** edges of the longs-for graph over D *)
  dac : Instance.t;  (** the acyclic database D_ac *)
  tree : Join_tree.t;  (** its join tree T_ac *)
  depth : int;  (** path-length bound ℓ at which divergence reappeared *)
  evidence : Derivation.t;  (** diverging derivation prefix on D_ac *)
}

(** Guard- and side-parent images of a derivation step (requires guarded
    single-head TGDs). *)
val step_parents : Derivation.step -> Atom.t * Atom.t list

(** Map every atom of the derivation to the database atom rooting its
    guard-parent chain. *)
val guard_roots : Instance.t -> Derivation.t -> (Atom.t, Atom.t) Hashtbl.t

(** α longs for β: some atom in α's guard subtree uses a side-parent from
    β's guard subtree (Def 5.7, including β itself). *)
val longs_for_edges : Instance.t -> Derivation.t -> (Atom.t * Atom.t) list

val subtree_sizes : Instance.t -> Derivation.t -> (Atom.t, int) Hashtbl.t

(** Unfold the longs-for graph from [alpha_infinity] into paths of length
    ≤ [depth], labeling each node with a constant-renamed copy of its
    endpoint (App. C.2). *)
val build_tree :
  alpha_infinity:Atom.t -> edges:(Atom.t * Atom.t) list -> depth:int -> Join_tree.t

val default_max_depth_bound : int
val default_chase_budget : int

(** The full pipeline.
    @raise Invalid_argument on unguarded or multi-head TGDs. *)
val treeify :
  ?max_depth_bound:int ->
  ?chase_budget:int ->
  Tgd.t list ->
  Instance.t ->
  (result, string) Result.t
