(* Graphviz (DOT) exports for the paper's graph-shaped objects: the real
   oblivious chase with its parent relation (Def 3.3), join trees
   (Def 5.4), and abstract join trees (Def 5.8).  `chasectl ... --dot`
   prints these; pipe into `dot -Tsvg` to look at them. *)

open Chase_core
open Chase_engine

let escape s =
  String.concat "" (List.map (fun c -> if c = '"' then "\\\"" else String.make 1 c)
       (List.init (String.length s) (String.get s)))

let real_oblivious graph =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph ochase {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  Array.iter
    (fun node ->
      let id = node.Real_oblivious.id in
      let label =
        match node.Real_oblivious.origin with
        | None -> Printf.sprintf "%s\\n⊥" (Atom.to_string node.Real_oblivious.atom)
        | Some t ->
            Printf.sprintf "%s\\n%s"
              (Atom.to_string node.Real_oblivious.atom)
              (Tgd.name (Trigger.tgd t))
      in
      Buffer.add_string b
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" id (escape label)
           (if node.Real_oblivious.origin = None then ", style=filled, fillcolor=lightgray"
            else ""));
      Array.iter
        (fun p -> Buffer.add_string b (Printf.sprintf "  n%d -> n%d;\n" p id))
        node.Real_oblivious.parents)
    (Real_oblivious.nodes graph);
  Buffer.add_string b "}\n";
  Buffer.contents b

let join_tree tree =
  let b = Buffer.create 512 in
  Buffer.add_string b "graph jointree {\n  node [shape=box, fontsize=10];\n";
  let counter = ref 0 in
  let rec walk parent (n : Join_tree.t) =
    let id = !counter in
    incr counter;
    Buffer.add_string b
      (Printf.sprintf "  n%d [label=\"%s\"];\n" id (escape (Atom.to_string n.Join_tree.atom)));
    (match parent with
    | Some p -> Buffer.add_string b (Printf.sprintf "  n%d -- n%d;\n" p id)
    | None -> ());
    List.iter (walk (Some id)) n.Join_tree.children
  in
  walk None tree;
  Buffer.add_string b "}\n";
  Buffer.contents b

let abstract_join_tree (t : Abstract_join_tree.t) =
  let atoms = Abstract_join_tree.atoms_with_ids t in
  let atom_of id = List.assoc id atoms in
  let b = Buffer.create 512 in
  Buffer.add_string b "digraph ajt {\n  node [shape=record, fontsize=10];\n";
  let counter = ref 0 in
  let rec walk parent (n : Abstract_join_tree.node) =
    let id = !counter in
    incr counter;
    let org =
      match n.Abstract_join_tree.org with
      | Abstract_join_tree.F -> "F"
      | Abstract_join_tree.Rule r -> Printf.sprintf "σ%d" r
    in
    Buffer.add_string b
      (Printf.sprintf "  n%d [label=\"{%s | %s | δ = %s}\"%s];\n" id
         (escape n.Abstract_join_tree.pr)
         org
         (escape (Atom.to_string (atom_of id)))
         (if n.Abstract_join_tree.org = Abstract_join_tree.F then
            ", style=filled, fillcolor=lightgray"
          else ""));
    (match parent with
    | Some p -> Buffer.add_string b (Printf.sprintf "  n%d -> n%d;\n" p id)
    | None -> ());
    List.iter (walk (Some id)) n.Abstract_join_tree.children
  in
  walk None t;
  Buffer.add_string b "}\n";
  Buffer.contents b
