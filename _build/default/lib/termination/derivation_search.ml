(* Exhaustive exploration of the restricted chase's non-determinism.

   CTres∀∀ quantifies over *all* derivations of a database: this module
   walks the tree of active-trigger choices, memoizing instances up to
   null-renaming (with canonical trigger naming, permuted derivations
   reach literally equal instances, and the memo key is additionally
   invariant under null renaming).  Outcomes:

     - [All_terminate]: every restricted chase derivation of the database
       is finite (within the state budget);
     - [Divergence_evidence]: some derivation exceeded the depth budget —
       empirical evidence of an infinite derivation (the returned prefix
       is a valid derivation, checkable independently);
     - [State_budget]: too many distinct instances; no conclusion. *)

open Chase_core
open Chase_engine

type stats = { states_explored : int; final_instances : int; longest : int }

type outcome =
  | All_terminate of stats
  | Divergence_evidence of Derivation.t
  | State_budget of stats

(* A memo key invariant under null renaming: blank the nulls, sort, then
   number nulls in encounter order.  Equal keys imply isomorphic-by-null-
   renaming instances (the converse may fail, which only costs work). *)
let instance_key instance =
  let atoms = Instance.to_list instance in
  let blanked =
    List.map
      (fun a ->
        let shape =
          Atom.args a
          |> List.map (function
               | Term.Const c -> "c:" ^ c
               | Term.Null _ -> "_"
               | Term.Var v -> "v:" ^ v)
          |> String.concat ","
        in
        (Printf.sprintf "%s(%s)" (Atom.pred a) shape, a))
      atoms
  in
  let sorted = List.sort (fun (s1, a1) (s2, a2) ->
      let c = String.compare s1 s2 in
      if c <> 0 then c else Atom.compare a1 a2)
      blanked
  in
  let ids = Hashtbl.create 16 in
  let next = ref 0 in
  let render (_, a) =
    Atom.args a
    |> List.map (function
         | Term.Const c -> "c:" ^ c
         | Term.Var v -> "v:" ^ v
         | Term.Null n ->
             let id =
               match Hashtbl.find_opt ids n with
               | Some i -> i
               | None ->
                   let i = !next in
                   incr next;
                   Hashtbl.add ids n i;
                   i
             in
             Printf.sprintf "_%d" id)
    |> String.concat ","
    |> Printf.sprintf "%s(%s)" (Atom.pred a)
  in
  String.concat ";" (List.map render sorted)

exception Diverged of Derivation.step list
exception Out_of_states

let default_max_depth = 100
let default_max_states = 20_000

let explore ?(max_depth = default_max_depth) ?(max_states = default_max_states) tgds database =
  let memo = Hashtbl.create 1024 in
  let finals = ref 0 in
  let longest = ref 0 in
  let rec visit instance depth path =
    if depth > !longest then longest := depth;
    if depth >= max_depth then raise (Diverged path);
    let key = instance_key instance in
    if Hashtbl.mem memo key then ()
    else begin
      Hashtbl.add memo key ();
      if Hashtbl.length memo > max_states then raise Out_of_states;
      let active = Restricted.active_triggers tgds instance in
      match active with
      | [] -> incr finals
      | _ ->
          List.iter
            (fun trigger ->
              (* canonical naming: permutation-invariant instances *)
              let after, produced = Trigger.apply instance trigger in
              let step =
                {
                  Derivation.index = depth;
                  trigger;
                  produced;
                  frontier = Trigger.frontier_terms trigger;
                  after = Lazy.from_val after;
                }
              in
              visit after (depth + 1) (step :: path))
            active
    end
  in
  let stats () =
    { states_explored = Hashtbl.length memo; final_instances = !finals; longest = !longest }
  in
  try
    visit database 0 [];
    All_terminate (stats ())
  with
  | Diverged path ->
      Divergence_evidence
        (Derivation.make ~database ~steps:(List.rev path) ~status:Derivation.Out_of_budget)
  | Out_of_states -> State_budget (stats ())

(* The liberal variant the paper's §7 poses as future work (question 3):
   is there a *finite* restricted chase derivation of the database — i.e.
   some trigger order that reaches an instance with no active triggers?
   On finite state spaces the exhaustive walk answers it exactly; the
   first terminating derivation found is returned as a witness. *)
exception Found of Derivation.step list

let some_terminating_derivation ?(max_depth = default_max_depth)
    ?(max_states = default_max_states) tgds database =
  let memo = Hashtbl.create 1024 in
  let rec visit instance depth path =
    if depth < max_depth then begin
      let key = instance_key instance in
      if not (Hashtbl.mem memo key) then begin
        Hashtbl.add memo key ();
        if Hashtbl.length memo > max_states then raise Out_of_states;
        match Restricted.active_triggers tgds instance with
        | [] -> raise (Found path)
        | active ->
            List.iter
              (fun trigger ->
                let after, produced = Trigger.apply instance trigger in
                let step =
                  {
                    Derivation.index = depth;
                    trigger;
                    produced;
                    frontier = Trigger.frontier_terms trigger;
                    after = Lazy.from_val after;
                  }
                in
                visit after (depth + 1) (step :: path))
              active
      end
    end
  in
  try
    visit database 0 [];
    None
  with
  | Found path ->
      Some
        (Derivation.make ~database ~steps:(List.rev path) ~status:Derivation.Terminated)
  | Out_of_states -> None

(* Does some derivation of [database] exceed the depth budget?  A cheap
   pre-check before full exploration: try depth-first strategies first. *)
let divergence_evidence ?(max_depth = default_max_depth) ?max_states tgds database =
  let by_strategy strategy =
    let d = Restricted.run ~strategy ~max_steps:max_depth tgds database in
    match Derivation.status d with Derivation.Out_of_budget -> Some d | _ -> None
  in
  match by_strategy Restricted.Lifo with
  | Some d -> Some d
  | None -> (
      match by_strategy Restricted.Fifo with
      | Some d -> Some d
      | None -> (
          match explore ~max_depth ?max_states tgds database with
          | Divergence_evidence d -> Some d
          | All_terminate _ | State_budget _ -> None))
