(* Extracting a free connected caterpillar from an infinite restricted
   chase derivation (paper §6.2, Lemmas 6.9–6.11) — the (1)⇒(2) direction
   of Theorem 6.5, executably, on finite derivation prefixes.

   Step 1 (♣): rank the terms of the derivation by the parent-term
   relation ≺tp (c ≺tp c' when c occurs in the frontier of c''s birth
   atom), pick favourite parents, and follow a longest chain of relay
   terms c₀ ≺tfp c₁ ≺tfp …; thread the birth atoms together along ≺p
   into a "path-like" proto-caterpillar whose other body images become
   legs.

   Step 2 (♠): drop the prefix of the chain whose relay terms touch an
   immortal position (w.r.t. the stickiness marking), so that the
   connectedness condition (4) of Def 6.6 can hold.

   Step 3 (♥): make the caterpillar free by renaming every term
   occurrence to its ≃*-equivalence class — positions are provably equal
   only through the variable sharing of the triggers used.  Stickiness
   guarantees this renaming is consistent on triggers: a body variable
   repeated across atoms must be unmarked, hence reach the head, hence
   its occurrences are ≃*-related through the result.

   The output is validated by {!Caterpillar.validate}; extraction is
   meaningful only for sticky sets (enforced). *)

open Chase_core
open Chase_engine

let ( let* ) = Result.bind

type step_data = {
  s_atom : Atom.t;
  s_trigger : Trigger.t;
  s_frontier : Term.Set.t;
  s_index : int;
}

let collect_steps derivation =
  let tbl : (Atom.t, step_data) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i (s : Derivation.step) ->
      match s.Derivation.produced with
      | [ a ] ->
          if not (Hashtbl.mem tbl a) then
            Hashtbl.add tbl a
              { s_atom = a; s_trigger = s.Derivation.trigger; s_frontier = s.Derivation.frontier;
                s_index = i }
      | _ -> invalid_arg "Caterpillar_extract: single-head derivations only")
    (Derivation.steps derivation);
  tbl

(* Birth atoms and parent terms of the nulls invented by the prefix. *)
let birth_info steps_by_atom =
  let birth : (Term.t, step_data) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun atom (sd : step_data) ->
      let fresh =
        Term.Set.diff (Atom.term_set atom) sd.s_frontier |> Term.Set.filter Term.is_null
      in
      Term.Set.iter
        (fun z -> if not (Hashtbl.mem birth z) then Hashtbl.add birth z sd)
        fresh)
    steps_by_atom;
  birth

(* ≺tfp: ranks and favourite parents over the terms of the prefix. *)
let favourite_parents birth =
  let rank : (Term.t, int) Hashtbl.t = Hashtbl.create 64 in
  let fp : (Term.t, Term.t) Hashtbl.t = Hashtbl.create 64 in
  let rec rank_of t =
    match Hashtbl.find_opt rank t with
    | Some r -> r
    | None -> (
        match Hashtbl.find_opt birth t with
        | None ->
            Hashtbl.replace rank t 0;
            0
        | Some sd ->
            let parents = Term.Set.elements sd.s_frontier in
            let r =
              1 + List.fold_left (fun acc p -> max acc (rank_of p)) (-1) parents
            in
            let r = max r 1 in
            Hashtbl.replace rank t r;
            (* favourite: the least parent of rank r - 1 *)
            (match
               List.filter (fun p -> rank_of p = r - 1) parents |> List.sort Term.compare
             with
            | p :: _ -> Hashtbl.replace fp t p
            | [] -> ());
            r)
  in
  Hashtbl.iter (fun t _ -> ignore (rank_of t)) birth;
  (rank, fp)

(* The longest ≺tfp chain, oldest first. *)
let longest_chain fp =
  let children : (Term.t, Term.t list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun child parent ->
      Hashtbl.replace children parent
        (child :: Option.value ~default:[] (Hashtbl.find_opt children parent)))
    fp;
  let depth_memo : (Term.t, int * Term.t list) Hashtbl.t = Hashtbl.create 64 in
  let rec best t =
    match Hashtbl.find_opt depth_memo t with
    | Some r -> r
    | None ->
        let kids = Option.value ~default:[] (Hashtbl.find_opt children t) in
        let r =
          List.fold_left
            (fun (bd, bp) k ->
              let d, p = best k in
              if d + 1 > bd then (d + 1, k :: p) else (bd, bp))
            (0, []) kids
        in
        Hashtbl.replace depth_memo t r;
        r
  in
  (* roots: terms that are parents but not children *)
  let roots =
    Hashtbl.fold
      (fun _ parent acc -> if Hashtbl.mem fp parent then acc else parent :: acc)
      fp []
    |> List.sort_uniq Term.compare
  in
  List.fold_left
    (fun (bd, bp) r ->
      let d, p = best r in
      if d + 1 > bd then (d + 1, r :: p) else (bd, bp))
    (0, []) roots
  |> snd

(* Walk from the birth atom of [next_relay] back to [target], following
   parents that carry [relay]; returns the forward list of
   (atom, step, gamma index) hops after [target]. *)
let thread steps_by_atom ~target ~relay ~from =
  let rec back cur acc =
    if Atom.equal cur target then Ok acc
    else
      match Hashtbl.find_opt steps_by_atom cur with
      | None -> Error (Printf.sprintf "atom %s has no producing step" (Atom.to_string cur))
      | Some sd -> (
          let tgd = Trigger.tgd sd.s_trigger in
          let hom = Trigger.hom sd.s_trigger in
          let body = Tgd.body tgd in
          let images = List.mapi (fun i b -> (i, Substitution.apply_atom hom b)) body in
          match
            List.find_opt (fun (_, img) -> Atom.mem_term img relay) images
          with
          | None ->
              Error
                (Printf.sprintf "no parent of %s carries the relay term %s"
                   (Atom.to_string cur) (Term.to_string relay))
          | Some (gi, parent) -> back parent ((parent, cur, sd, gi) :: acc))
  in
  back from []

(* The ≃* relation over (atom, position) pairs of the body-and-leg atoms,
   generated by the variable sharing of the used triggers. *)
module Pos = struct
  type t = Atom.t * int

  let compare (a, i) (b, j) =
    let c = Atom.compare a b in
    if c <> 0 then c else Int.compare i j
end

module PosMap = Map.Make (Pos)

let freeness_classes used_steps =
  let parent = ref PosMap.empty in
  let rec find x =
    match PosMap.find_opt x !parent with
    | None -> x
    | Some p ->
        let r = find p in
        parent := PosMap.add x r !parent;
        r
  in
  let union x y =
    let rx = find x and ry = find y in
    if Pos.compare rx ry <> 0 then parent := PosMap.add rx ry !parent
  in
  List.iter
    (fun (sd : step_data) ->
      let tgd = Trigger.tgd sd.s_trigger in
      let hom = Trigger.hom sd.s_trigger in
      let head = Tgd.head_atom tgd in
      let rho = sd.s_atom in
      (* body-to-head via shared variables *)
      List.iter
        (fun gamma ->
          let img = Substitution.apply_atom hom gamma in
          Array.iteri
            (fun i v ->
              List.iter (fun j -> union (img, i) (rho, j)) (Atom.positions_of head v))
            (Atom.args_a gamma))
        (Tgd.body tgd);
      (* within the head *)
      Array.iteri
        (fun i v ->
          List.iter (fun j -> if j <> i then union (rho, i) (rho, j)) (Atom.positions_of head v))
        (Atom.args_a head))
    used_steps;
  find

let extract ?(min_chain = 2) tgds derivation =
  if not (Chase_classes.Stickiness.is_sticky tgds) then
    invalid_arg "Caterpillar_extract: sticky TGDs required";
  let marking = Chase_classes.Stickiness.marking tgds in
  let tgd_index tgd =
    let rec go i = function
      | [] -> None
      | t :: rest -> if Tgd.equal t tgd then Some i else go (i + 1) rest
    in
    go 0 tgds
  in
  let steps_by_atom = collect_steps derivation in
  let birth = birth_info steps_by_atom in
  let _, fp = favourite_parents birth in
  let chain = longest_chain fp in
  (* Step 2: keep only relay terms that never sit at an immortal position
     in any produced atom of the prefix. *)
  let occurs_immortal c =
    Hashtbl.fold
      (fun atom (sd : step_data) acc ->
        acc
        ||
        match tgd_index (Trigger.tgd sd.s_trigger) with
        | None -> false
        | Some ti ->
            let imm = Chase_classes.Stickiness.immortal_positions marking ti in
            List.exists (fun p -> imm.(p)) (Atom.positions_of atom c))
      steps_by_atom false
  in
  let chain =
    let rec drop = function
      | c :: rest when Term.is_const c || occurs_immortal c -> drop rest
      | l -> l
    in
    drop chain
  in
  if List.length chain < min_chain + 1 then
    Error
      (Printf.sprintf "relay chain too short (%d mortal relay terms; need > %d)"
         (List.length chain) min_chain)
  else begin
    let relays = Array.of_list chain in
    let birth_atom c = (Hashtbl.find birth c).s_atom in
    (* Step 1: thread the birth atoms together. *)
    let rec build k acc =
      if k + 1 >= Array.length relays then Ok (List.concat (List.rev acc))
      else
        let target = birth_atom relays.(k) in
        let from = birth_atom relays.(k + 1) in
        let* hops = thread steps_by_atom ~target ~relay:relays.(k) ~from in
        (* annotate the final hop (the birth of the next relay term) *)
        let hops =
          List.map
            (fun (parent, cur, sd, gi) ->
              let pass =
                if Atom.equal cur from then Atom.positions_of cur relays.(k + 1) else []
              in
              (parent, cur, sd, gi, pass))
            hops
        in
        build (k + 1) (hops :: acc)
    in
    let* hops = build 0 [] in
    let start = birth_atom relays.(0) in
    let used_steps = List.map (fun (_, _, sd, _, _) -> sd) hops in
    (* Legs: the body images other than the designated previous atom. *)
    let legs_of (sd : step_data) gi =
      let tgd = Trigger.tgd sd.s_trigger in
      let hom = Trigger.hom sd.s_trigger in
      List.mapi (fun i b -> (i, Substitution.apply_atom hom b)) (Tgd.body tgd)
      |> List.filter_map (fun (i, img) -> if i <> gi then Some img else None)
    in
    (* Step 3: the freeness renaming. *)
    let find = freeness_classes used_steps in
    let class_ids : (Atom.t * int, Term.t) Hashtbl.t = Hashtbl.create 64 in
    let counter = ref 0 in
    let class_term pos =
      let root = find pos in
      match Hashtbl.find_opt class_ids root with
      | Some t -> t
      | None ->
          let t = Term.Null (Printf.sprintf "f%d" !counter) in
          incr counter;
          Hashtbl.add class_ids root t;
          t
    in
    let rename_atom a =
      Atom.make_a (Atom.pred a) (Array.init (Atom.arity a) (fun i -> class_term (a, i)))
    in
    (* a trigger homomorphism consistent with the renaming: each body
       variable takes the class of (one of) its occurrences — stickiness
       makes the choice irrelevant *)
    let rename_trigger (sd : step_data) =
      let tgd = Trigger.tgd sd.s_trigger in
      let hom = Trigger.hom sd.s_trigger in
      let h' = ref Substitution.empty in
      List.iter
        (fun gamma ->
          let img = Substitution.apply_atom hom gamma in
          Array.iteri
            (fun i v ->
              match v with
              | Term.Var _ ->
                  if not (Substitution.mem v !h') then
                    h' := Substitution.bind v (class_term (img, i)) !h'
              | Term.Const _ | Term.Null _ -> ())
            (Atom.args_a gamma))
        (Tgd.body tgd);
      Trigger.make tgd !h'
    in
    let steps =
      List.map
        (fun (_, cur, sd, gi, pass) ->
          {
            Caterpillar.trigger = rename_trigger sd;
            gamma_index = gi;
            atom = rename_atom cur;
            pass_on = pass;
          })
        hops
    in
    let legs =
      List.fold_left
        (fun acc (_, _, sd, gi, _) ->
          List.fold_left (fun acc l -> Instance.add (rename_atom l) acc) acc (legs_of sd gi))
        Instance.empty hops
    in
    (* legs must not duplicate body atoms *)
    let body_atoms =
      Instance.of_list (rename_atom start :: List.map (fun s -> s.Caterpillar.atom) steps)
    in
    let legs = Instance.diff legs body_atoms in
    let cat = { Caterpillar.legs; start = rename_atom start; steps } in
    match Caterpillar.validate tgds cat with
    | Ok () -> Ok cat
    | Error e -> Error ("extracted caterpillar invalid: " ^ e)
  end
