lib/termination/mfa.ml: Atom Chase_core Chase_engine Digest Hashtbl Instance List Option Printf Queue Schema Seq Set String Substitution Term Tgd Trigger
