lib/termination/finitary.ml: Atom Caterpillar Chase_core Chase_engine Hashtbl Instance List Printf Substitution Term Tgd Trigger
