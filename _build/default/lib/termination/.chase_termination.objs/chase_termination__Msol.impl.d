lib/termination/msol.ml: Abstract_join_tree Array Atom Chase_classes Chase_core Equality_type Format Guardedness List Printf Schema Set Sideatom_type String Term Tgd
