lib/termination/sticky_automaton.mli: Chase_automata Chase_classes Chase_core Equality_type Stickiness Tgd
