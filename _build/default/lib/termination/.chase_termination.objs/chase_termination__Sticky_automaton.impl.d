lib/termination/sticky_automaton.ml: Array Atom Chase_automata Chase_classes Chase_core Chase_engine Equality_type Fun Hashtbl Int List Option Printf Schema Stickiness String Term Tgd
