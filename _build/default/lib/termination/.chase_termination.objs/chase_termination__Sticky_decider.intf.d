lib/termination/sticky_decider.mli: Buchi Caterpillar Chase_automata Chase_core Equality_type Sticky_automaton Tgd
