lib/termination/msol_eval.mli: Abstract_join_tree Msol
