lib/termination/derivation_search.ml: Atom Chase_core Chase_engine Derivation Hashtbl Instance Lazy List Printf Restricted String Term Trigger
