lib/termination/derivation_search.ml: Atom Chase_core Chase_engine Derivation Hashtbl Instance List Printf Restricted String Term Trigger
