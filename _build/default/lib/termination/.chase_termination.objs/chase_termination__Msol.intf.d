lib/termination/msol.mli: Abstract_join_tree Chase_core Format Sideatom_type Tgd
