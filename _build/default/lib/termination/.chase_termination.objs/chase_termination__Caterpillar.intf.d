lib/termination/caterpillar.mli: Atom Chase_core Chase_engine Format Instance Tgd Trigger
