lib/termination/dot.ml: Abstract_join_tree Array Atom Buffer Chase_core Chase_engine Join_tree List Printf Real_oblivious String Tgd Trigger
