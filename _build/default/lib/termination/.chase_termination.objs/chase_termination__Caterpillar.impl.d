lib/termination/caterpillar.ml: Array Atom Chase_core Chase_engine Format Hashtbl Instance List Printf Result Stop String Substitution Term Tgd Trigger
