lib/termination/fairness.mli: Atom Chase_core Chase_engine Derivation Tgd Trigger
