lib/termination/join_tree.ml: Atom Chase_core Format Hashtbl Instance List Option Term
