lib/termination/msol_eval.ml: Abstract_join_tree Array List Msol Option String
