lib/termination/derivation_search.mli: Chase_core Chase_engine Derivation Instance Tgd
