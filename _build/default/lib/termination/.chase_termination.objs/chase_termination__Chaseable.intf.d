lib/termination/chaseable.mli: Chase_engine Derivation Real_oblivious
