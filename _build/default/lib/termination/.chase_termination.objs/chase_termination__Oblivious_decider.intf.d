lib/termination/oblivious_decider.mli: Chase_core Chase_engine Instance Oblivious Tgd
