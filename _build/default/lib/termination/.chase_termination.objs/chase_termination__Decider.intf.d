lib/termination/decider.mli: Chase_classes Chase_core Classification Format
