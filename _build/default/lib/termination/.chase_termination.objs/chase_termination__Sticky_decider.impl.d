lib/termination/sticky_decider.ml: Array Atom Buchi Caterpillar Chase_automata Chase_core Chase_engine Equality_type Instance List Option Printf Sticky_automaton Substitution Term Tgd Trigger
