lib/termination/chaseable.ml: Array Atom Chase_core Chase_engine Derivation Hashtbl Instance Int Lazy List Option Printf Queue Real_oblivious Set Trigger
