lib/termination/caterpillar_word.mli: Caterpillar Chase_core Equality_type Sticky_automaton Tgd
