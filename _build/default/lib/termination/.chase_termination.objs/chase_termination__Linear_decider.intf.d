lib/termination/linear_decider.mli: Chase_core Chase_engine Instance Tgd
