lib/termination/decider.ml: Chase_automata Chase_classes Chase_core Classification Format Guarded_decider Instance List Printf Sticky_decider
