lib/termination/guarded_decider.mli: Abstract_join_tree Chase_core Chase_engine Derivation Instance Tgd Treeify
