lib/termination/join_tree.mli: Atom Chase_core Format Instance
