lib/termination/treeify.ml: Array Atom Chase_classes Chase_core Chase_engine Derivation Derivation_search Guardedness Hashtbl Instance Join_tree List Option Printf Substitution Term Tgd Trigger
