lib/termination/linear_decider.ml: Chase_classes Chase_core Chase_engine Derivation_search Equality_type Guardedness Instance List Printf Schema Term Tgd
