lib/termination/abstract_join_tree.mli: Atom Chase_core Chase_engine Derivation Instance Tgd
