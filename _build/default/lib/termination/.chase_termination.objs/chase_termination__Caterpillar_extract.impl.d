lib/termination/caterpillar_extract.ml: Array Atom Caterpillar Chase_classes Chase_core Chase_engine Derivation Hashtbl Instance Int List Map Option Printf Result Substitution Term Tgd Trigger
