lib/termination/caterpillar_word.ml: Array Atom Caterpillar Chase_core Chase_engine Equality_type Format Fun List Result Sticky_automaton Term Tgd Trigger
