lib/termination/guarded_structure.mli: Atom Chase_core Chase_engine Hashtbl Real_oblivious Sideatom_type Tgd
