lib/termination/guarded_structure.ml: Array Atom Chase_classes Chase_core Chase_engine Guardedness Hashtbl List Option Real_oblivious Sideatom_type Trigger
