lib/termination/treeify.mli: Atom Chase_core Chase_engine Derivation Hashtbl Instance Join_tree Result Tgd
