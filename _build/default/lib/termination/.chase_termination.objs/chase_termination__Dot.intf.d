lib/termination/dot.mli: Abstract_join_tree Chase_engine Join_tree Real_oblivious
