lib/termination/fairness.ml: Array Chase_core Chase_engine Derivation Equality_type Fun Instance Int Lazy List Option Printf Schema Seq Stop Substitution Tgd Trigger
