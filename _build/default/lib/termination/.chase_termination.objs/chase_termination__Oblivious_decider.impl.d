lib/termination/oblivious_decider.ml: Atom Chase_core Chase_engine Derivation Instance List Oblivious Restricted Schema Term
