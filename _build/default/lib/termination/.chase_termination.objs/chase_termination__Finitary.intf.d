lib/termination/finitary.mli: Atom Caterpillar Chase_core Term Tgd
