lib/termination/mfa.mli: Chase_core Instance Tgd
