lib/termination/caterpillar_extract.mli: Caterpillar Chase_core Chase_engine Derivation Tgd
