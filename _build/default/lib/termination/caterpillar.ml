(* Caterpillars (paper §6.1, Defs 6.2–6.4): "path-like" chase derivations.

   A (proto-)caterpillar consists of legs L (an instance), a body — a
   sequence of atoms α₀, α₁, … — and, for each i > 0, a trigger (σᵢ, hᵢ)
   producing αᵢ from L ∪ {αᵢ₋₁}, with a designated body atom γᵢ of σᵢ
   mapped onto αᵢ₋₁.  A caterpillar additionally requires that no leg
   stops a body atom and no body atom stops a later one (Def 6.3); it is
   finitary when L is finite (Def 6.4).

   An infinite caterpillar is not a finite object; this module represents
   finite *prefixes* (which is what the decision procedure's lasso
   witnesses unroll to) and validates the definitions on them. *)

open Chase_core
open Chase_engine

type step = {
  trigger : Trigger.t;  (* (σᵢ, hᵢ) *)
  gamma_index : int;  (* index of γᵢ in body(σᵢ) *)
  atom : Atom.t;  (* αᵢ = result(σᵢ, hᵢ) *)
  pass_on : int list;  (* 0-based head positions of a newly born relay
                          term, when this step is a pass-on point *)
}

type t = { legs : Instance.t; start : Atom.t; steps : step list }

let legs c = c.legs
let start c = c.start
let steps c = c.steps
let length c = List.length c.steps

(* The body B: α₀ followed by the step atoms. *)
let body c = c.start :: List.map (fun s -> s.atom) c.steps

let ( let* ) r f = Result.bind r f

let error fmt = Format.kasprintf (fun s -> Error s) fmt

let rec check_all f = function
  | [] -> Ok ()
  | x :: rest ->
      let* () = f x in
      check_all f rest

(* Def 6.2 on the prefix: each step's trigger is a trigger for T on
   L ∪ {αᵢ₋₁}, γᵢ is mapped onto αᵢ₋₁, and αᵢ is result(σᵢ,hᵢ) up to
   null naming — i.e. it agrees with h on frontier positions and carries
   globally fresh, per-variable-consistent terms at existential
   positions. *)
let validate_proto tgds c =
  let tgd_known t = List.exists (fun u -> Tgd.equal u t) tgds in
  let seen = ref (Term.Set.union (Instance.active_domain c.legs) (Atom.term_set c.start)) in
  let rec go prev = function
    | [] -> Ok ()
    | s :: rest ->
        let tgd = Trigger.tgd s.trigger in
        let hom = Trigger.hom s.trigger in
        let* () = if tgd_known tgd then Ok () else error "unknown TGD %s" (Tgd.name tgd) in
        let* gamma =
          match List.nth_opt (Tgd.body tgd) s.gamma_index with
          | Some g -> Ok g
          | None -> error "γ index %d out of range in %s" s.gamma_index (Tgd.name tgd)
        in
        (* (2): αᵢ₋₁ = hᵢ(γᵢ) *)
        let* () =
          if Atom.equal (Substitution.apply_atom hom gamma) prev then Ok ()
          else error "h(γ) = %s but previous body atom is %s"
                 (Atom.to_string (Substitution.apply_atom hom gamma))
                 (Atom.to_string prev)
        in
        (* (1): (σᵢ,hᵢ) is a trigger on L ∪ {αᵢ₋₁} *)
        let scope = Instance.add prev c.legs in
        let* () =
          check_all
            (fun b ->
              let img = Substitution.apply_atom hom b in
              if Instance.mem img scope then Ok ()
              else error "body atom image %s not in legs ∪ {previous}" (Atom.to_string img))
            (Tgd.body tgd)
        in
        (* (3): αᵢ = result(σᵢ,hᵢ) up to null naming *)
        let head = Tgd.head_atom tgd in
        let* () =
          if Atom.arity s.atom = Atom.arity head && String.equal (Atom.pred s.atom) (Atom.pred head)
          then Ok ()
          else error "step atom %s does not match head of %s" (Atom.to_string s.atom) (Tgd.name tgd)
        in
        let fr = Tgd.frontier tgd in
        let ex_binding = Hashtbl.create 4 in
        let rec positions i =
          if i >= Atom.arity head then Ok ()
          else
            let hv = Atom.arg head i and st = Atom.arg s.atom i in
            if Term.Set.mem hv fr then
              if Term.equal st (Substitution.apply_term hom hv) then positions (i + 1)
              else error "frontier mismatch at position %d of %s" i (Atom.to_string s.atom)
            else begin
              (* existential position: fresh and per-variable consistent *)
              match Hashtbl.find_opt ex_binding hv with
              | Some t ->
                  if Term.equal t st then positions (i + 1)
                  else error "inconsistent existential witness at position %d" i
              | None ->
                  if Term.Set.mem st !seen then
                    error "existential witness %s at position %d is not fresh"
                      (Term.to_string st) i
                  else begin
                    Hashtbl.add ex_binding hv st;
                    positions (i + 1)
                  end
            end
        in
        let* () = positions 0 in
        seen := Term.Set.union !seen (Atom.term_set s.atom);
        go s.atom rest
  in
  go c.start c.steps

(* Frontier terms of αᵢ, from its trigger. *)
let step_frontier s = Trigger.frontier_terms s.trigger

(* Def 6.3 on the prefix: (1) no leg stops a body atom; (2) no body atom
   stops a later one. *)
let validate_stops c =
  let steps = Array.of_list c.steps in
  let n = Array.length steps in
  let result = ref (Ok ()) in
  for j = 0 to n - 1 do
    if !result = Ok () then begin
      let s = steps.(j) in
      let frontier = step_frontier s in
      (* legs *)
      Instance.iter
        (fun leg ->
          if
            !result = Ok ()
            && Stop.stops ~frontier ~candidate:leg ~result:s.atom
          then result := error "leg %s stops body atom %s" (Atom.to_string leg) (Atom.to_string s.atom))
        c.legs;
      (* earlier body atoms, including α₀ *)
      let check_earlier earlier =
        if
          !result = Ok ()
          && Stop.stops ~frontier ~candidate:earlier ~result:s.atom
        then
          result :=
            error "body atom %s stops later body atom %s" (Atom.to_string earlier)
              (Atom.to_string s.atom)
      in
      check_earlier c.start;
      for i = 0 to j - 1 do
        check_earlier steps.(i).atom
      done
    end
  done;
  !result

(* Connectedness (Def 6.6) on the prefix, relative to the recorded
   pass-on annotations: at every pass-on step the new relay term is born
   (fresh) at the annotated positions, and between pass-on points the
   current relay term keeps occurring in the frontier of every body
   atom. *)
let validate_connected c =
  let steps = Array.of_list c.steps in
  let n = Array.length steps in
  (* current relay term, if identified yet *)
  let rec go j (relay : Term.t option) =
    if j >= n then Ok ()
    else
      let s = steps.(j) in
      let* relay' =
        match s.pass_on with
        | [] -> Ok relay
        | ps -> (
            match ps with
            | p :: _ ->
                let t = Atom.arg s.atom p in
                let* () =
                  check_all
                    (fun q ->
                      if Term.equal (Atom.arg s.atom q) t then Ok ()
                      else error "pass-on positions disagree at step %d" j)
                    ps
                in
                Ok (Some t)
            | [] -> assert false)
      in
      let* () =
        match relay' with
        | None -> Ok ()
        | Some t ->
            if Atom.mem_term s.atom t || s.pass_on <> [] then Ok ()
            else error "relay term %s lost at step %d" (Term.to_string t) j
      in
      go (j + 1) relay'
  in
  go 0 None

(* Full caterpillar-prefix validation. *)
let validate tgds c =
  let* () = validate_proto tgds c in
  let* () = validate_stops c in
  validate_connected c

(* Pass-on structure (Defs 6.6/6.7): the 1-based step indices of the
   pass-on points, and the gaps between consecutive ones.  A caterpillar
   is uniformly connected when the gaps are bounded (Def 6.7) — on a
   lasso-unrolled prefix the cycle length is such a bound. *)
let pass_on_points c =
  List.mapi (fun i s -> (i + 1, s)) c.steps
  |> List.filter_map (fun (i, s) -> if s.pass_on <> [] then Some i else None)

let pass_on_gaps c =
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  gaps (pass_on_points c)

let is_uniformly_connected ~bound c =
  List.for_all (fun g -> g <= bound) (pass_on_gaps c)

(* The chase-derivation reading: a caterpillar prefix is a restricted
   chase derivation of L ∪ {α₀} w.r.t. T (modulo activeness of each
   trigger, which [validate_stops] certifies via Fact 3.5 for the body;
   legs are covered by Def 6.3 (1)). *)
let to_instance c =
  List.fold_left (fun i a -> Instance.add a i) (Instance.add c.start c.legs)
    (List.map (fun s -> s.atom) c.steps)

let pp ppf c =
  Format.fprintf ppf "@[<v>legs: %a@,body: %s" Instance.pp c.legs (Atom.to_string c.start);
  List.iteri
    (fun i s ->
      Format.fprintf ppf "@,  %2d. --%s/γ%d--> %s%s" (i + 1)
        (Tgd.name (Trigger.tgd s.trigger))
        s.gamma_index (Atom.to_string s.atom)
        (if s.pass_on = [] then ""
         else
           Printf.sprintf "  [pass-on at %s]"
             (String.concat "," (List.map string_of_int s.pass_on))))
    c.steps;
  Format.fprintf ppf "@]"
