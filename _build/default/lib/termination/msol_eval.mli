(** Brute-force MSOL evaluation over finite labeled trees: first-order
    variables range over nodes, second-order over all subsets (bitsets).
    Used by the tests to check the Lemma 5.12 formulas of {!Msol} against
    ground truth on small finite abstract join trees.  Exponential by
    design — keep trees at ≤ ~10 nodes. *)

type tree

(** Flatten an abstract join tree, padding each label's eq relation to
    the uniform 2·ar(T) slots of Λ_T. *)
val of_abstract_join_tree : ar:int -> Abstract_join_tree.t -> tree

val size : tree -> int

exception Unbound of string

(** [eval ~fo ~so ~ar tree f]: evaluate [f] with free first-order
    variables bound to node ids by [fo] and second-order variables to
    bitsets by [so].
    @raise Unbound on a variable bound nowhere. *)
val eval :
  ?fo:(string * int) list -> ?so:(string * int) list -> ar:int -> tree -> Msol.formula -> bool
