(** Chaseable sets (paper Def 5.2, Theorem 5.3) over finite fragments of
    the real oblivious chase. *)

open Chase_engine

type before_edge = Database_first | Parent | Stop_inverse

(** All ≺b edges among the given node ids:
    [≺b = {(α,β) : α ∈ D, β ∉ D} ∪ ≺p ∪ ≺s⁻¹]. *)
val before_edges : Real_oblivious.t -> int list -> (int * before_edge * int) list

(** Def 5.2 condition (2). *)
val parent_closed : Real_oblivious.t -> int list -> bool

(** A ≺b-topological order of the set, or [None] on a cycle
    (condition (3)). *)
val topological_order : Real_oblivious.t -> int list -> int list option

(** Conditions (2) and (3); (1) is automatic on finite sets. *)
val is_chaseable : Real_oblivious.t -> int list -> bool

(** Theorem 5.3 (2)⇒(1) on a finite fragment: produce a valid restricted
    chase derivation prefix generating the set's non-database atoms.
    Every trigger's activeness is checked, not assumed. *)
val to_derivation : Real_oblivious.t -> int list -> (Derivation.t, string) result

(** Theorem 5.3 (1)⇒(2): select nodes of ochase(D,T) realizing a
    derivation (which must have been run with canonical null naming). *)
val of_derivation : Real_oblivious.t -> Derivation.t -> int list option
