(* Homomorphism search (paper §2): find substitutions h mapping a list of
   pattern atoms into an instance, fixing constants (and, optionally, an
   extra [frozen] set of terms, as needed by the stop relation ≺s of §3.1).

   The search is plain backtracking with a greedy most-bound-first atom
   ordering; candidate atoms are fetched through the instance's predicate
   index.  Results are produced lazily as a [Seq.t]. *)

let frozen_ok frozen t = not (Term.Set.mem t frozen)

(* Extend [s] so that pattern atom [p] maps onto target atom [a]. *)
let match_atom ?(frozen = Term.Set.empty) ~pattern ~target s =
  if
    (not (String.equal (Atom.pred pattern) (Atom.pred target)))
    || Atom.arity pattern <> Atom.arity target
  then None
  else
    let n = Atom.arity pattern in
    let rec go i s =
      if i >= n then Some s
      else
        let pt = Atom.arg pattern i and tt = Atom.arg target i in
        if Term.is_rigid pt || not (frozen_ok frozen pt) then
          if Term.equal pt tt then go (i + 1) s else None
        else
          match Substitution.unify pt tt s with
          | Some s -> go (i + 1) s
          | None -> None
    in
    go 0 s

(* Number of pattern arguments already determined under [s]: used to pick
   the most selective pattern atom next. *)
let boundness frozen s a =
  let n = Atom.arity a in
  let c = ref 0 in
  for i = 0 to n - 1 do
    let t = Atom.arg a i in
    if Term.is_rigid t || Term.Set.mem t frozen || Substitution.mem t s then incr c
  done;
  !c

let pick_next frozen s atoms =
  let rec go best best_score rest_before = function
    | [] -> (best, List.rev rest_before)
    | a :: rest ->
        let score = boundness frozen s a in
        if score > best_score then go a score (best :: rest_before) rest
        else go best best_score (a :: rest_before) rest
  in
  match atoms with
  | [] -> invalid_arg "pick_next: empty"
  | a :: rest ->
      let best, others = go a (boundness frozen s a) [] rest in
      (best, others)

(* Candidate atoms for a pattern under the current bindings: when some
   pattern argument is already determined (a constant, a frozen term, or
   a bound variable/null), use the (pred, position, term) index and pick
   the most selective position; otherwise fall back to the predicate
   index. *)
let candidates frozen s instance p =
  let n = Atom.arity p in
  let best = ref None in
  for i = 0 to n - 1 do
    let t = Atom.arg p i in
    let determined =
      if Term.is_rigid t || Term.Set.mem t frozen then Some t else Substitution.find_opt t s
    in
    match determined with
    | None -> ()
    | Some value ->
        let set = Instance.with_pred_pos_term instance (Atom.pred p) i value in
        let card = Atom.Set.cardinal set in
        (match !best with
        | Some (c, _) when c <= card -> ()
        | _ -> best := Some (card, set))
  done;
  match !best with
  | Some (_, set) -> Atom.Set.elements set
  | None -> Instance.with_pred instance (Atom.pred p)

let all ?(frozen = Term.Set.empty) ?(init = Substitution.empty) patterns instance =
  let rec search patterns s () =
    match patterns with
    | [] -> Seq.Cons (s, Seq.empty)
    | _ :: _ ->
        let p, rest = pick_next frozen s patterns in
        let seqs =
          List.to_seq (candidates frozen s instance p)
          |> Seq.filter_map (fun target -> match_atom ~frozen ~pattern:p ~target s)
          |> Seq.concat_map (fun s' -> search rest s')
        in
        seqs ()
  in
  search patterns init

let find ?frozen ?init patterns instance =
  match (all ?frozen ?init patterns instance) () with
  | Seq.Nil -> None
  | Seq.Cons (s, _) -> Some s

let exists ?frozen ?init patterns instance = Option.is_some (find ?frozen ?init patterns instance)

(* Instance-to-instance embedding: the pattern side is a whole instance,
   so instead of materialising [Instance.to_list] per call we fill an
   array straight from the instance iterator and run an eager,
   exception-exited backtracking search over it.  The most-bound-first
   selection swaps the chosen atom into the search prefix in place; the
   suffix order is irrelevant, so no undo is needed on backtrack. *)

exception Found_hom of Substitution.t

let search_array ?(frozen = Term.Set.empty) ?(init = Substitution.empty) pats instance =
  let n = Array.length pats in
  let rec go k s =
    if k >= n then raise (Found_hom s)
    else begin
      let best = ref k and best_score = ref (boundness frozen s pats.(k)) in
      for j = k + 1 to n - 1 do
        let score = boundness frozen s pats.(j) in
        if score > !best_score then begin
          best := j;
          best_score := score
        end
      done;
      let tmp = pats.(k) in
      pats.(k) <- pats.(!best);
      pats.(!best) <- tmp;
      let p = pats.(k) in
      List.iter
        (fun target ->
          match match_atom ~frozen ~pattern:p ~target s with
          | Some s' -> go (k + 1) s'
          | None -> ())
        (candidates frozen s instance p)
    end
  in
  try
    go 0 init;
    None
  with Found_hom s -> Some s

let pattern_array i =
  let n = Instance.cardinal i in
  if n = 0 then [||]
  else begin
    let arr = Array.make n (Atom.make "" []) in
    let k = ref 0 in
    Instance.iter
      (fun a ->
        arr.(!k) <- a;
        incr k)
      i;
    arr
  end

(* Homomorphism between instances: atoms of [i] into [into]. *)
let embed i ~into = search_array (pattern_array i) into
let embeds i ~into = Option.is_some (embed i ~into)

(* Homomorphic equivalence. *)
let hom_equivalent a b = embeds a ~into:b && embeds b ~into:a

(* An isomorphism between finite instances: an injective homomorphism whose
   inverse is a homomorphism (App. A).  We search homs from a to b and keep
   injective ones whose image covers b. *)
let isomorphism a b =
  if Instance.cardinal a <> Instance.cardinal b then None
  else
    let check s =
      if not (Substitution.is_injective s) then false
      else
        (* injective on the active domain and surjective on atoms *)
        Instance.for_all (fun atom -> Instance.mem (Substitution.apply_atom s atom) b) a
        && Instance.cardinal (Instance.map (Substitution.apply_atom s) a) = Instance.cardinal b
    in
    Seq.find check (all (Instance.to_list a) b)

let isomorphic a b = Option.is_some (isomorphism a b)

(* Structural isomorphism that may also rename constants (the sense in
   which Lemma 5.9 compares ∆(T|F) with D): generalize every constant to
   a null first, so the search may rebind them bijectively. *)
let generalize i =
  Instance.map
    (Atom.map (fun t -> match t with Term.Const c -> Term.Null ("\xc2\xa7" ^ c) | _ -> t))
    i

let isomorphic_upto_constants a b = isomorphic (generalize a) (generalize b)

(* The core of an instance would go here; we provide a simple retract check
   used by tests: is there a hom from [i] into [i] avoiding atom [a]? *)
let retracts_away i atom =
  let smaller = Instance.remove atom i in
  Option.is_some (search_array (pattern_array i) smaller)
