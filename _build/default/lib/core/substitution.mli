(** Substitutions (paper §2): finite maps from terms to terms.

    Only non-rigid terms (variables and nulls) may be bound; constants are
    implicitly mapped to themselves.  Applying a substitution therefore
    always yields a constant-preserving map, as required of homomorphisms. *)

type t

val empty : t
val is_empty : t -> bool

val find_opt : Term.t -> t -> Term.t option
val mem : Term.t -> t -> bool

(** [bind t u s] adds [t ↦ u].
    @raise Invalid_argument if [t] is a constant. *)
val bind : Term.t -> Term.t -> t -> t

(** [unify t u s] extends [s] with [t ↦ u] if consistent: [None] when [t]
    is bound to a different term, or is a constant different from [u]. *)
val unify : Term.t -> Term.t -> t -> t option

val apply_term : t -> Term.t -> Term.t
val apply_atom : t -> Atom.t -> Atom.t
val apply_atoms : t -> Atom.t list -> Atom.t list

(** [restrict dom s] is h|dom — the bindings whose key is in [dom]. *)
val restrict : Term.Set.t -> t -> t

(** [extends ~base s'] holds when [s'] agrees with every binding of [base]
    (h' ⊇ h in the paper). *)
val extends : base:t -> t -> bool

val domain : t -> Term.Set.t
val range : t -> Term.Set.t
val bindings : t -> (Term.t * Term.t) list
val fold : (Term.t -> Term.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Term.t -> Term.t -> unit) -> t -> unit
val of_bindings : (Term.t * Term.t) list -> t
val cardinal : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

(** [compose s2 s1] applies [s1] first, then [s2]. *)
val compose : t -> t -> t

val is_injective : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
