(** Equality types (paper App. A): a predicate together with a partition of
    its positions.  [et(α)] groups the positions of [α] holding equal
    terms.  Values are canonical, so structural equality coincides with
    partition equality and values serve as table keys — they are the state
    space of the sticky decision procedure's automaton [A_pc] (App. D.2). *)

type t

val pred : t -> string
val arity : t -> int

(** Class index (0-based, first-occurrence order) of a position. *)
val class_of : t -> int -> int

val num_classes : t -> int
val same_class : t -> int -> int -> bool

(** Canonicalize an arbitrary class assignment. *)
val canonicalize : string -> int array -> t

(** et(α). *)
val of_atom : Atom.t -> t

(** can(e): the canonical atom, one fresh term per class (a null [⋆c] by
    default; override with [term_of_class]). *)
val canonical_atom : ?term_of_class:(int -> Term.t) -> t -> Atom.t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** All partitions of [n] positions, as restricted growth strings. *)
val partitions : int -> int array list

(** etypes(S): all equality types over the schema — finitely many. *)
val all_of_schema : Schema.t -> t list

val to_string : t -> string
val pp : Format.formatter -> t -> unit
