(** Sideatom types (paper §5.3 / App. C): π = ⟨P, m, ξ⟩ with
    ξ : \[n\] → \[m\].  An atom α is a π-sideatom of β (written α ⊆π β)
    when α's predicate is P, β has arity m, and α\[i\] = β\[ξ(i)\].
    Positions are 0-based in this API. *)

type t

(** @raise Invalid_argument when ξ maps outside the target arity. *)
val make : pred:string -> target_arity:int -> xi:int array -> t

val pred : t -> string
val source_arity : t -> int
val target_arity : t -> int
val xi : t -> int array

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** α ⊆π β. *)
val is_sideatom : t -> Atom.t -> of_:Atom.t -> bool

(** The unique atom α with α ⊆π β.
    @raise Invalid_argument on arity mismatch. *)
val project : t -> Atom.t -> Atom.t

(** All π with α ⊆π β. *)
val all_of_pair : Atom.t -> of_:Atom.t -> t list

(** The canonical such π (least ξ), if α's terms all occur in β. *)
val of_pair : Atom.t -> of_:Atom.t -> t option

val to_string : t -> string
val pp : Format.formatter -> t -> unit
