(** Terms of the relational model (paper §2): constants, labeled nulls, and
    variables.  Constants and nulls occur in instances; variables occur only
    in dependencies and queries. *)

type t =
  | Const of string  (** a constant of [C] *)
  | Null of string  (** a labeled null of [N] *)
  | Var of string  (** a variable of [V], used in dependencies *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val is_const : t -> bool
val is_null : t -> bool
val is_var : t -> bool

(** [is_rigid t] holds when every homomorphism must map [t] to itself,
    i.e. when [t] is a constant. *)
val is_rigid : t -> bool

val const : string -> t
val null : string -> t
val var : string -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** Stateful generator of fresh labeled nulls.  Chase runs own a private
    generator, which makes them reproducible. *)
module Gen : sig
  type term = t
  type t

  val create : ?prefix:string -> unit -> t

  (** [fresh g] returns a null that no previous [fresh g] returned. *)
  val fresh : t -> term

  (** Number of nulls generated so far. *)
  val count : t -> int
end
