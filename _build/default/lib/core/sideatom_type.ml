(* Sideatom types (paper §5.3 / App. C): a triple π = ⟨P, m, ξ⟩ with
   ξ : [n] → [m], describing how a side atom plugs its terms into the
   positions of a (guard) atom.  α is a π-sideatom of β, written α ⊆π β,
   when α's predicate is P, β has arity m, and α[i] = β[ξ(i)] for all i.
   Positions are 0-based here. *)

type t = { pred : string; target_arity : int; xi : int array }

let make ~pred ~target_arity ~xi =
  if Array.exists (fun j -> j < 0 || j >= target_arity) xi then
    invalid_arg "Sideatom_type.make: ξ out of range";
  { pred; target_arity; xi }

let pred t = t.pred
let source_arity t = Array.length t.xi
let target_arity t = t.target_arity
let xi t = Array.copy t.xi

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c
  else
    let c = Int.compare a.target_arity b.target_arity in
    if c <> 0 then c else Stdlib.compare a.xi b.xi

let equal a b = compare a b = 0
let hash = Hashtbl.hash

(* α ⊆π β. *)
let is_sideatom t alpha ~of_:beta =
  String.equal (Atom.pred alpha) t.pred
  && Atom.arity alpha = Array.length t.xi
  && Atom.arity beta = t.target_arity
  && (let ok = ref true in
      Array.iteri
        (fun i j -> if not (Term.equal (Atom.arg alpha i) (Atom.arg beta j)) then ok := false)
        t.xi;
      !ok)

(* Apply π to a guard atom: the unique atom α with α ⊆π β (if any atom
   does, it is this one). *)
let project t beta =
  if Atom.arity beta <> t.target_arity then
    invalid_arg "Sideatom_type.project: arity mismatch";
  Atom.make_a t.pred (Array.map (fun j -> Atom.arg beta j) t.xi)

(* All sideatom types π with α ⊆π β: every way of pointing each position
   of α at a position of β carrying the same term. *)
let all_of_pair alpha ~of_:beta =
  let n = Atom.arity alpha and m = Atom.arity beta in
  let choices =
    List.init n (fun i ->
        let t = Atom.arg alpha i in
        List.filteri (fun _ _ -> true)
          (List.filter_map
             (fun j -> if Term.equal (Atom.arg beta j) t then Some j else None)
             (List.init m Fun.id)))
  in
  if List.exists (fun c -> c = []) choices then []
  else
    let rec build acc = function
      | [] -> [ List.rev acc ]
      | c :: rest -> List.concat_map (fun j -> build (j :: acc) rest) c
    in
    build [] choices
    |> List.map (fun xi ->
           { pred = Atom.pred alpha; target_arity = m; xi = Array.of_list xi })

(* The canonical (lexicographically least ξ) sideatom type, if α's terms
   all occur in β. *)
let of_pair alpha ~of_:beta =
  match all_of_pair alpha ~of_:beta with [] -> None | t :: _ -> Some t

let to_string t =
  Printf.sprintf "<%s,%d,{%s}>" t.pred t.target_arity
    (String.concat ", " (Array.to_list (Array.mapi (fun i j -> Printf.sprintf "%d->%d" i j) t.xi)))

let pp ppf t = Format.pp_print_string ppf (to_string t)
