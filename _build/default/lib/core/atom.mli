(** Atoms: a predicate applied to a tuple of terms (paper §2).

    Positions are 0-based in this API; the paper writes positions 1-based.
    A {e fact} is an atom over constants only. *)

type t

val make : string -> Term.t list -> t
val make_a : string -> Term.t array -> t

val pred : t -> string
val args : t -> Term.t list
val args_a : t -> Term.t array
val arity : t -> int

(** [arg a i] is the term at (0-based) position [i].
    @raise Invalid_argument if out of bounds. *)
val arg : t -> int -> Term.t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val terms : t -> Term.t list
val term_set : t -> Term.Set.t

(** Variables in order of first occurrence (with duplicates). *)
val vars : t -> string list

val var_set : t -> Term.Set.t

(** True when all arguments are constants. *)
val is_fact : t -> bool

(** True when no argument is a variable. *)
val is_ground : t -> bool

(** 0-based positions at which the term occurs — pos(R(t̄), x) of §2. *)
val positions_of : t -> Term.t -> int list

val mem_term : t -> Term.t -> bool
val map : (Term.t -> Term.t) -> t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
