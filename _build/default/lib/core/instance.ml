(* Instances (paper §2): possibly infinite sets of atoms over constants and
   nulls.  This implementation is a finite, persistent, per-predicate-indexed
   set: chase derivations snapshot instances at every step, so persistence
   is what we want.  A database is an instance containing facts only. *)

module SMap = Map.Make (String)

(* Secondary index key: (predicate, position, term). *)
module TpKey = struct
  type t = string * int * Term.t

  let compare (p1, i1, t1) (p2, i2, t2) =
    let c = String.compare p1 p2 in
    if c <> 0 then c
    else
      let c = Int.compare i1 i2 in
      if c <> 0 then c else Term.compare t1 t2
end

module TpMap = Map.Make (TpKey)

type t = { by_pred : Atom.Set.t SMap.t; by_term : Atom.Set.t TpMap.t; size : int }

let empty = { by_pred = SMap.empty; by_term = TpMap.empty; size = 0 }

let is_empty i = i.size = 0
let cardinal i = i.size

let mem a i =
  match SMap.find_opt (Atom.pred a) i.by_pred with
  | None -> false
  | Some s -> Atom.Set.mem a s

let index_keys a =
  let p = Atom.pred a in
  List.init (Atom.arity a) (fun k -> (p, k, Atom.arg a k))

let add a i =
  let p = Atom.pred a in
  let s = match SMap.find_opt p i.by_pred with None -> Atom.Set.empty | Some s -> s in
  if Atom.Set.mem a s then i
  else
    let by_term =
      List.fold_left
        (fun m key ->
          let prev = Option.value ~default:Atom.Set.empty (TpMap.find_opt key m) in
          TpMap.add key (Atom.Set.add a prev) m)
        i.by_term (index_keys a)
    in
    { by_pred = SMap.add p (Atom.Set.add a s) i.by_pred; by_term; size = i.size + 1 }

let remove a i =
  let p = Atom.pred a in
  match SMap.find_opt p i.by_pred with
  | None -> i
  | Some s ->
      if not (Atom.Set.mem a s) then i
      else
        let s' = Atom.Set.remove a s in
        let by_pred = if Atom.Set.is_empty s' then SMap.remove p i.by_pred else SMap.add p s' i.by_pred in
        let by_term =
          List.fold_left
            (fun m key ->
              match TpMap.find_opt key m with
              | None -> m
              | Some set ->
                  let set' = Atom.Set.remove a set in
                  if Atom.Set.is_empty set' then TpMap.remove key m else TpMap.add key set' m)
            i.by_term (index_keys a)
        in
        { by_pred; by_term; size = i.size - 1 }

let singleton a = add a empty

let of_list atoms = List.fold_left (fun i a -> add a i) empty atoms
let of_seq atoms = Seq.fold_left (fun i a -> add a i) empty atoms

let fold f i acc = SMap.fold (fun _ s acc -> Atom.Set.fold f s acc) i.by_pred acc
let iter f i = SMap.iter (fun _ s -> Atom.Set.iter f s) i.by_pred
let for_all f i = SMap.for_all (fun _ s -> Atom.Set.for_all f s) i.by_pred
let exists f i = SMap.exists (fun _ s -> Atom.Set.exists f s) i.by_pred
let filter f i =
  fold (fun a acc -> if f a then add a acc else acc) i empty

let to_list i = List.rev (fold (fun a acc -> a :: acc) i [])

let to_set i =
  SMap.fold (fun _ s acc -> Atom.Set.union s acc) i.by_pred Atom.Set.empty

let union a b =
  if a.size >= b.size then fold add b a else fold add a b

let diff a b = fold remove b a

let inter a b = filter (fun atom -> mem atom b) a

let subset a b = for_all (fun atom -> mem atom b) a

let equal a b = a.size = b.size && subset a b

(* Atoms with the given predicate, cheap via the index. *)
let with_pred i p =
  match SMap.find_opt p i.by_pred with None -> [] | Some s -> Atom.Set.elements s

let with_pred_set i p =
  match SMap.find_opt p i.by_pred with None -> Atom.Set.empty | Some s -> s

let pred_count i p = Atom.Set.cardinal (with_pred_set i p)

(* Atoms with the given term at the given (0-based) position — the
   secondary index behind the homomorphism search's candidate pruning. *)
let with_pred_pos_term i p pos t =
  match TpMap.find_opt (p, pos, t) i.by_term with None -> Atom.Set.empty | Some s -> s

let preds i = SMap.fold (fun p _ acc -> p :: acc) i.by_pred [] |> List.rev

(* Active domain dom(I): all terms occurring in I. *)
let active_domain i =
  fold (fun a acc -> Term.Set.union (Atom.term_set a) acc) i Term.Set.empty

let constants i = Term.Set.filter Term.is_const (active_domain i)
let nulls i = Term.Set.filter Term.is_null (active_domain i)

(* A database is a finite set of facts (constants only). *)
let is_database i = for_all Atom.is_fact i

let map f i = fold (fun a acc -> add (f a) acc) i empty

let to_string i =
  let atoms = to_list i in
  "{" ^ String.concat ", " (List.map Atom.to_string atoms) ^ "}"

let pp ppf i =
  Format.fprintf ppf "@[<hov 1>{%a}@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") Atom.pp)
    (to_list i)
