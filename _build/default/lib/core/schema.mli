(** Schemas (paper §2): finite maps from predicate names to arities.
    [sch(T)] is the schema of a TGD set, [ar(T)] its maximum arity; a
    position [(R, i)] identifies the [i]-th argument of [R] (0-based). *)

type t

exception Arity_mismatch of string

val empty : t

(** @raise Arity_mismatch when the predicate already has another arity. *)
val add : string -> int -> t -> t

val add_atom : Atom.t -> t -> t
val of_atoms : Atom.t list -> t
val of_instance : Instance.t -> t

(** sch(T). *)
val of_tgds : Tgd.t list -> t

val union : t -> t -> t
val mem : string -> t -> bool
val arity : string -> t -> int option
val arity_exn : string -> t -> int
val preds : t -> string list
val bindings : t -> (string * int) list
val cardinal : t -> int
val is_empty : t -> bool

(** ar(S): the maximum arity (0 when empty). *)
val max_arity : t -> int

(** All positions [(R, i)] of the schema, 0-based. *)
val positions : t -> (string * int) list

val fold : (string -> int -> 'a -> 'a) -> t -> 'a -> 'a
val to_string : t -> string
val pp : Format.formatter -> t -> unit
