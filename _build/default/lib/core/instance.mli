(** Instances (paper §2): finite sets of atoms over constants and nulls,
    persistent and indexed by predicate.  A {e database} is an instance
    whose atoms are facts (constants only). *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int

val mem : Atom.t -> t -> bool
val add : Atom.t -> t -> t
val remove : Atom.t -> t -> t
val singleton : Atom.t -> t

val of_list : Atom.t list -> t
val of_seq : Atom.t Seq.t -> t
val to_list : t -> Atom.t list
val to_set : t -> Atom.Set.t

val fold : (Atom.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Atom.t -> unit) -> t -> unit
val for_all : (Atom.t -> bool) -> t -> bool
val exists : (Atom.t -> bool) -> t -> bool
val filter : (Atom.t -> bool) -> t -> t
val map : (Atom.t -> Atom.t) -> t -> t

val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

(** Atoms with the given predicate (uses the per-predicate index). *)
val with_pred : t -> string -> Atom.t list

val with_pred_set : t -> string -> Atom.Set.t
val pred_count : t -> string -> int

(** Atoms with the given term at the given 0-based position (secondary
    index; used to prune homomorphism candidates). *)
val with_pred_pos_term : t -> string -> int -> Term.t -> Atom.Set.t

(** Predicates occurring in the instance, sorted. *)
val preds : t -> string list

(** dom(I): the set of terms occurring in the instance. *)
val active_domain : t -> Term.Set.t

val constants : t -> Term.Set.t
val nulls : t -> Term.Set.t

(** True when every atom is a fact, i.e. the instance is a database. *)
val is_database : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
