(* Terms: constants, labeled nulls, and variables (paper §2).

   Constants and nulls populate instances; variables occur only in
   dependencies and queries.  Nulls carry a string label so that the real
   oblivious chase can name the null invented for an existential variable
   deterministically from the trigger that created it (Def 3.1). *)

type t =
  | Const of string
  | Null of string
  | Var of string

let compare a b =
  match a, b with
  | Const x, Const y -> String.compare x y
  | Const _, (Null _ | Var _) -> -1
  | Null _, Const _ -> 1
  | Null x, Null y -> String.compare x y
  | Null _, Var _ -> -1
  | Var x, Var y -> String.compare x y
  | Var _, (Const _ | Null _) -> 1

let equal a b = compare a b = 0

let hash = Hashtbl.hash

let is_const = function Const _ -> true | Null _ | Var _ -> false
let is_null = function Null _ -> true | Const _ | Var _ -> false
let is_var = function Var _ -> true | Const _ | Null _ -> false

(* A term is rigid when a homomorphism must fix it (constants only). *)
let is_rigid = is_const

let const c = Const c
let null n = Null n
let var v = Var v

let to_string = function
  | Const c -> c
  | Null n -> "_:" ^ n
  | Var v -> "?" ^ v

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

(* Stateful generator of fresh nulls, used by chase engines.  Each engine
   run owns its own generator so runs are reproducible. *)
module Gen = struct
  type term = t

  type t = { prefix : string; mutable next : int }

  let create ?(prefix = "n") () = { prefix; next = 0 }

  let fresh g =
    let n = g.next in
    g.next <- n + 1;
    Null (Printf.sprintf "%s%d" g.prefix n)

  let count g = g.next
end
