lib/core/substitution.mli: Atom Format Term
