lib/core/term.ml: Format Hashtbl Map Printf Set String
