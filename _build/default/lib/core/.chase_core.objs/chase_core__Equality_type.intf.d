lib/core/equality_type.mli: Atom Format Schema Term
