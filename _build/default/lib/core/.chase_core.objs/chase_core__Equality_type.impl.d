lib/core/equality_type.ml: Array Atom Format Hashtbl List Option Printf Schema Stdlib String Term
