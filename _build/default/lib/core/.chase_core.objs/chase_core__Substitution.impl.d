lib/core/substitution.ml: Atom Buffer Format Hashtbl List Term
