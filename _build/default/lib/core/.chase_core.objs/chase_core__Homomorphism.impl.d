lib/core/homomorphism.ml: Array Atom Instance List Option Seq String Substitution Term
