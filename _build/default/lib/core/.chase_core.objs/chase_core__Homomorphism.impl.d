lib/core/homomorphism.ml: Atom Instance List Option Seq String Substitution Term
