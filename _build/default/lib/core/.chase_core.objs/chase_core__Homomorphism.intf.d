lib/core/homomorphism.mli: Atom Instance Seq Substitution Term
