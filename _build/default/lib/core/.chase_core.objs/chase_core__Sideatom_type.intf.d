lib/core/sideatom_type.mli: Atom Format
