lib/core/minstance.ml: Atom Hashtbl Instance Int List String Term
