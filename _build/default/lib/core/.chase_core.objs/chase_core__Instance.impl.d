lib/core/instance.ml: Atom Format Int List Map Option Seq String Term
