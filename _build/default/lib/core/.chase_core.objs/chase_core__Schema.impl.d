lib/core/schema.ml: Atom Format Instance List Map Printf String Tgd
