lib/core/instance.mli: Atom Format Seq Term
