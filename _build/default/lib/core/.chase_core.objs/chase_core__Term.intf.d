lib/core/term.mli: Format Map Set
