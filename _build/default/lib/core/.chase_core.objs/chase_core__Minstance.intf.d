lib/core/minstance.mli: Atom Instance Term
