lib/core/tgd.ml: Atom Buffer Format Homomorphism List Printf Seq String Substitution Term
