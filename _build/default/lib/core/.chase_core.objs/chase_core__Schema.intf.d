lib/core/schema.mli: Atom Format Instance Tgd
