lib/core/atom.mli: Format Map Set Term
