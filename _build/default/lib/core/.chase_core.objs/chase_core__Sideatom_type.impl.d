lib/core/sideatom_type.ml: Array Atom Format Fun Hashtbl Int List Printf Stdlib String Term
