lib/core/atom.ml: Array Format Hashtbl Int List Map Printf Set String Term
