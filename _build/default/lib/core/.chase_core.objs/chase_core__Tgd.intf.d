lib/core/tgd.mli: Atom Format Instance Term
