(** Homomorphism search (paper §2).

    A homomorphism maps a set of atoms into an instance: constants are
    fixed, variables and nulls may be bound.  The optional [frozen] set
    lists additional terms that must be mapped to themselves — this is how
    the stop relation ≺s (§3.1) freezes frontier terms. *)

(** Extend the substitution so that [pattern] maps onto [target], or
    [None] when impossible. *)
val match_atom :
  ?frozen:Term.Set.t -> pattern:Atom.t -> target:Atom.t -> Substitution.t -> Substitution.t option

(** All homomorphisms extending [init] from the pattern atoms into the
    instance, lazily. *)
val all :
  ?frozen:Term.Set.t -> ?init:Substitution.t -> Atom.t list -> Instance.t -> Substitution.t Seq.t

val find :
  ?frozen:Term.Set.t -> ?init:Substitution.t -> Atom.t list -> Instance.t -> Substitution.t option

val exists : ?frozen:Term.Set.t -> ?init:Substitution.t -> Atom.t list -> Instance.t -> bool

(** Homomorphism from one instance into another. *)
val embed : Instance.t -> into:Instance.t -> Substitution.t option

val embeds : Instance.t -> into:Instance.t -> bool

(** Homomorphisms both ways. *)
val hom_equivalent : Instance.t -> Instance.t -> bool

(** An isomorphism between finite instances (App. A): an injective
    homomorphism whose inverse is also a homomorphism. *)
val isomorphism : Instance.t -> Instance.t -> Substitution.t option

val isomorphic : Instance.t -> Instance.t -> bool

(** Structural isomorphism that may also rename constants bijectively —
    the sense in which Lemma 5.9 compares ∆(T|F) with D. *)
val isomorphic_upto_constants : Instance.t -> Instance.t -> bool

(** [retracts_away i a]: is there a homomorphism from [i] into [i] minus
    atom [a]?  (Used to exhibit redundant atoms.) *)
val retracts_away : Instance.t -> Atom.t -> bool
