(* Schemas (paper §2): finite sets of predicates with arities.  sch(T) is
   the schema of a TGD set; ar(T) its maximum arity.  A position (R, i)
   identifies the i-th argument of R (0-based here). *)

module SMap = Map.Make (String)

type t = int SMap.t

exception Arity_mismatch of string

let empty = SMap.empty

let add pred arity s =
  match SMap.find_opt pred s with
  | Some a when a <> arity ->
      raise
        (Arity_mismatch
           (Printf.sprintf "predicate %s used with arities %d and %d" pred a arity))
  | _ -> SMap.add pred arity s

let add_atom a s = add (Atom.pred a) (Atom.arity a) s

let of_atoms atoms = List.fold_left (fun s a -> add_atom a s) empty atoms

let of_instance i =
  let acc = ref empty in
  Instance.iter (fun a -> acc := add_atom a !acc) i;
  !acc

(* sch(T). *)
let of_tgds ts =
  List.fold_left
    (fun s t ->
      let s = List.fold_left (fun s a -> add_atom a s) s (Tgd.body t) in
      List.fold_left (fun s a -> add_atom a s) s (Tgd.head t))
    empty ts

let union a b = SMap.union (fun p x y -> if x = y then Some x else raise (Arity_mismatch p)) a b

let mem pred s = SMap.mem pred s
let arity pred s = SMap.find_opt pred s
let arity_exn pred s = SMap.find pred s

let preds s = List.map fst (SMap.bindings s)
let bindings s = SMap.bindings s
let cardinal s = SMap.cardinal s
let is_empty s = SMap.is_empty s

(* ar(S): maximum arity, 0 for the empty schema. *)
let max_arity s = SMap.fold (fun _ a m -> max a m) s 0

(* All positions (R, i) of the schema, 0-based. *)
let positions s =
  SMap.fold (fun p a acc -> List.init a (fun i -> (p, i)) @ acc) s [] |> List.rev

let fold f s acc = SMap.fold f s acc

let to_string s =
  String.concat ", " (List.map (fun (p, a) -> Printf.sprintf "%s/%d" p a) (SMap.bindings s))

let pp ppf s = Format.pp_print_string ppf (to_string s)
