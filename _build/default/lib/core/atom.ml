(* Atoms: a predicate applied to a tuple of terms (paper §2).  Positions are
   0-based internally; pretty-printing and documentation follow the paper's
   1-based convention where it matters. *)

type t = { pred : string; args : Term.t array }

let make pred args = { pred; args = Array.of_list args }
let make_a pred args = { pred; args }

let pred a = a.pred
let args a = Array.to_list a.args
let args_a a = a.args
let arity a = Array.length a.args
let arg a i = a.args.(i)

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c
  else
    let la = Array.length a.args and lb = Array.length b.args in
    let c = Int.compare la lb in
    if c <> 0 then c
    else
      let rec go i =
        if i >= la then 0
        else
          let c = Term.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal a b = compare a b = 0
let hash = Hashtbl.hash

let terms a = Array.to_list a.args

let term_set a = Array.fold_left (fun s t -> Term.Set.add t s) Term.Set.empty a.args

let vars a =
  Array.fold_left
    (fun acc t -> match t with Term.Var v -> v :: acc | Term.Const _ | Term.Null _ -> acc)
    [] a.args
  |> List.rev

let var_set a =
  Array.fold_left
    (fun s t -> match t with Term.Var _ -> Term.Set.add t s | Term.Const _ | Term.Null _ -> s)
    Term.Set.empty a.args

let is_fact a = Array.for_all Term.is_const a.args
let is_ground a = Array.for_all (fun t -> not (Term.is_var t)) a.args

(* Positions (0-based) at which [t] occurs, cf. pos(R(t̄), x) in §2. *)
let positions_of a t =
  let acc = ref [] in
  for i = Array.length a.args - 1 downto 0 do
    if Term.equal a.args.(i) t then acc := i :: !acc
  done;
  !acc

let mem_term a t = Array.exists (Term.equal t) a.args

let map f a = { a with args = Array.map f a.args }

let to_string a =
  Printf.sprintf "%s(%s)" a.pred
    (String.concat "," (List.map Term.to_string (Array.to_list a.args)))

let pp ppf a = Format.pp_print_string ppf (to_string a)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let pp_list ppf atoms =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp ppf atoms
