(* Equality types (paper App. A): a pair (R, E) where E partitions the
   positions of R; the equality type of an atom records which of its
   positions carry equal terms.  Canonical representation: a restricted
   growth string, classes.(i) = index of the class of position i, where a
   class index is the order of first occurrence (so classes.(0) = 0 and
   classes.(i+1) <= 1 + max of the prefix).  This makes structural equality
   coincide with partition equality and gives cheap hashtable keys. *)

type t = { pred : string; classes : int array }

let pred e = e.pred
let arity e = Array.length e.classes
let class_of e i = e.classes.(i)

let num_classes e = Array.fold_left (fun m c -> max m (c + 1)) 0 e.classes

let same_class e i j = e.classes.(i) = e.classes.(j)

(* Canonicalize an arbitrary class assignment into a restricted growth
   string. *)
let canonicalize pred raw =
  let n = Array.length raw in
  let seen = Hashtbl.create 8 in
  let next = ref 0 in
  let classes =
    Array.init n (fun i ->
        match Hashtbl.find_opt seen raw.(i) with
        | Some c -> c
        | None ->
            let c = !next in
            incr next;
            Hashtbl.add seen raw.(i) c;
            c)
  in
  { pred; classes }

(* et(α): positions are in the same class iff they hold equal terms. *)
let of_atom a =
  let args = Atom.args_a a in
  let n = Array.length args in
  let raw = Array.make n 0 in
  let seen = ref Term.Map.empty in
  let next = ref 0 in
  for i = 0 to n - 1 do
    match Term.Map.find_opt args.(i) !seen with
    | Some c -> raw.(i) <- c
    | None ->
        raw.(i) <- !next;
        seen := Term.Map.add args.(i) !next !seen;
        incr next
  done;
  { pred = Atom.pred a; classes = raw }

(* The canonical atom of an equality type: one fresh term per class.  The
   default invents nulls ⋆0, ⋆1, …; [term_of_class] overrides this. *)
let canonical_atom ?term_of_class e =
  let mk =
    match term_of_class with
    | Some f -> f
    | None -> fun c -> Term.Null (Printf.sprintf "\xe2\x98\x85%d" c)
  in
  Atom.make_a e.pred (Array.map mk e.classes)

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else Stdlib.compare a.classes b.classes

let equal a b = compare a b = 0
let hash = Hashtbl.hash

(* All partitions of n positions, as restricted growth strings. *)
let partitions n =
  let rec extend prefix maxc i acc =
    if i >= n then Array.of_list (List.rev prefix) :: acc
    else
      let acc = ref acc in
      for c = 0 to maxc + 1 do
        acc := extend (c :: prefix) (max maxc c) (i + 1) !acc
      done;
      !acc
  in
  if n = 0 then [ [||] ] else extend [ 0 ] 0 1 []

(* etypes(S): all equality types over a schema.  Finite (App. A). *)
let all_of_schema schema =
  Schema.fold
    (fun pred arity acc ->
      List.fold_left (fun acc classes -> { pred; classes } :: acc) acc (partitions arity))
    schema []

let to_string e =
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i c ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt groups c) in
      Hashtbl.replace groups c (i :: prev))
    e.classes;
  let ncl = num_classes e in
  let cls =
    List.init ncl (fun c ->
        let ps = List.rev (Option.value ~default:[] (Hashtbl.find_opt groups c)) in
        "{" ^ String.concat "," (List.map string_of_int ps) ^ "}")
  in
  Printf.sprintf "%s:[%s]" e.pred (String.concat " " cls)

let pp ppf e = Format.pp_print_string ppf (to_string e)
