(** Mutable, Hashtbl-backed instances — the chase engines' hot-path
    backend.  Same logical contents and secondary [(pred, pos, term)]
    index as {!Instance}, but with O(1) amortized updates and lookups,
    plus an incrementally maintained persistent snapshot: every atom is
    folded into the persistent image at most once over the lifetime of
    the value, so taking a snapshot after each chase step costs no more
    in total than building the persistent instance directly — and costs
    nothing at all if no snapshot is ever requested. *)

type t

(** A fresh, empty mutable instance. *)
val create : ?size_hint:int -> unit -> t

(** Mutable copy of a persistent instance. *)
val of_instance : Instance.t -> t

(** [add m a] inserts [a]; returns [true] when the atom is new. *)
val add : t -> Atom.t -> bool

val mem : t -> Atom.t -> bool
val cardinal : t -> int

(** Atoms with the given predicate, newest first. *)
val with_pred : t -> string -> Atom.t list

val pred_count : t -> string -> int

(** Atoms with the given term at the given 0-based position, newest
    first (the secondary index behind join-plan candidate pruning). *)
val with_pos_term : t -> string -> int -> Term.t -> Atom.t list

val pos_term_count : t -> string -> int -> Term.t -> int

val iter : (Atom.t -> unit) -> t -> unit

(** Persistent image of the current contents.  Amortized O(atoms added
    since the previous snapshot). *)
val snapshot : t -> Instance.t
