lib/query/conjunctive_query.mli: Atom Chase_core Format Instance Term
