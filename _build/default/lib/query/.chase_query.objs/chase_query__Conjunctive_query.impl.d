lib/query/conjunctive_query.ml: Atom Chase_core Chase_parser Format Homomorphism List Seq String Substitution Term Tgd
