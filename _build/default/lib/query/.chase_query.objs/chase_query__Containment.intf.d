lib/query/containment.mli: Chase_core Conjunctive_query Instance Tgd
