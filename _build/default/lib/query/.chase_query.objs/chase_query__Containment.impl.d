lib/query/containment.ml: Atom Chase_core Chase_engine Conjunctive_query Derivation Homomorphism Instance List Restricted Substitution Term
