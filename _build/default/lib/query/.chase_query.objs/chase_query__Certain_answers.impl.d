lib/query/certain_answers.ml: Chase_core Chase_engine Chase_termination Conjunctive_query Derivation Instance List Restricted Term
