lib/query/certain_answers.mli: Chase_core Chase_engine Conjunctive_query Derivation Instance Result Term Tgd
