(* Certain answers via chase materialization (paper §1): when the
   restricted chase of (D, T) terminates, its result is a universal model,
   so the certain answers of a CQ are exactly its null-free answers over
   the chase result. *)

open Chase_core
open Chase_engine

type result = {
  answers : Term.t list list;  (* null-free tuples only *)
  chase_size : int;
  chase_steps : int;
}

exception Chase_diverged of Derivation.t

let compute ?(max_steps = 20_000) ~tgds ~database query =
  let derivation = Restricted.run ~max_steps tgds database in
  match Derivation.status derivation with
  | Derivation.Out_of_budget -> raise (Chase_diverged derivation)
  | Derivation.Terminated ->
      let model = Derivation.final derivation in
      let all = Conjunctive_query.answers query model in
      let certain = List.filter (List.for_all Term.is_const) all in
      {
        answers = certain;
        chase_size = Instance.cardinal model;
        chase_steps = Derivation.length derivation;
      }

(* Guarded certain answering with a termination pre-check: refuse to
   chase when the facade decider knows the set diverges. *)
let compute_checked ?max_steps ~tgds ~database query =
  match (Chase_termination.Decider.decide tgds).Chase_termination.Decider.answer with
  | Chase_termination.Decider.Non_terminating ->
      Error "the TGD set is non-terminating: materialization refused"
  | Chase_termination.Decider.Terminating | Chase_termination.Decider.Unknown -> (
      match compute ?max_steps ~tgds ~database query with
      | r -> Ok r
      | exception Chase_diverged _ -> Error "chase budget exceeded")
