(** Certain answers via chase materialization (paper §1): over a
    terminating restricted chase result — a universal model — the certain
    answers of a CQ are its null-free answers. *)

open Chase_core
open Chase_engine

type result = {
  answers : Term.t list list;  (** null-free tuples only *)
  chase_size : int;
  chase_steps : int;
}

exception Chase_diverged of Derivation.t

(** @raise Chase_diverged when the chase budget runs out. *)
val compute :
  ?max_steps:int -> tgds:Tgd.t list -> database:Instance.t -> Conjunctive_query.t -> result

(** Like {!compute}, but first consults the termination decider and
    refuses provably non-terminating TGD sets. *)
val compute_checked :
  ?max_steps:int ->
  tgds:Tgd.t list ->
  database:Instance.t ->
  Conjunctive_query.t ->
  (result, string) Result.t
