(** Conjunctive query containment under TGDs (paper §1): q₁ ⊑_T q₂ iff q₂
    maps into the chase of q₁'s canonical database with answer variables
    matched — computable when that chase terminates. *)

open Chase_core

(** The canonical (frozen) database of a query. *)
val canonical_database : Conjunctive_query.t -> Instance.t

(** [contained_in ~tgds q1 q2]: q₁ ⊑_T q₂; [Error] when the chase of the
    canonical database exceeds the budget.
    @raise Invalid_argument when the answer arities differ. *)
val contained_in :
  ?max_steps:int ->
  tgds:Tgd.t list ->
  Conjunctive_query.t ->
  Conjunctive_query.t ->
  (bool, string) result

val equivalent :
  ?max_steps:int ->
  tgds:Tgd.t list ->
  Conjunctive_query.t ->
  Conjunctive_query.t ->
  (bool, string) result

(** Containment without constraints — the classic homomorphism check. *)
val contained_in_plain : Conjunctive_query.t -> Conjunctive_query.t -> (bool, string) result
