(** Conjunctive queries, evaluated by homomorphism search — the consumers
    of chase-materialized instances (paper §1). *)

open Chase_core

type t

(** Build a safe CQ: every answer variable must occur in the body.
    @raise Invalid_argument otherwise, or when an answer term is not a
    variable. *)
val make : ?name:string -> answer_vars:Term.t list -> body:Atom.t list -> unit -> t

val name : t -> string
val answer_vars : t -> Term.t list
val body : t -> Atom.t list

(** A boolean query (no answer variables). *)
val boolean : ?name:string -> Atom.t list -> t

(** Surface syntax, piggybacking on the TGD parser:
    ["r(X,Y), s(Y) -> ans(X)."] — the head atom lists the answer
    variables. *)
val parse : string -> t

(** All answer tuples over an instance, deduplicated and sorted. *)
val answers : t -> Instance.t -> Term.t list list

(** Boolean satisfaction. *)
val holds : t -> Instance.t -> bool

val tuple_to_string : Term.t list -> string
val pp : Format.formatter -> t -> unit
