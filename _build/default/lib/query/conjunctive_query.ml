(* Conjunctive queries, evaluated by homomorphism search — the consumers
   of chase-materialized instances (paper §1's motivating application). *)

open Chase_core

type t = { name : string; answer_vars : Term.t list; body : Atom.t list }

let make ?(name = "q") ~answer_vars ~body () =
  let body_vars =
    List.fold_left (fun s a -> Term.Set.union (Atom.var_set a) s) Term.Set.empty body
  in
  List.iter
    (fun v ->
      match v with
      | Term.Var _ ->
          if not (Term.Set.mem v body_vars) then
            invalid_arg "Conjunctive_query.make: unsafe answer variable"
      | Term.Const _ | Term.Null _ ->
          invalid_arg "Conjunctive_query.make: answer terms must be variables")
    answer_vars;
  { name; answer_vars; body }

let name q = q.name
let answer_vars q = q.answer_vars
let body q = q.body

let boolean ?(name = "q") body = { name; answer_vars = []; body }

(* Surface syntax piggybacking on the TGD parser:
   "r(X,Y), s(Y) -> ans(X)." — the head atom lists the answer variables. *)
let parse src =
  let tgd = Chase_parser.Parser.parse_tgd src in
  let head =
    match Tgd.head tgd with [ h ] -> h | _ -> invalid_arg "query: one head atom"
  in
  make ~name:(Atom.pred head) ~answer_vars:(Atom.terms head) ~body:(Tgd.body tgd) ()

(* All answer tuples over an instance (with duplicates removed). *)
let answers q instance =
  Homomorphism.all q.body instance
  |> Seq.map (fun h -> List.map (Substitution.apply_term h) q.answer_vars)
  |> List.of_seq
  |> List.sort_uniq (List.compare Term.compare)

let holds q instance = answers (boolean q.body) instance <> []

let tuple_to_string tuple =
  "(" ^ String.concat ", " (List.map Term.to_string tuple) ^ ")"

let pp ppf q =
  Format.fprintf ppf "%s(%s) <- %s" q.name
    (String.concat "," (List.map Term.to_string q.answer_vars))
    (String.concat ", " (List.map Atom.to_string q.body))
