(* Conjunctive query containment under TGDs (paper §1, [Aho-Sagiv-Ullman
   '79] and the chase literature): q₁ ⊑_T q₂ iff q₂ maps into the chase
   of q₁'s canonical (frozen) database, sending answer variables to the
   corresponding frozen answer constants.  Requires the chase of the
   canonical database to terminate — which is why the paper's termination
   problem matters here. *)

open Chase_core
open Chase_engine

let frozen_const v = Term.Const ("\xe2\x9d\x84" ^ v)  (* ❄v: private namespace *)

(* The canonical database of a query: freeze every variable. *)
let canonical_database q =
  let freeze = function
    | Term.Var v -> frozen_const v
    | (Term.Const _ | Term.Null _) as t -> t
  in
  Instance.of_list (List.map (Atom.map freeze) (Conjunctive_query.body q))

(* q₁ ⊑_T q₂ (same answer arity required). *)
let contained_in ?(max_steps = 20_000) ~tgds q1 q2 =
  let a1 = Conjunctive_query.answer_vars q1 and a2 = Conjunctive_query.answer_vars q2 in
  if List.length a1 <> List.length a2 then
    invalid_arg "Containment.contained_in: answer arities differ";
  let db = canonical_database q1 in
  let derivation = Restricted.run ~max_steps tgds db in
  match Derivation.status derivation with
  | Derivation.Out_of_budget -> Error "chase of the canonical database did not terminate"
  | Derivation.Terminated ->
      let model = Derivation.final derivation in
      (* q₂'s answer variables must land on q₁'s frozen answers *)
      let init =
        List.fold_left2
          (fun s v2 v1 ->
            match v1 with
            | Term.Var name -> Substitution.bind v2 (frozen_const name) s
            | Term.Const _ | Term.Null _ -> s)
          Substitution.empty a2 a1
      in
      Ok (Homomorphism.exists ~init (Conjunctive_query.body q2) model)

let equivalent ?max_steps ~tgds q1 q2 =
  match (contained_in ?max_steps ~tgds q1 q2, contained_in ?max_steps ~tgds q2 q1) with
  | Ok a, Ok b -> Ok (a && b)
  | Error e, _ | _, Error e -> Error e

(* Plain containment (no constraints): the classic homomorphism check. *)
let contained_in_plain q1 q2 = contained_in ~tgds:[] q1 q2
