lib/automata/buchi.mli:
