lib/automata/buchi.ml: Array Hashtbl List Option Printf Queue
