(* A parsed program: a TGD set together with a database of facts. *)

open Chase_core

type t = { tgds : Tgd.t list; database : Instance.t }

let empty = { tgds = []; database = Instance.empty }

let tgds p = p.tgds
let database p = p.database

let add_tgd t p = { p with tgds = p.tgds @ [ t ] }
let add_fact a p = { p with database = Instance.add a p.database }

let schema p =
  Schema.union (Schema.of_tgds p.tgds) (Schema.of_instance p.database)
