(* Pretty-printer emitting the surface syntax back; [Parser.parse_program]
   round-trips its output.  Variable names are adjusted to the concrete
   syntax's conventions (uppercase-initial) when needed. *)

open Chase_core

let is_var_name s = String.length s > 0 && (match s.[0] with 'A' .. 'Z' | '_' -> true | _ -> false)

let is_bare_const s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | '0' .. '9' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true | _ -> false)
       s

(* A renaming of the TGD's variables into concrete-syntax variable names,
   injective by construction. *)
let var_renaming tgd =
  let used = Hashtbl.create 16 in
  let map = Hashtbl.create 16 in
  Term.Set.iter
    (fun x ->
      match x with
      | Term.Var v ->
          let base = if is_var_name v then v else "V" ^ v in
          let name =
            if not (Hashtbl.mem used base) then base
            else
              let rec fresh i =
                let cand = Printf.sprintf "%s_%d" base i in
                if Hashtbl.mem used cand then fresh (i + 1) else cand
              in
              fresh 1
          in
          Hashtbl.add used name ();
          Hashtbl.add map v name
      | Term.Const _ | Term.Null _ -> ())
    (Tgd.all_vars tgd);
  fun v -> match Hashtbl.find_opt map v with Some n -> n | None -> v

let print_term rename = function
  | Term.Var v -> rename v
  | Term.Const c -> if is_bare_const c then c else Printf.sprintf "%S" c
  | Term.Null n -> Printf.sprintf "%S" ("_:" ^ n)

let print_atom rename a =
  Printf.sprintf "%s(%s)" (Atom.pred a)
    (String.concat "," (List.map (print_term rename) (Atom.args a)))

let print_fact a = print_atom (fun v -> v) a ^ "."

let print_tgd tgd =
  let rename = var_renaming tgd in
  let body = String.concat ", " (List.map (print_atom rename) (Tgd.body tgd)) in
  let head = String.concat ", " (List.map (print_atom rename) (Tgd.head tgd)) in
  let ex = Tgd.existential_vars tgd in
  let exists =
    if Term.Set.is_empty ex then ""
    else
      "exists "
      ^ String.concat ","
          (List.filter_map
             (function Term.Var v -> Some (rename v) | _ -> None)
             (Term.Set.elements ex))
      ^ ". "
  in
  let name = Tgd.name tgd in
  let prefix = if name <> "" && is_bare_const name then name ^ ": " else "" in
  Printf.sprintf "%s%s -> %s%s." prefix body exists head

let print_program p =
  let buf = Buffer.create 256 in
  List.iter
    (fun t ->
      Buffer.add_string buf (print_tgd t);
      Buffer.add_char buf '\n')
    (Program.tgds p);
  Instance.iter
    (fun a ->
      Buffer.add_string buf (print_fact a);
      Buffer.add_char buf '\n')
    (Program.database p);
  Buffer.contents buf
