(** A parsed program: a TGD set together with a database of facts. *)

open Chase_core

type t

val empty : t
val tgds : t -> Tgd.t list
val database : t -> Instance.t
val add_tgd : Tgd.t -> t -> t
val add_fact : Atom.t -> t -> t

(** The combined schema of the TGDs and facts.
    @raise Schema.Arity_mismatch on inconsistent arities. *)
val schema : t -> Schema.t
