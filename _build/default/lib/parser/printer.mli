(** Pretty-printer emitting the surface syntax; {!Parser.parse_program}
    round-trips its output.  Variable names are adapted to the concrete
    syntax's uppercase-initial convention, injectively per TGD. *)

open Chase_core

(** Can a constant be printed bare (no quotes)? *)
val is_bare_const : string -> bool

val print_fact : Atom.t -> string
val print_tgd : Tgd.t -> string
val print_program : Program.t -> string
