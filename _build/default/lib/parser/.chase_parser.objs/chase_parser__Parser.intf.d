lib/parser/parser.mli: Atom Chase_core Instance Program Tgd
