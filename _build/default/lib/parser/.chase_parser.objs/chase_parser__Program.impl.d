lib/parser/program.ml: Chase_core Instance Schema Tgd
