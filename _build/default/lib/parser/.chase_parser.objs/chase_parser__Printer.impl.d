lib/parser/printer.ml: Atom Buffer Chase_core Hashtbl Instance List Printf Program String Term Tgd
