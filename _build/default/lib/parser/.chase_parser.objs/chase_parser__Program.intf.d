lib/parser/program.mli: Atom Chase_core Instance Schema Tgd
