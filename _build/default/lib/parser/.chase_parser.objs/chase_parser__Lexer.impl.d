lib/parser/lexer.ml: Buffer Format List String Token
