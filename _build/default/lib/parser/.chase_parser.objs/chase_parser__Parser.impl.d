lib/parser/parser.ml: Atom Chase_core Format Fun Lexer List Printf Program Term Tgd Token
