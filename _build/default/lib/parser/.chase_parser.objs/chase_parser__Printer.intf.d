lib/parser/printer.mli: Atom Chase_core Program Tgd
