(** Sequentializing a parallel chase run — the Extract(K,T) loop of the
    paper's App. C.2 as an engine feature: replay the parallel run's atoms
    in round order, applying each producing trigger only if it is active
    on the sequential instance, and stopping the guard-subtree of every
    atom whose trigger is not.  The output always validates as a
    restricted chase derivation. *)

open Chase_core

type outcome = {
  derivation : Derivation.t;
  born : int;  (** atoms replayed into the sequential derivation *)
  stopped : int;  (** atoms skipped (deactivated or orphaned) *)
}

(** Atoms of a parallel run in round order with their triggers and parent
    atoms (multi-head rounds are skipped). *)
val enumerate : Parallel.result -> (Atom.t * Trigger.t * Atom.t list) list

val run : Tgd.t list -> Parallel.result -> outcome

(** Parallel chase followed by extraction; upgrades the status to
    [Terminated] when nothing remains active. *)
val parallel_then_extract : ?max_rounds:int -> Tgd.t list -> Instance.t -> outcome
