(* Cores and the core chase [Deutsch, Nash & Remmel, PODS'08] — cited as
   [11] in the paper's survey of chase variants.

   The *core* of a finite instance is a ⊆-minimal retract: a sub-instance
   the whole instance maps into by a homomorphism fixing the
   sub-instance.  Cores are unique up to isomorphism; the core of any
   universal model is the unique minimal universal model.

   The *core chase* alternates parallel chase rounds with core
   computation.  It is complete for universal-model existence: it
   terminates iff (D,T) has a finite universal model — strictly more
   often than the restricted chase, which makes it the natural upper
   baseline next to our restricted engine (the paper's CTres∀∀ concerns
   the restricted chase precisely because that is what implementations
   run). *)

open Chase_core

(* One retraction step: a homomorphism from [instance] into itself that
   fixes everything except [candidate], mapping it onto another atom.
   Returns the retract when one exists. *)
let retract_once instance =
  let atoms = Instance.to_list instance in
  let try_drop candidate =
    let smaller = Instance.remove candidate instance in
    (* a homomorphism from the full instance into [smaller] that fixes
       the terms of [smaller]?  Enough to find any endomorphism into
       [smaller]: its image is a proper retract.  To keep constants and
       the retract's nulls stable we fix the nulls occurring in
       [smaller]… but that is too strong in general; the standard core
       algorithm just searches for any hom into the smaller set. *)
    match Homomorphism.find (Instance.to_list instance) smaller with
    | Some h -> Some (Instance.map (Substitution.apply_atom h) instance)
    | None -> None
  in
  List.find_map try_drop atoms

(* The core: iterate proper retractions to a fixpoint.  Exponential in
   the worst case (core computation is NP-hard); fine at test scale. *)
let rec core instance =
  match retract_once instance with
  | Some smaller when Instance.cardinal smaller < Instance.cardinal instance -> core smaller
  | _ -> instance

let is_core instance = Option.is_none (retract_once instance)

type result = {
  final : Instance.t;
  rounds : int;
  saturated : bool;  (* false when the round budget ran out *)
}

let default_max_rounds = 200

(* The core chase: parallel-apply all active triggers, then take the
   core (constants are preserved automatically: homomorphisms fix them). *)
let run ?(max_rounds = default_max_rounds) ?gen tgds database =
  let gen = match gen with Some g -> g | None -> Term.Gen.create ~prefix:"cc" () in
  let rec go instance i =
    if i >= max_rounds then { final = instance; rounds = i; saturated = false }
    else
      let active = Restricted.active_triggers tgds instance in
      match active with
      | [] -> { final = instance; rounds = i; saturated = true }
      | _ ->
          let after =
            List.fold_left
              (fun acc trigger -> fst (Trigger.apply ~gen acc trigger))
              instance active
          in
          go (core after) (i + 1)
  in
  go (core database) 0
