lib/engine/core_chase.mli: Chase_core Instance Term Tgd
