lib/engine/real_oblivious.mli: Atom Chase_core Format Instance Tgd Trigger
