lib/engine/real_oblivious.ml: Array Atom Chase_core Format Hashtbl Homomorphism Instance Int List Option Printf Stop String Substitution Term Tgd Trigger
