lib/engine/stop.mli: Atom Chase_core Instance Term Trigger
