lib/engine/derivation.ml: Atom Chase_core Format Instance List Seq String Term Trigger
