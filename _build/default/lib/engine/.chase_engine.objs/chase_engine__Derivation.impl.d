lib/engine/derivation.ml: Atom Chase_core Format Instance Lazy List Seq String Term Trigger
