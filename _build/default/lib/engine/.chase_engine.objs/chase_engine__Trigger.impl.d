lib/engine/trigger.ml: Chase_core Digest Format Homomorphism Instance List Printf Seq String Substitution Term Tgd
