lib/engine/trigger.ml: Chase_core Digest Format Hashtbl Homomorphism Instance List Plan Printf Seq String Substitution Term Tgd
