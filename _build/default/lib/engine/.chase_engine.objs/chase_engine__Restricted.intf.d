lib/engine/restricted.mli: Chase_core Derivation Instance Term Tgd Trigger
