lib/engine/plan.ml: Array Atom Chase_core Fun Hashtbl Instance Int List Map Minstance Option String Substitution Term Tgd
