lib/engine/parallel.mli: Chase_core Instance Tgd Trigger
