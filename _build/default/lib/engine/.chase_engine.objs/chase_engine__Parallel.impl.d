lib/engine/parallel.ml: Chase_core Instance List Restricted Trigger
