lib/engine/restricted.ml: Array Chase_core Derivation Hashtbl Instance Lazy List Minstance Option Plan Random Seq Term Trigger
