lib/engine/restricted.ml: Chase_core Derivation List Option Random Seq Set Term Trigger
