lib/engine/stop.ml: Atom Chase_core Homomorphism Instance List Option Substitution Trigger
