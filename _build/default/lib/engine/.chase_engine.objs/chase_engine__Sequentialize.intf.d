lib/engine/sequentialize.mli: Atom Chase_core Derivation Instance Parallel Tgd Trigger
