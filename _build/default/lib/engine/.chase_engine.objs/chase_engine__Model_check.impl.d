lib/engine/model_check.ml: Chase_core Homomorphism Instance List Tgd
