lib/engine/plan.mli: Atom Chase_core Instance Minstance Substitution Term Tgd
