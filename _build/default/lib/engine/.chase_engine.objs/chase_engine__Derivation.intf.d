lib/engine/derivation.mli: Atom Chase_core Format Instance Lazy Term Tgd Trigger
