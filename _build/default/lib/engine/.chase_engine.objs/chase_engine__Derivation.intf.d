lib/engine/derivation.mli: Atom Chase_core Format Instance Term Tgd Trigger
