lib/engine/oblivious.mli: Chase_core Instance Tgd
