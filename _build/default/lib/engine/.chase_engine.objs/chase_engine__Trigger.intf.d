lib/engine/trigger.mli: Atom Chase_core Format Instance Seq Substitution Term Tgd
