lib/engine/oblivious.ml: Chase_core Hashtbl Instance List Minstance Plan Queue Trigger
