lib/engine/oblivious.ml: Chase_core Instance List Queue Seq Set Trigger
