lib/engine/sequentialize.ml: Atom Chase_core Derivation Instance List Parallel Restricted Substitution Tgd Trigger
