lib/engine/sequentialize.ml: Atom Chase_core Derivation Instance Lazy List Parallel Restricted Substitution Tgd Trigger
