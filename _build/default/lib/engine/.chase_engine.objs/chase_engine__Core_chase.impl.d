lib/engine/core_chase.ml: Chase_core Homomorphism Instance List Option Restricted Substitution Term Trigger
