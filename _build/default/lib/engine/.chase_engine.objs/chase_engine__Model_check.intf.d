lib/engine/model_check.mli: Chase_core Instance Tgd
