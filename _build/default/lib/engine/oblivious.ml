(* The oblivious and semi-oblivious chase (paper §3.1).

   The oblivious chase applies every trigger — active or not — that has
   not been applied before, until a fixpoint.  With the canonical null
   naming of Def 3.1 the result is the unique ⊆-minimal instance I_{D,T}
   closed under trigger application, independent of order.

   The semi-oblivious chase identifies triggers agreeing on the frontier:
   (σ, h) is applied only if no (σ, h') with h'|fr = h|fr was. *)

open Chase_core

type variant = Oblivious | Semi_oblivious

type result = {
  instance : Instance.t;
  applications : int;
  saturated : bool;  (* false when the step budget ran out *)
}

module TrigSet = Set.Make (Trigger)

let default_max_steps = 10_000

(* Key under which a trigger is remembered as applied. *)
let applied_key variant trigger =
  match variant with
  | Oblivious -> trigger
  | Semi_oblivious -> Trigger.make (Trigger.tgd trigger) (Trigger.frontier_hom trigger)

let run ?(variant = Oblivious) ?(max_steps = default_max_steps) tgds database =
  let applied = ref TrigSet.empty in
  let queue = Queue.create () in
  let enqueue t =
    let key = applied_key variant t in
    if not (TrigSet.mem key !applied) then begin
      applied := TrigSet.add key !applied;
      Queue.add t queue
    end
  in
  Seq.iter enqueue (Trigger.all tgds database);
  let rec loop instance n =
    if Queue.is_empty queue then { instance; applications = n; saturated = true }
    else if n >= max_steps then { instance; applications = n; saturated = false }
    else
      let trigger = Queue.pop queue in
      (* Canonical nulls: no generator, so re-derived atoms coincide. *)
      let after, produced = Trigger.apply instance trigger in
      List.iter
        (fun atom ->
          if not (Instance.mem atom instance) then
            Seq.iter enqueue (Trigger.involving tgds after atom))
        produced;
      loop after (n + 1)
  in
  loop database 0

(* Does the oblivious chase saturate within the budget? *)
let terminates_within ?variant ~max_steps tgds database =
  (run ?variant ~max_steps tgds database).saturated
