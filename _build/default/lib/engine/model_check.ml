(* Model and universal-model checks (paper §1): the chase result, when
   finite, is a universal model of (D, T) — a model that maps
   homomorphically into every other model.  These checks back the tests
   for the engines. *)

open Chase_core

(* I is a model of (D, T): contains D and satisfies every TGD. *)
let is_model ~database ~tgds instance =
  Instance.subset database instance && Tgd.satisfied_by_all instance tgds

(* I maps into J by a homomorphism (the universality direction that is
   checkable on finite instances). *)
let maps_into instance ~into = Homomorphism.embeds instance ~into

(* A finite universal-model check against a list of candidate models: I is
   a model and maps into each of them. *)
let is_universal_among ~database ~tgds instance ~others =
  is_model ~database ~tgds instance
  && List.for_all (fun j -> maps_into instance ~into:j) others

(* The classic sanity law: a terminating restricted chase result maps into
   the (saturated) oblivious chase result and vice versa. *)
let hom_equivalent = Homomorphism.hom_equivalent
