(** The parallel (weakly restricted, paper Def C.4) chase: every round
    applies all triggers active at its start, simultaneously.  The result
    can be larger than a sequential restricted result — a same-round
    trigger may deactivate another, which is applied anyway — but it is a
    model, and rounds bound the sequential derivation depth. *)

open Chase_core

type round = { index : int; applied : Trigger.t list; after : Instance.t }

type result = {
  database : Instance.t;
  rounds : round list;
  final : Instance.t;
  saturated : bool;  (** false when the round budget ran out *)
}

val default_max_rounds : int

(** Runs with canonical null naming (Def 3.1), so atom identities persist
    across rounds and into {!Sequentialize}. *)
val run : ?max_rounds:int -> Tgd.t list -> Instance.t -> result
val round_count : result -> int
val applications : result -> int
