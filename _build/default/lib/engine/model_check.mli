(** Model and universal-model checks (paper §1). *)

open Chase_core

(** [is_model ~database ~tgds i]: i ⊇ D and i ⊨ T. *)
val is_model : database:Instance.t -> tgds:Tgd.t list -> Instance.t -> bool

(** Homomorphism existence from an instance into another. *)
val maps_into : Instance.t -> into:Instance.t -> bool

(** A finite universality check: a model that maps into each of [others]. *)
val is_universal_among :
  database:Instance.t -> tgds:Tgd.t list -> Instance.t -> others:Instance.t list -> bool

val hom_equivalent : Instance.t -> Instance.t -> bool
