(** Cores and the core chase \[Deutsch, Nash & Remmel, PODS'08\] — the
    paper's reference [11].  The core chase (parallel rounds + core
    minimization) terminates iff a finite universal model exists; it is
    the upper baseline next to the restricted chase. *)

open Chase_core

(** One proper retraction, when one exists. *)
val retract_once : Instance.t -> Instance.t option

(** The core: iterate proper retractions to a fixpoint (NP-hard in
    general; meant for test-scale instances). *)
val core : Instance.t -> Instance.t

val is_core : Instance.t -> bool

type result = {
  final : Instance.t;
  rounds : int;
  saturated : bool;  (** false when the round budget ran out *)
}

val default_max_rounds : int
val run : ?max_rounds:int -> ?gen:Term.Gen.t -> Tgd.t list -> Instance.t -> result
