(* The restricted (standard) chase (paper §3.2).

   Starting from a database, repeatedly apply an *active* trigger until no
   active trigger remains (Terminated) or a step budget runs out.  Which
   active trigger is applied is the engine's only source of
   non-determinism, made explicit by [strategy]: the paper's CTres∀∀
   quantifies over all derivations, so callers can steer it.

   Candidate triggers are discovered incrementally: once an atom is added,
   only triggers whose body uses that atom are new.  Activity is monotone
   downwards (instances only grow, so a satisfied head stays satisfied), so
   a candidate found inactive can be dropped for good. *)

open Chase_core

type strategy =
  | Fifo  (* oldest candidate first — yields fair derivations *)
  | Lifo  (* newest candidate first — depth-first, possibly unfair *)
  | Random of int  (* uniformly random candidate, seeded *)

module TrigSet = Set.Make (Trigger)

(* A simple pool of pending candidate triggers with the three policies. *)
module Pool = struct
  type t = {
    mutable fifo_front : Trigger.t list;
    mutable fifo_back : Trigger.t list;
    mutable seen : TrigSet.t;
    strategy : strategy;
    rng : Random.State.t option;
    mutable store : Trigger.t list;  (* Lifo / Random storage *)
  }

  let create strategy =
    let rng = match strategy with Random seed -> Some (Random.State.make [| seed |]) | _ -> None in
    { fifo_front = []; fifo_back = []; seen = TrigSet.empty; strategy; rng; store = [] }

  let push pool t =
    if TrigSet.mem t pool.seen then ()
    else begin
      pool.seen <- TrigSet.add t pool.seen;
      match pool.strategy with
      | Fifo -> pool.fifo_back <- t :: pool.fifo_back
      | Lifo | Random _ -> pool.store <- t :: pool.store
    end

  let pop pool =
    match pool.strategy with
    | Fifo -> (
        match pool.fifo_front with
        | t :: rest ->
            pool.fifo_front <- rest;
            Some t
        | [] -> (
            match List.rev pool.fifo_back with
            | [] -> None
            | t :: rest ->
                pool.fifo_front <- rest;
                pool.fifo_back <- [];
                Some t))
    | Lifo -> (
        match pool.store with
        | [] -> None
        | t :: rest ->
            pool.store <- rest;
            Some t)
    | Random _ -> (
        match pool.store with
        | [] -> None
        | store ->
            let rng = Option.get pool.rng in
            let n = List.length store in
            let k = Random.State.int rng n in
            let picked = List.nth store k in
            pool.store <- List.filteri (fun i _ -> i <> k) store;
            Some picked)
end

let default_max_steps = 10_000

let run ?(strategy = Fifo) ?(max_steps = default_max_steps) ?(naming = `Fresh) ?gen tgds database
    =
  (* [`Canonical] names nulls c^{σ,h}_x as in Def 3.1, so produced atoms
     coincide literally with real-oblivious-chase atoms (used when mapping
     derivations into ochase(D,T)); [`Fresh] uses a cheap counter. *)
  let gen =
    match (naming, gen) with
    | `Canonical, _ -> None
    | `Fresh, Some g -> Some g
    | `Fresh, None -> Some (Term.Gen.create ())
  in
  let pool = Pool.create strategy in
  Seq.iter (Pool.push pool) (Trigger.all tgds database);
  let rec loop instance steps_rev n =
    if n >= max_steps then
      (* Budget exhausted; find out whether anything was actually left. *)
      let status =
        if Trigger.all tgds instance |> Seq.exists (Trigger.is_active instance) then
          Derivation.Out_of_budget
        else Derivation.Terminated
      in
      Derivation.make ~database ~steps:(List.rev steps_rev) ~status
    else
      match Pool.pop pool with
      | None -> Derivation.make ~database ~steps:(List.rev steps_rev) ~status:Terminated
      | Some trigger ->
          if not (Trigger.is_active instance trigger) then loop instance steps_rev n
          else begin
            let after, produced = Trigger.apply ?gen instance trigger in
            List.iter
              (fun atom -> Seq.iter (Pool.push pool) (Trigger.involving tgds after atom))
              produced;
            let step =
              {
                Derivation.index = n;
                trigger;
                produced;
                frontier = Trigger.frontier_terms trigger;
                after;
              }
            in
            loop after (step :: steps_rev) (n + 1)
          end
  in
  loop database [] 0

(* Convenience: chase to completion or fail. *)
exception Did_not_terminate of Derivation.t

let run_exn ?strategy ?max_steps ?naming ?gen tgds database =
  let d = run ?strategy ?max_steps ?naming ?gen tgds database in
  match Derivation.status d with
  | Terminated -> Derivation.final d
  | Out_of_budget -> raise (Did_not_terminate d)

(* All active triggers on an instance, eagerly. *)
let active_triggers tgds instance =
  Trigger.all tgds instance |> Seq.filter (Trigger.is_active instance) |> List.of_seq
