(* The parallel (a.k.a. weakly restricted, paper Def C.4) chase: at each
   round, apply *all* triggers that are active at the start of the round
   simultaneously.

   The paper introduces the weakly restricted chase in the proof of the
   Treeification Theorem, where several "mirror images" of one trigger
   must fire at once.  (There it runs on multisets; on set instances —
   our case — simultaneous application is exactly the breadth-parallel
   strategy practical chase engines use.)  Note the subtlety the paper's
   definition embraces: a trigger active at the start of a round may be
   deactivated by another trigger of the same round; the weakly
   restricted chase applies it anyway.  Consequently the result can be
   strictly larger than any sequential restricted result, but it is still
   a model, and every atom is produced by a trigger that was active when
   its round began. *)

open Chase_core

type round = { index : int; applied : Trigger.t list; after : Instance.t }

type result = {
  database : Instance.t;
  rounds : round list;
  final : Instance.t;
  saturated : bool;  (* false when the round budget ran out *)
}

let default_max_rounds = 1_000

(* Canonical null naming (Def 3.1) throughout: atom identities then
   persist across rounds and into {!Sequentialize}, and a trigger firing
   in two different rounds produces the same atom. *)
let run ?(max_rounds = default_max_rounds) tgds database =
  let rec go instance rounds i =
    if i >= max_rounds then
      { database; rounds = List.rev rounds; final = instance; saturated = false }
    else
      let active = Restricted.active_triggers tgds instance in
      match active with
      | [] -> { database; rounds = List.rev rounds; final = instance; saturated = true }
      | _ ->
          let after =
            List.fold_left
              (fun acc trigger -> fst (Trigger.apply acc trigger))
              instance active
          in
          go after ({ index = i; applied = active; after } :: rounds) (i + 1)
  in
  go database [] 0

let round_count r = List.length r.rounds

let applications r = List.fold_left (fun n round -> n + List.length round.applied) 0 r.rounds
