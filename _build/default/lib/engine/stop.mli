(** The stop relation ≺s (paper §3.1) and Fact 3.5. *)

open Chase_core

(** [stops ~frontier ~candidate ~result]: candidate ≺s result, where
    [frontier] is the set of frontier terms of [result]. *)
val stops : frontier:Term.Set.t -> candidate:Atom.t -> result:Atom.t -> bool

(** The atom of the instance stopping the trigger's result, if any
    (single-head TGDs only).
    @raise Invalid_argument on a multi-head TGD. *)
val trigger_stopped_by : Instance.t -> Trigger.t -> Atom.t option

(** Fact 3.5: equivalent to {!Trigger.is_active} for single-head TGDs. *)
val is_active_via_stop : Instance.t -> Trigger.t -> bool

(** α ≺s β given β's frontier terms. *)
val atom_stops : frontier_of_result:Term.Set.t -> Atom.t -> Atom.t -> bool
