(* The stop relation ≺s (paper §3.1).

   α ≺s β — "α stops β" — where β = result(σ,h), holds when there is a
   homomorphism h' with h'(β) = α and h'(t) = t for every frontier term t
   of β.  Intuitively: in the presence of α, the trigger producing β is not
   active (Fact 3.5).  Operationally this is a position-wise match of β
   onto α with the frontier terms (and constants) frozen. *)

open Chase_core

(* candidate α ≺s result β, with [frontier] = fr(result) = the terms of β
   at its frontier positions. *)
let stops ~frontier ~candidate ~result =
  Option.is_some
    (Homomorphism.match_atom ~frozen:frontier ~pattern:result ~target:candidate
       Substitution.empty)

(* Fact 3.5: a trigger is active on I iff no atom of I stops its result.
   (The paper states it for subsets of the real oblivious chase; the
   argument is position-wise and holds verbatim for single-head TGDs.) *)
let trigger_stopped_by instance trigger =
  let result =
    match Trigger.result trigger with
    | [ a ] -> a
    | _ -> invalid_arg "Stop.trigger_stopped_by: single-head TGDs only"
  in
  let frontier = Trigger.frontier_terms trigger in
  let candidates = Instance.with_pred instance (Atom.pred result) in
  List.find_opt (fun candidate -> stops ~frontier ~candidate ~result) candidates

let is_active_via_stop instance trigger =
  Option.is_none (trigger_stopped_by instance trigger)

(* ≺s between two produced atoms of a derivation: the stopping atom α and
   the stopped atom β with β's frontier terms. *)
let atom_stops ~frontier_of_result alpha beta =
  stops ~frontier:frontier_of_result ~candidate:alpha ~result:beta
