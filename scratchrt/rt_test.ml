let () =
  let src = {|p("123foo").|} in
  let p = Chase_parser.Parser.parse_program src in
  let out = Chase_parser.Printer.print_program p in
  print_string out;
  (try ignore (Chase_parser.Parser.parse_program out); print_endline "ROUNDTRIP OK"
   with e -> Printf.printf "ROUNDTRIP FAILED: %s\n" (Printexc.to_string e))
