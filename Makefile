# Convenience targets; everything is plain dune underneath.

all:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Small-size engine benchmarks (E11, the E12 scaling sweep, the E14
# columnar-vs-compiled A/B at ≈100k facts and the E15 portfolio-vs-fixed
# decider race), writes BENCH_results.json.
# JOBS caps the E12 domain sweep, e.g. `make bench-smoke JOBS=2`.
JOBS ?= 1
bench-smoke:
	dune exec bench/main.exe -- --json --smoke --jobs $(JOBS) E11 E12 E14 E15

# Differential fuzzing across the engine matrix (DESIGN.md §8); exits
# nonzero with a shrunk repro on any cross-engine discrepancy, e.g.
# `make fuzz CASES=1000 JOBS=4`.
CASES ?= 500
fuzz:
	dune exec bin/chasectl.exe -- fuzz --cases $(CASES) --seed 42 --jobs $(JOBS)

# Golden-transcript conversation through `chasectl serve` over stdio
# (docs/SERVICE.md).  wall_ms is the only nondeterministic reply field;
# normalize it before diffing.
serve-smoke:
	dune build bin/chasectl.exe
	./_build/default/bin/chasectl.exe serve < test/serve/script.jsonl \
	  | sed -E 's/"wall_ms": *[0-9.eE+-]+/"wall_ms": 0/g' \
	  | diff -u test/serve/golden.jsonl -

examples:
	dune exec examples/quickstart.exe
	dune exec examples/data_exchange.exe
	dune exec examples/ontology_reasoning.exe
	dune exec examples/termination_gallery.exe
	dune exec examples/sticky_analysis.exe
	dune exec examples/fairness_demo.exe
	dune exec examples/chase_variants.exe

gallery:
	dune exec examples/termination_gallery.exe

# API docs via odoc (warnings are fatal; see the root `dune` env stanza).
doc:
	dune build @doc

clean:
	dune clean

.PHONY: all test bench bench-smoke fuzz serve-smoke examples gallery doc clean
