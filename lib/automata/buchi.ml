(* Deterministic Büchi automata with lazily generated state spaces.

   The sticky decision procedure (paper §6.5, App. D.2) reduces
   CTres∀∀(S) to the emptiness of a deterministic Büchi automaton A_T
   whose states are combinatorial objects (equality types, sets of
   T-equality types, position sets).  We never build A_T up front: states
   are materialized on demand during the emptiness search, driven by a
   partial transition function ([None] = the automaton's reject sink).

   L(A) ≠ ∅ iff some cycle through an accepting state is reachable from
   the initial state; a witness is a *lasso* — a finite prefix word and a
   non-empty cycle word that can be pumped forever. *)

module Exec = Chase_exec.Pool
module Cancel = Chase_exec.Cancel

type ('s, 'a) t = {
  initial : 's;
  alphabet : 'a array;
  next : 's -> 'a -> 's option;  (* deterministic, partial *)
  accepting : 's -> bool;
  state_key : 's -> string;  (* injective encoding, used for hashing *)
  (* Optional subsumption structure (group key, [subsumes existing
     candidate]): a candidate state may be replaced by an
     already-registered state of the same group that subsumes it.  Only
     consulted when exploration is asked to prune (DESIGN.md §10). *)
  subsumption : (('s -> string) * ('s -> 's -> bool)) option;
}

type 'a lasso = { prefix : 'a list; cycle : 'a list }

type 'a emptiness =
  | Empty
  | Nonempty of 'a lasso
  | Budget_exceeded of int  (* states explored when the budget ran out *)
  | Cancelled of int  (* states explored when the cancel token fired *)

type stats = { states : int; transitions : int; pruned : int }

let make ~initial ~alphabet ~next ~accepting ~state_key =
  {
    initial;
    alphabet = Array.of_list alphabet;
    next;
    accepting;
    state_key;
    subsumption = None;
  }

let with_subsumption ~key ~subsumes a = { a with subsumption = Some (key, subsumes) }

let default_max_states = 200_000

(* Exploration result: the reachable graph, or the point where the
   budget or a cancellation stopped it.  Counts travel alongside so a
   single pass yields both the graph and its stats. *)
type 's graph = {
  g_states : (int, 's) Hashtbl.t;
  g_edges : (int, (int * int) list) Hashtbl.t;  (* src -> (letter, dst) *)
  g_count : int;
  g_transitions : int;
  g_pruned : int;
}

type 's exploration =
  | Complete of 's graph
  | Truncated of stats  (* state budget exhausted *)
  | Interrupted of stats  (* cancel token fired *)

(* Explore the reachable graph.

   With a parallel pool the BFS is level-synchronized: the queue is
   drained into a frontier snapshot, every (state, letter) successor of
   the level is computed across domains ([next] must be pure — the
   sticky automaton's is), and the results are merged on the
   coordinating domain in exactly the sequential visit order (frontier
   order × alphabet order), replaying the same [register] calls, the
   same pruning decisions and the same budget stop.  State numbering,
   edge lists, the explored count and the Budget_exceeded point are
   therefore bit-identical to the sequential exploration; speculative
   successors computed past a budget stop are simply discarded.

   With [prune] and a subsumption structure on the automaton, a
   candidate state subsumed by an already-registered state of the same
   group is not registered; the edge is *redirected* to the subsuming
   state (never dropped — dropping would hide accepting cycles).  See
   DESIGN.md §10 for why Empty verdicts on the pruned graph are sound
   and Nonempty witnesses must be re-validated. *)
let explore ?(max_states = default_max_states) ?(pool = Exec.inline)
    ?(cancel = Cancel.none) ?(prune = false) a =
  let index : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let states : (int, 's) Hashtbl.t = Hashtbl.create 1024 in
  let edges : (int, (int * int) list) Hashtbl.t = Hashtbl.create 1024 in
  let count = ref 0 and transitions = ref 0 and pruned = ref 0 in
  let queue = Queue.create () in
  let pruning = prune && a.subsumption <> None in
  (* subsumption-group key -> registered state indices, newest first *)
  let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  (* pruned candidate key -> index it was redirected to (memo, and keeps
     redirections deterministic across revisits) *)
  let pruned_to : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let register s key =
    match Hashtbl.find_opt index key with
    | Some i -> i
    | None ->
        Obs.incr "buchi.states";
        let i = !count in
        incr count;
        Hashtbl.add index key i;
        Hashtbl.add states i s;
        Queue.add i queue;
        if pruning then begin
          let gkey = (fst (Option.get a.subsumption)) s in
          match Hashtbl.find_opt groups gkey with
          | Some l -> l := i :: !l
          | None -> Hashtbl.add groups gkey (ref [ i ])
        end;
        i
  in
  let find_subsumer s key =
    if not pruning then None
    else
      match Hashtbl.find_opt pruned_to key with
      | Some j -> Some j
      | None -> (
          let gkey, subsumes = Option.get a.subsumption in
          match Hashtbl.find_opt groups (gkey s) with
          | None -> None
          | Some l ->
              List.find_opt (fun i -> subsumes (Hashtbl.find states i) s) !l)
  in
  ignore (register a.initial (a.state_key a.initial));
  let over = ref false in
  (* Merge one source state's successor images in alphabet order,
     mirroring the sequential inner loop byte for byte.  Images are lazy
     so the sequential path still skips [next] calls after a budget
     stop; the parallel path passes pre-forced values. *)
  let merge_outs i images =
    let outs = ref [] in
    Array.iteri
      (fun li image ->
        if not !over then
          match Lazy.force image with
          | None -> ()
          | Some s' -> (
              let key = a.state_key s' in
              match Hashtbl.find_opt index key with
              | Some j ->
                  Obs.incr "buchi.transitions";
                  incr transitions;
                  outs := (li, j) :: !outs
              | None -> (
                  match find_subsumer s' key with
                  | Some j ->
                      (* redirect, don't register *)
                      Hashtbl.replace pruned_to key j;
                      incr pruned;
                      Obs.incr "buchi.pruned";
                      Obs.incr "buchi.transitions";
                      incr transitions;
                      outs := (li, j) :: !outs
                  | None ->
                      if !count >= max_states then over := true
                      else begin
                        Obs.incr "buchi.transitions";
                        incr transitions;
                        let j = register s' key in
                        outs := (li, j) :: !outs
                      end)))
      images;
    Hashtbl.replace edges i !outs
  in
  let interrupted = ref false in
  if not (Exec.is_parallel pool) then
    while (not (Queue.is_empty queue)) && (not !over) && not !interrupted do
      if Cancel.cancelled cancel then interrupted := true
      else begin
        let i = Queue.pop queue in
        let s = Hashtbl.find states i in
        merge_outs i (Array.map (fun letter -> lazy (a.next s letter)) a.alphabet)
      end
    done
  else
    while (not (Queue.is_empty queue)) && (not !over) && not !interrupted do
      if Cancel.cancelled cancel then interrupted := true
      else begin
        let frontier = Array.of_seq (Queue.to_seq queue) in
        Queue.clear queue;
        let images =
          Exec.map_array pool
            (fun i ->
              let s = Hashtbl.find states i in
              Array.map (fun letter -> Lazy.from_val (a.next s letter)) a.alphabet)
            frontier
        in
        Array.iteri (fun fi i -> if not !over then merge_outs i images.(fi)) frontier
      end
    done;
  let counts = { states = !count; transitions = !transitions; pruned = !pruned } in
  if !interrupted then Interrupted counts
  else if !over then Truncated counts
  else
    Complete
      {
        g_states = states;
        g_edges = edges;
        g_count = !count;
        g_transitions = !transitions;
        g_pruned = !pruned;
      }

(* Tarjan SCC over an explicit int graph. *)
let sccs n succ =
  let index = Array.make n (-1) and low = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] and counter = ref 0 and ncomp = ref 0 in
  (* iterative Tarjan to avoid stack overflow on long chains *)
  let strong v0 =
    let call_stack = ref [ (v0, ref (succ v0)) ] in
    index.(v0) <- !counter;
    low.(v0) <- !counter;
    incr counter;
    stack := v0 :: !stack;
    on_stack.(v0) <- true;
    while !call_stack <> [] do
      match !call_stack with
      | [] -> ()
      | (v, rest) :: tl -> (
          match !rest with
          | w :: more ->
              rest := more;
              if index.(w) = -1 then begin
                index.(w) <- !counter;
                low.(w) <- !counter;
                incr counter;
                stack := w :: !stack;
                on_stack.(w) <- true;
                call_stack := (w, ref (succ w)) :: !call_stack
              end
              else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
          | [] ->
              call_stack := tl;
              if low.(v) = index.(v) then begin
                let rec pop () =
                  match !stack with
                  | w :: rest' ->
                      stack := rest';
                      on_stack.(w) <- false;
                      comp.(w) <- !ncomp;
                      if w <> v then pop ()
                  | [] -> ()
                in
                pop ();
                incr ncomp
              end;
              (match tl with
              | (p, _) :: _ -> low.(p) <- min low.(p) low.(v)
              | [] -> ()))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strong v
  done;
  (comp, !ncomp)

(* Run the automaton on a lasso, checking that it accepts: the run must
   reach the cycle start, traverse the cycle back to the same state, and
   see an accepting state within the cycle.  Used to validate witnesses
   (certificate checking), and to re-validate lassos found on a
   subsumption-pruned graph whose redirected edges need not correspond
   to real runs. *)
let accepts_lasso a { prefix; cycle } =
  if cycle = [] then false
  else
    let step s letter = a.next s letter in
    let run s word =
      List.fold_left
        (fun acc letter -> match acc with None -> None | Some s -> step s letter)
        (Some s) word
    in
    match run a.initial prefix with
    | None -> false
    | Some s0 -> (
        (* accepting state visited somewhere along the cycle (checked from
           s0, inclusive of intermediate states) *)
        let rec go s word seen_acc =
          match word with
          | [] -> if a.state_key s = a.state_key s0 then seen_acc else false
          | l :: rest -> (
              match step s l with
              | None -> false
              | Some s' -> go s' rest (seen_acc || a.accepting s'))
        in
        go s0 cycle (a.accepting s0))

(* Lasso extraction from an explored graph with a chosen accepting state
   [acc] inside an SCC with an internal edge. *)
let extract_lasso a g comp acc =
  let edges = g.g_edges in
  (* BFS path from 0 (initial) to acc, then a cycle from acc to acc
     staying inside its SCC. *)
  let bfs ~restrict src dst =
    let prev = Hashtbl.create 64 in
    let visited = Hashtbl.create 64 in
    Hashtbl.add visited src ();
    let q = Queue.create () in
    Queue.add src q;
    let found = ref false in
    while (not (Queue.is_empty q)) && not !found do
      let i = Queue.pop q in
      List.iter
        (fun (li, j) ->
          if
            (not (Hashtbl.mem visited j))
            && (not (restrict && comp.(j) <> comp.(dst)))
          then begin
            Hashtbl.add visited j ();
            Hashtbl.add prev j (i, li);
            if j = dst then found := true else Queue.add j q
          end)
        (Option.value ~default:[] (Hashtbl.find_opt edges i))
    done;
    if (not !found) && src <> dst then None
    else begin
      (* reconstruct *)
      let rec build j acc' =
        if j = src && acc' <> [] then acc'
        else
          match Hashtbl.find_opt prev j with
          | Some (i, li) -> build i (a.alphabet.(li) :: acc')
          | None -> acc'
      in
      Some (build dst [])
    end
  in
  (* Cycle: one step out of acc inside the SCC, then back. *)
  let cycle =
    let outs = Option.value ~default:[] (Hashtbl.find_opt edges acc) in
    List.find_map
      (fun (li, j) ->
        if comp.(j) <> comp.(acc) then None
        else if j = acc then Some [ a.alphabet.(li) ]
        else
          match bfs ~restrict:true j acc with
          | Some w -> Some (a.alphabet.(li) :: w)
          | None -> None)
      outs
  in
  let prefix = if acc = 0 then Some [] else bfs ~restrict:false 0 acc in
  match (prefix, cycle) with
  | Some p, Some c -> Some { prefix = p; cycle = c }
  | _ -> None (* unreachable: acc was picked reachable in a good SCC *)

let analyse a g =
  let n = g.g_count in
  let succ i = List.map snd (Option.value ~default:[] (Hashtbl.find_opt g.g_edges i)) in
  let comp, _ = sccs n succ in
  (* An SCC is "good" when it contains an accepting state and has an
     internal edge (covers the self-loop case too). *)
  let has_internal_edge = Hashtbl.create 16 in
  Hashtbl.iter
    (fun i outs ->
      List.iter
        (fun (_, j) -> if comp.(i) = comp.(j) then Hashtbl.replace has_internal_edge comp.(i) ())
        outs)
    g.g_edges;
  let target = ref None in
  for i = 0 to n - 1 do
    if
      !target = None
      && a.accepting (Hashtbl.find g.g_states i)
      && Hashtbl.mem has_internal_edge comp.(i)
    then target := Some i
  done;
  match !target with
  | None -> Empty
  | Some acc -> (
      match extract_lasso a g comp acc with
      | Some ({ prefix; cycle } as lasso) ->
          if Obs.enabled () then
            Obs.event "lasso"
              [
                ("prefix", Obs.Int (List.length prefix));
                ("cycle", Obs.Int (List.length cycle));
                ("states", Obs.Int n);
              ];
          Nonempty lasso
      | None -> Empty (* unreachable: acc was picked reachable in a good SCC *))

(* Emptiness and exploration stats from one pass.  On a pruned graph an
   Empty verdict is sound as-is; a Nonempty witness may ride redirected
   edges, so it is validated against the real transition function and,
   when invalid, the search reruns without pruning (DESIGN.md §10). *)
let rec emptiness_with_stats ?max_states ?pool ?cancel ?(prune = false) a =
  Obs.span "buchi.emptiness" @@ fun () ->
  match explore ?max_states ?pool ?cancel ~prune a with
  | Truncated c -> (Budget_exceeded c.states, c)
  | Interrupted c -> (Cancelled c.states, c)
  | Complete g -> (
      let counts = { states = g.g_count; transitions = g.g_transitions; pruned = g.g_pruned } in
      match analyse a g with
      | Nonempty lasso when g.g_pruned > 0 && not (accepts_lasso a lasso) ->
          (* The witness used redirected edges and is not a real run:
             fall back to the exact graph. *)
          Obs.incr "buchi.prune.fallback";
          emptiness_with_stats ?max_states ?pool ?cancel ~prune:false a
      | verdict -> (verdict, counts))

let emptiness ?max_states ?pool ?cancel ?prune a =
  fst (emptiness_with_stats ?max_states ?pool ?cancel ?prune a)

let is_empty_opt ?max_states ?pool a =
  match emptiness ?max_states ?pool a with
  | Empty -> Some true
  | Nonempty _ -> Some false
  | Budget_exceeded _ | Cancelled _ -> None

let is_empty ?max_states ?pool a =
  match emptiness ?max_states ?pool a with
  | Empty -> true
  | Nonempty _ -> false
  | Budget_exceeded n -> invalid_arg (Printf.sprintf "Buchi.is_empty: budget at %d states" n)
  | Cancelled n -> invalid_arg (Printf.sprintf "Buchi.is_empty: cancelled at %d states" n)

let stats ?max_states ?pool ?(prune = false) a =
  match explore ?max_states ?pool ~prune a with
  | Truncated c | Interrupted c -> c
  | Complete g -> { states = g.g_count; transitions = g.g_transitions; pruned = g.g_pruned }
