(** Deterministic Büchi automata with lazily generated state spaces, and
    lasso-based emptiness — the substrate of the sticky decision procedure
    (paper §6.5, App. D.2). *)

type ('s, 'a) t

(** A non-emptiness witness: after [prefix], the [cycle] can be pumped
    forever while visiting an accepting state. *)
type 'a lasso = { prefix : 'a list; cycle : 'a list }

type 'a emptiness =
  | Empty
  | Nonempty of 'a lasso
  | Budget_exceeded of int  (** states explored when the budget ran out *)

type stats = { states : int; transitions : int }

(** [next s a = None] is the implicit reject sink; [state_key] must be an
    injective encoding of states (used for hashing). *)
val make :
  initial:'s ->
  alphabet:'a list ->
  next:('s -> 'a -> 's option) ->
  accepting:('s -> bool) ->
  state_key:('s -> string) ->
  ('s, 'a) t

val default_max_states : int

(** Decide L(A) = ∅ by reachable-SCC analysis; a [Nonempty] answer
    carries a lasso witness.

    [pool] (default: inline) parallelizes the state-space exploration
    with a level-synchronized BFS whose discoveries are merged in the
    sequential visit order — the reachable state set, its numbering and
    the budget behaviour are bit-identical to the sequential search.
    Supplying a parallel pool requires [next] to be pure (no shared
    mutable state), since it then runs on worker domains. *)
val emptiness : ?max_states:int -> ?pool:Chase_exec.Pool.t -> ('s, 'a) t -> 'a emptiness

(** @raise Invalid_argument when the state budget is exceeded. *)
val is_empty : ?max_states:int -> ?pool:Chase_exec.Pool.t -> ('s, 'a) t -> bool

(** Size of the reachable automaton (same [pool] contract as
    {!emptiness}). *)
val stats : ?max_states:int -> ?pool:Chase_exec.Pool.t -> ('s, 'a) t -> stats

(** Validate a lasso witness by running the automaton over it. *)
val accepts_lasso : ('s, 'a) t -> 'a lasso -> bool
