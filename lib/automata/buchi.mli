(** Deterministic Büchi automata with lazily generated state spaces, and
    lasso-based emptiness — the substrate of the sticky decision procedure
    (paper §6.5, App. D.2). *)

type ('s, 'a) t

(** A non-emptiness witness: after [prefix], the [cycle] can be pumped
    forever while visiting an accepting state. *)
type 'a lasso = { prefix : 'a list; cycle : 'a list }

type 'a emptiness =
  | Empty
  | Nonempty of 'a lasso
  | Budget_exceeded of int  (** states explored when the budget ran out *)
  | Cancelled of int  (** states explored when the cancel token fired *)

type stats = {
  states : int;
  transitions : int;
  pruned : int;  (** candidates redirected to a subsuming state *)
}

(** [next s a = None] is the implicit reject sink; [state_key] must be an
    injective encoding of states (used for hashing). *)
val make :
  initial:'s ->
  alphabet:'a list ->
  next:('s -> 'a -> 's option) ->
  accepting:('s -> bool) ->
  state_key:('s -> string) ->
  ('s, 'a) t

(** Attach a subsumption structure used by pruned exploration: [key]
    groups comparable states (candidates are only compared within a
    group), and [subsumes existing candidate] must imply that every word
    accepted from [candidate] is accepted from [existing] (language
    inclusion, DESIGN.md §10).  Inert unless [~prune:true] is passed to
    {!emptiness} / {!emptiness_with_stats} / {!stats}. *)
val with_subsumption :
  key:('s -> string) -> subsumes:('s -> 's -> bool) -> ('s, 'a) t -> ('s, 'a) t

val default_max_states : int

(** Decide L(A) = ∅ and report exploration stats from the same single
    pass over the reachable graph.

    [pool] (default: inline) parallelizes the state-space exploration
    with a level-synchronized BFS whose discoveries are merged in the
    sequential visit order — the reachable state set, its numbering and
    the budget behaviour are bit-identical to the sequential search.
    Supplying a parallel pool requires [next] to be pure (no shared
    mutable state), since it then runs on worker domains.

    [cancel] (default: {!Chase_exec.Cancel.none}) is polled between
    frontier expansions; a fired token yields [Cancelled].

    [prune] (default: [false]) enables subsumption pruning when the
    automaton carries a {!with_subsumption} structure: a candidate state
    subsumed by a registered state of the same group is not explored and
    its incoming edge is redirected to the subsumer.  An [Empty] verdict
    on the pruned graph is sound; a [Nonempty] witness is re-validated
    with {!accepts_lasso} and, if it rode redirected edges, the search
    transparently reruns unpruned.  Pruning decisions replay identically
    across pool sizes, so results stay deterministic. *)
val emptiness_with_stats :
  ?max_states:int ->
  ?pool:Chase_exec.Pool.t ->
  ?cancel:Chase_exec.Cancel.t ->
  ?prune:bool ->
  ('s, 'a) t ->
  'a emptiness * stats

(** [fst] of {!emptiness_with_stats}; a [Nonempty] answer carries a
    lasso witness. *)
val emptiness :
  ?max_states:int ->
  ?pool:Chase_exec.Pool.t ->
  ?cancel:Chase_exec.Cancel.t ->
  ?prune:bool ->
  ('s, 'a) t ->
  'a emptiness

(** Budget-total emptiness: [None] when the verdict is [Budget_exceeded]
    (or [Cancelled]) rather than an exception.  Prefer this anywhere a
    budget overrun must degrade to "unknown" instead of escaping. *)
val is_empty_opt : ?max_states:int -> ?pool:Chase_exec.Pool.t -> ('s, 'a) t -> bool option

(** @raise Invalid_argument when the state budget is exceeded (use
    {!is_empty_opt} or {!emptiness} where budgets are expected). *)
val is_empty : ?max_states:int -> ?pool:Chase_exec.Pool.t -> ('s, 'a) t -> bool

(** Size of the reachable automaton (same [pool] contract as
    {!emptiness_with_stats}); on budget overrun, the counts at the stop
    point. *)
val stats :
  ?max_states:int -> ?pool:Chase_exec.Pool.t -> ?prune:bool -> ('s, 'a) t -> stats

(** Validate a lasso witness by running the automaton over it. *)
val accepts_lasso : ('s, 'a) t -> 'a lasso -> bool
