(* The umbrella module: one entry point re-exporting the whole library.

     let program = Chase.Parser.parse_program src in
     let verdict = Chase.Decider.decide (Chase.Program.tgds program) in
     ...

   Each alias points into the focused library that owns the module; see
   docs/PAPER_MAP.md for the paper-to-module index. *)

(* observability (chase_obs is unwrapped, so [Obs] is also usable
   directly; the alias keeps the umbrella complete) *)
module Obs = Obs

(* core *)
module Term = Chase_core.Term
module Atom = Chase_core.Atom
module Schema = Chase_core.Schema
module Substitution = Chase_core.Substitution
module Homomorphism = Chase_core.Homomorphism
module Instance = Chase_core.Instance
module Tgd = Chase_core.Tgd
module Equality_type = Chase_core.Equality_type
module Sideatom_type = Chase_core.Sideatom_type

(* surface syntax *)
module Parser = Chase_parser.Parser
module Printer = Chase_parser.Printer
module Program = Chase_parser.Program

(* engines *)
module Trigger = Chase_engine.Trigger
module Stop = Chase_engine.Stop
module Derivation = Chase_engine.Derivation
module Restricted = Chase_engine.Restricted
module Oblivious = Chase_engine.Oblivious
module Real_oblivious = Chase_engine.Real_oblivious
module Parallel = Chase_engine.Parallel
module Sequentialize = Chase_engine.Sequentialize
module Core_chase = Chase_engine.Core_chase
module Model_check = Chase_engine.Model_check

(* classes *)
module Guardedness = Chase_classes.Guardedness
module Stickiness = Chase_classes.Stickiness
module Weak_acyclicity = Chase_classes.Weak_acyclicity
module Joint_acyclicity = Chase_classes.Joint_acyclicity
module Classification = Chase_classes.Classification

(* automata *)
module Buchi = Chase_automata.Buchi

(* termination: §4, §5, §6 *)
module Fairness = Chase_termination.Fairness
module Derivation_search = Chase_termination.Derivation_search
module Join_tree = Chase_termination.Join_tree
module Chaseable = Chase_termination.Chaseable
module Guarded_structure = Chase_termination.Guarded_structure
module Treeify = Chase_termination.Treeify
module Abstract_join_tree = Chase_termination.Abstract_join_tree
module Msol = Chase_termination.Msol
module Msol_eval = Chase_termination.Msol_eval
module Dot = Chase_termination.Dot
module Caterpillar = Chase_termination.Caterpillar
module Caterpillar_word = Chase_termination.Caterpillar_word
module Caterpillar_extract = Chase_termination.Caterpillar_extract
module Finitary = Chase_termination.Finitary
module Sticky_automaton = Chase_termination.Sticky_automaton
module Sticky_decider = Chase_termination.Sticky_decider
module Guarded_decider = Chase_termination.Guarded_decider
module Linear_decider = Chase_termination.Linear_decider
module Oblivious_decider = Chase_termination.Oblivious_decider
module Mfa = Chase_termination.Mfa
module Decider = Chase_termination.Decider

(* queries *)
module Conjunctive_query = Chase_query.Conjunctive_query
module Certain_answers = Chase_query.Certain_answers
module Containment = Chase_query.Containment

(* workloads *)
module Scenarios = Chase_workload.Scenarios
module Tgd_gen = Chase_workload.Tgd_gen
module Db_gen = Chase_workload.Db_gen
module St_mapping = Chase_workload.St_mapping
