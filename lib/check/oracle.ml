(* The differential oracle (see oracle.mli for the invariant catalogue).

   Structure: each section is wrapped in [guarded], so an engine that
   raises turns into an [engine-crash] discrepancy instead of killing
   the fuzzing loop; budget-truncated runs silently skip the checks
   that would need the missing tail. *)

open Chase_core
open Chase_engine

type discrepancy = { invariant : string; detail : string }

type budgets = {
  restricted_steps : int;
  oblivious_steps : int;
  ochase_nodes : int;
  search_depth : int;
  search_states : int;
}

let default_budgets =
  {
    restricted_steps = 300;
    oblivious_steps = 600;
    ochase_nodes = 400;
    search_depth = 48;
    search_states = 2_000;
  }

let pp_discrepancy ppf d = Format.fprintf ppf "[%s] %s" d.invariant d.detail

let fail invariant fmt = Format.kasprintf (fun detail -> [ { invariant; detail } ]) fmt

(* Run [f]; an exception becomes an [engine-crash] discrepancy tagged
   with the section that raised. *)
let guarded section f =
  match f () with
  | ds -> ds
  | exception e ->
      [
        {
          invariant = "engine-crash";
          detail = Printf.sprintf "%s raised %s" section (Printexc.to_string e);
        };
      ]

let strategies = [ Restricted.Fifo; Restricted.Lifo; Restricted.Random 7 ]

let status_name = function
  | Derivation.Terminated -> "terminated"
  | Derivation.Out_of_budget -> "out-of-budget"

(* Bit-identical derivations: status, step triggers, produced atoms,
   final instance. *)
let compare_derivations ~invariant ~what d1 d2 =
  if Derivation.status d1 <> Derivation.status d2 then
    fail invariant "%s: status %s vs %s" what
      (status_name (Derivation.status d1))
      (status_name (Derivation.status d2))
  else if Derivation.length d1 <> Derivation.length d2 then
    fail invariant "%s: %d vs %d steps" what (Derivation.length d1) (Derivation.length d2)
  else
    let diverging =
      List.find_opt
        (fun (s1, s2) ->
          not
            (Trigger.equal s1.Derivation.trigger s2.Derivation.trigger
            && List.equal Atom.equal s1.Derivation.produced s2.Derivation.produced))
        (List.combine (Derivation.steps d1) (Derivation.steps d2))
    in
    match diverging with
    | Some (s1, s2) ->
        fail invariant "%s: step %d applies %s vs %s" what s1.Derivation.index
          (Trigger.to_string s1.Derivation.trigger)
          (Trigger.to_string s2.Derivation.trigger)
    | None ->
        if not (Instance.equal (Derivation.final d1) (Derivation.final d2)) then
          fail invariant "%s: equal steps but different final instances" what
        else []

(* Fact 3.5: the applied trigger must be active via the ≺s
   characterization on the instance it fired on. *)
let check_stop_relation ~what tgds d =
  if not (List.for_all Tgd.is_single_head tgds) then []
  else
    let steps = Derivation.steps d in
    let checked = ref 0 in
    List.concat_map
      (fun (k, step) ->
        if !checked >= 100 then []
        else begin
          incr checked;
          let before = Derivation.instance_at d k in
          if Stop.is_active_via_stop before step.Derivation.trigger then []
          else
            fail "stop-relation" "%s: step %d trigger %s is ≺s-stopped yet was applied" what
              step.Derivation.index
              (Trigger.to_string step.Derivation.trigger)
        end)
      (List.mapi (fun k s -> (k, s)) steps)

let check_restricted ~pool ~budgets ~backends tgds db =
  let max_steps = budgets.restricted_steps in
  List.concat_map
    (fun strategy ->
      let sname = Restricted.strategy_name strategy in
      guarded (Printf.sprintf "restricted(%s)" sname) @@ fun () ->
      let run backend =
        Restricted.run ~backend ~strategy ~max_steps ~naming:`Canonical tgds db
      in
      let d_naive = run `Naive in
      let store_runs =
        List.map (fun b -> ((b :> Restricted.backend), run (b :> Restricted.backend))) backends
      in
      let agree =
        List.concat_map
          (fun (backend, d) ->
            compare_derivations ~invariant:"backend-agreement"
              ~what:
                (Printf.sprintf "restricted/%s naive-vs-%s" sname
                   (Restricted.backend_name backend))
              d_naive d)
          store_runs
      in
      let jobs =
        if not (Chase_exec.Pool.is_parallel pool) then []
        else
          List.concat_map
            (fun (backend, d_seq) ->
              let d_par =
                Restricted.run ~backend ~strategy ~max_steps ~naming:`Canonical ~pool tgds db
              in
              compare_derivations ~invariant:"jobs-agreement"
                ~what:
                  (Printf.sprintf "restricted/%s/%s jobs=1-vs-jobs=%d" sname
                     (Restricted.backend_name backend)
                     (Chase_exec.Pool.jobs pool))
                d_seq d_par)
            store_runs
      in
      let valid =
        List.concat_map
          (fun (backend, d) ->
            if Derivation.validate tgds d then []
            else
              fail "derivation-valid" "restricted/%s %s derivation fails validation" sname
                (Restricted.backend_name backend))
          ((`Naive, d_naive) :: store_runs)
      in
      let model =
        if Derivation.status d_naive <> Derivation.Terminated then []
        else if Model_check.is_model ~database:db ~tgds (Derivation.final d_naive) then []
        else fail "model" "restricted/%s terminated on a non-model" sname
      in
      let stop = check_stop_relation ~what:(Printf.sprintf "restricted/%s" sname) tgds d_naive in
      agree @ jobs @ valid @ model @ stop)
    strategies

let check_oblivious ~budgets ~backends tgds db =
  let max_steps = budgets.oblivious_steps in
  List.concat_map
    (fun (variant, vname) ->
      guarded (Printf.sprintf "oblivious(%s)" vname) @@ fun () ->
      let r1 = Oblivious.run ~backend:`Naive ~variant ~max_steps tgds db in
      List.concat_map
        (fun b ->
          let other = Restricted.backend_name (b :> Restricted.backend) in
          let r2 = Oblivious.run ~backend:(b :> Oblivious.backend) ~variant ~max_steps tgds db in
          if
            not
              (Instance.equal r1.Oblivious.instance r2.Oblivious.instance
              && r1.Oblivious.applications = r2.Oblivious.applications
              && r1.Oblivious.saturated = r2.Oblivious.saturated)
          then
            fail "backend-agreement" "%s: naive (%d apps, saturated %b) vs %s (%d apps, %b)"
              vname r1.Oblivious.applications r1.Oblivious.saturated other
              r2.Oblivious.applications r2.Oblivious.saturated
          else [])
        backends)
    [ (Oblivious.Oblivious, "oblivious"); (Oblivious.Semi_oblivious, "semi-oblivious") ]

(* When both chases complete, restricted and oblivious results are both
   universal models of (D, T), hence hom-equivalent. *)
let check_universality ~budgets tgds db =
  guarded "universality" @@ fun () ->
  let obl = Oblivious.run ~variant:Oblivious.Oblivious ~max_steps:budgets.oblivious_steps tgds db in
  if not obl.Oblivious.saturated then []
  else
    let d =
      Restricted.run ~strategy:Restricted.Fifo ~max_steps:budgets.restricted_steps
        ~naming:`Canonical tgds db
    in
    if Derivation.status d <> Derivation.Terminated then []
    else
      let final = Derivation.final d in
      let into =
        if Model_check.maps_into obl.Oblivious.instance ~into:final then []
        else fail "oblivious-universal" "oblivious result does not map into the restricted model"
      in
      let back =
        if Model_check.maps_into final ~into:obl.Oblivious.instance then []
        else fail "oblivious-universal" "restricted model does not map into the oblivious result"
      in
      into @ back

(* Def 3.3 vs §3.1: a complete ochase's atom *set* is the saturated
   oblivious chase (canonical nulls make this literal set equality). *)
let check_ochase ~budgets tgds db =
  if not (List.for_all Tgd.is_single_head tgds) then []
  else
    guarded "ochase" @@ fun () ->
    let g = Real_oblivious.build ~max_nodes:budgets.ochase_nodes ~max_depth:64 tgds db in
    if not (Real_oblivious.complete g) then []
    else
      let obl =
        Oblivious.run ~variant:Oblivious.Oblivious ~max_steps:budgets.oblivious_steps tgds db
      in
      if not obl.Oblivious.saturated then []
      else if Instance.equal (Real_oblivious.atom_set g) obl.Oblivious.instance then []
      else
        fail "ochase-atoms" "ochase atom set (%d atoms) ≠ oblivious chase (%d atoms)"
          (Instance.cardinal (Real_oblivious.atom_set g))
          (Instance.cardinal obl.Oblivious.instance)

(* Incremental maintenance (lib/engine/incremental.ml): replay the
   database as a deterministic assert/chase interleaving — k batches,
   a chase after each — and require the warm session's final instance
   to be a model of the accumulated facts, hom-equivalent to the
   from-scratch chase.  Skipped (not failed) when either side runs out
   of budget.  The split is by atom index modulo k over the instance's
   canonical atom order, so the interleaving is reproducible from the
   case alone. *)
let check_incremental ~pool ~budgets ~backends tgds db =
  guarded "incremental" @@ fun () ->
  let max_steps = budgets.restricted_steps in
  let scratch =
    Restricted.run ~strategy:Restricted.Fifo ~max_steps ~naming:`Canonical ~pool tgds db
  in
  if Derivation.status scratch <> Derivation.Terminated then []
  else
    let atoms = Instance.to_list db in
    List.concat_map
      (fun (k, backend) ->
        let bname = Restricted.backend_name (backend :> Restricted.backend) in
        let batch i = List.filteri (fun j _ -> j mod k = i) atoms in
        let s = Incremental.create ~strategy:Restricted.Fifo ~backend tgds Instance.empty in
        let exhausted = ref false in
        for i = 0 to k - 1 do
          if not !exhausted then begin
            ignore (Incremental.assert_atoms s (batch i));
            let o = Incremental.chase ~epool:pool ~max_steps s in
            if not o.Incremental.saturated then exhausted := true
          end
        done;
        if !exhausted then []
        else
          let final = Incremental.instance s in
          let model =
            if Model_check.is_model ~database:db ~tgds final then []
            else
              fail "incremental-equivalence"
                "interleaving k=%d/%s: warm session result is not a model of the accumulated \
                 facts"
                k bname
          in
          let equiv =
            if Model_check.hom_equivalent final (Derivation.final scratch) then []
            else
              fail "incremental-equivalence"
                "interleaving k=%d/%s: warm session result (%d atoms) is not hom-equivalent \
                 to the from-scratch chase (%d atoms)"
                k bname (Instance.cardinal final)
                (Instance.cardinal (Derivation.final scratch))
          in
          model @ equiv)
      (List.concat_map (fun b -> [ (2, b); (3, b) ]) backends)

let check_decider ~pool ~budgets ?(portfolio = false) tgds db =
  match Chase_termination.Decider.decide ~pool tgds with
  | exception e -> fail "decider-crash" "Decider.decide raised %s" (Printexc.to_string e)
  | report ->
      let open Chase_termination.Decider in
      let wa = report.classification.Chase_classes.Classification.weakly_acyclic in
      (* A [Terminating] answer is ∀∀: no database — in particular not
         this one — may admit divergence evidence.  The depth budget
         sits far beyond the observed terminated lengths, so a hit is a
         genuine contradiction candidate, not noise.  Applied to the
         fixed report and, in portfolio mode, to the portfolio's too. *)
      let exams mode r =
        let contradiction =
          match (wa, r.answer) with
          | true, Non_terminating ->
              fail "decider-wa" "weakly acyclic set judged Non_terminating via %s (%s)"
                (method_name r.method_used) mode
          | _ -> []
        in
        match r.answer with
        | Terminating when List.length tgds <= 4 && Instance.cardinal db <= 10 ->
            guarded "derivation-search" (fun () ->
                match
                  Chase_termination.Derivation_search.divergence_evidence
                    ~max_depth:budgets.search_depth ~max_states:budgets.search_states tgds db
                with
                | Some d ->
                    fail "decider-termination"
                      "decider (%s) says Terminating but a valid derivation exceeds depth %d \
                       (%d steps)"
                      mode budgets.search_depth (Derivation.length d)
                | None -> [])
            @ contradiction
        | _ -> contradiction
      in
      let answer_name = function
        | Terminating -> "terminating"
        | Non_terminating -> "non-terminating"
        | Unknown -> "unknown"
      in
      let portfolio_exam =
        if not portfolio then []
        else
          guarded "decider-portfolio" @@ fun () ->
          match decide_portfolio ~prune:true ~pool tgds with
          | exception e ->
              fail "decider-crash" "Decider.decide_portfolio raised %s" (Printexc.to_string e)
          | p ->
              (* The portfolio races a superset of the fixed dispatch's
                 procedures under the same budgets, so a conclusive
                 fixed answer must survive: same answer, or a conclusive
                 portfolio answer where the fixed one was Unknown. *)
              let agreement =
                match (report.answer, p.answer) with
                | Terminating, Non_terminating | Non_terminating, Terminating ->
                    fail "decider-portfolio" "fixed %s (%s) vs portfolio %s (%s) disagree"
                      (answer_name report.answer)
                      (method_name report.method_used)
                      (answer_name p.answer) (method_name p.method_used)
                | (Terminating | Non_terminating), Unknown ->
                    fail "decider-portfolio"
                      "fixed dispatch conclusive (%s via %s) but the portfolio is inconclusive"
                      (answer_name report.answer)
                      (method_name report.method_used)
                | _ -> []
              in
              agreement @ exams "portfolio" p
      in
      (* Subsumption pruning must never change the sticky verdict
         (DESIGN.md §10); compare the conclusive categories directly on
         sets the sticky procedure covers. *)
      let prune_exam =
        if not portfolio then []
        else
          let c = report.classification in
          if
            Tgd.constant_free_set tgds
            && c.Chase_classes.Classification.single_head
            && c.Chase_classes.Classification.sticky
          then
            guarded "sticky-prune" @@ fun () ->
            let verdict_name = function
              | Chase_termination.Sticky_decider.All_terminating -> "all-terminating"
              | Chase_termination.Sticky_decider.Non_terminating _ -> "non-terminating"
              | Chase_termination.Sticky_decider.Inconclusive _ -> "inconclusive"
            in
            let exact = Chase_termination.Sticky_decider.decide ~pool tgds in
            let pruned = Chase_termination.Sticky_decider.decide ~pool ~prune:true tgds in
            if String.equal (verdict_name exact) (verdict_name pruned) then []
            else
              fail "sticky-prune" "subsumption pruning changed the sticky verdict: %s vs %s"
                (verdict_name exact) (verdict_name pruned)
          else []
      in
      exams "fixed" report @ portfolio_exam @ prune_exam

let all_store_backends : Store.backend list = [ `Compiled; `Columnar ]

let check ?(pool = Chase_exec.Pool.inline) ?(budgets = default_budgets)
    ?(backends = all_store_backends) ?(portfolio = false) tgds db =
  check_restricted ~pool ~budgets ~backends tgds db
  @ check_oblivious ~budgets ~backends tgds db
  @ check_universality ~budgets tgds db
  @ check_ochase ~budgets tgds db
  @ check_incremental ~pool ~budgets ~backends tgds db
  @ check_decider ~pool ~budgets ~portfolio tgds db
