(** Fuzzing profiles: which TGD class the generator aims for, and
    whether constants are injected into rules and facts.  A profile is a
    {e generation target}, not a promise — the oracle never assumes the
    produced set actually lies in the class (it re-classifies). *)

type klass = Linear | Guarded | Sticky | Weakly_acyclic | Unrestricted

type t = { klass : klass; constants : bool }

(** Every class, with and without constants — the default fuzzing mix. *)
val all : t list

(** Stable name, e.g. ["guarded"] or ["guarded+const"]; the value used
    by [chasectl fuzz --profile] and in reports. *)
val name : t -> string

(** Inverse of {!name}. *)
val of_name : string -> (t, string) result

(** The names of {!all}, for CLI help. *)
val names : string list
