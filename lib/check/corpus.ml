(* Corpus files: surface-syntax programs with '% expect:' directives,
   written by the fuzzer on a shrunk discrepancy and replayed as a
   regression suite (test/suite_check.ml). *)

open Chase_core

type expectation = No_discrepancy | Parse_error

type entry = { path : string; expectation : expectation; source : string }

let directive_of_line line =
  let line = String.trim line in
  let prefix = "% expect:" in
  if String.length line >= String.length prefix && String.starts_with ~prefix line then
    Some (String.trim (String.sub line (String.length prefix) (String.length line - String.length prefix)))
  else None

let expectation_of_source path source =
  let lines = String.split_on_char '\n' source in
  match List.find_map directive_of_line lines with
  | None | Some "no-discrepancy" -> No_discrepancy
  | Some "parse-error" -> Parse_error
  | Some other -> invalid_arg (Printf.sprintf "%s: unknown directive '%% expect: %s'" path other)

let source_of_case ?(comments = []) tgds db =
  let program =
    List.fold_left
      (fun p t -> Chase_parser.Program.add_tgd t p)
      Chase_parser.Program.empty tgds
  in
  let program = Instance.fold Chase_parser.Program.add_fact db program in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "% expect: no-discrepancy\n";
  List.iter (fun c -> Buffer.add_string buf ("% " ^ c ^ "\n")) comments;
  Buffer.add_string buf (Chase_parser.Printer.print_program program);
  Buffer.contents buf

let write_case ~dir ~name ?comments tgds db =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".chase") in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (source_of_case ?comments tgds db));
  path

let load path =
  let source = In_channel.with_open_bin path In_channel.input_all in
  { path; expectation = expectation_of_source path source; source }

let load_dir dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".chase")
  |> List.sort String.compare
  |> List.map (fun f -> load (Filename.concat dir f))

let replay ?pool entry =
  let name = Filename.basename entry.path in
  match entry.expectation with
  | Parse_error -> (
      match Chase_parser.Parser.parse_program entry.source with
      | _ -> Error (Printf.sprintf "%s: expected a parse error, but the program parsed" name)
      | exception Chase_parser.Parser.Error _ | exception Chase_parser.Lexer.Error _ -> Ok ()
      | exception e ->
          Error
            (Printf.sprintf "%s: expected a positioned parse error, got %s" name
               (Printexc.to_string e)))
  | No_discrepancy -> (
      match Chase_parser.Parser.parse_program entry.source with
      | exception e ->
          Error (Printf.sprintf "%s: failed to parse: %s" name (Printexc.to_string e))
      | program -> (
          let tgds = Chase_parser.Program.tgds program in
          let db = Chase_parser.Program.database program in
          match Oracle.check ?pool tgds db with
          | [] -> Ok ()
          | ds ->
              Error
                (Printf.sprintf "%s: %s" name
                   (String.concat "; "
                      (List.map
                         (fun d ->
                           Format.asprintf "%a" Oracle.pp_discrepancy d)
                         ds)))
          | exception e ->
              Error (Printf.sprintf "%s: oracle raised %s" name (Printexc.to_string e))))
