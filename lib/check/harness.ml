(* The fuzzing loop: deterministic in (seed, cases, profiles); case i
   draws profile i mod |profiles| with a per-case seed mixed from the
   master seed, so two runs with the same flags explore the same cases
   regardless of jobs (the pool only parallelizes inside the engines,
   which are jobs-invariant — that invariance is itself one of the
   oracle's checks). *)

open Chase_core

type config = {
  cases : int;
  seed : int;
  profiles : Profile.t list;
  jobs : int;
  shrink : bool;
  corpus_dir : string option;
  backends : Chase_engine.Store.backend list;
  portfolio : bool;  (* add the portfolio/pruning decider cross-exams *)
}

let default_config =
  {
    cases = 200;
    seed = 42;
    profiles = Profile.all;
    jobs = 1;
    shrink = true;
    corpus_dir = None;
    backends = Oracle.all_store_backends;
    portfolio = false;
  }

type failure = {
  case_seed : int;
  profile : Profile.t;
  discrepancies : Oracle.discrepancy list;
  tgds : Tgd.t list;
  database : Instance.t;
  repro : string;
  written : string option;
}

type report = { config : config; ran : int; failures : failure list }

(* A fixed odd multiplier spreads case indices across seeds; the exact
   mixing is irrelevant, only determinism and spread matter. *)
let case_seed master i = (master * 1_000_003) + (i * 7919)

let run_case ~pool ~config ~index profile =
  let seed = case_seed config.seed index in
  Obs.incr "check.cases";
  match Gen.generate ~profile ~seed with
  | exception e ->
      Some
        {
          case_seed = seed;
          profile;
          discrepancies =
            [
              {
                Oracle.invariant = "generator-crash";
                detail = Printexc.to_string e;
              };
            ];
          tgds = [];
          database = Instance.empty;
          repro = "";
          written = None;
        }
  | case -> (
      match Oracle.check ~pool ~backends:config.backends ~portfolio:config.portfolio case.Gen.tgds case.Gen.database with
      | [] -> None
      | discrepancies ->
          Obs.count "check.discrepancies" (List.length discrepancies);
          let invariants =
            List.sort_uniq String.compare
              (List.map (fun d -> d.Oracle.invariant) discrepancies)
          in
          let tgds, database =
            if not config.shrink then (case.Gen.tgds, case.Gen.database)
            else
              Shrink.minimize
                ~fails:(fun ts db ->
                  match Oracle.check ~pool ~backends:config.backends ~portfolio:config.portfolio ts db with
                  | ds -> List.exists (fun d -> List.mem d.Oracle.invariant invariants) ds
                  | exception _ -> false)
                case.Gen.tgds case.Gen.database
          in
          let comments =
            [
              Printf.sprintf "profile: %s  seed: %d" (Profile.name profile) seed;
              Printf.sprintf "invariants: %s" (String.concat ", " invariants);
            ]
          in
          let repro = Corpus.source_of_case ~comments tgds database in
          let written =
            Option.map
              (fun dir ->
                Corpus.write_case ~dir
                  ~name:(Printf.sprintf "fuzz_%s_%d" (Profile.name profile) seed)
                  ~comments tgds database)
              config.corpus_dir
          in
          Some { case_seed = seed; profile; discrepancies; tgds; database; repro; written })

let run_with_pool pool config =
  let profiles = if config.profiles = [] then Profile.all else config.profiles in
  let n = List.length profiles in
  let failures = ref [] in
  for i = 0 to config.cases - 1 do
    let profile = List.nth profiles (i mod n) in
    match run_case ~pool ~config ~index:i profile with
    | None -> ()
    | Some f -> failures := f :: !failures
  done;
  { config; ran = config.cases; failures = List.rev !failures }

let run ?pool config =
  match pool with
  | Some pool -> run_with_pool pool config
  | None -> Chase_exec.Pool.with_pool ~jobs:config.jobs (fun pool -> run_with_pool pool config)

let summary r =
  if r.failures = [] then
    Printf.sprintf "fuzz: %d cases over %d profiles, 0 discrepancies" r.ran
      (List.length r.config.profiles)
  else
    Printf.sprintf "fuzz: %d cases over %d profiles, %d FAILING (%s)" r.ran
      (List.length r.config.profiles)
      (List.length r.failures)
      (String.concat ", "
         (List.sort_uniq String.compare
            (List.concat_map
               (fun f -> List.map (fun d -> d.Oracle.invariant) f.discrepancies)
               r.failures)))

let json r =
  let esc = Obs.Jsonl.escape in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "{\"cases\": %d, \"seed\": %d, \"jobs\": %d, \"profiles\": [%s], " r.ran
       r.config.seed r.config.jobs
       (String.concat ", "
          (List.map (fun p -> "\"" ^ esc (Profile.name p) ^ "\"") r.config.profiles)));
  Buffer.add_string buf
    (Printf.sprintf "\"backends\": [%s], "
       (String.concat ", "
          (List.map
             (fun b ->
               "\""
               ^ esc (Chase_engine.Restricted.backend_name (b :> Chase_engine.Restricted.backend))
               ^ "\"")
             r.config.backends)));
  Buffer.add_string buf
    (Printf.sprintf "\"portfolio\": %b, " r.config.portfolio);
  Buffer.add_string buf
    (Printf.sprintf "\"discrepancies\": %d, \"failures\": ["
       (List.fold_left (fun acc f -> acc + List.length f.discrepancies) 0 r.failures));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"profile\": \"%s\", \"seed\": %d, \"invariants\": [%s], \"repro\": \"%s\"%s}"
           (esc (Profile.name f.profile))
           f.case_seed
           (String.concat ", "
              (List.sort_uniq String.compare
                 (List.map (fun d -> "\"" ^ esc d.Oracle.invariant ^ "\"") f.discrepancies)))
           (esc f.repro)
           (match f.written with
           | None -> ""
           | Some p -> Printf.sprintf ", \"written\": \"%s\"" (esc p))))
    r.failures;
  Buffer.add_string buf "]}";
  Buffer.contents buf
