(** Greedy delta-debugging of a failing case: repeatedly drop one TGD
    or one database fact, keeping the removal whenever [fails] still
    holds, until a pass over every component removes nothing.  The
    result is 1-minimal — removing any single remaining TGD or fact
    makes the failure disappear.

    Every trial bumps the [check.shrink_steps] counter. *)

open Chase_core

val minimize :
  fails:(Tgd.t list -> Instance.t -> bool) ->
  Tgd.t list ->
  Instance.t ->
  Tgd.t list * Instance.t
