(* Fuzzing profiles: a target TGD class × a constants switch. *)

type klass = Linear | Guarded | Sticky | Weakly_acyclic | Unrestricted

type t = { klass : klass; constants : bool }

let klasses = [ Linear; Guarded; Sticky; Weakly_acyclic; Unrestricted ]

let all =
  List.concat_map
    (fun klass -> [ { klass; constants = false }; { klass; constants = true } ])
    klasses

let klass_name = function
  | Linear -> "linear"
  | Guarded -> "guarded"
  | Sticky -> "sticky"
  | Weakly_acyclic -> "wa"
  | Unrestricted -> "any"

let name t = klass_name t.klass ^ if t.constants then "+const" else ""

let of_name s =
  let klass_of = function
    | "linear" -> Some Linear
    | "guarded" -> Some Guarded
    | "sticky" -> Some Sticky
    | "wa" -> Some Weakly_acyclic
    | "any" -> Some Unrestricted
    | _ -> None
  in
  let base, constants =
    match String.index_opt s '+' with
    | Some i when String.sub s i (String.length s - i) = "+const" ->
        (String.sub s 0 i, true)
    | _ -> (s, false)
  in
  match klass_of base with
  | Some klass -> Ok { klass; constants }
  | None ->
      Error
        (Printf.sprintf "unknown profile %S (expected one of: %s)" s
           (String.concat ", "
              (List.map (fun k -> klass_name k ^ "[+const]") klasses)))

let names = List.map name all
