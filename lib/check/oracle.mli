(** The differential oracle: run one case through every engine
    configuration and check the metamorphic invariants that tie the
    paper's chase variants together.  A non-empty result is a bug in
    some engine, decider, or in the invariant itself — never "the
    random program was weird": every check is budget-aware and only
    fires when the involved runs actually completed within budget.

    Invariants checked (names appear in {!discrepancy.invariant}):

    - [backend-agreement] — the naive, compiled and columnar restricted
      runs are bit-identical (status, triggers, produced atoms, final
      instance) for every strategy; same triple for the oblivious
      variants.  The naive run is the reference; each store backend in
      [backends] (default: compiled and columnar) is compared to it.
    - [jobs-agreement] — a parallel pool run equals the sequential one,
      on both the compiled and the columnar backend.
    - [derivation-valid] — every step applied an active trigger to the
      previous instance ([Derivation.validate]).
    - [model] — a terminated restricted run's final instance is a model
      of the TGDs extending the database.
    - [stop-relation] — Fact 3.5: each applied trigger is active via
      the ≺s characterization on the instance it was applied to
      (single-head sets).
    - [oblivious-universal] — when both complete, the oblivious result
      and a terminated restricted result are hom-equivalent (both are
      universal models).
    - [ochase-atoms] — a complete ochase's atom set equals the
      saturated (set-based) oblivious chase (Def 3.3 vs §3.1).
    - [incremental-equivalence] — the assert/chase interleaving
      profile: feeding the database to a resumable session
      ([Incremental]) in k batches with a chase after each must land
      on a model of the accumulated facts that is hom-equivalent to
      the from-scratch chase (both are universal models of the same
      database) — replayed over both store backends.
    - [decider-crash] — [Decider.decide] (and, in portfolio mode,
      [Decider.decide_portfolio]) must not raise.
    - [decider-wa] — weak acyclicity refutes a [Non_terminating] answer
      (fixed and portfolio reports alike).
    - [decider-termination] — a [Terminating] answer contradicted by
      divergence evidence from the exhaustive derivation search (only
      attempted on small cases, with a depth budget well beyond the
      observed derivation lengths; fixed and portfolio reports alike).
    - [decider-portfolio] — ([portfolio] mode) the raced portfolio must
      agree with the fixed dispatch: never the opposite conclusive
      answer, and never inconclusive where the fixed dispatch — whose
      procedures the portfolio supersets under the same budgets — was
      conclusive.
    - [sticky-prune] — ([portfolio] mode) subsumption pruning must not
      change the sticky verdict (DESIGN.md §10).
    - [engine-crash] — any engine raising an exception. *)

open Chase_core

type discrepancy = { invariant : string; detail : string }

type budgets = {
  restricted_steps : int;
  oblivious_steps : int;
  ochase_nodes : int;
  search_depth : int;
  search_states : int;
}

val default_budgets : budgets

val pp_discrepancy : Format.formatter -> discrepancy -> unit

(** Every store backend, for callers threading a checked set around. *)
val all_store_backends : Chase_engine.Store.backend list

(** Run the full matrix.  [pool] (default: inline) additionally checks
    parallel-vs-sequential agreement when it is an actual pool.
    [backends] (default: {!all_store_backends}) selects the store
    backends compared against the naive reference — restricted,
    oblivious, jobs-agreement and incremental sections all honour it.
    [portfolio] (default: [false]) adds the portfolio-vs-fixed decider
    cross-exam and the subsumption-pruning cross-check. *)
val check :
  ?pool:Chase_exec.Pool.t ->
  ?budgets:budgets ->
  ?backends:Chase_engine.Store.backend list ->
  ?portfolio:bool ->
  Tgd.t list ->
  Instance.t ->
  discrepancy list
