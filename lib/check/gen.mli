(** Seeded case generation for the differential oracle: a TGD set drawn
    from the profile's class generator ([Chase_workload.Tgd_gen], plus a
    structurally unconstrained generator for {!Profile.Unrestricted})
    and a random database over its schema.  Deterministic in
    [(profile, seed)]. *)

open Chase_core

type case = {
  profile : Profile.t;
  seed : int;
  tgds : Tgd.t list;
  database : Instance.t;
}

val generate : profile:Profile.t -> seed:int -> case
