(* Greedy one-at-a-time delta debugging (ddmin's terminal granularity,
   which is all these small cases need).  [fails] is expected to re-run
   the oracle; trials are counted on [check.shrink_steps]. *)

open Chase_core

(* Drop list elements one at a time, keeping each removal that still
   fails.  Returns the shrunk list and whether anything was removed. *)
let shrink_list ~fails xs =
  let changed = ref false in
  let rec go kept = function
    | [] -> List.rev kept
    | x :: rest ->
        let candidate = List.rev_append kept rest in
        Obs.incr "check.shrink_steps";
        if fails candidate then begin
          changed := true;
          go kept rest
        end
        else go (x :: kept) rest
  in
  let xs' = go [] xs in
  (xs', !changed)

let minimize ~fails tgds db =
  (* Interleave TGD and fact passes to a fixpoint: removing a TGD can
     unlock fact removals and vice versa. *)
  let rec fix tgds facts =
    let tgds', tc = shrink_list ~fails:(fun ts -> fails ts (Instance.of_list facts)) tgds in
    let facts', fc =
      shrink_list ~fails:(fun fs -> fails tgds' (Instance.of_list fs)) facts
    in
    if tc || fc then fix tgds' facts' else (tgds', facts')
  in
  let tgds', facts' = fix tgds (Instance.to_list db) in
  (tgds', Instance.of_list facts')
