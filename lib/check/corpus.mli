(** The regression corpus: minimal repros serialized in the surface
    syntax, replayed by the test suite.  A corpus file is an ordinary
    program file whose leading comments may carry directives:

    {v
    % expect: no-discrepancy     (default) parse, run the oracle, expect []
    % expect: parse-error        parsing must raise a positioned error
    v}

    Everything the fuzzer writes uses [no-discrepancy]; [parse-error]
    entries pin lexer/parser bugs whose repro is unparseable by design. *)

open Chase_core

type expectation = No_discrepancy | Parse_error

type entry = { path : string; expectation : expectation; source : string }

(** Serialize a case (via [Printer]) with a directive and provenance
    comments; the output re-parses to the same program. *)
val source_of_case : ?comments:string list -> Tgd.t list -> Instance.t -> string

(** Write a case under [dir] (created if missing); returns the path. *)
val write_case :
  dir:string -> name:string -> ?comments:string list -> Tgd.t list -> Instance.t -> string

val load : string -> entry

(** All [.chase] entries under a directory, sorted by name. *)
val load_dir : string -> entry list

(** Replay one entry against its expectation; [Error] describes the
    regression.  Oracle crashes (including assertion failures) are
    caught and reported, never propagated. *)
val replay : ?pool:Chase_exec.Pool.t -> entry -> (unit, string) result
