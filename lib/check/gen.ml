(* Case generation.  Profiles with [constants = true] substitute a
   random body variable of some rules by a constant — everywhere in the
   rule, so a full-variable guard still guards the remaining variables
   and single-body-atom rules stay linear; the database always draws
   from a small constant domain, so constant-bearing facts join against
   the rules' fixed positions. *)

open Chase_core

type case = {
  profile : Profile.t;
  seed : int;
  tgds : Tgd.t list;
  database : Instance.t;
}

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

(* Structurally unconstrained single-head TGDs: 1-3 body atoms over a
   shared variable pool (joins arise from reuse), heads mixing frontier
   variables with fresh existentials.  Single-head keeps the whole
   engine matrix applicable (ochase and the stop relation are defined
   for single-head sets). *)
let unrestricted_set (cfg : Chase_workload.Tgd_gen.config) =
  let rng = Random.State.make [| cfg.seed; 0x5eed |] in
  let schema = Chase_workload.Tgd_gen.schema_of cfg in
  let vars = List.init 4 (fun i -> Term.Var (Printf.sprintf "X%d" i)) in
  List.init cfg.tgds (fun idx ->
      let n_body = 1 + Random.State.int rng (max 1 cfg.max_body) in
      let body =
        List.init n_body (fun _ ->
            let p, ar = pick rng schema in
            Atom.make p (List.init ar (fun _ -> pick rng vars)))
      in
      let body_vars =
        Term.Set.elements
          (List.fold_left
             (fun acc a -> Term.Set.union acc (Atom.var_set a))
             Term.Set.empty body)
      in
      let hpred, har = pick rng schema in
      let head_args =
        List.init har (fun i ->
            if Random.State.bool rng then pick rng body_vars
            else Term.Var (Printf.sprintf "Z%d" i))
      in
      Tgd.make
        ~name:(Printf.sprintf "u%d" idx)
        ~body
        ~head:[ Atom.make hpred head_args ]
        ())

(* Substitute variable [v] by constant [c] throughout the rule.  Only
   universal (body) variables are substituted, so existentials keep
   producing nulls. *)
let ground_var v c tgd =
  let map_atom = Atom.map (fun t -> if Term.equal t v then c else t) in
  Tgd.make ~name:(Tgd.name tgd)
    ~body:(List.map map_atom (Tgd.body tgd))
    ~head:(List.map map_atom (Tgd.head tgd))
    ()

let inject_constants rng tgds =
  List.map
    (fun tgd ->
      match Term.Set.elements (Tgd.body_vars tgd) with
      | [] -> tgd
      | vars when Random.State.int rng 2 = 0 ->
          let v = pick rng vars in
          let c = Term.Const (Printf.sprintf "c%d" (Random.State.int rng 3)) in
          ground_var v c tgd
      | _ -> tgd)
    tgds

let generate ~profile ~seed =
  let rng = Random.State.make [| seed; 0xca5e |] in
  let cfg : Chase_workload.Tgd_gen.config =
    {
      predicates = 3 + Random.State.int rng 2;
      max_arity = 2 + Random.State.int rng 2;
      tgds = 2 + Random.State.int rng 3;
      max_body = 2;
      seed;
    }
  in
  let tgds =
    match profile.Profile.klass with
    | Profile.Linear -> Chase_workload.Tgd_gen.linear_set cfg
    | Profile.Guarded -> Chase_workload.Tgd_gen.guarded_set cfg
    | Profile.Sticky -> Chase_workload.Tgd_gen.sticky_set cfg
    | Profile.Weakly_acyclic -> Chase_workload.Tgd_gen.weakly_acyclic_set cfg
    | Profile.Unrestricted -> unrestricted_set cfg
  in
  let tgds = if profile.Profile.constants then inject_constants rng tgds else tgds in
  let schema =
    match tgds with
    | [] -> Schema.of_atoms [ Atom.make "p0" [ Term.Const "c0" ] ]
    | _ -> Schema.of_tgds tgds
  in
  let database =
    Chase_workload.Db_gen.random ~schema
      ~atoms:(3 + Random.State.int rng 5)
      ~domain:(if profile.Profile.constants then 3 else 4)
      ~seed:(seed + 1)
  in
  { profile; seed; tgds; database }
