(** The fuzzing loop behind [chasectl fuzz] and [test/suite_check.ml]:
    generate cases round-robin over the profiles, run the {!Oracle},
    {!Shrink} any discrepancy to a 1-minimal repro, and report.

    Observability: one [check.cases] bump per case, [check.discrepancies]
    per discrepancy found (before shrinking), [check.shrink_steps] per
    shrink trial, all on the caller's sink. *)

open Chase_core

type config = {
  cases : int;
  seed : int;
  profiles : Profile.t list;
  jobs : int;  (** pool size when [run] creates its own pool *)
  shrink : bool;
  corpus_dir : string option;  (** write shrunk repros here *)
  backends : Chase_engine.Store.backend list;
      (** store backends the oracle compares against the naive
          reference (default: all — compiled and columnar) *)
  portfolio : bool;
      (** add the portfolio-vs-fixed decider cross-exam and the
          subsumption-pruning cross-check (default: [false]) *)
}

val default_config : config

type failure = {
  case_seed : int;
  profile : Profile.t;
  discrepancies : Oracle.discrepancy list;  (** on the original case *)
  tgds : Tgd.t list;  (** shrunk (or original when shrinking is off) *)
  database : Instance.t;
  repro : string;  (** corpus-format source of the shrunk case *)
  written : string option;  (** corpus path, when [corpus_dir] is set *)
}

type report = {
  config : config;
  ran : int;
  failures : failure list;
}

(** Run the loop.  [pool] overrides pool creation (the CLI passes the
    pool living inside its observability scope); otherwise a pool of
    [config.jobs] domains is created for the duration. *)
val run : ?pool:Chase_exec.Pool.t -> config -> report

(** One human line per case outcome is printed by the CLI, not here;
    [summary] is the final one-paragraph verdict. *)
val summary : report -> string

(** The machine-readable report ([chasectl fuzz --json]). *)
val json : report -> string
