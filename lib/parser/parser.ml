(* Recursive-descent parser for the Datalog± surface syntax.

   program  ::= item* EOF
   item     ::= [name ':'] body '->' head '.'        (TGD)
              | atom '.'                             (fact)
   head     ::= ['exists' var (',' var)* '.'] atoms
   atoms    ::= atom (',' atom)*
   atom     ::= pred '(' term (',' term)* ')'
   term     ::= VARIABLE | constant
   constant ::= lowercase identifier | integer | quoted string

   Head variables not bound in the body are implicitly existential; an
   explicit 'exists' list is also accepted (and checked). *)

open Chase_core

exception Error of { line : int; col : int; msg : string }

let error (t : Token.located) fmt =
  Format.kasprintf (fun msg -> raise (Error { line = t.line; col = t.col; msg })) fmt

type state = { mutable toks : Token.located list }

(* [Lexer.tokenize] always ends the stream with an [Eof] token and
   [advance] keeps that final token, so a well-formed stream is never
   exhausted; an empty list (a hand-built state, or a stream not ending
   in [Eof]) raises a positioned error instead of tripping an assert. *)
let peek st =
  match st.toks with
  | [] -> raise (Error { line = 1; col = 1; msg = "unexpected end of input" })
  | t :: _ -> t

let peek2 st = match st.toks with _ :: t :: _ -> Some t | _ -> None

let advance st =
  match st.toks with
  | [] | [ _ ] -> ()  (* the final token (Eof) is sticky *)
  | _ :: rest -> st.toks <- rest

let expect st token =
  let t = peek st in
  if t.token = token then advance st
  else error t "expected %s, found %s" (Token.to_string token) (Token.to_string t.token)

let parse_term st =
  let t = peek st in
  match t.token with
  | Token.Uident v ->
      advance st;
      Term.Var v
  | Token.Ident c ->
      advance st;
      Term.Const c
  | Token.Quoted c ->
      advance st;
      Term.Const c
  | Token.Number c ->
      advance st;
      Term.Const c
  | tok -> error t "expected a term, found %s" (Token.to_string tok)

let parse_atom st =
  let t = peek st in
  match t.token with
  | Token.Ident pred ->
      advance st;
      expect st Token.Lparen;
      let rec terms acc =
        let tm = parse_term st in
        let t = peek st in
        match t.token with
        | Token.Comma ->
            advance st;
            terms (tm :: acc)
        | Token.Rparen ->
            advance st;
            List.rev (tm :: acc)
        | tok -> error t "expected ',' or ')', found %s" (Token.to_string tok)
      in
      Atom.make pred (terms [])
  | tok -> error t "expected a predicate, found %s" (Token.to_string tok)

let parse_atoms st =
  let rec go acc =
    let a = parse_atom st in
    let t = peek st in
    match t.token with
    | Token.Comma ->
        advance st;
        go (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  go []

(* ['exists' vars '.'] atoms *)
let parse_head st =
  let t = peek st in
  match t.token with
  | Token.Exists ->
      advance st;
      let rec vars acc =
        let t = peek st in
        match t.token with
        | Token.Uident v -> (
            advance st;
            let t2 = peek st in
            match t2.token with
            | Token.Comma ->
                advance st;
                vars (v :: acc)
            | Token.Dot ->
                advance st;
                List.rev (v :: acc)
            | tok -> error t2 "expected ',' or '.', found %s" (Token.to_string tok))
        | tok -> error t "expected a variable after 'exists', found %s" (Token.to_string tok)
      in
      let vs = vars [] in
      let atoms = parse_atoms st in
      (vs, atoms)
  | _ -> ([], parse_atoms st)

let check_explicit_existentials (t : Token.located) tgd declared =
  match declared with
  | [] -> ()
  | _ ->
      let actual = Tgd.existential_vars tgd in
      List.iter
        (fun v ->
          if not (Term.Set.mem (Term.Var v) actual) then
            error t "variable %s is declared existential but occurs in the body" v)
        declared;
      Term.Set.iter
        (fun x ->
          match x with
          | Term.Var v ->
              if not (List.mem v declared) then
                error t "existential variable %s missing from the 'exists' list" v
          | Term.Const _ | Term.Null _ -> ())
        actual

let parse_item st ~auto_name =
  let start = peek st in
  (* optional  name ':'  prefix *)
  let name =
    match (start.token, peek2 st) with
    | (Token.Ident n | Token.Uident n), Some { token = Token.Colon; _ } ->
        advance st;
        advance st;
        Some n
    | _ -> None
  in
  let first_atoms = parse_atoms st in
  let t = peek st in
  match t.token with
  | Token.Dot -> (
      advance st;
      match (name, first_atoms) with
      | None, [ a ] ->
          if not (Atom.is_fact a) then error start "facts must be variable-free";
          `Fact a
      | None, _ -> error t "a fact is a single atom"
      | Some _, _ -> error start "facts cannot be named")
  | Token.Arrow ->
      advance st;
      let declared, head = parse_head st in
      expect st Token.Dot;
      let name = match name with Some n -> n | None -> auto_name () in
      let tgd =
        try Tgd.make ~name ~body:first_atoms ~head ()
        with Tgd.Ill_formed msg -> error start "%s" msg
      in
      check_explicit_existentials start tgd declared;
      `Tgd tgd
  | tok -> error t "expected '.' or '->', found %s" (Token.to_string tok)

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let counter = ref 0 in
  let auto_name () =
    incr counter;
    Printf.sprintf "s%d" !counter
  in
  let rec go acc =
    let t = peek st in
    match t.token with
    | Token.Eof -> acc
    | _ -> (
        match parse_item st ~auto_name with
        | `Fact a -> go (Program.add_fact a acc)
        | `Tgd tgd -> go (Program.add_tgd tgd acc))
  in
  go Program.empty

let parse_tgds src = Program.tgds (parse_program src)

let parse_tgd src =
  match parse_tgds src with
  | [ t ] -> t
  | ts -> invalid_arg (Printf.sprintf "parse_tgd: %d TGDs in input" (List.length ts))

let parse_database src = Program.database (parse_program src)

let parse_atom_exn src =
  let st = { toks = Lexer.tokenize src } in
  let a = parse_atom st in
  (match (peek st).token with
  | Token.Eof | Token.Dot -> ()
  | tok -> error (peek st) "trailing input: %s" (Token.to_string tok));
  a

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_program (really_input_string ic (in_channel_length ic)))
