(* A hand-written lexer for the Datalog± surface syntax. *)

exception Error of { line : int; col : int; msg : string }

let error line col fmt = Format.kasprintf (fun msg -> raise (Error { line; col; msg })) fmt

type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let make src = { src; pos = 0; line = 1; col = 1 }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = c >= 'a' && c <= 'z'
let is_var_start c = (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '%' ->
      skip_line st;
      skip_trivia st
  | Some '/' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/' ->
      skip_line st;
      skip_trivia st
  | _ -> ()

and skip_line st =
  match peek st with
  | Some '\n' | None -> ()
  | Some _ ->
      advance st;
      skip_line st

let lex_word st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_ident_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  String.sub st.src start (st.pos - start)

(* Integer constants: a maximal digit run.  A digit run glued to
   identifier characters ("123foo") is a malformed token, not a
   predicate name — report it as such instead of mis-lexing. *)
let lex_number st =
  let line = st.line and col = st.col in
  let start = st.pos in
  let rec digits () =
    match peek st with
    | Some c when is_digit c ->
        advance st;
        digits ()
    | _ -> ()
  in
  digits ();
  match peek st with
  | Some c when is_ident_char c ->
      let rec rest () =
        match peek st with
        | Some c when is_ident_char c ->
            advance st;
            rest ()
        | _ -> ()
      in
      rest ();
      error line col "malformed number %S (identifiers must start with a lowercase letter)"
        (String.sub st.src start (st.pos - start))
  | _ -> String.sub st.src start (st.pos - start)

let lex_quoted st =
  let line = st.line and col = st.col in
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error line col "unterminated string"
    | Some '"' -> advance st
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

let next st : Token.located =
  skip_trivia st;
  let line = st.line and col = st.col in
  let mk token : Token.located = { token; line; col } in
  match peek st with
  | None -> mk Eof
  | Some '(' ->
      advance st;
      mk Lparen
  | Some ')' ->
      advance st;
      mk Rparen
  | Some ',' ->
      advance st;
      mk Comma
  | Some '.' ->
      advance st;
      mk Dot
  | Some ':' ->
      advance st;
      mk Colon
  | Some '"' -> mk (Quoted (lex_quoted st))
  | Some '-' ->
      advance st;
      (match peek st with
      | Some '>' ->
          advance st;
          mk Arrow
      | _ -> error line col "expected '>' after '-'")
  | Some c when is_digit c -> mk (Number (lex_number st))
  | Some c when is_var_start c -> mk (Uident (lex_word st))
  | Some c when is_ident_start c -> (
      let w = lex_word st in
      match w with
      | "exists" -> mk Exists
      | "false" -> mk Bot
      | _ -> mk (Ident w))
  | Some c -> error line col "unexpected character %C" c

(* Tokenize the whole input. *)
let tokenize src =
  let st = make src in
  let rec go acc =
    let t = next st in
    match t.token with Token.Eof -> List.rev (t :: acc) | _ -> go (t :: acc)
  in
  go []
