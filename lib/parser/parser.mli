(** Recursive-descent parser for the Datalog± surface syntax:

    {v
    % comments run to end of line ('//' works too)
    name: body_atom, ... -> [exists V1,V2.] head_atom, ... .
    fact(a,b).
    v}

    Uppercase- or underscore-initial identifiers are variables; lowercase
    identifiers, integers and quoted strings are constants.  Head
    variables not bound in the body are implicitly existential; an
    explicit [exists] list is checked against them.  Errors — including
    an unexpected end of input — are reported as positioned {!Error}s,
    never as assertion failures. *)

open Chase_core

exception Error of { line : int; col : int; msg : string }

(** Parse a whole program (TGDs and facts, interleaved). *)
val parse_program : string -> Program.t

(** Just the TGDs. *)
val parse_tgds : string -> Tgd.t list

(** Exactly one TGD.
    @raise Invalid_argument when the input has several. *)
val parse_tgd : string -> Tgd.t

(** Just the facts. *)
val parse_database : string -> Instance.t

(** A single atom (optionally followed by a dot). *)
val parse_atom_exn : string -> Atom.t

(** Parse a program file. *)
val load_file : string -> Program.t
