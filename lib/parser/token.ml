(* Tokens of the surface syntax.  The syntax is Prolog-flavored Datalog±:

     wa: r(X,Y) -> exists Z. r(Y,Z).
     r(a,b).

   Uppercase- or underscore-initial identifiers are variables, lowercase
   identifiers and numbers and quoted strings are constants (or predicate
   names in predicate position).  `%` and `//` start line comments. *)

type t =
  | Ident of string  (* lowercase identifier: predicate or constant *)
  | Uident of string  (* variable *)
  | Quoted of string  (* quoted constant *)
  | Number of string  (* integer constant *)
  | Lparen
  | Rparen
  | Comma
  | Arrow  (* -> *)
  | Dot
  | Colon
  | Exists  (* keyword: exists *)
  | Bot  (* keyword: false (constraint head, reserved) *)
  | Eof

let to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Uident s -> Printf.sprintf "variable %S" s
  | Quoted s -> Printf.sprintf "constant %S" s
  | Number s -> Printf.sprintf "number %s" s
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Comma -> "','"
  | Arrow -> "'->'"
  | Dot -> "'.'"
  | Colon -> "':'"
  | Exists -> "'exists'"
  | Bot -> "'false'"
  | Eof -> "end of input"

type located = { token : t; line : int; col : int }
