(* Caterpillar words (paper Def D.2): the symbolic face of caterpillars.

   A free connected caterpillar is fully described by the equality type
   of its first body atom and an infinite sequence of letters (σ, γ, P)
   of Λ_T; the automaton A_T runs on exactly these words.  This module
   converts between the two representations on finite prefixes —
   encoding a concrete caterpillar into its word, and checking that the
   automaton's symbolic run agrees with the concrete atoms step by step
   (the equality type tracked by A_pc must be the equality type of the
   actual body atom).  Decoding (word → concrete caterpillar) lives in
   {!Sticky_decider.unroll}. *)

open Chase_core
open Chase_engine

type t = Sticky_automaton.letter list

let ( let* ) = Result.bind
let error fmt = Format.kasprintf (fun s -> Error s) fmt

(* The word of a caterpillar prefix, given the ambient TGD list. *)
let encode tgds (cat : Caterpillar.t) =
  let tgd_index tgd =
    let rec go i = function
      | [] -> None
      | t :: rest -> if Tgd.equal t tgd then Some i else go (i + 1) rest
    in
    go 0 tgds
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (s : Caterpillar.step) :: rest -> (
        match tgd_index (Trigger.tgd s.Caterpillar.trigger) with
        | None -> error "step uses a TGD outside the given set"
        | Some ti ->
            go
              ({
                 Sticky_automaton.tgd_index = ti;
                 gamma_index = s.Caterpillar.gamma_index;
                 pass_on = s.Caterpillar.pass_on;
               }
              :: acc)
              rest)
  in
  go [] (Caterpillar.steps cat)

(* The start pair of a caterpillar: the equality type of α₀ and the class
   of the first relay term — taken from the first pass-on step's γ, or
   simply class 0 when unavailable. *)
let start_pair (cat : Caterpillar.t) =
  let e0 = Equality_type.of_atom (Caterpillar.start cat) in
  (* the relay term of the start atom: the term that the first step's γ
     carries into the chain; the decoder uses class 0 by convention, and
     any class whose term survives the first step works.  We pick the
     class of the first position that the first step's γ shares with its
     head, falling back to 0. *)
  let cls =
    match Caterpillar.steps cat with
    | [] -> 0
    | s :: _ -> (
        let tgd = Trigger.tgd s.Caterpillar.trigger in
        let gamma = List.nth (Tgd.body tgd) s.Caterpillar.gamma_index in
        let head = Tgd.head_atom tgd in
        let surviving =
          List.init (Atom.arity gamma) Fun.id
          |> List.find_opt (fun i ->
                 match Atom.arg gamma i with
                 | Term.Var v -> Atom.mem_term head (Term.Var v)
                 | _ -> false)
        in
        match surviving with Some i -> Equality_type.class_of e0 i | None -> 0)
  in
  (e0, cls)

(* Step-by-step agreement between the symbolic run and the concrete
   atoms: after each letter, the A_pc component of the automaton state
   must be the equality type of the concrete body atom.  This ties the
   App. D.2 automaton to the §6.1 objects. *)
let check_against_automaton ?start ctx (cat : Caterpillar.t) =
  let* word = encode (Array.to_list (Sticky_automaton.tgds ctx)) cat in
  let e0, cls = match start with Some p -> p | None -> start_pair cat in
  let rec go state letters (steps : Caterpillar.step list) k =
    match (letters, steps) with
    | [], [] -> Ok ()
    | letter :: lrest, step :: srest -> (
        match Sticky_automaton.next ctx state letter with
        | None ->
            error "the automaton rejects at step %d while the concrete caterpillar continues"
              (k + 1)
        | Some state' ->
            let symbolic = state'.Sticky_automaton.et in
            let concrete = Equality_type.of_atom step.Caterpillar.atom in
            if Equality_type.equal symbolic concrete then go state' lrest srest (k + 1)
            else
              error "equality-type mismatch at step %d: symbolic %s vs concrete %s" (k + 1)
                (Equality_type.to_string symbolic)
                (Equality_type.to_string concrete))
    | _ -> error "internal: word and steps have different lengths"
  in
  let positions =
    List.init (Equality_type.arity e0) Fun.id
    |> List.filter (fun i -> Equality_type.class_of e0 i = cls)
  in
  let initial =
    { Sticky_automaton.et = e0; theta = []; pi1 = positions; pi2 = []; pass = false }
  in
  go initial word (Caterpillar.steps cat) 0
