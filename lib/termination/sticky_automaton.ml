(* The deterministic Büchi automaton A_T of the sticky decision procedure
   (paper Lemma 6.12 and Appendix D.2).

   A_T accepts exactly the caterpillar words that encode a free connected
   caterpillar for T; L(A_T) ≠ ∅ iff a finitary caterpillar for T exists
   iff T ∉ CTres∀∀ (Theorems 4.1 and 6.5).  A_T is the union, over start
   pairs (e₀, Π₀) — an equality type for the first body atom and the
   class of positions carrying the first relay term — of deterministic
   automata A_{e₀,Π₀}, each the product of three machines:

     A_pc  tracks the equality type of the current body atom and rejects
           words that do not encode a free proto-caterpillar;
     A_qc  tracks the set Θ of T-equality types of all earlier body atoms
           relative to the current atom's terms and rejects when an
           earlier body atom stops the new one (Lemma D.3 makes this a
           finite-state check);
     A_cc  tracks the positions of the current relay term (Π₁) and of all
           relay terms (Π₂), rejecting when the current relay term dies
           before the next pass-on point or when any relay term reaches
           an immortal position; it visits an accepting state exactly at
           pass-on points.

   We implement the product directly: a state carries all components and
   one transition function advances them together (the paper separates
   them for exposition; the product is what runs). *)

open Chase_core
open Chase_classes

(* A letter of Λ_T: a TGD σ, a body atom γ of σ, and a (possibly empty)
   pass-on set P — the head positions of one existential variable of σ. *)
type letter = { tgd_index : int; gamma_index : int; pass_on : int list }

let letter_to_string tgds l =
  let tgd = tgds.(l.tgd_index) in
  Printf.sprintf "(%s,γ%d%s)" (Tgd.name tgd) l.gamma_index
    (if l.pass_on = [] then ""
     else ",P={" ^ String.concat "," (List.map string_of_int l.pass_on) ^ "}")

(* A T-equality type (App. D.2): an equality type whose classes may be
   labeled by classes of the *current* body atom's equality type,
   injectively — "this class holds the same term as that class of the
   current atom".  [labels.(c)] is the current-atom class or -1. *)
type teq = { t_et : Equality_type.t; labels : int array }

let teq_encode t =
  Printf.sprintf "%s|%s" (Equality_type.to_string t.t_et)
    (String.concat "," (List.map string_of_int (Array.to_list t.labels)))

let teq_compare a b = String.compare (teq_encode a) (teq_encode b)

(* Product state. *)
type state = {
  et : Equality_type.t;  (* A_pc: equality type of the current body atom *)
  theta : teq list;  (* A_qc: sorted, deduplicated *)
  pi1 : int list;  (* A_cc: positions of the current relay term, sorted *)
  pi2 : int list;  (* A_cc: positions of all relay terms, sorted *)
  pass : bool;  (* accepting flag: did this step cross a pass-on point? *)
}

let state_key s =
  Printf.sprintf "%s#%s#%s#%s#%b"
    (Equality_type.to_string s.et)
    (String.concat ";" (List.map teq_encode s.theta))
    (String.concat "," (List.map string_of_int s.pi1))
    (String.concat "," (List.map string_of_int s.pi2))
    s.pass

type context = {
  tgds : Tgd.t array;
  marking : Stickiness.t;
  (* [next] is pure per (state, letter) and identical across the
     per-start-pair component automata, so its results are memoized once
     per context and shared by every component.  The table is
     mutex-protected because parallel Büchi exploration calls [next]
     from pool worker domains; values are immutable, so sharing them
     across domains is safe. *)
  memo : (state * letter, state option) Hashtbl.t;
  memo_lock : Mutex.t;
}

let tgds ctx = ctx.tgds

let make_context tgds =
  if not (Stickiness.is_sticky tgds) then invalid_arg "Sticky_automaton: TGDs must be sticky";
  (* The equality-type abstraction tracks only which positions carry the
     same term, never which constant a position carries, so a TGD
     mentioning a constant has no sound encoding here; reject up front
     instead of crashing mid-transition (the facade decider falls back to
     weak acyclicity for such sets). *)
  if not (Tgd.constant_free_set tgds) then
    invalid_arg "Sticky_automaton: TGDs must be constant-free";
  {
    tgds = Array.of_list tgds;
    marking = Stickiness.marking tgds;
    memo = Hashtbl.create 4096;
    memo_lock = Mutex.create ();
  }

(* Λ_T. *)
let alphabet ctx =
  let letters = ref [] in
  Array.iteri
    (fun ti tgd ->
      let head = Tgd.head_atom tgd in
      let existential_position_sets =
        Term.Set.elements (Tgd.existential_vars tgd)
        |> List.map (fun z -> List.sort Int.compare (Atom.positions_of head z))
        |> List.sort_uniq (List.compare Int.compare)
      in
      List.iteri
        (fun gi _ ->
          letters := { tgd_index = ti; gamma_index = gi; pass_on = [] } :: !letters;
          List.iter
            (fun ps ->
              letters := { tgd_index = ti; gamma_index = gi; pass_on = ps } :: !letters)
            existential_position_sets)
        (Tgd.body tgd))
    ctx.tgds;
  Obs.gauge "sticky.letters" (List.length !letters);
  List.rev !letters

(* Symbolic terms of the next body atom. *)
type sym =
  | Old of int  (* a term of the current atom, by its equality class *)
  | Leg of string  (* a frontier variable occurring only in leg atoms *)
  | Ex of string  (* an existential variable: a fresh null *)

let sym_term = function
  | Old c -> Term.Null (Printf.sprintf "t%d" c)
  | Leg v -> Term.Null ("leg:" ^ v)
  | Ex z -> Term.Null ("ex:" ^ z)

(* One product transition; [None] is the reject sink. *)
let next ctx state letter =
  let tgd = ctx.tgds.(letter.tgd_index) in
  let body = Array.of_list (Tgd.body tgd) in
  let gamma = body.(letter.gamma_index) in
  let head = Tgd.head_atom tgd in
  let e = state.et in
  (* --- A_pc: match γ against the current equality type ------------- *)
  if
    (not (String.equal (Atom.pred gamma) (Equality_type.pred e)))
    || Atom.arity gamma <> Equality_type.arity e
  then None
  else
    (* variable of γ -> class of e, consistently *)
    let vclass : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let consistent = ref true in
    Array.iteri
      (fun i t ->
        match t with
        | Term.Var v -> (
            let c = Equality_type.class_of e i in
            match Hashtbl.find_opt vclass v with
            | Some c' -> if c <> c' then consistent := false
            | None -> Hashtbl.add vclass v c)
        | Term.Const _ | Term.Null _ -> consistent := false)
      (Atom.args_a gamma);
    if not !consistent then None
    else begin
      (* --- the next atom, symbolically ------------------------------ *)
      let frontier = Tgd.frontier tgd in
      let syms =
        Array.map
          (fun t ->
            match t with
            | Term.Var v -> (
                match Hashtbl.find_opt vclass v with
                | Some c -> Old c
                | None -> if Term.Set.mem (Term.Var v) frontier then Leg v else Ex v)
            | Term.Const _ | Term.Null _ ->
                (* unreachable: [make_context] rejects constant-bearing
                   TGDs and [Tgd.make] rejects nulls *)
                assert false)
          (Atom.args_a head)
      in
      let n' = Array.length syms in
      (* next equality type: positions equal iff same symbol *)
      let sym_id = Hashtbl.create 8 in
      let raw = Array.make n' 0 in
      let nextid = ref 0 in
      Array.iteri
        (fun i s ->
          match Hashtbl.find_opt sym_id s with
          | Some id -> raw.(i) <- id
          | None ->
              raw.(i) <- !nextid;
              Hashtbl.add sym_id s !nextid;
              incr nextid)
        syms;
      let e' = Equality_type.canonicalize (Atom.pred head) raw in
      (* survival: class of e -> class of e' through γ/head variables *)
      let surv = Array.make (Equality_type.num_classes e) (-1) in
      Array.iteri
        (fun i s ->
          match s with
          | Old c -> if surv.(c) = -1 then surv.(c) <- Equality_type.class_of e' i
          | Leg _ | Ex _ -> ())
        syms;
      (* --- A_qc: stop checks via Lemma D.3 --------------------------- *)
      (* concrete next atom and its frontier terms *)
      let next_atom = Atom.make_a (Atom.pred head) (Array.map sym_term syms) in
      let frontier_terms =
        Array.to_list syms
        |> List.filteri (fun i _ -> Term.Set.mem (Atom.arg head i) frontier)
        |> List.fold_left (fun acc s -> Term.Set.add (sym_term s) acc) Term.Set.empty
      in
      (* Θ_j including the current atom itself *)
      let self_j =
        { t_et = e; labels = Array.init (Equality_type.num_classes e) Fun.id }
      in
      let all_theta = self_j :: state.theta in
      let stopped =
        List.exists
          (fun theta ->
            let can =
              Equality_type.canonical_atom
                ~term_of_class:(fun c ->
                  let l = theta.labels.(c) in
                  if l >= 0 then Term.Null (Printf.sprintf "t%d" l)
                  else Term.Null (Printf.sprintf "u%d" c))
                theta.t_et
            in
            Chase_engine.Stop.stops ~frontier:frontier_terms ~candidate:can ~result:next_atom)
          all_theta
      in
      if stopped then None
      else begin
        (* new Θ: relabel all types through the survival map, add self *)
        let relabel t =
          {
            t with
            labels =
              Array.map (fun l -> if l >= 0 then surv.(l) else -1) t.labels;
          }
        in
        let self' =
          { t_et = e'; labels = Array.init (Equality_type.num_classes e') Fun.id }
        in
        let theta' =
          self' :: List.map relabel all_theta |> List.sort_uniq teq_compare
        in
        (* --- A_cc: relay-term tracking -------------------------------- *)
        let dpos pi =
          (* positions i of head with head[i] = γ[j] for some j ∈ pi *)
          let vars_of_pi =
            List.filter_map
              (fun j ->
                match Atom.arg gamma j with Term.Var v -> Some v | _ -> None)
              pi
          in
          List.init n' Fun.id
          |> List.filter (fun i ->
                 match Atom.arg head i with
                 | Term.Var v -> List.exists (String.equal v) vars_of_pi
                 | Term.Const _ | Term.Null _ -> false)
        in
        let d1 = dpos state.pi1 and d2 = dpos state.pi2 in
        if d1 = [] then None
        else
          let immortal = Stickiness.immortal_positions ctx.marking letter.tgd_index in
          if List.exists (fun i -> immortal.(i)) d2 then None
          else if letter.pass_on = [] then
            Some { et = e'; theta = theta'; pi1 = d1; pi2 = d2; pass = false }
          else
            Some
              {
                et = e';
                theta = theta';
                pi1 = letter.pass_on;
                pi2 = List.sort_uniq Int.compare (d1 @ d2);
                pass = true;
              }
      end
    end

(* Memoized transition: one table per context, shared by every
   component automaton (the transition function does not depend on the
   start pair).  Lookups and inserts are under the context mutex;
   [next] itself runs outside it, so domains only contend on the table,
   not on the computation. *)
let memo_next ctx s l =
  (* states and letters are fully structural (canonical equality types,
     int arrays/lists), so the polymorphic hash is a sound — and much
     cheaper — key than an encoded string *)
  let key = (s, l) in
  Mutex.lock ctx.memo_lock;
  let hit = Hashtbl.find_opt ctx.memo key in
  Mutex.unlock ctx.memo_lock;
  match hit with
  | Some r ->
      Obs.incr "sticky.next.memo_hit";
      r
  | None ->
      let r = next ctx s l in
      Mutex.lock ctx.memo_lock;
      if not (Hashtbl.mem ctx.memo key) then Hashtbl.add ctx.memo key r;
      Mutex.unlock ctx.memo_lock;
      r

(* Subsumption order for pruned exploration (DESIGN.md §10): within a
   group of states sharing (et, pi1, pass), [existing ≤ candidate] when
   existing.theta ⊆ candidate.theta and existing.pi2 ⊆ candidate.pi2.
   The transition function is monotone along ≤ — a smaller state fails
   fewer stop checks (Θ is existentially quantified) and fewer immortal
   checks (Π₂ likewise), and successors preserve the order — so every
   word accepted from the candidate is accepted from the subsumer. *)
let subsumption_key s =
  Printf.sprintf "%s#%s#%b"
    (Equality_type.to_string s.et)
    (String.concat "," (List.map string_of_int s.pi1))
    s.pass

(* Sorted-list inclusion. *)
let rec subset_sorted cmp xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' ->
      let c = cmp x y in
      if c = 0 then subset_sorted cmp xs' ys'
      else if c > 0 then subset_sorted cmp xs ys'
      else false

let subsumes existing candidate =
  subset_sorted teq_compare existing.theta candidate.theta
  && subset_sorted Int.compare existing.pi2 candidate.pi2

(* The component automaton A_{e₀,Π₀}. *)
let component ctx ~start_et ~start_class =
  let positions =
    List.init (Equality_type.arity start_et) Fun.id
    |> List.filter (fun i -> Equality_type.class_of start_et i = start_class)
  in
  let initial = { et = start_et; theta = []; pi1 = positions; pi2 = []; pass = false } in
  Chase_automata.Buchi.make ~initial ~alphabet:(alphabet ctx)
    ~next:(fun s l -> memo_next ctx s l)
    ~accepting:(fun s -> s.pass)
    ~state_key
  |> Chase_automata.Buchi.with_subsumption ~key:subsumption_key ~subsumes

(* All start pairs (e₀, Π₀): every equality type over sch(T), every class. *)
let start_pairs ctx =
  let schema = Schema.of_tgds (Array.to_list ctx.tgds) in
  Equality_type.all_of_schema schema
  |> List.concat_map (fun e ->
         List.init (Equality_type.num_classes e) (fun c -> (e, c)))

(* The union automaton A_T as the list of its components. *)
let components ctx =
  let comps =
    List.map (fun (e, c) -> ((e, c), component ctx ~start_et:e ~start_class:c)) (start_pairs ctx)
  in
  Obs.gauge "sticky.components" (List.length comps);
  comps

(* Run the deterministic automaton over a finite caterpillar word; [None]
   when it falls into the reject sink. *)
let simulate ctx ~start_et ~start_class word =
  let positions =
    List.init (Equality_type.arity start_et) Fun.id
    |> List.filter (fun i -> Equality_type.class_of start_et i = start_class)
  in
  let initial = { et = start_et; theta = []; pi1 = positions; pi2 = []; pass = false } in
  List.fold_left
    (fun acc letter -> Option.bind acc (fun s -> next ctx s letter))
    (Some initial) word
