(* A decision procedure for CTres∀∀(G) (paper Theorem 5.1) — with the
   substitution documented in DESIGN.md.

   The paper decides the problem by reducing to MSOL satisfiability over
   infinite trees of bounded degree (§5.3); that reduction is k-EXPTIME
   and has never been implemented for non-toy alphabets.  This module
   implements both *sound* directions as certificate producers:

     - Termination: weak acyclicity, joint acyclicity, then
       model-faithful acyclicity — classic sufficient conditions for
       termination of the restricted chase on every database — prove
       T ∈ CTres∀∀.
     - Non-termination: a database D together with divergence evidence (a
       derivation prefix exceeding the depth budget, validated as a real
       restricted chase derivation).  For acyclic D, the evidence is
       strengthened along the paper's own §5 pipeline: the derivation is
       encoded as a chaseable abstract join tree (Def 5.8/5.10) —
       precisely the object the MSOL formula looks for — and, when D is
       cyclic, the Treeification Theorem construction (Thm 5.5) is run to
       produce an acyclic database with the same behaviour.

   When neither certificate is found within the budgets, the answer is
   [No_divergence_found] with the search statistics — evidence, not
   proof.  On the gallery of TGD sets with known ground truth (see the
   workload library and the tests), the procedure is always conclusive
   and correct. *)

open Chase_core
open Chase_engine
open Chase_classes
module Exec = Chase_exec.Pool

type termination_proof = Weakly_acyclic | Jointly_acyclic | Model_faithful_acyclic

type evidence = {
  database : Instance.t;  (* the witnessing database *)
  derivation : Derivation.t;  (* a diverging derivation prefix on it *)
  acyclic : bool;  (* whether [database] is acyclic (Def 5.4) *)
  treeified : Treeify.result option;  (* Thm 5.5 run, when [database] is cyclic *)
  abstract_tree : Abstract_join_tree.t option;  (* Def 5.8 encoding, when acyclic *)
  chaseable : bool;  (* Def 5.10 check on the abstract tree *)
}

type search_report = { candidates : int; explored_states : int }

type verdict =
  | Terminating of termination_proof
  | Non_terminating of evidence
  | No_divergence_found of search_report

let require_guarded tgds =
  if not (Guardedness.is_guarded tgds) then
    invalid_arg "Guarded_decider: guarded TGDs required";
  List.iter
    (fun t ->
      if not (Tgd.is_single_head t) then
        invalid_arg "Guarded_decider: single-head TGDs required")
    tgds

(* Freeze the body of a TGD into a database: each variable becomes a
   distinct constant, or one shared constant when [unify] is set. *)
let frozen_body ?(unify = false) tgd =
  let sub =
    Term.Set.fold
      (fun x acc ->
        match x with
        | Term.Var v ->
            Substitution.bind x
              (Term.Const (if unify then "u" else "fb_" ^ v))
              acc
        | Term.Const _ | Term.Null _ -> acc)
      (Tgd.body_vars tgd) Substitution.empty
  in
  Instance.of_list (List.map (Substitution.apply_atom sub) (Tgd.body tgd))

(* The oblivious-chase critical database: every R(c,…,c) (Marnette'09).
   Not critical for the restricted chase (§1.2) but a useful candidate. *)
let critical_database tgds =
  let schema = Schema.of_tgds tgds in
  Schema.fold
    (fun p ar acc -> Instance.add (Atom.make p (List.init ar (fun _ -> Term.Const "c"))) acc)
    schema Instance.empty

(* Frozen bodies under every partition of the body variables: unifying
   variables can create triggers for other TGDs or deactivate heads, so
   the frozen pattern alone is not enough.  Bounded by Bell(#vars); TGDs
   with more than [max_partition_vars] variables fall back to the
   none/all pair. *)
let max_partition_vars = 5

let frozen_bodies_all_partitions tgd =
  let vars = Term.Set.elements (Tgd.body_vars tgd) in
  let n = List.length vars in
  if n = 0 then [ frozen_body tgd ]
  else if n > max_partition_vars then [ frozen_body tgd; frozen_body ~unify:true tgd ]
  else
    Equality_type.partitions n
    |> List.map (fun classes ->
           let sub =
             List.fold_left2
               (fun acc v cls ->
                 Substitution.bind v (Term.Const (Printf.sprintf "fb%d" cls)) acc)
               Substitution.empty vars (Array.to_list classes)
           in
           Instance.of_list (List.map (Substitution.apply_atom sub) (Tgd.body tgd)))

(* The candidate family the divergence search sweeps. *)
let candidate_databases tgds =
  let per_tgd = List.concat_map frozen_bodies_all_partitions tgds in
  let union_of_bodies =
    List.fold_left
      (fun acc t -> Instance.union acc (frozen_body t))
      Instance.empty
      (Tgd.rename_apart tgds)
  in
  let all = (critical_database tgds :: per_tgd) @ [ union_of_bodies ] in
  (* dedupe *)
  let rec dedup seen = function
    | [] -> List.rev seen
    | d :: rest ->
        if List.exists (Instance.equal d) seen then dedup seen rest else dedup (d :: seen) rest
  in
  dedup [] all

let default_max_depth = 200

let obs_proof proof =
  if Obs.enabled () then
    Obs.event "guarded.proof"
      [
        ( "method",
          Obs.Str
            (match proof with
            | Weakly_acyclic -> "weakly_acyclic"
            | Jointly_acyclic -> "jointly_acyclic"
            | Model_faithful_acyclic -> "mfa") );
      ]

(* The candidate-database divergence sweep on its own — the
   non-termination half of [decide], also raced directly by the decider
   portfolio (the acyclicity ladder runs there as separate racers). *)
let search_divergence ?(max_depth = default_max_depth) ?max_states
    ?(cancel = Chase_exec.Cancel.none) ?(pool = Exec.inline) tgds =
  require_guarded tgds;
  Obs.span "guarded.search" @@ fun () ->
  begin
    let candidates = Array.of_list (candidate_databases tgds) in
    let n = Array.length candidates in
    Obs.gauge "guarded.candidates" n;
    (* Pre-warm the plan cache on this domain so parallel searches never
       contend on compilation (the cache write path is serialized). *)
    if Exec.is_parallel pool then List.iter (fun t -> ignore (Plan.of_tgd t)) tgds;
    let explored = ref 0 in
    (* Candidates are swept in chunks (one per chunk when inline, so the
       sequential path is unchanged); within a chunk the searches run
       across domains and the first hit {e in candidate order} wins, so
       the verdict and its witnessing database never depend on [pool].
       Chunks after a hit are not evaluated.  The cancel token is polled
       between chunks and before each candidate search; a cancelled
       sweep degrades to [No_divergence_found] with the partial counts
       (inconclusive either way). *)
    let chunk = if Exec.is_parallel pool then 2 * Exec.jobs pool else 1 in
    let rec sweep lo =
      if lo >= n || Chase_exec.Cancel.cancelled cancel then None
      else begin
        let len = min chunk (n - lo) in
        Obs.count "guarded.candidates.searched" len;
        let results =
          Exec.map_array pool
            (fun db ->
              if Chase_exec.Cancel.cancelled cancel then None
              else Derivation_search.divergence_evidence ~max_depth ?max_states tgds db)
            (Array.sub candidates lo len)
        in
        let rec first i =
          if i >= len then None
          else
            match results.(i) with
            | Some derivation -> Some (candidates.(lo + i), derivation)
            | None ->
                incr explored;
                first (i + 1)
        in
        match first 0 with Some hit -> Some hit | None -> sweep (lo + len)
      end
    in
    let search () =
      match sweep 0 with
      | None -> No_divergence_found { candidates = n; explored_states = !explored }
      | Some (database, derivation) ->
          let acyclic = Join_tree.is_acyclic database in
              let treeified =
                if acyclic then None
                else
                  match Treeify.treeify ~chase_budget:max_depth tgds database with
                  | Ok r -> Some r
                  | Error _ -> None
              in
              (* encode the strongest available acyclic witness *)
              let enc_db, enc_derivation =
                match treeified with
                | Some r -> (r.Treeify.dac, r.Treeify.evidence)
                | None -> (database, derivation)
              in
              let abstract_tree =
                if Join_tree.is_acyclic enc_db then
                  match Abstract_join_tree.encode tgds ~database:enc_db enc_derivation with
                  | Ok t -> Some t
                  | Error _ -> None
                else None
              in
              let chaseable =
                match abstract_tree with
                | Some t -> Abstract_join_tree.is_chaseable tgds t = Ok ()
                | None -> false
              in
              if Obs.enabled () then
                Obs.event "guarded.certificate"
                  [
                    ("database_atoms", Obs.Int (Instance.cardinal database));
                    ("derivation_steps", Obs.Int (Derivation.length derivation));
                    ("acyclic", Obs.Bool acyclic);
                    ("chaseable", Obs.Bool chaseable);
                  ];
              Non_terminating
                { database; derivation; acyclic; treeified; abstract_tree; chaseable }
    in
    search ()
  end

let decide ?max_depth ?max_states ?(pool = Exec.inline) tgds =
  require_guarded tgds;
  Obs.span "guarded.decide" @@ fun () ->
  if Weak_acyclicity.is_weakly_acyclic tgds then begin
    obs_proof Weakly_acyclic;
    Terminating Weakly_acyclic
  end
  else if Joint_acyclicity.is_jointly_acyclic tgds then begin
    obs_proof Jointly_acyclic;
    Terminating Jointly_acyclic
  end
  else if Mfa.is_mfa tgds then begin
    obs_proof Model_faithful_acyclic;
    Terminating Model_faithful_acyclic
  end
  else search_divergence ?max_depth ?max_states ~pool tgds
