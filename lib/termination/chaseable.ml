(* Chaseable sets (paper Def 5.2, Theorem 5.3).

   A subset A of ochase(D,T) is chaseable when (1) every atom has only
   finitely many ≺b-predecessors, (2) A is parent-closed, and (3) the
   before relation ≺b is acyclic on A, where

     ≺b = { (α,β) : α ∈ D, β ∉ D } ∪ ≺p ∪ ≺s⁻¹.

   Theorem 5.3: an infinite chaseable subset exists iff an infinite
   restricted chase derivation of D w.r.t. T exists.  We work on the
   finite fragments materialized by {!Chase_engine.Real_oblivious}; on a
   finite A, condition (1) is automatic, and the theorem's (2)⇒(1)
   construction turns a chaseable A into a valid restricted chase
   derivation prefix that generates exactly A's non-database atoms. *)

open Chase_core
open Chase_engine

module IntSet = Set.Make (Int)

type before_edge = Database_first | Parent | Stop_inverse

(* All ≺b edges between members of [nodes] (node ids of the graph). *)
let before_edges graph nodes =
  let is_db id = (Real_oblivious.node graph id).Real_oblivious.origin = None in
  let edges = ref [] in
  let add a kind b = edges := (a, kind, b) :: !edges in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then begin
            (* database atoms come first *)
            if is_db a && not (is_db b) then add a Database_first b;
            (* parents before children *)
            if List.exists (Int.equal a) (Real_oblivious.parents graph b) then add a Parent b;
            (* if a stops b (a ≺s b) then b must be generated before a *)
            if Real_oblivious.node_stops graph ~stopper:a ~stopped:b then add b Stop_inverse a
          end)
        nodes)
    nodes;
  !edges

(* Condition (2): parents of members are members. *)
let parent_closed graph nodes =
  let member = IntSet.of_list nodes in
  List.for_all
    (fun id -> List.for_all (fun p -> IntSet.mem p member) (Real_oblivious.parents graph id))
    nodes

(* Condition (3): ≺b acyclic on the set.  Returns a topological order
   when acyclic. *)
let topological_order graph nodes =
  let edges = before_edges graph nodes in
  let succ : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let indeg : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace indeg id 0) nodes;
  List.iter
    (fun (a, _, b) ->
      Hashtbl.replace succ a (b :: Option.value ~default:[] (Hashtbl.find_opt succ a));
      Hashtbl.replace indeg b (1 + Option.value ~default:0 (Hashtbl.find_opt indeg b)))
    edges;
  let queue = Queue.create () in
  List.iter (fun id -> if Hashtbl.find indeg id = 0 then Queue.add id queue) nodes;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order := id :: !order;
    List.iter
      (fun b ->
        let d = Hashtbl.find indeg b - 1 in
        Hashtbl.replace indeg b d;
        if d = 0 then Queue.add b queue)
      (Option.value ~default:[] (Hashtbl.find_opt succ id))
  done;
  if List.length !order = List.length nodes then Some (List.rev !order) else None

let is_chaseable graph nodes =
  parent_closed graph nodes && Option.is_some (topological_order graph nodes)

(* Theorem 5.3, (2)⇒(1) on a finite fragment: generate the non-database
   atoms of a chaseable set in ≺b-topological order; every trigger must be
   active when applied (which the acyclicity of ≺b guarantees, via
   Fact 3.5 — checked here rather than assumed). *)
let to_derivation graph nodes =
  match topological_order graph nodes with
  | None -> Error "the before relation has a cycle"
  | Some order ->
      if not (parent_closed graph nodes) then Error "the set is not parent-closed"
      else begin
        let database =
          List.fold_left
            (fun i id ->
              let n = Real_oblivious.node graph id in
              match n.Real_oblivious.origin with
              | None -> Instance.add n.Real_oblivious.atom i
              | Some _ -> i)
            Instance.empty nodes
        in
        let rec go instance steps index = function
          | [] ->
              Ok
                (Derivation.make ~database ~steps:(List.rev steps)
                   ~status:Derivation.Out_of_budget)
          | id :: rest -> (
              let n = Real_oblivious.node graph id in
              match n.Real_oblivious.origin with
              | None -> go instance steps index rest
              | Some trigger ->
                  if Instance.mem n.Real_oblivious.atom instance then
                    (* a copy of this atom is already there: two copies
                       stop each other, so chaseability rules this out *)
                    Error
                      (Printf.sprintf "duplicate atom %s in chaseable set"
                         (Atom.to_string n.Real_oblivious.atom))
                  else if not (Trigger.is_active instance trigger) then
                    Error
                      (Printf.sprintf "trigger for %s not active at its turn"
                         (Atom.to_string n.Real_oblivious.atom))
                  else
                    let after = Instance.add n.Real_oblivious.atom instance in
                    let step =
                      {
                        Derivation.index;
                        trigger;
                        produced = [ n.Real_oblivious.atom ];
                        frontier = Trigger.frontier_terms trigger;
                        after = Lazy.from_val after;
                      }
                    in
                    go after (step :: steps) (index + 1) rest)
        in
        go database [] 0 order
      end

(* Theorem 5.3, (1)⇒(2) on a finite prefix: map each derivation step to a
   node of ochase(D,T) with the same trigger, preferring nodes whose
   parents were already selected; include the database nodes.  Returns
   the chosen node set (which [is_chaseable] should accept — tested). *)
let of_derivation graph derivation =
  let chosen = ref IntSet.empty in
  (* database nodes *)
  Array.iter
    (fun n ->
      if n.Real_oblivious.origin = None then chosen := IntSet.add n.Real_oblivious.id !chosen)
    (Real_oblivious.nodes graph);
  let find_node trigger =
    let candidates =
      Array.to_list (Real_oblivious.nodes graph)
      |> List.filter (fun n ->
             match n.Real_oblivious.origin with
             | Some t -> Trigger.equal t trigger
             | None -> false)
    in
    (* prefer a copy whose parents are already chosen *)
    match
      List.find_opt
        (fun n ->
          List.for_all (fun p -> IntSet.mem p !chosen) (Real_oblivious.parents graph n.Real_oblivious.id))
        candidates
    with
    | Some n -> Some n
    | None -> (match candidates with n :: _ -> Some n | [] -> None)
  in
  let ok = ref true in
  List.iter
    (fun (s : Derivation.step) ->
      match find_node s.Derivation.trigger with
      | Some n -> chosen := IntSet.add n.Real_oblivious.id !chosen
      | None -> ok := false)
    (Derivation.steps derivation);
  if !ok then Some (IntSet.elements !chosen) else None
