(** The deterministic Büchi automaton A_T of the sticky decision procedure
    (paper Lemma 6.12, App. D.2): the union over start pairs (e₀, Π₀) of
    products A_pc × A_qc × A_cc over the caterpillar-word alphabet Λ_T.
    L(A_T) ≠ ∅ iff a free connected caterpillar for T exists. *)

open Chase_core

(** A letter of Λ_T: a TGD, a body atom of it, and a (possibly empty)
    pass-on set — the head positions of one existential variable. *)
type letter = { tgd_index : int; gamma_index : int; pass_on : int list }

val letter_to_string : Tgd.t array -> letter -> string

type teq
(** A T-equality type (App. D.2): an equality type with classes
    injectively labeled by classes of the current body atom. *)

val teq_encode : teq -> string

type state = {
  et : Equality_type.t;  (** A_pc component *)
  theta : teq list;  (** A_qc component *)
  pi1 : int list;  (** A_cc: positions of the current relay term *)
  pi2 : int list;  (** A_cc: positions of all relay terms *)
  pass : bool;  (** accepting flag: a pass-on point was just crossed *)
}

val state_key : state -> string

type context
(** TGDs, their sticky marking, and a memo table for the transition
    function shared across all component automata of the context
    (mutex-protected; safe with parallel exploration pools). *)

val tgds : context -> Tgd.t array

(** @raise Invalid_argument when the TGDs are not sticky, or when they
    mention constants (the equality-type abstraction does not track
    constants; the facade decider falls back to weak acyclicity). *)
val make_context : Tgd.t list -> context

(** Λ_T, enumerated. *)
val alphabet : context -> letter list

(** One product transition; [None] is the reject sink. *)
val next : context -> state -> letter -> state option

(** {!next} through the context's shared memo table — what the component
    automata actually run. *)
val memo_next : context -> state -> letter -> state option

(** The component automaton A_{e₀,Π₀}, carrying the subsumption
    structure used by pruned exploration ({!Chase_automata.Buchi.with_subsumption},
    DESIGN.md §10). *)
val component :
  context ->
  start_et:Equality_type.t ->
  start_class:int ->
  (state, letter) Chase_automata.Buchi.t

(** All start pairs: every equality type over sch(T) with every class. *)
val start_pairs : context -> (Equality_type.t * int) list

(** A_T as the list of its components. *)
val components :
  context -> ((Equality_type.t * int) * (state, letter) Chase_automata.Buchi.t) list

(** Run the deterministic automaton over a finite caterpillar word from
    the given start pair; [None] = the reject sink. *)
val simulate :
  context -> start_et:Equality_type.t -> start_class:int -> letter list -> state option
