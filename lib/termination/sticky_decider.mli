(** The decision procedure for CTres∀∀(S) (paper Theorem 6.1):
    T ∈ CTres∀∀ iff L(A_T) = ∅.  A non-empty component yields a lasso,
    unrolled into a concrete caterpillar prefix that can be checked
    independently. *)

open Chase_core
open Chase_automata

type certificate = {
  start_et : Equality_type.t;
  start_class : int;
  lasso : Sticky_automaton.letter Buchi.lasso;
  prefix : Caterpillar.t;  (** the lasso unrolled a few turns *)
}

type verdict =
  | All_terminating
      (** T ∈ CTres∀∀: every restricted chase derivation of every
          database is finite *)
  | Non_terminating of certificate
  | Inconclusive of string
      (** a state budget was exceeded, or the run was cancelled *)

type stats = { components : int; explored_states : int; decision : verdict }

val default_unroll_turns : int

(** [pool] parallelizes each component's Büchi exploration (see
    {!Buchi.emptiness_with_stats}); the verdict, certificate and state
    counts are identical to the sequential run.  [explored_states] comes
    from the same pass that decided each component (no re-exploration).

    [cancel] is polled between components and inside each emptiness
    search; a fired token yields [Inconclusive "cancelled"].  [prune]
    (default [false]) enables subsumption pruning on the component
    automata (see {!Buchi.with_subsumption} and DESIGN.md §10); verdicts
    are unchanged, only the explored-state counts shrink. *)
val decide_with_stats :
  ?max_states:int ->
  ?unroll_turns:int ->
  ?pool:Chase_exec.Pool.t ->
  ?cancel:Chase_exec.Cancel.t ->
  ?prune:bool ->
  Tgd.t list ->
  stats

(** @raise Invalid_argument when the TGDs are not sticky or mention
    constants (rejected up front by {!Sticky_automaton.make_context};
    no crash path remains for constant-bearing inputs). *)
val decide :
  ?max_states:int ->
  ?unroll_turns:int ->
  ?pool:Chase_exec.Pool.t ->
  ?cancel:Chase_exec.Cancel.t ->
  ?prune:bool ->
  Tgd.t list ->
  verdict

(** Validate a certificate against the caterpillar definitions. *)
val check_certificate : Tgd.t list -> certificate -> (unit, string) result

(** Unroll a lasso into a caterpillar prefix. *)
val unroll :
  Sticky_automaton.context ->
  start_et:Equality_type.t ->
  start_class:int ->
  lasso:Sticky_automaton.letter Buchi.lasso ->
  turns:int ->
  Caterpillar.t
