(* The decision procedure for CTres∀∀(S) (paper Theorem 6.1, §6.5).

   By the Fairness Theorem (4.1) and the caterpillar characterization
   (6.5), T ∈ S is non-terminating for some database iff a finitary
   caterpillar for T exists, iff L(A_T) ≠ ∅ (Lemma 6.12, §6.5).  We build
   the component automata A_{e₀,Π₀} lazily and run lasso emptiness on
   each; a non-empty component yields a lasso over Λ_T, which we unroll
   into a concrete caterpillar prefix — an independently checkable
   non-termination certificate. *)

open Chase_core
open Chase_engine
open Chase_automata

type certificate = {
  start_et : Equality_type.t;
  start_class : int;
  lasso : Sticky_automaton.letter Buchi.lasso;
  prefix : Caterpillar.t;  (* the lasso unrolled a few turns *)
}

type verdict =
  | All_terminating  (* T ∈ CTres∀∀: every derivation of every database is finite *)
  | Non_terminating of certificate
  | Inconclusive of string  (* a state budget was exceeded *)

type stats = {
  components : int;
  explored_states : int;
  decision : verdict;
}

(* Unroll a lasso into a concrete caterpillar prefix of [turns] cycles. *)
let unroll ctx ~start_et ~start_class ~(lasso : Sticky_automaton.letter Buchi.lasso) ~turns =
  let gen = Term.Gen.create ~prefix:"cat" () in
  let start =
    Equality_type.canonical_atom
      ~term_of_class:(fun c -> Term.Null (Printf.sprintf "a%d" c))
      start_et
  in
  ignore start_class;
  let word = lasso.Buchi.prefix @ List.concat (List.init turns (fun _ -> lasso.Buchi.cycle)) in
  let legs = ref Instance.empty in
  let steps = ref [] in
  let current = ref start in
  List.iter
    (fun (l : Sticky_automaton.letter) ->
      let tgd = (Sticky_automaton.tgds ctx).(l.tgd_index) in
      let body = Array.of_list (Tgd.body tgd) in
      let gamma = body.(l.gamma_index) in
      (* γ variables follow the current atom *)
      let h = ref Substitution.empty in
      Array.iteri
        (fun i t ->
          match t with
          | Term.Var _ -> h := Option.get (Substitution.unify t (Atom.arg !current i) !h)
          | Term.Const _ | Term.Null _ ->
              (* unreachable: the context's TGDs are constant-free
                 (checked by [Sticky_automaton.make_context]) *)
              assert false)
        (Atom.args_a gamma);
      (* remaining body variables are fresh (the free caterpillar) *)
      Term.Set.iter
        (fun x ->
          if not (Substitution.mem x !h) then h := Substitution.bind x (Term.Gen.fresh gen) !h)
        (Tgd.body_vars tgd);
      (* the leg atoms: the body images other than the γ occurrence *)
      Array.iteri
        (fun i b -> if i <> l.gamma_index then legs := Instance.add (Substitution.apply_atom !h b) !legs)
        body;
      let trigger = Trigger.make tgd !h in
      let atom =
        match Trigger.result ~gen trigger with [ a ] -> a | _ -> assert false
      in
      steps := { Caterpillar.trigger; gamma_index = l.gamma_index; atom; pass_on = l.pass_on } :: !steps;
      current := atom)
    word;
  { Caterpillar.legs = !legs; start; steps = List.rev !steps }

let default_unroll_turns = 3

let decide_with_stats ?(max_states = 50_000) ?(unroll_turns = default_unroll_turns) ?pool
    ?(cancel = Chase_exec.Cancel.none) ?(prune = false) tgds =
  let ctx = Sticky_automaton.make_context tgds in
  let components = Sticky_automaton.components ctx in
  let explored = ref 0 in
  let budget_hit = ref false in
  let cancelled = ref false in
  (* Each component's emptiness pass reports its own exploration stats,
     so the explored-state total comes for free — no re-exploration. *)
  let rec search = function
    | [] -> None
    | ((start_et, start_class), automaton) :: rest -> (
        if Chase_exec.Cancel.cancelled cancel then begin
          cancelled := true;
          None
        end
        else
          match Buchi.emptiness_with_stats ~max_states ?pool ~cancel ~prune automaton with
          | Buchi.Empty, st ->
              explored := !explored + st.Buchi.states;
              search rest
          | Buchi.Budget_exceeded n, _ ->
              explored := !explored + n;
              budget_hit := true;
              search rest
          | Buchi.Cancelled n, _ ->
              explored := !explored + n;
              cancelled := true;
              None
          | Buchi.Nonempty lasso, st ->
              explored := !explored + st.Buchi.states;
              let prefix = unroll ctx ~start_et ~start_class ~lasso ~turns:unroll_turns in
              Some { start_et; start_class; lasso; prefix })
  in
  let decision =
    match search components with
    | Some cert -> Non_terminating cert
    | None ->
        if !cancelled then Inconclusive "cancelled"
        else if !budget_hit then
          Inconclusive
            (Printf.sprintf "state budget (%d per component) exceeded" max_states)
        else All_terminating
  in
  { components = List.length components; explored_states = !explored; decision }

let decide ?max_states ?unroll_turns ?pool ?cancel ?prune tgds =
  (decide_with_stats ?max_states ?unroll_turns ?pool ?cancel ?prune tgds).decision

(* Independent certificate check: the unrolled prefix really is a valid
   (connected) caterpillar prefix for T. *)
let check_certificate tgds cert = Caterpillar.validate tgds cert.prefix
