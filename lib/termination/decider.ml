(* The facade: decide CTres∀∀ for a TGD set by dispatching on its class.

     sticky  → the Büchi-automaton procedure (sound and complete, §6);
     guarded → weak acyclicity + certificate search (§5; see DESIGN.md
               for the substitution of the MSOL step);
     else    → weak acyclicity only (sound for "terminating").

   [decide_portfolio] instead races every procedure that is sound for
   the classified class — weak acyclicity, joint acyclicity, MFA, the
   sticky Büchi procedure and the guarded divergence search — as
   cooperatively-cancellable tasks, first conclusive answer wins
   (DESIGN.md §10). *)

open Chase_core
open Chase_classes
module Exec = Chase_exec.Pool
module Cancel = Chase_exec.Cancel

type answer =
  | Terminating  (* T ∈ CTres∀∀ *)
  | Non_terminating  (* some database admits an infinite derivation *)
  | Unknown

type method_used =
  | Sticky_buchi  (* Theorem 6.1 *)
  | Guarded_search  (* Theorem 5.1 machinery, certificate search *)
  | Weak_acyclicity_check  (* baseline sufficient condition *)
  | Joint_acyclicity_check  (* sufficient condition, subsumes WA *)
  | Mfa_check  (* model-faithful acyclicity, subsumes JA *)
  | Portfolio  (* raced portfolio; no single procedure was conclusive *)

type procedure_report = {
  procedure : method_used;
  outcome : answer;
  conclusive : bool;
  cancelled : bool;  (* lost the race and was stopped (or never started) *)
  wall_ms : float;
  note : string;
}

type report = {
  classification : Classification.report;
  answer : answer;
  method_used : method_used;
  detail : string;
  procedures : procedure_report list;  (* per-racer outcomes; [] in fixed dispatch *)
}

let method_name = function
  | Sticky_buchi -> "sticky-buchi"
  | Guarded_search -> "guarded-search"
  | Weak_acyclicity_check -> "weak-acyclicity"
  | Joint_acyclicity_check -> "joint-acyclicity"
  | Mfa_check -> "mfa"
  | Portfolio -> "portfolio"

let decide ?(sticky_max_states = 50_000) ?(guarded_max_depth = 200) ?pool tgds =
  let classification = Classification.classify tgds in
  (* The §5/§6 procedures assume the paper's constant-free setting; a
     set mentioning constants is answered by weak acyclicity below
     (sound with constants) rather than crashing those procedures. *)
  let constant_free = Tgd.constant_free_set tgds in
  if
    constant_free && classification.Classification.single_head
    && classification.Classification.sticky
  then
    let verdict = Sticky_decider.decide ~max_states:sticky_max_states ?pool tgds in
    let answer, detail =
      match verdict with
      | Sticky_decider.All_terminating -> (Terminating, "L(A_T) = ∅")
      | Sticky_decider.Non_terminating cert ->
          ( Non_terminating,
            Printf.sprintf "caterpillar lasso found (prefix %d, cycle %d)"
              (List.length cert.Sticky_decider.lasso.Chase_automata.Buchi.prefix)
              (List.length cert.Sticky_decider.lasso.Chase_automata.Buchi.cycle) )
      | Sticky_decider.Inconclusive m -> (Unknown, m)
    in
    { classification; answer; method_used = Sticky_buchi; detail; procedures = [] }
  else if
    constant_free && classification.Classification.single_head
    && classification.Classification.guarded
  then
    let verdict = Guarded_decider.decide ~max_depth:guarded_max_depth ?pool tgds in
    let answer, detail =
      match verdict with
      | Guarded_decider.Terminating Guarded_decider.Weakly_acyclic ->
          (Terminating, "weakly acyclic")
      | Guarded_decider.Terminating Guarded_decider.Jointly_acyclic ->
          (Terminating, "jointly acyclic")
      | Guarded_decider.Terminating Guarded_decider.Model_faithful_acyclic ->
          (Terminating, "model-faithful acyclic (MFA)")
      | Guarded_decider.Non_terminating ev ->
          ( Non_terminating,
            Printf.sprintf "diverging database found (%d atoms, acyclic: %b, chaseable AJT: %b)"
              (Instance.cardinal ev.Guarded_decider.database)
              ev.Guarded_decider.acyclic ev.Guarded_decider.chaseable )
      | Guarded_decider.No_divergence_found r ->
          ( Unknown,
            Printf.sprintf "no divergence among %d candidate databases"
              r.Guarded_decider.candidates )
    in
    { classification; answer; method_used = Guarded_search; detail; procedures = [] }
  else
    let wa = classification.Classification.weakly_acyclic in
    {
      classification;
      answer = (if wa then Terminating else Unknown);
      method_used = Weak_acyclicity_check;
      detail =
        (if wa then "weakly acyclic"
         else if not constant_free then
           "mentions constants (outside the paper's constant-free procedures); not weakly \
            acyclic"
         else "outside the decidable classes implemented");
      procedures = [];
    }

(* --- the portfolio ---------------------------------------------------

   Soundness lattice (DESIGN.md §10): WA, JA and MFA are sufficient
   conditions valid for every TGD set (MFA only in the constant-free
   setting our critical database covers), so their only conclusive
   answer is Terminating.  The sticky procedure is sound and complete
   on constant-free single-head sticky sets (both answers conclusive);
   the guarded divergence search produces validated non-termination
   certificates on constant-free single-head guarded sets (only
   Non_terminating is conclusive).  Every racer below is only entered
   when its validity precondition holds, so any conclusive answer is
   correct and the first one can win the race. *)

let portfolio_procedures classification ~constant_free =
  let cls_ok =
    constant_free && classification.Classification.single_head
  in
  [ Some Weak_acyclicity_check; Some Joint_acyclicity_check ]
  @ [ (if constant_free then Some Mfa_check else None) ]
  @ [ (if cls_ok && classification.Classification.sticky then Some Sticky_buchi else None) ]
  @ [ (if cls_ok && classification.Classification.guarded then Some Guarded_search else None) ]
  |> List.filter_map Fun.id

let run_procedure ~cancel ~sticky_max_states ~guarded_max_depth ~prune tgds = function
  | Weak_acyclicity_check ->
      if Weak_acyclicity.is_weakly_acyclic tgds then (Terminating, "weakly acyclic")
      else (Unknown, "not weakly acyclic")
  | Joint_acyclicity_check ->
      if Joint_acyclicity.is_jointly_acyclic tgds then (Terminating, "jointly acyclic")
      else (Unknown, "not jointly acyclic")
  | Mfa_check -> (
      match Mfa.decide ~cancel tgds with
      | Mfa.Mfa { atoms } ->
          (Terminating, Printf.sprintf "model-faithful acyclic (%d atoms)" atoms)
      | Mfa.Cyclic_term { var; _ } ->
          (Unknown, Printf.sprintf "cyclic skolem term on %s (not MFA)" var)
      | Mfa.Budget { atoms } ->
          (Unknown, Printf.sprintf "MFA budget exhausted (%d atoms)" atoms))
  | Sticky_buchi -> (
      (* Racers run their inner exploration inline: nesting a
         [map_array] inside a pool task would deadlock the pool (the
         racer already owns a worker slot). *)
      match Sticky_decider.decide ~max_states:sticky_max_states ~cancel ~prune tgds with
      | Sticky_decider.All_terminating -> (Terminating, "L(A_T) = ∅")
      | Sticky_decider.Non_terminating cert ->
          ( Non_terminating,
            Printf.sprintf "caterpillar lasso found (prefix %d, cycle %d)"
              (List.length cert.Sticky_decider.lasso.Chase_automata.Buchi.prefix)
              (List.length cert.Sticky_decider.lasso.Chase_automata.Buchi.cycle) )
      | Sticky_decider.Inconclusive m -> (Unknown, m))
  | Guarded_search -> (
      match Guarded_decider.search_divergence ~max_depth:guarded_max_depth ~cancel tgds with
      | Guarded_decider.Terminating _ -> (Terminating, "acyclicity ladder")  (* unreachable *)
      | Guarded_decider.Non_terminating ev ->
          ( Non_terminating,
            Printf.sprintf "diverging database found (%d atoms, acyclic: %b, chaseable AJT: %b)"
              (Instance.cardinal ev.Guarded_decider.database)
              ev.Guarded_decider.acyclic ev.Guarded_decider.chaseable )
      | Guarded_decider.No_divergence_found r ->
          ( Unknown,
            Printf.sprintf "no divergence among %d candidate databases"
              r.Guarded_decider.candidates ))
  | Portfolio -> (Unknown, "not a procedure")

let decide_portfolio ?(sticky_max_states = 50_000) ?(guarded_max_depth = 200)
    ?(prune = true) ?(pool = Exec.inline) tgds =
  Obs.span "decider.portfolio" @@ fun () ->
  let classification = Classification.classify tgds in
  let constant_free = Tgd.constant_free_set tgds in
  let procs = portfolio_procedures classification ~constant_free in
  let cancel = Cancel.create () in
  let run p =
    let started = Obs.now () in
    if Cancel.cancelled cancel then
      {
        procedure = p;
        outcome = Unknown;
        conclusive = false;
        cancelled = true;
        wall_ms = 0.;
        note = "cancelled before start";
      }
    else begin
      let outcome, note =
        try run_procedure ~cancel ~sticky_max_states ~guarded_max_depth ~prune tgds p
        with e -> (Unknown, "raised: " ^ Printexc.to_string e)
      in
      let conclusive = match outcome with Unknown -> false | _ -> true in
      (* First conclusive answer stops the other racers; conclusive
         answers never disagree (each racer is sound for this class), so
         which one physically finishes first cannot change the answer —
         only the reported winner. *)
      if conclusive then Cancel.cancel cancel;
      {
        procedure = p;
        outcome;
        conclusive;
        cancelled = (not conclusive) && Cancel.cancelled cancel;
        wall_ms = (Obs.now () -. started) *. 1000.;
        note;
      }
    end
  in
  (* Parallel pool: racers are claimed one per chunk and genuinely race,
     polling the shared token.  Inline pool: the racers run in priority
     order and the token turns into an early exit after the first
     conclusive answer. *)
  let results =
    if Exec.is_parallel pool then
      Array.to_list (Exec.map_array ~chunk:1 pool run (Array.of_list procs))
    else List.map run procs
  in
  (* The winner is folded in the fixed priority order of [procs], not
     arrival order, so the reported method is deterministic even when
     the physical race is not. *)
  let winner = List.find_opt (fun r -> r.conclusive) results in
  if Obs.enabled () then
    List.iter
      (fun r ->
        Obs.event "portfolio.procedure"
          [
            ("name", Obs.Str (method_name r.procedure));
            ( "outcome",
              Obs.Str
                (match r.outcome with
                | Terminating -> "terminating"
                | Non_terminating -> "non-terminating"
                | Unknown -> "unknown") );
            ("conclusive", Obs.Bool r.conclusive);
            ("cancelled", Obs.Bool r.cancelled);
            ("wall_ms", Obs.Float r.wall_ms);
          ])
      results;
  match winner with
  | Some w ->
      (* Sanity: all conclusive racers must agree (soundness lattice). *)
      let disagreeing =
        List.filter (fun r -> r.conclusive && r.outcome <> w.outcome) results
      in
      if disagreeing <> [] then
        Obs.event "portfolio.disagreement"
          [
            ("winner", Obs.Str (method_name w.procedure));
            ( "dissent",
              Obs.Str (String.concat "," (List.map (fun r -> method_name r.procedure) disagreeing))
            );
          ];
      {
        classification;
        answer = w.outcome;
        method_used = w.procedure;
        detail = w.note;
        procedures = results;
      }
  | None ->
      {
        classification;
        answer = Unknown;
        method_used = Portfolio;
        detail =
          Printf.sprintf "no conclusive answer among %d procedures" (List.length procs);
        procedures = results;
      }

let pp_answer ppf = function
  | Terminating -> Format.pp_print_string ppf "terminating (T ∈ CTres∀∀)"
  | Non_terminating -> Format.pp_print_string ppf "non-terminating"
  | Unknown -> Format.pp_print_string ppf "unknown"

let method_description = function
  | Sticky_buchi -> "sticky Büchi automaton"
  | Guarded_search -> "guarded certificate search"
  | Weak_acyclicity_check -> "weak acyclicity"
  | Joint_acyclicity_check -> "joint acyclicity"
  | Mfa_check -> "model-faithful acyclicity"
  | Portfolio -> "portfolio (inconclusive)"

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@,answer: %a (%s)@,detail: %s@]" Classification.pp
    r.classification pp_answer r.answer
    (method_description r.method_used)
    r.detail;
  if r.procedures <> [] then begin
    Format.fprintf ppf "@,portfolio:";
    List.iter
      (fun p ->
        Format.fprintf ppf "@,  %-16s %-15s %7.1f ms%s  %s" (method_name p.procedure)
          (match p.outcome with
          | Terminating -> "terminating"
          | Non_terminating -> "non-terminating"
          | Unknown -> "unknown")
          p.wall_ms
          (if p.cancelled then " (cancelled)" else "")
          p.note)
      r.procedures
  end
