(* The facade: decide CTres∀∀ for a TGD set by dispatching on its class.

     sticky  → the Büchi-automaton procedure (sound and complete, §6);
     guarded → weak acyclicity + certificate search (§5; see DESIGN.md
               for the substitution of the MSOL step);
     else    → weak acyclicity only (sound for "terminating").        *)

open Chase_core
open Chase_classes

type answer =
  | Terminating  (* T ∈ CTres∀∀ *)
  | Non_terminating  (* some database admits an infinite derivation *)
  | Unknown

type method_used =
  | Sticky_buchi  (* Theorem 6.1 *)
  | Guarded_search  (* Theorem 5.1 machinery, certificate search *)
  | Weak_acyclicity_check  (* baseline sufficient condition *)

type report = {
  classification : Classification.report;
  answer : answer;
  method_used : method_used;
  detail : string;
}

let decide ?(sticky_max_states = 50_000) ?(guarded_max_depth = 200) ?pool tgds =
  let classification = Classification.classify tgds in
  (* The §5/§6 procedures assume the paper's constant-free setting; a
     set mentioning constants is answered by weak acyclicity below
     (sound with constants) rather than crashing those procedures. *)
  let constant_free = Tgd.constant_free_set tgds in
  if
    constant_free && classification.Classification.single_head
    && classification.Classification.sticky
  then
    let verdict = Sticky_decider.decide ~max_states:sticky_max_states ?pool tgds in
    let answer, detail =
      match verdict with
      | Sticky_decider.All_terminating -> (Terminating, "L(A_T) = ∅")
      | Sticky_decider.Non_terminating cert ->
          ( Non_terminating,
            Printf.sprintf "caterpillar lasso found (prefix %d, cycle %d)"
              (List.length cert.Sticky_decider.lasso.Chase_automata.Buchi.prefix)
              (List.length cert.Sticky_decider.lasso.Chase_automata.Buchi.cycle) )
      | Sticky_decider.Inconclusive m -> (Unknown, m)
    in
    { classification; answer; method_used = Sticky_buchi; detail }
  else if
    constant_free && classification.Classification.single_head
    && classification.Classification.guarded
  then
    let verdict = Guarded_decider.decide ~max_depth:guarded_max_depth ?pool tgds in
    let answer, detail =
      match verdict with
      | Guarded_decider.Terminating Guarded_decider.Weakly_acyclic ->
          (Terminating, "weakly acyclic")
      | Guarded_decider.Terminating Guarded_decider.Jointly_acyclic ->
          (Terminating, "jointly acyclic")
      | Guarded_decider.Terminating Guarded_decider.Model_faithful_acyclic ->
          (Terminating, "model-faithful acyclic (MFA)")
      | Guarded_decider.Non_terminating ev ->
          ( Non_terminating,
            Printf.sprintf "diverging database found (%d atoms, acyclic: %b, chaseable AJT: %b)"
              (Instance.cardinal ev.Guarded_decider.database)
              ev.Guarded_decider.acyclic ev.Guarded_decider.chaseable )
      | Guarded_decider.No_divergence_found r ->
          ( Unknown,
            Printf.sprintf "no divergence among %d candidate databases"
              r.Guarded_decider.candidates )
    in
    { classification; answer; method_used = Guarded_search; detail }
  else
    let wa = classification.Classification.weakly_acyclic in
    {
      classification;
      answer = (if wa then Terminating else Unknown);
      method_used = Weak_acyclicity_check;
      detail =
        (if wa then "weakly acyclic"
         else if not constant_free then
           "mentions constants (outside the paper's constant-free procedures); not weakly \
            acyclic"
         else "outside the decidable classes implemented");
    }

let pp_answer ppf = function
  | Terminating -> Format.pp_print_string ppf "terminating (T ∈ CTres∀∀)"
  | Non_terminating -> Format.pp_print_string ppf "non-terminating"
  | Unknown -> Format.pp_print_string ppf "unknown"

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@,answer: %a (%s)@,detail: %s@]" Classification.pp
    r.classification pp_answer r.answer
    (match r.method_used with
    | Sticky_buchi -> "sticky Büchi automaton"
    | Guarded_search -> "guarded certificate search"
    | Weak_acyclicity_check -> "weak acyclicity")
    r.detail
