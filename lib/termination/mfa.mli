(** Model-faithful acyclicity \[Cuenca Grau et al., JAIR'13 — the paper's
    reference 16\]: chase the critical database obliviously and watch for
    cyclic skolem terms.  MFA implies skolem-chase termination on every
    database, hence restricted-chase termination: a sound certificate
    strictly subsuming weak and joint acyclicity. *)

open Chase_core

type verdict =
  | Mfa of { atoms : int }  (** saturated with no cyclic term: certified *)
  | Cyclic_term of { tgd : Tgd.t; var : string }  (** the repeated skolem function *)
  | Budget of { atoms : int }  (** inconclusive *)

val critical_database : Tgd.t list -> Instance.t
val default_max_steps : int

(** [cancel] is polled every 64 chase steps; a cancelled run returns
    [Budget] (inconclusive) with the atoms chased so far. *)
val decide : ?max_steps:int -> ?cancel:Chase_exec.Cancel.t -> Tgd.t list -> verdict

val is_mfa : ?max_steps:int -> Tgd.t list -> bool
