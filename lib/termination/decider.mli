(** The facade decider for CTres∀∀, dispatching on the class of the input
    TGD set: the sticky Büchi procedure (§6, sound and complete), the
    guarded certificate search (§5, see DESIGN.md), or plain weak
    acyclicity for everything else. *)

open Chase_classes

type answer =
  | Terminating  (** T ∈ CTres∀∀ *)
  | Non_terminating  (** some database admits an infinite valid derivation *)
  | Unknown

type method_used = Sticky_buchi | Guarded_search | Weak_acyclicity_check

type report = {
  classification : Classification.report;
  answer : answer;
  method_used : method_used;
  detail : string;
}

val decide :
  ?sticky_max_states:int ->
  ?guarded_max_depth:int ->
  ?pool:Chase_exec.Pool.t ->
  Chase_core.Tgd.t list ->
  report
val pp_answer : Format.formatter -> answer -> unit
val pp : Format.formatter -> report -> unit
