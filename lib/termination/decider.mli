(** The facade decider for CTres∀∀, dispatching on the class of the input
    TGD set: the sticky Büchi procedure (§6, sound and complete), the
    guarded certificate search (§5, see DESIGN.md), or plain weak
    acyclicity for everything else — plus {!decide_portfolio}, which
    races every procedure valid for the classified class and takes the
    first conclusive answer (DESIGN.md §10). *)

open Chase_classes

type answer =
  | Terminating  (** T ∈ CTres∀∀ *)
  | Non_terminating  (** some database admits an infinite valid derivation *)
  | Unknown

type method_used =
  | Sticky_buchi  (** Theorem 6.1 *)
  | Guarded_search  (** Theorem 5.1 machinery, certificate search *)
  | Weak_acyclicity_check  (** baseline sufficient condition *)
  | Joint_acyclicity_check  (** sufficient condition, subsumes WA *)
  | Mfa_check  (** model-faithful acyclicity, subsumes JA *)
  | Portfolio  (** raced portfolio with no conclusive procedure *)

(** One racer's outcome in a portfolio run. *)
type procedure_report = {
  procedure : method_used;
  outcome : answer;
  conclusive : bool;  (** [outcome <> Unknown] *)
  cancelled : bool;  (** lost the race and was cooperatively stopped *)
  wall_ms : float;
  note : string;
}

type report = {
  classification : Classification.report;
  answer : answer;
  method_used : method_used;
  detail : string;
  procedures : procedure_report list;
      (** per-racer outcomes and timings; [[]] in fixed dispatch *)
}

(** Stable wire name of a method ("sticky-buchi", "portfolio", …), used
    by [chasectl] and the serve protocol (docs/SERVICE.md). *)
val method_name : method_used -> string

(** Fixed dispatch: one procedure, chosen by classification. *)
val decide :
  ?sticky_max_states:int ->
  ?guarded_max_depth:int ->
  ?pool:Chase_exec.Pool.t ->
  Chase_core.Tgd.t list ->
  report

(** Race every procedure valid for the classified class — weak
    acyclicity, joint acyclicity, MFA, the sticky Büchi procedure, the
    guarded divergence search — under a shared cancellation token;
    first conclusive answer wins and the losers are folded into
    [procedures] with per-procedure wall-clock timings.

    With a parallel [pool] the racers genuinely race across domains
    (each running its inner searches inline — pool tasks must not
    resubmit to the pool); with the inline pool they run in a fixed
    priority order with an early exit.  The winner is always folded in
    priority order, so the reported answer and method are deterministic
    either way.  Conclusive answers cannot disagree (every racer is
    sound for the class it is entered for); a disagreement — a bug in a
    procedure — is surfaced as a ["portfolio.disagreement"] obs event
    and resolved in priority order.

    [prune] (default [true]) lets the sticky racer use subsumption
    pruning ({!Chase_automata.Buchi.with_subsumption}); verdicts are
    unaffected (DESIGN.md §10). *)
val decide_portfolio :
  ?sticky_max_states:int ->
  ?guarded_max_depth:int ->
  ?prune:bool ->
  ?pool:Chase_exec.Pool.t ->
  Chase_core.Tgd.t list ->
  report

val pp_answer : Format.formatter -> answer -> unit
val pp : Format.formatter -> report -> unit
