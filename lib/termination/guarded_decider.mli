(** A decision procedure for CTres∀∀(G) (paper Theorem 5.1), with the
    substitution documented in DESIGN.md: sound termination certificates
    (weak, joint or model-faithful acyclicity) and sound non-termination certificates (a database
    with validated divergence evidence, strengthened along the paper's §5
    pipeline into a chaseable abstract join tree, treeifying cyclic
    witnesses first). *)

open Chase_core
open Chase_engine

type termination_proof = Weakly_acyclic | Jointly_acyclic | Model_faithful_acyclic

type evidence = {
  database : Instance.t;  (** the witnessing database *)
  derivation : Derivation.t;  (** a diverging derivation prefix on it *)
  acyclic : bool;  (** whether [database] is acyclic (Def 5.4) *)
  treeified : Treeify.result option;  (** Thm 5.5 run, when cyclic *)
  abstract_tree : Abstract_join_tree.t option;  (** Def 5.8 encoding *)
  chaseable : bool;  (** Def 5.10 check on the abstract tree *)
}

type search_report = { candidates : int; explored_states : int }

type verdict =
  | Terminating of termination_proof
  | Non_terminating of evidence
  | No_divergence_found of search_report
      (** bounded-search evidence of termination, not a proof *)

(** Freeze the body of a TGD into a database (distinct constants, or one
    shared constant with [unify]). *)
val frozen_body : ?unify:bool -> Tgd.t -> Instance.t

(** The oblivious-chase critical database D* — not critical for the
    restricted chase (§1.2), but a useful candidate. *)
val critical_database : Tgd.t list -> Instance.t

(** Frozen bodies under every partition of the body variables (bounded
    by Bell(#vars); large TGDs fall back to the none/all pair). *)
val frozen_bodies_all_partitions : Tgd.t -> Instance.t list

(** The candidate databases the divergence search sweeps. *)
val candidate_databases : Tgd.t list -> Instance.t list

val default_max_depth : int

(** The candidate-database divergence sweep on its own — the
    non-termination half of {!decide}, raced directly by the decider
    portfolio.  Never returns [Terminating].  [cancel] is polled between
    chunks and before each candidate search; a cancelled sweep degrades
    to [No_divergence_found] with the partial counts.
    @raise Invalid_argument on unguarded or multi-head TGDs. *)
val search_divergence :
  ?max_depth:int ->
  ?max_states:int ->
  ?cancel:Chase_exec.Cancel.t ->
  ?pool:Chase_exec.Pool.t ->
  Tgd.t list ->
  verdict

(** [pool] parallelizes the candidate-database sweep in chunks; the
    first divergence hit in candidate order wins, so the verdict and the
    witnessing database are independent of [pool] (chunks past a hit are
    never evaluated, preserving the early exit).
    @raise Invalid_argument on unguarded or multi-head TGDs. *)
val decide :
  ?max_depth:int -> ?max_states:int -> ?pool:Chase_exec.Pool.t -> Tgd.t list -> verdict
