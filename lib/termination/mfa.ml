(* Model-faithful acyclicity (MFA) [Cuenca Grau et al., JAIR'13 — the
   paper's reference 16]: the strongest practical acyclicity notion.

   Skolemize the existential variables — z in σ becomes the term
   f_{σ,z}(x̄) over the frontier — and chase the critical database with
   the skolem (= semi-oblivious) chase: triggers agreeing on the frontier
   produce the same terms and fire once.  The set is MFA when no *cyclic*
   term appears: a skolem function nested inside its own arguments.  MFA
   implies termination of the skolem chase on every database, hence of
   the restricted chase: a sound termination certificate strictly
   subsuming weak and joint acyclicity (and incomparable with the
   restricted-only effects the paper captures — see the tests). *)

open Chase_core
open Chase_engine

type verdict =
  | Mfa of { atoms : int }  (* saturated with no cyclic term: certified *)
  | Cyclic_term of { tgd : Tgd.t; var : string }  (* the repeated skolem function *)
  | Budget of { atoms : int }  (* inconclusive *)

let critical_database tgds =
  let schema = Schema.of_tgds tgds in
  Schema.fold
    (fun p ar acc -> Instance.add (Atom.make p (List.init ar (fun _ -> Term.Const "c"))) acc)
    schema Instance.empty

module FnSet = Set.Make (struct
  type t = string * string  (* TGD name, existential variable *)

  let compare (a1, b1) (a2, b2) =
    let c = String.compare a1 a2 in
    if c <> 0 then c else String.compare b1 b2
end)

let default_max_steps = 20_000

(* The skolem null for (σ, h|fr, z): a digest-named stand-in for the
   term f_{σ,z}(h(x̄)). *)
let skolem_null tgd frontier_hom var =
  let key =
    Printf.sprintf "%s|%s|%s" (Tgd.name tgd) (Substitution.to_string frontier_hom) var
  in
  Term.Null ("sk" ^ String.sub (Digest.to_hex (Digest.string key)) 0 16)

let decide ?(max_steps = default_max_steps) ?(cancel = Chase_exec.Cancel.none) tgds =
  let history : (Term.t, FnSet.t) Hashtbl.t = Hashtbl.create 64 in
  let history_of t = Option.value ~default:FnSet.empty (Hashtbl.find_opt history t) in
  let cyclic = ref None in
  let db = critical_database tgds in
  (* semi-oblivious: one application per (σ, h|fr) *)
  let module KeySet = Set.Make (Trigger) in
  let applied = ref KeySet.empty in
  let queue = Queue.create () in
  let enqueue t =
    let key = Trigger.make (Trigger.tgd t) (Trigger.frontier_hom t) in
    if not (KeySet.mem key !applied) then begin
      applied := KeySet.add key !applied;
      Queue.add t queue
    end
  in
  Seq.iter enqueue (Trigger.all tgds db);
  let rec loop instance n =
    if !cyclic <> None then (instance, true)
    else if Queue.is_empty queue then (instance, true)
    else if n >= max_steps then (instance, false)
    else if n land 63 = 0 && Chase_exec.Cancel.cancelled cancel then (instance, false)
    else begin
      let trigger = Queue.pop queue in
      let tgd = Trigger.tgd trigger in
      let fr_hom = Trigger.frontier_hom trigger in
      let inherited =
        Term.Set.fold
          (fun t acc -> FnSet.union (history_of t) acc)
          (Trigger.frontier_terms trigger) FnSet.empty
      in
      (* build the skolem instantiation of the head *)
      let v =
        Term.Set.fold
          (fun x acc ->
            match x with
            | Term.Var var ->
                let fn = (Tgd.name tgd, var) in
                if FnSet.mem fn inherited then begin
                  (match !cyclic with None -> cyclic := Some (tgd, var) | Some _ -> ());
                  acc
                end
                else begin
                  let null = skolem_null tgd fr_hom var in
                  Hashtbl.replace history null
                    (FnSet.add fn (FnSet.union inherited (history_of null)));
                  Substitution.bind x null acc
                end
            | Term.Const _ | Term.Null _ -> acc)
          (Tgd.existential_vars tgd) fr_hom
      in
      if !cyclic <> None then (instance, true)
      else begin
        let produced = List.map (Substitution.apply_atom v) (Tgd.head tgd) in
        let after = List.fold_left (fun i a -> Instance.add a i) instance produced in
        List.iter
          (fun atom ->
            if not (Instance.mem atom instance) then
              Seq.iter enqueue (Trigger.involving tgds after atom))
          produced;
        loop after (n + 1)
      end
    end
  in
  let final, finished = loop db 0 in
  match !cyclic with
  | Some (tgd, var) -> Cyclic_term { tgd; var }
  | None ->
      if finished then Mfa { atoms = Instance.cardinal final }
      else Budget { atoms = Instance.cardinal final }

let is_mfa ?max_steps tgds =
  match decide ?max_steps tgds with Mfa _ -> true | Cyclic_term _ | Budget _ -> false
