(** Zero-dependency observability substrate for the chase engines.

    The library publishes four kinds of signals, all routed through one
    per-domain {!type:sink}:

    - {b counters} — monotonic event counts ({!incr}, {!count});
    - {b gauges} — last-value measurements such as pool sizes ({!gauge});
    - {b spans} — wall-clock timers scoped to a dynamic extent, nested
      along the thread of execution ({!span});
    - {b events} — structured one-shot records with typed fields
      ({!event}), e.g. one record per chase step when tracing.

    By default {e no sink is installed} and every signal is a single
    branch on a [ref] — the instrumented hot paths (join-plan probes,
    [Minstance.add], pool pushes) pay near-zero overhead; see
    [docs/OBSERVABILITY.md] for measured numbers.  Installing a sink
    ({!install}, {!with_sink}) turns the signals on for its dynamic
    extent.  Two sinks ship with the library: {!Stats} (in-memory
    aggregation, snapshot at the end) and {!Jsonl} (one JSON object per
    signal, the [--trace-json] format); {!tee} composes sinks.

    The module depends only on the OCaml stdlib and [unix]: the clock
    defaults to [Unix.gettimeofday] (wall time — honest for spans that
    cover parallel regions, where CPU time over- or under-reports), and
    {!set_clock} installs any other monotonically increasing source,
    re-anchoring the origin of {!now}.

    {b Domains.}  The sink and the span stack are domain-local: a
    freshly spawned domain (e.g. a [Chase_exec.Pool] worker) starts with
    no sink, so signals it emits are no-ops.  This keeps the bundled
    sinks — which are not thread-safe — confined to the domain that
    installed them, and makes observation passive under [--jobs N] by
    construction; parallel components report aggregate [pool.*] signals
    from the coordinating domain instead. *)

(** Field values of structured {!event} records. *)
type value = Int of int | Float of float | Str of string | Bool of bool

type sink = {
  on_counter : string -> int -> unit;  (** name, increment *)
  on_gauge : string -> int -> unit;  (** name, last value *)
  on_span : string -> float -> unit;
      (** dot-joined span path, elapsed seconds; called at span exit *)
  on_event : string -> (string * value) list -> unit;  (** name, fields *)
}

(** A sink that drops everything (useful as a [tee] identity). *)
val null : sink

(** [tee a b] forwards every signal to [a] and then to [b]. *)
val tee : sink -> sink -> sink

(** {1 Installation} *)

(** Install [s] as the calling domain's sink (replacing any current
    one).  Other domains are unaffected. *)
val install : sink -> unit

(** Remove the current sink; signals become no-ops again. *)
val uninstall : unit -> unit

(** Is a sink currently installed?  Instrumentation uses this to skip
    building expensive event payloads when nobody is listening. *)
val enabled : unit -> bool

(** The calling domain's current sink, if any.  Lets a component compose
    its own sink with whatever is already installed ([tee]) instead of
    replacing it — the serve layer tees per-session stats sinks with the
    process-wide [--stats]/[--trace-json] sink this way. *)
val current_sink : unit -> sink option

(** [with_sink s f] runs [f] with [s] installed, restoring the previous
    sink afterwards (also on exceptions). *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** [suspended f] runs [f] with {e no} sink installed, restoring the
    previous sink afterwards.  The bench harness wraps its timed
    closures in this so measured throughput stays sink-free. *)
val suspended : (unit -> 'a) -> 'a

(** {1 Clock} *)

(** Replace the time source (seconds, monotonically increasing) and
    re-anchor the origin of {!now} at the new source's current instant.
    The default is [Unix.gettimeofday] — wall time, correct for span
    durations even when worker domains burn CPU in parallel ([Sys.time]
    counts every domain's CPU and would skew them). *)
val set_clock : (unit -> float) -> unit

(** Seconds since {!reset_clock} (or process start) per the current
    clock; the [ts] field of {!Jsonl} records. *)
val now : unit -> float

(** Re-zero {!now}'s origin at the current instant. *)
val reset_clock : unit -> unit

(** {1 Signals}

    All of these are no-ops when no sink is installed. *)

(** [incr name] bumps counter [name] by 1 (the hot-path entry point). *)
val incr : string -> unit

(** [count name n] bumps counter [name] by [n]. *)
val count : string -> int -> unit

(** [gauge name v] records [v] as the latest value of gauge [name]. *)
val gauge : string -> int -> unit

(** [event name fields] emits one structured record.  Callers guard the
    construction of [fields] with {!enabled} when it allocates. *)
val event : string -> (string * value) list -> unit

(** [span name f] times [f], nesting under any enclosing span: the sink
    sees the dot-joined path (["decide.search"] for a ["search"] span
    inside a ["decide"] span).  Exceptions propagate; the span still
    closes. *)
val span : string -> (unit -> 'a) -> 'a

(** The current dot-joined span path, if inside one and a sink is on. *)
val span_path : unit -> string option

(** {1 Sinks} *)

(** In-memory aggregation: counters sum, gauges keep the last value,
    spans accumulate count and total elapsed time, events are counted
    per name.  Snapshot accessors return sorted associations. *)
module Stats : sig
  type t

  val create : unit -> t
  val sink : t -> sink

  (** Total for one counter (0 when never bumped). *)
  val counter : t -> string -> int

  val counters : t -> (string * int) list
  val gauges : t -> (string * int) list

  (** Per span path: (invocations, total elapsed seconds). *)
  val spans : t -> (string * (int * float)) list

  (** Events seen, per event name. *)
  val events : t -> (string * int) list

  (** Human-readable table (the [chasectl --stats] output). *)
  val pp : Format.formatter -> t -> unit
end

(** JSON-lines emission: every signal becomes one self-contained JSON
    object on its own line.  The schema (documented with examples in
    [docs/OBSERVABILITY.md]):

    - [{"ts": s, "kind": "counter", "name": n, "n": i}]
    - [{"ts": s, "kind": "gauge",   "name": n, "value": i}]
    - [{"ts": s, "kind": "span",    "name": path, "s": elapsed}]
    - [{"ts": s, "kind": "event",   "name": n, "span": path?,
        "fields": {...}}]

    [ts] is {!now} at emission.  [span] is present only inside a span. *)
module Jsonl : sig
  (** [sink write] sends each serialized line (no trailing newline) to
      [write]. *)
  val sink : (string -> unit) -> sink

  (** [channel_sink oc] writes newline-terminated records to [oc]. *)
  val channel_sink : out_channel -> sink

  (** JSON string-escape (no surrounding quotes); exposed for tests. *)
  val escape : string -> string
end
