(* Per-domain observability: counters, gauges, spans, events, routed
   through an optional sink (see obs.mli for the contract).

   Everything funnels through [current]; with no sink installed each
   signal is one domain-local load and one branch, so instrumentation
   can stay in hot paths unconditionally.  Both the sink and the span
   stack live in domain-local storage: a worker domain spawned by
   [Chase_exec.Pool] starts with no sink, so signals emitted from
   parallel tasks are no-ops and the (non-thread-safe) Stats/Jsonl
   sinks only ever run on the domain that installed them. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type sink = {
  on_counter : string -> int -> unit;
  on_gauge : string -> int -> unit;
  on_span : string -> float -> unit;
  on_event : string -> (string * value) list -> unit;
}

let null =
  {
    on_counter = (fun _ _ -> ());
    on_gauge = (fun _ _ -> ());
    on_span = (fun _ _ -> ());
    on_event = (fun _ _ -> ());
  }

let tee a b =
  {
    on_counter =
      (fun name n ->
        a.on_counter name n;
        b.on_counter name n);
    on_gauge =
      (fun name v ->
        a.on_gauge name v;
        b.on_gauge name v);
    on_span =
      (fun name s ->
        a.on_span name s;
        b.on_span name s);
    on_event =
      (fun name fields ->
        a.on_event name fields;
        b.on_event name fields);
  }

let current : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get_current () = Domain.DLS.get current
let set_current s = Domain.DLS.set current s

let install s = set_current (Some s)
let uninstall () = set_current None
let enabled () = get_current () <> None
let current_sink () = get_current ()

let with_current saved f =
  let prev = get_current () in
  set_current saved;
  Fun.protect ~finally:(fun () -> set_current prev) f

let with_sink s f = with_current (Some s) f
let suspended f = with_current None f

(* --- clock ---------------------------------------------------------- *)

(* Wall clock by default.  [Sys.time] (process CPU seconds) was the
   original default and silently skewed span durations whenever worker
   domains burned CPU in parallel regions — every domain's CPU time
   accrues to the process, so a [--jobs N] run could report spans longer
   than the wall time unless each entry point remembered to install
   [Unix.gettimeofday] itself.  Defaulting to the wall clock makes span
   durations honest everywhere; [set_clock] still accepts any
   monotonically increasing source (tests install a virtual one) and
   re-anchors the origin so [now] never jumps across clock changes. *)
let clock = ref Unix.gettimeofday
let origin = ref (Unix.gettimeofday ())

let set_clock c =
  clock := c;
  origin := c ()

let reset_clock () = origin := !clock ()
let now () = !clock () -. !origin

(* --- signals -------------------------------------------------------- *)

let incr name = match get_current () with None -> () | Some s -> s.on_counter name 1
let count name n = match get_current () with None -> () | Some s -> s.on_counter name n
let gauge name v = match get_current () with None -> () | Some s -> s.on_gauge name v
let event name fields = match get_current () with None -> () | Some s -> s.on_event name fields

let stack : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let span_path () =
  match (get_current (), Domain.DLS.get stack) with
  | None, _ | _, [] -> None
  | Some _, names -> Some (String.concat "." (List.rev names))

let span name f =
  match get_current () with
  | None -> f ()
  | Some _ ->
      Domain.DLS.set stack (name :: Domain.DLS.get stack);
      let path = String.concat "." (List.rev (Domain.DLS.get stack)) in
      let t0 = !clock () in
      Fun.protect
        ~finally:(fun () ->
          let dt = !clock () -. t0 in
          (match Domain.DLS.get stack with
          | _ :: rest -> Domain.DLS.set stack rest
          | [] -> ());
          match get_current () with None -> () | Some s -> s.on_span path dt)
        f

(* --- Stats sink ----------------------------------------------------- *)

module Stats = struct
  type t = {
    counters : (string, int) Hashtbl.t;
    gauges : (string, int) Hashtbl.t;
    spans : (string, int * float) Hashtbl.t;
    events : (string, int) Hashtbl.t;
  }

  let create () =
    {
      counters = Hashtbl.create 64;
      gauges = Hashtbl.create 16;
      spans = Hashtbl.create 16;
      events = Hashtbl.create 16;
    }

  let bump tbl name n =
    Hashtbl.replace tbl name (n + Option.value ~default:0 (Hashtbl.find_opt tbl name))

  let sink t =
    {
      on_counter = (fun name n -> bump t.counters name n);
      on_gauge = (fun name v -> Hashtbl.replace t.gauges name v);
      on_span =
        (fun name s ->
          let c, total = Option.value ~default:(0, 0.) (Hashtbl.find_opt t.spans name) in
          Hashtbl.replace t.spans name (c + 1, total +. s));
      on_event = (fun name _ -> bump t.events name 1);
    }

  let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

  let counter t name = Option.value ~default:0 (Hashtbl.find_opt t.counters name)
  let counters t = sorted t.counters
  let gauges t = sorted t.gauges
  let spans t = sorted t.spans
  let events t = sorted t.events

  let pretty_s s =
    if s < 1e-6 then Printf.sprintf "%.0f ns" (s *. 1e9)
    else if s < 1e-3 then Printf.sprintf "%.1f µs" (s *. 1e6)
    else if s < 1. then Printf.sprintf "%.2f ms" (s *. 1e3)
    else Printf.sprintf "%.2f s" s

  let pp ppf t =
    let first = ref true in
    let section title rows =
      if rows <> [] then begin
        if not !first then Format.pp_print_cut ppf ();
        first := false;
        Format.fprintf ppf "%s" title;
        let w = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 rows in
        List.iter
          (fun (k, v) ->
            Format.fprintf ppf "@,  %s%s  %s" k (String.make (w - String.length k) ' ') v)
          rows
      end
    in
    Format.fprintf ppf "@[<v>";
    section "counters" (List.map (fun (k, v) -> (k, string_of_int v)) (counters t));
    section "gauges (last)" (List.map (fun (k, v) -> (k, string_of_int v)) (gauges t));
    section "spans"
      (List.map
         (fun (k, (c, total)) ->
           (k, Printf.sprintf "%d call%s, %s" c (if c = 1 then "" else "s") (pretty_s total)))
         (spans t));
    section "events" (List.map (fun (k, v) -> (k, string_of_int v)) (events t));
    Format.fprintf ppf "@]"
end

(* --- JSON-lines sink ------------------------------------------------ *)

module Jsonl = struct
  let escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let float_lit f =
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
    else Printf.sprintf "%.9g" f

  let value_lit = function
    | Int i -> string_of_int i
    | Float f -> float_lit f
    | Str s -> "\"" ^ escape s ^ "\""
    | Bool b -> string_of_bool b

  let head buf kind name =
    Buffer.add_string buf
      (Printf.sprintf "{\"ts\": %s, \"kind\": \"%s\", \"name\": \"%s\"" (float_lit (now ()))
         kind (escape name))

  let sink write =
    let line fill =
      let buf = Buffer.create 128 in
      fill buf;
      Buffer.add_char buf '}';
      write (Buffer.contents buf)
    in
    {
      on_counter =
        (fun name n ->
          line (fun buf ->
              head buf "counter" name;
              Buffer.add_string buf (Printf.sprintf ", \"n\": %d" n)));
      on_gauge =
        (fun name v ->
          line (fun buf ->
              head buf "gauge" name;
              Buffer.add_string buf (Printf.sprintf ", \"value\": %d" v)));
      on_span =
        (fun name s ->
          line (fun buf ->
              head buf "span" name;
              Buffer.add_string buf (Printf.sprintf ", \"s\": %s" (float_lit s))));
      on_event =
        (fun name fields ->
          line (fun buf ->
              head buf "event" name;
              (match span_path () with
              | Some p -> Buffer.add_string buf (Printf.sprintf ", \"span\": \"%s\"" (escape p))
              | None -> ());
              Buffer.add_string buf ", \"fields\": {";
              List.iteri
                (fun i (k, v) ->
                  if i > 0 then Buffer.add_string buf ", ";
                  Buffer.add_string buf (Printf.sprintf "\"%s\": %s" (escape k) (value_lit v)))
                fields;
              Buffer.add_char buf '}'));
    }

  let channel_sink oc =
    sink (fun s ->
        output_string oc s;
        output_char oc '\n')
end
