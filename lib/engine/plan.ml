(* Compiled join plans (see plan.mli for the design rationale).

   A TGD's variables are interned into integer slots; matching binds
   into a scratch [Term.t option array] with an explicit undo trail, so
   the innermost loop performs no map operations at all.  The body atom
   order and the per-atom index candidates are chosen once, at compile
   time, by a greedy most-constrained-first heuristic; at runtime only
   the cheapest of the statically-legal indexes is probed. *)

open Chase_core

type pat = Fixed of Term.t | S of int  (* slot *)

type step = {
  pred : string;
  arity : int;
  pats : pat array;
  bound : (int * pat) array;
      (* positions statically determined before this step is matched:
         fixed terms, and slots bound by earlier atoms of the plan.
         Used only to select the candidate index. *)
}

type t = {
  tgd : Tgd.t;
  id : int;  (* unique per compiled plan; memo key component *)
  nslots : int;
  var_of_slot : Term.t array;
  body_slots : int array;  (* slots of body variables, for emit *)
  body_order : step array;  (* full enumeration *)
  delta : (step * step array) array;
      (* per body atom index: the seed step (matched directly against a
         delta atom) and the compiled suffix for the remaining atoms *)
  head_steps : step array;  (* head atoms, frontier slots pre-bound *)
  frontier_vars : Term.t array;  (* sorted; aligned with frontier_slots *)
  frontier_slots : int array;
}

let tgd p = p.tgd

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let next_id = ref 0

let compile tgd =
  let body = Array.of_list (Tgd.body tgd) in
  let head = Array.of_list (Tgd.head tgd) in
  (* Intern every variable of the TGD into a slot. *)
  let slot_of_var : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let vars = ref [] in
  let nslots = ref 0 in
  let slot v =
    match Hashtbl.find_opt slot_of_var v with
    | Some s -> s
    | None ->
        let s = !nslots in
        Hashtbl.add slot_of_var v s;
        vars := Term.Var v :: !vars;
        incr nslots;
        s
  in
  let pat_of_term = function Term.Var v -> S (slot v) | t -> Fixed t in
  let pats_of_atom a = Array.map pat_of_term (Atom.args_a a) in
  let body_pats = Array.map pats_of_atom body in
  let head_pats = Array.map pats_of_atom head in
  let var_of_slot () = Array.of_list (List.rev !vars) in
  (* A step for atom [a], given the set of slots bound beforehand. *)
  let make_step a pats bound_slots =
    let bound = ref [] in
    Array.iteri
      (fun i p ->
        match p with
        | Fixed _ -> bound := (i, p) :: !bound
        | S s -> if bound_slots.(s) then bound := (i, p) :: !bound)
      pats;
    { pred = Atom.pred a; arity = Atom.arity a; pats; bound = Array.of_list (List.rev !bound) }
  in
  (* Constrained-position count of an atom under the current bound set:
     fixed terms, already-bound slots, and within-atom repeats all prune
     candidates, so they all count toward selectivity. *)
  let score pats bound_slots =
    let seen = Hashtbl.create 8 in
    let c = ref 0 in
    Array.iter
      (fun p ->
        match p with
        | Fixed _ -> incr c
        | S s ->
            if bound_slots.(s) || Hashtbl.mem seen s then incr c else Hashtbl.add seen s ())
      pats;
    !c
  in
  let mark_bound bound_slots pats =
    Array.iter (function S s -> bound_slots.(s) <- true | Fixed _ -> ()) pats
  in
  (* Greedy order over the given atom indices, starting from a bound-slot
     set; ties break toward the original body order for determinism. *)
  let greedy_order indices initially_bound =
    let bound_slots = Array.make (max 1 !nslots) false in
    Array.iter (fun s -> bound_slots.(s) <- true) initially_bound;
    let remaining = ref indices in
    let order = ref [] in
    while !remaining <> [] do
      let best =
        List.fold_left
          (fun best i ->
            let sc = score body_pats.(i) bound_slots in
            match best with Some (_, bsc) when bsc >= sc -> best | _ -> Some (i, sc))
          None !remaining
        |> Option.get |> fst
      in
      remaining := List.filter (fun i -> i <> best) !remaining;
      order := (make_step body.(best) body_pats.(best) bound_slots, best) :: !order;
      mark_bound bound_slots body_pats.(best)
    done;
    List.rev !order
  in
  let all_indices = List.init (Array.length body) Fun.id in
  let body_order = Array.of_list (List.map fst (greedy_order all_indices [||])) in
  let slots_of_pats pats =
    Array.to_list pats |> List.filter_map (function S s -> Some s | Fixed _ -> None)
  in
  let delta =
    Array.init (Array.length body) (fun i ->
        let no_bound = Array.make (max 1 !nslots) false in
        let seed = make_step body.(i) body_pats.(i) no_bound in
        let rest = List.filter (fun j -> j <> i) all_indices in
        let suffix =
          greedy_order rest (Array.of_list (slots_of_pats body_pats.(i))) |> List.map fst
        in
        (seed, Array.of_list suffix))
  in
  let frontier_vars = Array.of_list (Term.Set.elements (Tgd.frontier tgd)) in
  let frontier_slots =
    Array.map
      (function Term.Var v -> Hashtbl.find slot_of_var v | _ -> assert false)
      frontier_vars
  in
  let head_steps =
    (* greedy over head atoms with the frontier pre-bound *)
    let bound_slots = Array.make (max 1 !nslots) false in
    Array.iter (fun s -> bound_slots.(s) <- true) frontier_slots;
    let remaining = ref (List.init (Array.length head) Fun.id) in
    let order = ref [] in
    while !remaining <> [] do
      let best =
        List.fold_left
          (fun best i ->
            let sc = score head_pats.(i) bound_slots in
            match best with Some (_, bsc) when bsc >= sc -> best | _ -> Some (i, sc))
          None !remaining
        |> Option.get |> fst
      in
      remaining := List.filter (fun i -> i <> best) !remaining;
      order := make_step head.(best) head_pats.(best) bound_slots :: !order;
      mark_bound bound_slots head_pats.(best)
    done;
    Array.of_list (List.rev !order)
  in
  let body_slots =
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun pats ->
        List.iter (fun s -> Hashtbl.replace seen s ()) (slots_of_pats pats))
      body_pats;
    Array.of_list (Hashtbl.fold (fun s () acc -> s :: acc) seen [])
  in
  let id = !next_id in
  incr next_id;
  {
    tgd;
    id;
    nslots = !nslots;
    var_of_slot = var_of_slot ();
    body_slots;
    body_order;
    delta;
    head_steps;
    frontier_vars;
    frontier_slots;
  }

module TgdMap = Map.Make (Tgd)

let cache = ref TgdMap.empty
let cache_mutex = Mutex.create ()

(* The read path is lock-free (a racy read of the immutable map at worst
   misses a fresh entry and falls through to the locked path); compile
   and insert are serialized so concurrent domains can never mint two
   plans — and two [id]s, the memo key — for one TGD. *)
let of_tgd tgd =
  match TgdMap.find_opt tgd !cache with
  | Some p -> p
  | None ->
      Mutex.lock cache_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock cache_mutex)
        (fun () ->
          match TgdMap.find_opt tgd !cache with
          | Some p -> p
          | None ->
              Obs.incr "plan.compile";
              let p = compile tgd in
              cache := TgdMap.add tgd p !cache;
              p)

(* ------------------------------------------------------------------ *)
(* Sources                                                             *)
(* ------------------------------------------------------------------ *)

(* Generic sources present atoms as [Atom.t] and are matched
   structurally; the columnar source is probed through id-compare
   loops of its own (below), sharing only the compiled plans. *)
type generic = {
  iter_pred : string -> (Atom.t -> unit) -> unit;
  iter_pos_term : string -> int -> Term.t -> (Atom.t -> unit) -> unit;
  count_pos_term : string -> int -> Term.t -> int;
}

type source = Generic of generic | Columnar of Cinstance.t

let source_of_instance i =
  Generic
    {
      iter_pred = (fun p f -> Atom.Set.iter f (Instance.with_pred_set i p));
      iter_pos_term = (fun p k t f -> Atom.Set.iter f (Instance.with_pred_pos_term i p k t));
      count_pos_term = (fun p k t -> Atom.Set.cardinal (Instance.with_pred_pos_term i p k t));
    }

let source_of_minstance m =
  Generic
    {
      iter_pred = (fun p f -> List.iter f (Minstance.with_pred m p));
      iter_pos_term = (fun p k t f -> List.iter f (Minstance.with_pos_term m p k t));
      count_pos_term = (fun p k t -> Minstance.pos_term_count m p k t);
    }

let source_of_cinstance c = Columnar c

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

(* Match [atom] against the step's pattern, binding fresh slots into
   [env] and recording them on [trail] from cursor [tcur].  Returns the
   new trail cursor, or -1 with [env] restored. *)
let try_match st (env : Term.t option array) (trail : int array) tcur atom =
  if Atom.arity atom <> st.arity then -1
  else begin
    let cur = ref tcur in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < st.arity do
      let v = Atom.arg atom !i in
      (match st.pats.(!i) with
      | Fixed t -> if not (Term.equal t v) then ok := false
      | S s -> (
          match env.(s) with
          | Some u -> if not (Term.equal u v) then ok := false
          | None ->
              env.(s) <- Some v;
              trail.(!cur) <- s;
              incr cur));
      incr i
    done;
    if !ok then !cur
    else begin
      for j = tcur to !cur - 1 do
        env.(trail.(j)) <- None
      done;
      -1
    end
  end

(* Candidate atoms for a step: cheapest statically-bound index, else a
   predicate scan.  An index probe of cardinality 0 short-circuits. *)
let iter_candidates g st env f =
  if Array.length st.bound = 0 then begin
    Obs.incr "plan.probe.scan";
    g.iter_pred st.pred f
  end
  else begin
    let best_pos = ref (-1) and best_t = ref (Term.Const "") and best_c = ref max_int in
    Array.iter
      (fun (pos, p) ->
        let v = match p with Fixed t -> t | S s -> Option.get env.(s) in
        let c = g.count_pos_term st.pred pos v in
        if c < !best_c then begin
          best_c := c;
          best_pos := pos;
          best_t := v
        end)
      st.bound;
    if !best_c > 0 then begin
      Obs.incr "plan.probe.index";
      g.iter_pos_term st.pred !best_pos !best_t f
    end
    else Obs.incr "plan.probe.empty"
  end

let run_steps g steps env trail start_cursor emit =
  let n = Array.length steps in
  let rec go k tcur =
    if k >= n then emit ()
    else
      let st = steps.(k) in
      iter_candidates g st env (fun atom ->
          let cur' = try_match st env trail tcur atom in
          if cur' >= 0 then begin
            go (k + 1) cur';
            for j = tcur to cur' - 1 do
              env.(trail.(j)) <- None
            done
          end)
  in
  go 0 start_cursor

let sub_of_env p env =
  Array.fold_left
    (fun s slot ->
      match env.(slot) with
      | Some v -> Substitution.bind p.var_of_slot.(slot) v s
      | None -> s)
    Substitution.empty p.body_slots

let scratch p = (Array.make (max 1 p.nslots) None, Array.make (max 1 p.nslots) 0)

(* ------------------------------------------------------------------ *)
(* Columnar runtime                                                    *)
(* ------------------------------------------------------------------ *)

(* The same compiled steps, run against {!Chase_core.Cinstance} columns:
   the scratch env holds dense term ids (-1 = unbound) and the innermost
   loop compares ints, never [Term.t] structure.  Every lookup goes
   through the read-only [Cinstance.find_id] — a term the store never
   interned occurs in no row, so it simply kills the match.  Interning
   on the read path is forbidden: the parallel activity scan probes a
   frozen store from many domains. *)

(* A step's patterns resolved against a concrete store: [>= 0] a fixed
   term id, [<= -2] the slot [-p - 2], [-1] a fixed term the store never
   interned (the step can match nothing at all). *)
let ipats_of ci st =
  Array.map
    (function
      | S s -> -s - 2
      | Fixed t -> ( match Cinstance.find_id ci t with -1 -> -1 | id -> id))
    st.pats

(* A resolved step: its relation, live columns and int-encoded pats,
   fetched once per enumeration (no adds happen mid-enumeration). *)
type cstep = { cst : step; crel : Cinstance.Rel.t; ccols : int array array; ipats : int array }

exception Dead_step

(* [None] when some step can match nothing — missing relation or an
   un-interned fixed term — making the whole conjunction empty. *)
let resolve_steps ci steps =
  match
    Array.map
      (fun st ->
        match Cinstance.rel ci st.pred st.arity with
        | None -> raise Dead_step
        | Some crel ->
            let ipats = ipats_of ci st in
            if Array.exists (fun p -> p = -1) ipats then raise Dead_step;
            { cst = st; crel; ccols = Cinstance.Rel.cols crel; ipats })
      steps
  with
  | csteps -> Some csteps
  | exception Dead_step -> None

(* Row-matching twin of [try_match]: cell [i] of [row] against
   [ipats.(i)]. *)
let try_match_row cols ipats arity (env : int array) (trail : int array) tcur row =
  let cur = ref tcur in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < arity do
    let p = ipats.(!i) in
    let v = cols.(!i).(row) in
    if p >= 0 then begin if p <> v then ok := false end
    else begin
      let s = -p - 2 in
      let u = env.(s) in
      if u >= 0 then begin if u <> v then ok := false end
      else begin
        env.(s) <- v;
        trail.(!cur) <- s;
        incr cur
      end
    end;
    incr i
  done;
  if !ok then !cur
  else begin
    for j = tcur to !cur - 1 do
      env.(trail.(j)) <- -1
    done;
    -1
  end

(* Seed twin: match the id tuple of a delta atom instead of a row. *)
let try_match_ids ids ipats arity (env : int array) (trail : int array) tcur =
  let cur = ref tcur in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < arity do
    let p = ipats.(!i) in
    let v = ids.(!i) in
    if p >= 0 then begin if p <> v then ok := false end
    else begin
      let s = -p - 2 in
      let u = env.(s) in
      if u >= 0 then begin if u <> v then ok := false end
      else begin
        env.(s) <- v;
        trail.(!cur) <- s;
        incr cur
      end
    end;
    incr i
  done;
  if !ok then !cur
  else begin
    for j = tcur to !cur - 1 do
      env.(trail.(j)) <- -1
    done;
    -1
  end

(* Candidate rows for a resolved step: cheapest posting list among the
   statically bound positions, else a full relation scan — the same
   policy (and Obs counters) as the generic [iter_candidates]. *)
let iter_candidates_c cs (env : int array) f =
  if Array.length cs.cst.bound = 0 then begin
    Obs.incr "plan.probe.scan";
    let n = Cinstance.Rel.rows cs.crel in
    for row = 0 to n - 1 do
      f row
    done
  end
  else begin
    let best_pos = ref (-1) and best_id = ref (-1) and best_c = ref max_int in
    Array.iter
      (fun (pos, _) ->
        let p = cs.ipats.(pos) in
        let id = if p >= 0 then p else env.(-p - 2) in
        let c = Cinstance.Rel.posting_count cs.crel pos id in
        if c < !best_c then begin
          best_c := c;
          best_pos := pos;
          best_id := id
        end)
      cs.cst.bound;
    if !best_c > 0 then begin
      Obs.incr "plan.probe.index";
      Cinstance.Rel.iter_posting cs.crel !best_pos !best_id f
    end
    else Obs.incr "plan.probe.empty"
  end

let run_steps_c csteps (env : int array) trail start_cursor emit =
  let n = Array.length csteps in
  let rec go k tcur =
    if k >= n then emit ()
    else
      let cs = csteps.(k) in
      let arity = cs.cst.arity in
      iter_candidates_c cs env (fun row ->
          let cur' = try_match_row cs.ccols cs.ipats arity env trail tcur row in
          if cur' >= 0 then begin
            go (k + 1) cur';
            for j = tcur to cur' - 1 do
              env.(trail.(j)) <- -1
            done
          end)
  in
  go 0 start_cursor

let sub_of_env_c p ci (env : int array) =
  Array.fold_left
    (fun s slot ->
      let id = env.(slot) in
      if id < 0 then s else Substitution.bind p.var_of_slot.(slot) (Cinstance.term_of_id ci id) s)
    Substitution.empty p.body_slots

let cscratch p = (Array.make (max 1 p.nslots) (-1), Array.make (max 1 p.nslots) 0)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let iter_homs p src f =
  match src with
  | Generic g ->
      let env, trail = scratch p in
      run_steps g p.body_order env trail 0 (fun () -> f (sub_of_env p env))
  | Columnar ci -> (
      match resolve_steps ci p.body_order with
      | None -> ()
      | Some csteps ->
          let env, trail = cscratch p in
          run_steps_c csteps env trail 0 (fun () -> f (sub_of_env_c p ci env)))

let iter_delta_homs p src atom f =
  let pred = Atom.pred atom in
  match src with
  | Generic g ->
      Array.iter
        (fun (seed, suffix) ->
          (* the delta atom comes from outside the per-predicate indexes, so
             the predicate must be checked here *)
          if String.equal seed.pred pred then begin
            let env, trail = scratch p in
            let cur = try_match seed env trail 0 atom in
            if cur >= 0 then begin
              Obs.incr "plan.delta.seed";
              run_steps g suffix env trail cur (fun () -> f (sub_of_env p env))
            end
          end)
        p.delta
  | Columnar ci ->
      let arity = Atom.arity atom in
      let aids = Array.init arity (fun i -> Cinstance.find_id ci (Atom.arg atom i)) in
      (* delta atoms are always already in the store (engines add before
         discovering), so their args are interned; if not, no stored row
         can join with them and there is nothing to seed *)
      if not (Array.exists (fun id -> id < 0) aids) then
        Array.iter
          (fun (seed, suffix) ->
            if String.equal seed.pred pred && seed.arity = arity then begin
              let ipats = ipats_of ci seed in
              if not (Array.exists (fun q -> q = -1) ipats) then begin
                let env, trail = cscratch p in
                let cur = try_match_ids aids ipats arity env trail 0 in
                if cur >= 0 then begin
                  Obs.incr "plan.delta.seed";
                  match resolve_steps ci suffix with
                  | None -> ()
                  | Some csteps ->
                      run_steps_c csteps env trail cur (fun () -> f (sub_of_env_c p ci env))
                end
              end
            end)
          p.delta

exception Sat

let head_satisfied p src hom =
  match src with
  | Generic g -> (
      let env, trail = scratch p in
      Array.iteri
        (fun k slot -> env.(slot) <- Some (Substitution.apply_term hom p.frontier_vars.(k)))
        p.frontier_slots;
      try
        run_steps g p.head_steps env trail 0 (fun () -> raise Sat);
        false
      with Sat -> true)
  | Columnar ci -> (
      match resolve_steps ci p.head_steps with
      | None -> false
      | Some csteps -> (
          let env, trail = cscratch p in
          let known = ref true in
          Array.iteri
            (fun k slot ->
              let id = Cinstance.find_id ci (Substitution.apply_term hom p.frontier_vars.(k)) in
              if id < 0 then known := false else env.(slot) <- id)
            p.frontier_slots;
          (* a frontier term the store never saw occurs in no row, so no
             extension can map the head in *)
          !known
          &&
          try
            run_steps_c csteps env trail 0 (fun () -> raise Sat);
            false
          with Sat -> true))

let frontier_image p hom =
  Array.fold_right (fun v acc -> Substitution.apply_term hom v :: acc) p.frontier_vars []

module KeyTbl = Hashtbl.Make (struct
  type t = int * Term.t list

  let equal (i1, ts1) (i2, ts2) = Int.equal i1 i2 && List.equal Term.equal ts1 ts2

  let hash (i, ts) =
    List.fold_left (fun acc t -> (acc * 65599) + Term.hash t) i ts land max_int
end)

module Head_memo = struct
  type nonrec t = unit KeyTbl.t

  let create () = KeyTbl.create 256

  let is_active memo p src hom =
    let key = (p.id, frontier_image p hom) in
    if KeyTbl.mem memo key then begin
      Obs.incr "plan.memo.hit";
      false
    end
    else begin
      Obs.incr "plan.memo.miss";
      if head_satisfied p src hom then begin
        KeyTbl.add memo key ();
        false
      end
      else true
    end

  (* The next two support speculative parallel scans: workers run the
     memo-free [head_satisfied] (the memo is single-domain) and the
     coordinator folds their verdicts back in.  Sound for the same
     monotonicity reason as [is_active]'s cache. *)
  let known_inactive memo p hom = KeyTbl.mem memo (p.id, frontier_image p hom)
  let record memo p hom = KeyTbl.replace memo (p.id, frontier_image p hom) ()
end
