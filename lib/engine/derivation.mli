(** Chase derivations (paper §3.2). *)

open Chase_core

type step = {
  index : int;
  trigger : Trigger.t;
  produced : Atom.t list;
  frontier : Term.Set.t;  (** frontier terms of the produced atoms *)
  after : Instance.t Lazy.t;
      (** snapshot right after this step; lazy so engines on a mutable
          backend only pay for persistent snapshots that are inspected *)
}

(** Forced snapshot right after the step. *)
val step_after : step -> Instance.t

type status =
  | Terminated  (** no active trigger remains — a finite, valid derivation *)
  | Out_of_budget  (** the step budget ran out with active triggers left *)

type t

val make : database:Instance.t -> steps:step list -> status:status -> t
val database : t -> Instance.t

(** Steps in application order. *)
val steps : t -> step list

val status : t -> status
val length : t -> int

(** The last instance of the sequence. *)
val final : t -> Instance.t

(** [instance_at d i] is Iᵢ (I₀ = the database). *)
val instance_at : t -> int -> Instance.t

val produced_atoms : t -> Atom.t list
val terminated : t -> bool

(** Number of atoms added beyond the database. *)
val growth : t -> int

(** Triggers still active on the final instance. *)
val active_triggers_at_end : Tgd.t list -> t -> Trigger.t list

(** Internal consistency check: every step applied an active trigger to the
    previous instance.  Used by tests and certificate checking. *)
val validate : Tgd.t list -> t -> bool

val pp : Format.formatter -> t -> unit
