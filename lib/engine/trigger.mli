(** Triggers and trigger application (paper Def 3.1). *)

open Chase_core

type t

val make : Tgd.t -> Substitution.t -> t
val tgd : t -> Tgd.t
val hom : t -> Substitution.t
val compare : t -> t -> int
val equal : t -> t -> bool

(** Structural hash compatible with [equal] (for hashed dedup sets). *)
val hash : t -> int

(** h|fr(σ). *)
val frontier_hom : t -> Substitution.t

(** All triggers for the TGDs on the instance, via compiled plans
    ({!Plan}).  Materialised eagerly; safe to retraverse. *)
val all : Tgd.t list -> Instance.t -> t Seq.t

(** Triggers whose body match uses the given atom — the incremental
    frontier of the chase, via compiled delta plans. *)
val involving : Tgd.t list -> Instance.t -> Atom.t -> t Seq.t

(** Active trigger test: no extension of [h|fr(σ)] maps the head into the
    instance. *)
val is_active : Instance.t -> t -> bool

(** Reference implementations on the generic homomorphism search — the
    oracle that the compiled-plan paths are property-tested against. *)

val all_naive : Tgd.t list -> Instance.t -> t Seq.t
val involving_naive : Tgd.t list -> Instance.t -> Atom.t -> t Seq.t
val is_active_naive : Instance.t -> t -> bool

(** The canonical null c^{σ,h}_x for an existential variable name [x]. *)
val canonical_null : t -> string -> Term.t

(** The head instantiation [v] of Def 3.1.  With [gen], existential
    witnesses are fresh nulls from the generator; otherwise they are the
    canonical nulls, making [result] deterministic in the trigger. *)
val head_instantiation : ?gen:Term.Gen.t -> t -> Substitution.t

(** result(σ,h): the produced atoms (a singleton for single-head TGDs). *)
val result : ?gen:Term.Gen.t -> t -> Atom.t list

(** The frontier terms of the produced atoms — what ≺s must fix. *)
val frontier_terms : t -> Term.Set.t

(** One application I⟨σ,h⟩J; returns J and the produced atoms. *)
val apply : ?gen:Term.Gen.t -> Instance.t -> t -> Instance.t * Atom.t list

val to_string : t -> string
val pp : Format.formatter -> t -> unit
