(* The real oblivious chase ochase(D,T) (paper Def 3.3).

   A labeled directed graph: one node per database atom, and one node per
   (TGD, homomorphism, parent-node tuple).  Unlike the (set-based)
   oblivious chase, copies of the same atom produced by different parent
   tuples are distinct nodes — ochase is a *multiset* of atoms with an
   unambiguous parent relation ≺p (Example 3.2 motivates this).

   The full object is infinite whenever the oblivious chase is; we
   materialize it breadth-first up to node/depth budgets.  Node depth is
   1 + the maximal parent depth; round r creates exactly the nodes of
   depth r, so the truncation is depth-complete: if [complete] is false,
   every node of depth < the reached horizon is present. *)

open Chase_core

type node = {
  id : int;
  depth : int;
  atom : Atom.t;  (* λ(v) *)
  origin : Trigger.t option;  (* τ(v); None (⊥) for database atoms *)
  parents : int array;  (* ≺p, aligned with the body atoms of the TGD *)
}

type ibucket = { mutable ids : int list; mutable card : int }
(* one (pred, pos, term) index entry; ids descending *)

type t = {
  nodes : node array;
  by_pred : (string, int list) Hashtbl.t;  (* pred -> node ids, ascending *)
  complete : bool;
  horizon : int;  (* all nodes of depth <= horizon are present *)
}

let nodes g = g.nodes
let node g id = g.nodes.(id)
let size g = Array.length g.nodes
let complete g = g.complete
let horizon g = g.horizon

let atoms g = Array.to_list (Array.map (fun n -> n.atom) g.nodes)

let atom_set g = Array.fold_left (fun i n -> Instance.add n.atom i) Instance.empty g.nodes

let copies g atom =
  Array.fold_left (fun c n -> if Atom.equal n.atom atom then c + 1 else c) 0 g.nodes

let parents g id = Array.to_list g.nodes.(id).parents

let children g id =
  Array.fold_left
    (fun acc n -> if Array.exists (Int.equal id) n.parents then n.id :: acc else acc)
    [] g.nodes
  |> List.rev

let nodes_with_pred g p =
  match Hashtbl.find_opt g.by_pred p with Some ids -> List.rev ids | None -> []

let default_max_nodes = 2000
let default_max_depth = 64

let build ?(max_nodes = default_max_nodes) ?(max_depth = default_max_depth) tgds database =
  Obs.span "ochase.build" @@ fun () ->
  let store : (int, node) Hashtbl.t = Hashtbl.create 256 in
  let count = ref 0 in
  let by_pred : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  (* Secondary index (pred, position, term) -> node ids, descending like
     [by_pred]; lets [matches_for] probe only nodes agreeing with the
     bindings accumulated so far instead of scanning the predicate. *)
  let by_term : (string * int * Term.t, ibucket) Hashtbl.t = Hashtbl.create 64 in
  let dedup : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let add_node depth atom origin parents =
    Obs.incr "ochase.nodes";
    let n = { id = !count; depth; atom; origin; parents } in
    incr count;
    Hashtbl.add store n.id n;
    let prev = Option.value ~default:[] (Hashtbl.find_opt by_pred (Atom.pred atom)) in
    Hashtbl.replace by_pred (Atom.pred atom) (n.id :: prev);
    Array.iteri
      (fun pos t ->
        let key = (Atom.pred atom, pos, t) in
        match Hashtbl.find_opt by_term key with
        | Some b ->
            b.ids <- n.id :: b.ids;
            b.card <- b.card + 1
        | None -> Hashtbl.add by_term key { ids = [ n.id ]; card = 1 })
      (Atom.args_a atom);
    n
  in
  Instance.iter (fun a -> ignore (add_node 0 a None [||])) database;
  let node_by_id id = Hashtbl.find store id in
  (* Candidate node ids for a body atom under the current bindings: the
     most selective (pred, pos, term) index among the determined
     positions, else the whole predicate.  Both are descending id lists
     and the survivors of the match filter come out in the same relative
     order either way, so node ids are assigned exactly as with a plain
     predicate scan. *)
  let candidate_ids gamma sub =
    let n = Atom.arity gamma in
    let best = ref None in
    for i = 0 to n - 1 do
      let t = Atom.arg gamma i in
      let value = if Term.is_rigid t then Some t else Substitution.find_opt t sub in
      match value with
      | None -> ()
      | Some v ->
          let card, ids =
            match Hashtbl.find_opt by_term (Atom.pred gamma, i, v) with
            | Some b -> (b.card, b.ids)
            | None -> (0, [])
          in
          (match !best with Some (c, _) when c <= card -> () | _ -> best := Some (card, ids))
    done;
    match !best with
    | Some (_, ids) -> ids
    | None -> Option.value ~default:[] (Hashtbl.find_opt by_pred (Atom.pred gamma))
  in
  (* Enumerate, for one TGD, all (hom, parent tuple) pairs whose maximal
     parent depth is exactly [target_depth - 1]. *)
  let matches_for tgd target_depth emit =
    let body = Array.of_list (Tgd.body tgd) in
    let m = Array.length body in
    let chosen = Array.make m (-1) in
    let rec go i sub max_d =
      if i >= m then begin
        if max_d = target_depth - 1 then emit sub (Array.copy chosen)
      end
      else
        let gamma = body.(i) in
        List.iter
          (fun id ->
            let n = node_by_id id in
            if n.depth < target_depth then
              match Homomorphism.match_atom ~pattern:gamma ~target:n.atom sub with
              | None -> ()
              | Some sub' ->
                  chosen.(i) <- id;
                  go (i + 1) sub' (max max_d n.depth))
          (candidate_ids gamma sub)
    in
    go 0 Substitution.empty (-1)
  in
  let over_budget = ref false in
  let rec rounds depth =
    if depth > max_depth then depth - 1
    else begin
      Obs.incr "ochase.rounds";
      let added = ref false in
      List.iter
        (fun tgd ->
          matches_for tgd depth (fun hom parent_ids ->
              if !count < max_nodes then begin
                let trigger = Trigger.make tgd hom in
                let key =
                  Printf.sprintf "%s|%s|%s" (Tgd.name tgd)
                    (Substitution.to_string hom)
                    (String.concat ","
                       (List.map string_of_int (Array.to_list parent_ids)))
                in
                if Hashtbl.mem dedup key then Obs.incr "ochase.dedup"
                else begin
                  Hashtbl.add dedup key ();
                  (* Single-head: one produced atom; multi-head real
                     oblivious chase is out of the paper's scope. *)
                  match Trigger.result trigger with
                  | [ atom ] ->
                      ignore (add_node depth atom (Some trigger) parent_ids);
                      added := true
                  | _ -> invalid_arg "Real_oblivious.build: single-head TGDs only"
                end
              end
              else over_budget := true))
        tgds;
      if !over_budget then depth - 1 else if not !added then depth - 1 else rounds (depth + 1)
    end
  in
  let horizon = rounds 1 in
  Obs.gauge "ochase.horizon" horizon;
  let arr = Array.init !count (fun id -> Hashtbl.find store id) in
  { nodes = arr; by_pred; complete = not !over_budget && horizon < max_depth; horizon }

(* λ(v) ≺s λ(u) over the graph (the stop relation of §3.1): u must be a
   generated node; its frontier terms come from its trigger. *)
let node_stops g ~stopper ~stopped =
  match g.nodes.(stopped).origin with
  | None -> false
  | Some trigger ->
      Stop.stops
        ~frontier:(Trigger.frontier_terms trigger)
        ~candidate:g.nodes.(stopper).atom ~result:g.nodes.(stopped).atom

let pp ppf g =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun n ->
      Format.fprintf ppf "%3d [d%d] %s  %s  parents:[%s]@," n.id n.depth
        (Atom.to_string n.atom)
        (match n.origin with None -> "⊥" | Some t -> Trigger.to_string t)
        (String.concat "," (List.map string_of_int (Array.to_list n.parents))))
    g.nodes;
  Format.fprintf ppf "complete: %b, horizon: %d@]" g.complete g.horizon
