(* Triggers and trigger application (paper Def 3.1).

   A trigger for T on I is a pair (σ, h) with h a homomorphism from
   body(σ) to I.  It is *active* when no extension of h|fr(σ) maps the
   head into I.  result(σ, h) maps each existential variable x of the head
   to the null c^{σ,h}_x whose name is determined by the trigger, so the
   produced atom is unambiguous (this is what the real oblivious chase
   relies on).  Engines that do not need canonical names can use a fresh
   generator instead, which is cheaper. *)

open Chase_core

type t = { tgd : Tgd.t; hom : Substitution.t }

let make tgd hom = { tgd; hom }
let tgd t = t.tgd
let hom t = t.hom

let compare a b =
  let c = Tgd.compare a.tgd b.tgd in
  if c <> 0 then c else Substitution.compare a.hom b.hom

let equal a b = compare a b = 0

(* Structural hash compatible with [equal]; the TGD contributes only its
   name (TGD sets in a run are tiny — collisions there are harmless). *)
let hash t =
  Substitution.fold
    (fun v u acc -> (((acc * 65599) + Term.hash v) * 31) + Term.hash u)
    t.hom
    (Hashtbl.hash (Tgd.name t.tgd))
  land max_int

(* h|fr(σ). *)
let frontier_hom t = Substitution.restrict (Tgd.frontier t.tgd) t.hom

(* All triggers for the TGDs on the instance — compiled-plan enumeration
   (the plans are memoized per TGD, so repeated calls re-plan nothing).
   The list is materialised eagerly; plan scratch state is per-call, but
   eagerness keeps the Seq safe to retraverse and interleave. *)
let all tgds instance =
  let src = Plan.source_of_instance instance in
  let out = ref [] in
  List.iter
    (fun tgd ->
      Plan.iter_homs (Plan.of_tgd tgd) src (fun hom -> out := { tgd; hom } :: !out))
    tgds;
  List.to_seq (List.rev !out)

(* Triggers whose body uses the given atom (for incremental chasing):
   seed each body position with [atom] and run the compiled suffix. *)
let involving tgds instance atom =
  let src = Plan.source_of_instance instance in
  let out = ref [] in
  List.iter
    (fun tgd ->
      Plan.iter_delta_homs (Plan.of_tgd tgd) src atom (fun hom -> out := { tgd; hom } :: !out))
    tgds;
  List.to_seq (List.rev !out)

(* (σ, h) is active on I iff there is no h' ⊇ h|fr(σ) with h'(head) ⊆ I
   (Def 3.1; for multi-head TGDs all head atoms must be present). *)
let is_active instance t =
  not (Plan.head_satisfied (Plan.of_tgd t.tgd) (Plan.source_of_instance instance) t.hom)

(* Reference implementations on the generic homomorphism search.  The
   engines' default paths run on compiled plans; these stay around as the
   oracle the property tests compare against (and as executable
   documentation of Def 3.1). *)
let all_naive tgds instance =
  List.to_seq tgds
  |> Seq.concat_map (fun tgd ->
         Homomorphism.all (Tgd.body tgd) instance |> Seq.map (fun hom -> { tgd; hom }))

let involving_naive tgds instance atom =
  List.to_seq tgds
  |> Seq.concat_map (fun tgd ->
         let body = Tgd.body tgd in
         List.to_seq (List.mapi (fun i gamma -> (i, gamma)) body)
         |> Seq.concat_map (fun (i, gamma) ->
                match Homomorphism.match_atom ~pattern:gamma ~target:atom Substitution.empty with
                | None -> Seq.empty
                | Some init ->
                    let rest = List.filteri (fun j _ -> j <> i) body in
                    Homomorphism.all ~init rest instance
                    |> Seq.map (fun hom -> { tgd; hom })))

let is_active_naive instance t =
  let init = frontier_hom t in
  not (Homomorphism.exists ~init (Tgd.head t.tgd) instance)

(* Deterministic null names c^{σ,h}_x (Def 3.1).  The name must identify
   the trigger uniquely; embedding h literally makes names grow with the
   depth of the chase (each null's name would contain its parents'), so
   we embed a digest of (σ, h, x) instead — same determinism, constant
   size. *)
let canonical_null t x =
  let bindings =
    Substitution.bindings t.hom
    |> List.map (fun (v, u) -> Term.to_string v ^ "=" ^ Term.to_string u)
    |> String.concat ";"
  in
  let key = Printf.sprintf "%s|%s|%s|%s" (Tgd.name t.tgd) (Tgd.to_string t.tgd) bindings x in
  Term.Null ("c" ^ String.sub (Digest.to_hex (Digest.string key)) 0 16)

(* The head instantiation v of Def 3.1: frontier variables follow h,
   existential variables become nulls (canonical or fresh). *)
let head_instantiation ?gen t =
  let fr = Tgd.frontier t.tgd in
  let ex = Tgd.existential_vars t.tgd in
  let v =
    Term.Set.fold
      (fun x acc ->
        let null =
          match gen with
          | Some g -> Term.Gen.fresh g
          | None -> (
              match x with
              | Term.Var name -> canonical_null t name
              | Term.Const _ | Term.Null _ -> assert false)
        in
        Substitution.bind x null acc)
      ex
      (Substitution.restrict fr t.hom)
  in
  v

(* result(σ, h) — the list of produced atoms (singleton for single-head
   TGDs).  With [gen] the existential witnesses are fresh nulls; without
   it they are the canonical c^{σ,h}_x nulls. *)
let result ?gen t =
  let v = head_instantiation ?gen t in
  List.map (Substitution.apply_atom v) (Tgd.head t.tgd)

(* The frontier terms of the produced atoms: { h(x) : x ∈ fr(σ) }.  These
   are exactly the terms occurring at frontier positions of the result
   (Def 3.1), and are what the stop relation must fix.  Built directly
   from the frontier variables, skipping the restricted-map intermediate
   of [frontier_hom]. *)
let frontier_terms t =
  Term.Set.fold
    (fun x acc -> Term.Set.add (Substitution.apply_term t.hom x) acc)
    (Tgd.frontier t.tgd) Term.Set.empty

(* An application I⟨σ,h⟩J (Def 3.1). *)
let apply ?gen instance t =
  let produced = result ?gen t in
  (List.fold_left (fun i a -> Instance.add a i) instance produced, produced)

let to_string t =
  Printf.sprintf "(%s, %s)"
    (if Tgd.name t.tgd <> "" then Tgd.name t.tgd else Tgd.to_string t.tgd)
    (Substitution.to_string t.hom)

let pp ppf t = Format.pp_print_string ppf (to_string t)
