(** The restricted (standard) chase (paper §3.2): apply only {e active}
    triggers until none remains.  Trigger choice is the only source of
    non-determinism; [strategy] makes it explicit and reproducible. *)

open Chase_core

type strategy =
  | Fifo  (** oldest candidate first — yields fair derivations *)
  | Lifo  (** newest candidate first — depth-first, possibly unfair *)
  | Random of int  (** uniformly random active candidate, seeded *)

(** Matching backend.  [`Compiled] (default): compiled join plans over a
    mutable hash-indexed instance with memoized head satisfaction.
    [`Columnar]: the same compiled plans over the interned columnar
    store ({!Chase_core.Cinstance}) — id comparisons in the innermost
    join loop, built for 10M+-fact databases.  [`Naive]: the generic
    homomorphism search over the persistent instance.  All three
    produce {e identical} derivations for every strategy (candidates
    enter the pool in canonically sorted batches), which the property
    tests and the fuzz oracle check. *)
type backend = Backend.t

(** Stable lowercase name of a strategy (["fifo"], ["lifo"], ["random"])
    — the value used in observability events and by the CLI. *)
val strategy_name : strategy -> string

(** Stable lowercase name of a backend (["compiled"], ["columnar"],
    ["naive"]) — {!Backend.name}. *)
val backend_name : backend -> string

val default_max_steps : int

(** The pending-candidate pool: pushed in canonically sorted batches,
    popped per [strategy], deduplicated by trigger hash.  Exposed so
    resumable chase states ({!Incremental}) can keep a frontier alive
    across calls; {!run} manages one internally. *)
module Pool : sig
  type t

  val create : strategy -> t

  (** Number of pending candidates. *)
  val size : t -> int

  (** Push a batch, canonically sorted ({!Trigger.compare}) so the pool
      fills identically however the batch was discovered. *)
  val push_batch : t -> Trigger.t list -> unit

  val pop : t -> Trigger.t option
end

(** [make_next_active ~epool ~plan_of ~src ~memo pool] returns a
    scanner: each call pops candidates until the first {e active} one
    ([None] = pool drained), testing activity through the shared head
    memo.  With a parallel [epool] the upcoming pops are tested
    speculatively across domains, preserving the sequential pop order
    bit-for-bit (see DESIGN.md §7).  Create one scanner per run or per
    resumed chase call — it carries per-scan window state. *)
val make_next_active :
  epool:Chase_exec.Pool.t ->
  plan_of:(Tgd.t -> Plan.t) ->
  src:Plan.source ->
  memo:Plan.Head_memo.t ->
  Pool.t ->
  unit ->
  Trigger.t option

(** [drain_status pool is_active] pops the remaining candidates until
    the first active one: [Out_of_budget] if one exists, [Terminated]
    otherwise.  Destructive — used to answer the final status when a
    step budget runs out. *)
val drain_status : Pool.t -> (Trigger.t -> bool) -> Derivation.status

(** Run the restricted chase.  Stops when no active trigger remains
    ([Terminated]) or after [max_steps] applications ([Out_of_budget]).

    When an [Obs] sink is installed the run reports the
    [restricted.steps] / [restricted.inactive] / [restricted.pool.*]
    counters, a [restricted.pool] gauge, a [restricted.run] span, and
    one ["step"] event per applied trigger; the instrumentation never
    influences the derivation (property-tested in [test/suite_obs.ml]).
    See [docs/OBSERVABILITY.md] for the full signal schema.

    [pool] (default: inline) parallelizes the activity scan on the
    store-backed backends ([`Compiled], [`Columnar]): a speculative
    window of upcoming pops is tested
    across domains against the frozen instance and the first active
    trigger in pop order wins, so the derivation — triggers, order,
    nulls, status — is {e bit-identical} to the sequential run for every
    strategy (property-tested in [test/suite_parallel_exec.ml]; see
    DESIGN.md §7 for the argument).  The [`Naive] backend ignores it. *)
val run :
  ?backend:backend ->
  ?strategy:strategy ->
  ?max_steps:int ->
  ?naming:[ `Fresh | `Canonical ] ->
  ?gen:Term.Gen.t ->
  ?pool:Chase_exec.Pool.t ->
  Tgd.t list ->
  Instance.t ->
  Derivation.t

exception Did_not_terminate of Derivation.t

(** The final instance of a terminating run.
    @raise Did_not_terminate when the budget runs out first. *)
val run_exn :
  ?backend:backend ->
  ?strategy:strategy ->
  ?max_steps:int ->
  ?naming:[ `Fresh | `Canonical ] ->
  ?gen:Term.Gen.t ->
  ?pool:Chase_exec.Pool.t ->
  Tgd.t list ->
  Instance.t ->
  Instance.t

(** All active triggers on an instance. *)
val active_triggers : Tgd.t list -> Instance.t -> Trigger.t list
