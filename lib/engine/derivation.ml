(* Chase derivations (paper §3.2): a sequence of instances I₀, I₁, …, with
   I₀ the database, each obtained from the previous by applying an active
   trigger.  We store the applied triggers and produced atoms; the
   per-step instance snapshot is lazy, so engines running on a mutable
   backend pay for persistent snapshots only if someone inspects them
   (each Iᵢ is Iᵢ₋₁ plus the produced atoms, so forcing any prefix
   shares all the work). *)

open Chase_core

type step = {
  index : int;
  trigger : Trigger.t;
  produced : Atom.t list;
  frontier : Term.Set.t;  (* frontier terms of the produced atoms *)
  after : Instance.t Lazy.t;  (* the instance right after this step *)
}

let step_after s = Lazy.force s.after

type status =
  | Terminated  (* no active trigger remains: a finite (valid) derivation *)
  | Out_of_budget  (* the step budget ran out with active triggers left *)

type t = { database : Instance.t; steps : step list; status : status }
(* [steps] is stored in application order. *)

let make ~database ~steps ~status = { database; steps; status }

let database d = d.database
let steps d = d.steps
let status d = d.status
let length d = List.length d.steps

let final d =
  match List.rev d.steps with [] -> d.database | last :: _ -> Lazy.force last.after

let instance_at d i =
  if i = 0 then d.database
  else
    match List.nth_opt d.steps (i - 1) with
    | Some s -> Lazy.force s.after
    | None -> invalid_arg "Derivation.instance_at"

let produced_atoms d = List.concat_map (fun s -> s.produced) d.steps

let terminated d = d.status = Terminated

(* New atoms beyond the database. *)
let growth d = Instance.cardinal (final d) - Instance.cardinal d.database

(* Triggers still active on the final instance — nonempty exactly when the
   run stopped on budget. *)
let active_triggers_at_end tgds d =
  let fin = final d in
  Trigger.all tgds fin |> Seq.filter (Trigger.is_active fin) |> List.of_seq

(* Check the derivation is internally consistent: each step's trigger was
   active on the previous instance and produced the recorded atoms.  Used
   by tests and by certificate checking. *)
let validate tgds d =
  let ok_status =
    match d.status with
    | Terminated -> active_triggers_at_end tgds d = []
    | Out_of_budget -> true
  in
  let rec go prev = function
    | [] -> true
    | s :: rest ->
        let after = Lazy.force s.after in
        Trigger.is_active prev s.trigger
        && List.for_all (fun a -> Instance.mem a after) s.produced
        && Instance.subset prev after
        && Instance.cardinal after <= Instance.cardinal prev + List.length s.produced
        && go after rest
  in
  ok_status && go d.database d.steps

let pp ppf d =
  Format.fprintf ppf "@[<v>database: %a@," Instance.pp d.database;
  List.iter
    (fun s ->
      Format.fprintf ppf "%3d. %s ⟶ %s@," s.index
        (Trigger.to_string s.trigger)
        (String.concat ", " (List.map Atom.to_string s.produced)))
    d.steps;
  Format.fprintf ppf "status: %s@]"
    (match d.status with Terminated -> "terminated" | Out_of_budget -> "out of budget")
