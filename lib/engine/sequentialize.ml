(* Sequentializing a parallel chase run — the Extract(K,T) algorithm of
   the paper's App. C.2 (Step 3), as an engine feature.

   The parallel (weakly restricted) chase may apply triggers that a
   sequential restricted chase would never fire: a same-round neighbour
   can deactivate them.  Extract replays the parallel run's atoms in
   round order through the paper's Pending / Born / Stopped loop:

     - take the least pending atom;
     - if some active trigger of the current sequential instance produces
       it, apply that trigger (the atom is Born);
     - otherwise mark it Stopped together with its entire guard-subtree
       (its descendants relied on it).

   The result is always a valid restricted chase derivation (each step
   re-checks activeness); on guarded single-head inputs it is exactly the
   paper's construction, whose Loop Invariant (Lemma C.9) guarantees that
   enough side-parents survive. *)

open Chase_core

type outcome = {
  derivation : Derivation.t;
  born : int;
  stopped : int;
}

(* Atoms of the parallel run in round order, each with the trigger that
   produced it and its parent atoms (body images). *)
let enumerate (result : Parallel.result) =
  List.concat_map
    (fun (round : Parallel.round) ->
      List.filter_map
        (fun trigger ->
          match Trigger.result trigger with
          | [ atom ] ->
              let parents =
                List.map
                  (Substitution.apply_atom (Trigger.hom trigger))
                  (Tgd.body (Trigger.tgd trigger))
              in
              Some (atom, trigger, parents)
          | _ -> None (* multi-head rounds are not sequentialized *))
        round.Parallel.applied)
    result.Parallel.rounds

let run tgds (result : Parallel.result) =
  ignore tgds;
  let pending = enumerate result in
  let stopped_atoms = ref Atom.Set.empty in
  let database = result.Parallel.database in
  let rec go pending instance steps index born stopped =
    match pending with
    | [] ->
        {
          derivation =
            Derivation.make ~database ~steps:(List.rev steps)
              ~status:Derivation.Out_of_budget;
          born;
          stopped;
        }
    | (atom, trigger, parents) :: rest ->
        (* descendants of a stopped atom are stopped too *)
        if List.exists (fun p -> Atom.Set.mem p !stopped_atoms) parents then begin
          stopped_atoms := Atom.Set.add atom !stopped_atoms;
          go rest instance steps index born (stopped + 1)
        end
        else if Instance.mem atom instance then
          (* produced earlier (set semantics): nothing to do *)
          go rest instance steps index born stopped
        else if
          List.for_all (fun p -> Instance.mem p instance) parents
          && Trigger.is_active instance trigger
        then begin
          (* the parallel run used fresh nulls; re-deriving the trigger on
             the sequential instance produces the same atom because the
             homomorphism is recorded *)
          let after = Instance.add atom instance in
          let step =
            {
              Derivation.index;
              trigger;
              produced = [ atom ];
              frontier = Trigger.frontier_terms trigger;
              after = Lazy.from_val after;
            }
          in
          go rest after (step :: steps) (index + 1) (born + 1) stopped
        end
        else begin
          stopped_atoms := Atom.Set.add atom !stopped_atoms;
          go rest instance steps index born (stopped + 1)
        end
  in
  go pending database [] 0 0 0

(* Run the parallel chase and sequentialize it; when the parallel run
   saturated and nothing was stopped, the sequential derivation ends in a
   genuinely terminated state — re-checked and upgraded. *)
let parallel_then_extract ?max_rounds tgds database =
  let presult = Parallel.run ?max_rounds tgds database in
  let out = run tgds presult in
  let d = out.derivation in
  let final = Derivation.final d in
  if Restricted.active_triggers tgds final = [] then
    {
      out with
      derivation =
        Derivation.make ~database:(Derivation.database d) ~steps:(Derivation.steps d)
          ~status:Derivation.Terminated;
    }
  else out
