(** The oblivious and semi-oblivious chase (paper §3.1).

    The oblivious chase applies every trigger, active or not, that was not
    applied before; with canonical null naming (Def 3.1) its result is the
    unique instance I_{D,T}.  The semi-oblivious variant identifies
    triggers that agree on the frontier. *)

open Chase_core

type variant = Oblivious | Semi_oblivious

(** Matching backend, as in {!Restricted}: compiled plans on the mutable
    hash-indexed instance (default), the same plans on the interned
    columnar store ([`Columnar]), or the generic search on the
    persistent one ([`Naive]); all run the identical application
    sequence. *)
type backend = Backend.t

type result = {
  instance : Instance.t;
  applications : int;
  saturated : bool;  (** false when the step budget ran out *)
}

val default_max_steps : int

(** Run the (semi-)oblivious chase to saturation or budget exhaustion.
    With an [Obs] sink installed the run reports
    [oblivious.applications] / [oblivious.enqueue] / [oblivious.dup] /
    [oblivious.fresh_atoms] counters inside an [oblivious.run] span;
    see [docs/OBSERVABILITY.md]. *)
val run :
  ?backend:backend -> ?variant:variant -> ?max_steps:int -> Tgd.t list -> Instance.t -> result

(** Whether the chase saturates within the given budget. *)
val terminates_within :
  ?backend:backend -> ?variant:variant -> max_steps:int -> Tgd.t list -> Instance.t -> bool
