open Chase_core

type backend = [ `Compiled | `Columnar ]

type t = {
  backend : backend;
  add : Atom.t -> bool;
  mem : Atom.t -> bool;
  cardinal : unit -> int;
  snapshot : unit -> Instance.t;
  source : Plan.source;
}

let of_minstance m =
  {
    backend = `Compiled;
    add = (fun a -> Minstance.add m a);
    mem = (fun a -> Minstance.mem m a);
    cardinal = (fun () -> Minstance.cardinal m);
    snapshot = (fun () -> Minstance.snapshot m);
    source = Plan.source_of_minstance m;
  }

let of_cinstance c =
  {
    backend = `Columnar;
    add = (fun a -> Cinstance.add c a);
    mem = (fun a -> Cinstance.mem c a);
    cardinal = (fun () -> Cinstance.cardinal c);
    snapshot = (fun () -> Cinstance.snapshot c);
    source = Plan.source_of_cinstance c;
  }

let of_instance backend db =
  match backend with
  | `Compiled -> of_minstance (Minstance.of_instance db)
  | `Columnar -> of_cinstance (Cinstance.of_instance db)

let backend_of_name s =
  match Backend.of_name s with
  | Ok `Naive ->
      Error
        (Printf.sprintf "backend %S has no mutable store (expected one of: compiled, columnar)" s)
  | Ok (#backend as b) -> Ok b
  | Error e -> Error e
