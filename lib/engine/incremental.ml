(* A resumable restricted-chase state — the engine core of
   `chasectl serve` (see incremental.mli for the soundness argument).

   The state is exactly what [Restricted.run_compiled] keeps on its
   stack, lifted into a value that survives between calls: the mutable
   instance and its plan source, the compiled plans, the head memo, and
   the pending-candidate pool (the trigger frontier).  [assert_atoms]
   is the semi-naive delta step: each genuinely new atom seeds
   [Plan.iter_delta_homs], so only triggers whose body uses a new atom
   ever enter the pool — never a full re-enumeration.  Monotonicity
   makes this complete: an instance only grows, so a trigger found
   inactive (or applied) before the assert stays inactive forever, and
   every trigger that could have become active matches a new atom.

   Retraction breaks monotonicity, so it falls back honestly: the state
   is rebuilt from the surviving base facts and the next chase is a
   full re-chase ([warm] drops to false).

   Nulls are always canonical (Def 3.1, [gen = None]): a trigger firing
   before or after a resume produces the same atom, so resumed runs
   cannot double-introduce witnesses. *)

open Chase_core
module Exec = Chase_exec.Pool

type limit = Steps | Wall | Facts

let limit_name = function Steps -> "steps" | Wall -> "wall" | Facts -> "facts"

type outcome = {
  steps : int;
  saturated : bool;
  incremental : bool;
  limit : limit option;
}

type t = {
  tgds : Tgd.t list;
  strategy : Restricted.strategy;
  backend : Store.backend;
  plans : (Tgd.t * Plan.t) list;
  mutable base : Instance.t;  (* accumulated asserted facts *)
  mutable store : Store.t;
  mutable memo : Plan.Head_memo.t;
  mutable pool : Restricted.Pool.t;
  mutable saturated : bool;
  mutable warm : bool;  (* some chase saturated since the last rebuild *)
  mutable rebuilds : int;
  mutable steps_total : int;
  mutable chases : int;
}

let plan_of t tgd =
  match List.find_opt (fun (x, _) -> x == tgd) t.plans with
  | Some (_, p) -> p
  | None -> Plan.of_tgd tgd

(* Seed the pool with every trigger on the current instance — the cold
   start, also the restart point after a retraction. *)
let seed_pool t =
  let batch = ref [] in
  List.iter
    (fun (tgd, p) ->
      Plan.iter_homs p t.store.Store.source (fun hom -> batch := Trigger.make tgd hom :: !batch))
    t.plans;
  Restricted.Pool.push_batch t.pool !batch

let create ?(strategy = Restricted.Fifo) ?(backend = `Compiled) tgds database =
  let t =
    {
      tgds;
      strategy;
      backend;
      plans = List.map (fun tgd -> (tgd, Plan.of_tgd tgd)) tgds;
      base = database;
      store = Store.of_instance backend database;
      memo = Plan.Head_memo.create ();
      pool = Restricted.Pool.create strategy;
      saturated = false;
      warm = false;
      rebuilds = 0;
      steps_total = 0;
      chases = 0;
    }
  in
  seed_pool t;
  t

let tgds t = t.tgds
let base t = t.base
let backend t = t.backend
let instance t = t.store.Store.snapshot ()
let cardinal t = t.store.Store.cardinal ()
let pending t = Restricted.Pool.size t.pool
let saturated t = t.saturated
let warm t = t.warm
let steps_total t = t.steps_total
let chases t = t.chases
let rebuilds t = t.rebuilds

(* Delta discovery for one new atom: one [plan.delta.seed] pass per
   plan, pushed as a canonically sorted batch (same discipline as
   [Restricted.run_compiled]). *)
let discover_delta t atom =
  let batch = ref [] in
  List.iter
    (fun (tgd, p) ->
      Plan.iter_delta_homs p t.store.Store.source atom (fun hom ->
          batch := Trigger.make tgd hom :: !batch))
    t.plans;
  Restricted.Pool.push_batch t.pool !batch

let assert_atoms t atoms =
  let added =
    List.fold_left
      (fun n atom ->
        t.base <- Instance.add atom t.base;
        if t.store.Store.add atom then begin
          discover_delta t atom;
          n + 1
        end
        else n)
      0 atoms
  in
  if added > 0 then begin
    Obs.count "session.assert.added" added;
    t.saturated <- false
  end;
  added

(* Rebuild from the surviving base: fresh instance, memo and frontier.
   Derived atoms, and any memoized head satisfaction that depended on
   them, are discarded wholesale — retraction is not monotone, so
   nothing finer is sound without provenance tracking. *)
let rebuild t =
  t.store <- Store.of_instance t.backend t.base;
  t.memo <- Plan.Head_memo.create ();
  t.pool <- Restricted.Pool.create t.strategy;
  t.saturated <- false;
  t.warm <- false;
  t.rebuilds <- t.rebuilds + 1;
  Obs.incr "session.rebuild";
  seed_pool t

let retract_atoms t atoms =
  let present = List.filter (fun a -> Instance.mem a t.base) atoms in
  match present with
  | [] -> 0
  | _ ->
      List.iter (fun a -> t.base <- Instance.remove a t.base) present;
      rebuild t;
      List.length present

let default_max_steps = Restricted.default_max_steps

let chase ?(epool = Exec.inline) ?(max_steps = default_max_steps) ?deadline ?max_facts t =
  Obs.span "session.chase" @@ fun () ->
  let incremental = t.warm in
  t.chases <- t.chases + 1;
  let next_active =
    Restricted.make_next_active ~epool ~plan_of:(plan_of t) ~src:t.store.Store.source
      ~memo:t.memo t.pool
  in
  let over_deadline =
    match deadline with
    | None -> fun _ -> false
    | Some hit -> fun steps -> steps land 31 = 0 && hit ()
  in
  let over_facts =
    match max_facts with
    | None -> fun () -> false
    | Some cap -> fun () -> t.store.Store.cardinal () > cap
  in
  let rec go steps =
    if steps >= max_steps then (steps, Some Steps)
    else if over_deadline steps then (steps, Some Wall)
    else if over_facts () then (steps, Some Facts)
    else
      match next_active () with
      | None ->
          t.saturated <- true;
          t.warm <- true;
          (steps, None)
      | Some trigger ->
          let produced = Trigger.result trigger in
          List.iter
            (fun atom -> if t.store.Store.add atom then discover_delta t atom)
            produced;
          Obs.incr "session.steps";
          go (steps + 1)
  in
  let steps, limit = go 0 in
  t.steps_total <- t.steps_total + steps;
  { steps; saturated = t.saturated; incremental; limit }
