(* The restricted (standard) chase (paper §3.2).

   Starting from a database, repeatedly apply an *active* trigger until no
   active trigger remains (Terminated) or a step budget runs out.  Which
   active trigger is applied is the engine's only source of
   non-determinism, made explicit by [strategy]: the paper's CTres∀∀
   quantifies over all derivations, so callers can steer it.

   Candidate triggers are discovered incrementally: once an atom is added,
   only triggers whose body uses that atom are new.  Activity is monotone
   downwards (instances only grow, so a satisfied head stays satisfied), so
   a candidate found inactive can be dropped for good.

   Three backends run the same schedule.  [`Compiled] (the default)
   matches bodies with compiled join plans ({!Plan}) over a mutable
   hash-indexed instance ({!Chase_core.Minstance}) and memoizes
   satisfied heads; [`Columnar] runs the same plans over the interned
   columnar store ({!Chase_core.Cinstance}), id-comparing in the inner
   join loop; [`Naive] is the original generic-homomorphism search over
   the persistent instance, kept as the oracle for equivalence tests.
   All push candidate triggers into the pool in batches sorted by
   {!Trigger.compare} — one batch for the initial instance, one per
   produced atom — so the pop sequence, and hence the whole derivation,
   is identical across backends for every strategy. *)

open Chase_core
module Exec = Chase_exec.Pool

type strategy =
  | Fifo  (* oldest candidate first — yields fair derivations *)
  | Lifo  (* newest candidate first — depth-first, possibly unfair *)
  | Random of int  (* uniformly random candidate, seeded *)

type backend = Backend.t

let strategy_name = function
  | Fifo -> "fifo"
  | Lifo -> "lifo"
  | Random _ -> "random"

let backend_name = Backend.name

module TrigTbl = Hashtbl.Make (Trigger)

(* A pool of pending candidate triggers with the three policies, backed by
   one growable array: Fifo reads at a front cursor, Lifo pops the end,
   Random swap-removes — all O(1) per operation.  Dedup is a hashed set,
   so a push costs one hash instead of log-many substitution compares. *)
module Pool = struct
  type t = {
    mutable arr : Trigger.t array;
    mutable len : int;  (* one past the last live element *)
    mutable front : int;  (* Fifo read cursor; 0 for Lifo/Random *)
    seen : unit TrigTbl.t;
    strategy : strategy;
    rng : Random.State.t option;
  }

  let create strategy =
    let rng = match strategy with Random seed -> Some (Random.State.make [| seed |]) | _ -> None in
    { arr = [||]; len = 0; front = 0; seen = TrigTbl.create 256; strategy; rng }

  let size pool = pool.len - pool.front

  let push pool t =
    if TrigTbl.mem pool.seen t then Obs.incr "restricted.pool.dup"
    else begin
      Obs.incr "restricted.pool.push";
      TrigTbl.add pool.seen t ();
      let cap = Array.length pool.arr in
      if pool.len = cap then begin
        (* grow, seeding the new array with [t] so no dummy is needed *)
        let arr' = Array.make (max 8 (2 * cap)) t in
        Array.blit pool.arr 0 arr' 0 pool.len;
        pool.arr <- arr'
      end;
      pool.arr.(pool.len) <- t;
      pool.len <- pool.len + 1
    end

  (* Candidates are pushed in canonically sorted batches so that both
     backends fill the pool identically (see the header comment). *)
  let push_batch pool ts = List.iter (push pool) (List.sort Trigger.compare ts)

  let pop pool =
    match pool.strategy with
    | Fifo ->
        if pool.front >= pool.len then None
        else begin
          let t = pool.arr.(pool.front) in
          pool.front <- pool.front + 1;
          Some t
        end
    | Lifo ->
        if pool.len = 0 then None
        else begin
          pool.len <- pool.len - 1;
          Some pool.arr.(pool.len)
        end
    | Random _ ->
        if pool.len = 0 then None
        else begin
          let rng = Option.get pool.rng in
          let k = Random.State.int rng pool.len in
          let t = pool.arr.(k) in
          pool.len <- pool.len - 1;
          pool.arr.(k) <- pool.arr.(pool.len);
          Some t
        end

  (* The next [k] pops in pop order, without consuming anything — the
     speculative window of the parallel activity scan.  Fifo/Lifo just
     read the array; Random copies the RNG and simulates its
     swap-removes in an overlay table, so replaying the real pops
     afterwards consumes the exact same triggers and RNG draws. *)
  let peek_order pool k =
    let k = min k (size pool) in
    match pool.strategy with
    | Fifo -> Array.init k (fun i -> pool.arr.(pool.front + i))
    | Lifo -> Array.init k (fun i -> pool.arr.(pool.len - 1 - i))
    | Random _ ->
        let rng = Random.State.copy (Option.get pool.rng) in
        let overlay = Hashtbl.create 16 in
        let get i =
          match Hashtbl.find_opt overlay i with Some t -> t | None -> pool.arr.(i)
        in
        let len = ref pool.len in
        Array.init k (fun _ ->
            let j = Random.State.int rng !len in
            let t = get j in
            decr len;
            Hashtbl.replace overlay j (get !len);
            t)
end

let default_max_steps = 10_000

(* [make_next_active ~epool ~plan_of ~src ~memo pool] is the activity
   scan shared by [run_compiled] and the resumable {!Incremental}
   state: repeated calls pop candidates until the first active one
   (None = pool drained).  Sequentially that is one pop + memoized
   activity test per iteration.  With a parallel [epool], a speculative
   window of the upcoming pops ([Pool.peek_order]) is tested at once
   against the frozen instance and the first active one {e in pop
   order} wins; the window's real pops are then replayed so the pool
   and RNG state match the sequential engine exactly.  The speculative
   verdicts are final — activity is monotone downwards and the instance
   does not grow during a scan — so the pop sequence is bit-identical
   to sequential, and verdicts beyond the winner are folded into the
   head memo rather than wasted.  The widening window is per-closure
   state: create one scanner per run (or per resumed chase call). *)
let make_next_active ~epool ~plan_of ~src ~memo pool =
  let is_active trigger =
    Plan.Head_memo.is_active memo (plan_of (Trigger.tgd trigger)) src (Trigger.hom trigger)
  in
  let next_active_seq () =
    let rec go () =
      match Pool.pop pool with
      | None -> None
      | Some trigger ->
          if is_active trigger then Some trigger
          else begin
            Obs.incr "restricted.inactive";
            go ()
          end
    in
    go ()
  in
  if not (Exec.is_parallel epool) then next_active_seq
  else begin
    let base_window = 2 * Exec.jobs epool in
    let window = ref base_window in
    let head_satisfied t =
      Plan.head_satisfied (plan_of (Trigger.tgd t)) src (Trigger.hom t)
    in
    let rec go () =
      if Pool.size pool = 0 then None
      else begin
        let cands = Pool.peek_order pool !window in
        let k = Array.length cands in
        let active = Array.make k false in
        (* coordinator-side memo pass: only unknown triggers fan out *)
        let unknown = ref [] in
        Array.iteri
          (fun i t ->
            if
              not
                (Plan.Head_memo.known_inactive memo
                   (plan_of (Trigger.tgd t))
                   (Trigger.hom t))
            then unknown := i :: !unknown)
          cands;
        let unknown = Array.of_list (List.rev !unknown) in
        let satisfied = Exec.map_array epool (fun i -> head_satisfied cands.(i)) unknown in
        Array.iteri
          (fun j i ->
            if satisfied.(j) then
              let t = cands.(i) in
              Plan.Head_memo.record memo (plan_of (Trigger.tgd t)) (Trigger.hom t)
            else active.(i) <- true)
          unknown;
        let first = ref (-1) in
        (try
           for i = 0 to k - 1 do
             if active.(i) then begin
               first := i;
               raise Exit
             end
           done
         with Exit -> ());
        if !first < 0 then begin
          (* whole window inactive: consume it, widen, rescan *)
          for _ = 1 to k do
            ignore (Pool.pop pool);
            Obs.incr "restricted.inactive"
          done;
          window := min 4096 (2 * !window);
          go ()
        end
        else begin
          for _ = 1 to !first do
            ignore (Pool.pop pool);
            Obs.incr "restricted.inactive"
          done;
          window := base_window;
          Pool.pop pool
        end
      end
    in
    go
  end

(* Observability hooks, shared by both backends (all no-ops unless a
   sink is installed; the step-event payload is only built when one is). *)
let obs_run_start ~backend ~strategy ~max_steps database =
  if Obs.enabled () then
    Obs.event "run"
      [
        ("engine", Obs.Str "restricted");
        ("backend", Obs.Str (backend_name backend));
        ("strategy", Obs.Str (strategy_name strategy));
        ("max_steps", Obs.Int max_steps);
        ("database_atoms", Obs.Int (Instance.cardinal database));
      ]

let obs_step trigger produced ~pool_size ~index =
  Obs.incr "restricted.steps";
  Obs.gauge "restricted.pool" pool_size;
  if Obs.enabled () then
    Obs.event "step"
      [
        ("engine", Obs.Str "restricted");
        ("index", Obs.Int index);
        ("tgd", Obs.Str (Tgd.name (Trigger.tgd trigger)));
        ("produced", Obs.Int (List.length produced));
        ("atoms", Obs.Str (String.concat ", " (List.map Atom.to_string produced)));
        ("pool", Obs.Int pool_size);
      ]

let obs_done status steps =
  if Obs.enabled () then
    Obs.event "done"
      [
        ("engine", Obs.Str "restricted");
        ( "status",
          Obs.Str
            (match status with
            | Derivation.Terminated -> "terminated"
            | Derivation.Out_of_budget -> "out_of_budget") );
        ("steps", Obs.Int steps);
      ]

(* Budget-exhaustion status: every trigger that is still active on the
   final instance sits in the pool (a trigger is discovered when its last
   body atom is added; applied or inactive ones stay inactive forever by
   monotonicity), so draining the pool until the first active candidate
   answers Terminated-vs-Out_of_budget without re-enumerating all
   triggers. *)
let drain_status pool is_active =
  let rec go () =
    match Pool.pop pool with
    | None -> Derivation.Terminated
    | Some t ->
        Obs.incr "restricted.drain";
        if is_active t then Derivation.Out_of_budget else go ()
  in
  go ()

let resolve_gen naming gen =
  (* [`Canonical] names nulls c^{σ,h}_x as in Def 3.1, so produced atoms
     coincide literally with real-oblivious-chase atoms (used when mapping
     derivations into ochase(D,T)); [`Fresh] uses a cheap counter. *)
  match (naming, gen) with
  | `Canonical, _ -> None
  | `Fresh, Some g -> Some g
  | `Fresh, None -> Some (Term.Gen.create ())

let run_naive ~strategy ~max_steps ~gen tgds database =
  obs_run_start ~backend:`Naive ~strategy ~max_steps database;
  let pool = Pool.create strategy in
  Pool.push_batch pool (List.of_seq (Trigger.all_naive tgds database));
  let rec loop instance steps_rev n =
    if n >= max_steps then begin
      let status = drain_status pool (Trigger.is_active_naive instance) in
      obs_done status n;
      Derivation.make ~database ~steps:(List.rev steps_rev) ~status
    end
    else
      match Pool.pop pool with
      | None ->
          obs_done Derivation.Terminated n;
          Derivation.make ~database ~steps:(List.rev steps_rev) ~status:Terminated
      | Some trigger ->
          if not (Trigger.is_active_naive instance trigger) then begin
            Obs.incr "restricted.inactive";
            loop instance steps_rev n
          end
          else begin
            let after, produced = Trigger.apply ?gen instance trigger in
            List.iter
              (fun atom ->
                Pool.push_batch pool (List.of_seq (Trigger.involving_naive tgds after atom)))
              produced;
            obs_step trigger produced ~pool_size:(Pool.size pool) ~index:n;
            let step =
              {
                Derivation.index = n;
                trigger;
                produced;
                frontier = Trigger.frontier_terms trigger;
                after = Lazy.from_val after;
              }
            in
            loop after (step :: steps_rev) (n + 1)
          end
  in
  loop database [] 0

(* The store-backed engine shared by the [`Compiled] and [`Columnar]
   backends: the loop is identical, only the fact store behind the
   {!Store.t} seam differs. *)
let run_store ~backend ~strategy ~max_steps ~gen ~epool tgds database =
  obs_run_start ~backend:(backend :> backend) ~strategy ~max_steps database;
  let store = Store.of_instance backend database in
  let src = store.Store.source in
  let plans = List.map (fun tgd -> (tgd, Plan.of_tgd tgd)) tgds in
  let memo = Plan.Head_memo.create () in
  (* Every trigger in this run carries a tgd from [plans] itself, so the
     plan lookup on the pop path can be physical equality. *)
  let plan_of tgd =
    match List.find_opt (fun (t, _) -> t == tgd) plans with
    | Some (_, p) -> p
    | None -> Plan.of_tgd tgd
  in
  let is_active trigger =
    Plan.Head_memo.is_active memo (plan_of (Trigger.tgd trigger)) src (Trigger.hom trigger)
  in
  let pool = Pool.create strategy in
  let seed = ref [] in
  List.iter
    (fun (tgd, p) -> Plan.iter_homs p src (fun hom -> seed := Trigger.make tgd hom :: !seed))
    plans;
  Pool.push_batch pool !seed;
  let next_active = make_next_active ~epool ~plan_of ~src ~memo pool in
  let rec loop prev steps_rev n =
    if n >= max_steps then begin
      let status = drain_status pool is_active in
      obs_done status n;
      Derivation.make ~database ~steps:(List.rev steps_rev) ~status
    end
    else
      match next_active () with
      | None ->
          obs_done Derivation.Terminated n;
          Derivation.make ~database ~steps:(List.rev steps_rev) ~status:Terminated
      | Some trigger ->
          begin
            let produced = Trigger.result ?gen trigger in
            List.iter (fun atom -> ignore (store.Store.add atom)) produced;
            List.iter
              (fun atom ->
                let batch = ref [] in
                List.iter
                  (fun (tgd, p) ->
                    Plan.iter_delta_homs p src atom (fun hom ->
                        batch := Trigger.make tgd hom :: !batch))
                  plans;
                Pool.push_batch pool !batch)
              produced;
            obs_step trigger produced ~pool_size:(Pool.size pool) ~index:n;
            let after =
              lazy (List.fold_left (fun i a -> Instance.add a i) (Lazy.force prev) produced)
            in
            let step =
              {
                Derivation.index = n;
                trigger;
                produced;
                frontier = Trigger.frontier_terms trigger;
                after;
              }
            in
            loop after (step :: steps_rev) (n + 1)
          end
  in
  loop (Lazy.from_val database) [] 0

let run ?(backend = `Compiled) ?(strategy = Fifo) ?(max_steps = default_max_steps)
    ?(naming = `Fresh) ?gen ?(pool = Exec.inline) tgds database =
  let gen = resolve_gen naming gen in
  Obs.span "restricted.run" (fun () ->
      match backend with
      | `Naive -> run_naive ~strategy ~max_steps ~gen tgds database
      | (`Compiled | `Columnar) as b ->
          run_store ~backend:b ~strategy ~max_steps ~gen ~epool:pool tgds database)

(* Convenience: chase to completion or fail. *)
exception Did_not_terminate of Derivation.t

let run_exn ?backend ?strategy ?max_steps ?naming ?gen ?pool tgds database =
  let d = run ?backend ?strategy ?max_steps ?naming ?gen ?pool tgds database in
  match Derivation.status d with
  | Terminated -> Derivation.final d
  | Out_of_budget -> raise (Did_not_terminate d)

(* All active triggers on an instance, eagerly. *)
let active_triggers tgds instance =
  Trigger.all tgds instance |> Seq.filter (Trigger.is_active instance) |> List.of_seq
