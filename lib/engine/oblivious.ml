(* The oblivious and semi-oblivious chase (paper §3.1).

   The oblivious chase applies every trigger — active or not — that has
   not been applied before, until a fixpoint.  With the canonical null
   naming of Def 3.1 the result is the unique ⊆-minimal instance I_{D,T}
   closed under trigger application, independent of order.

   The semi-oblivious chase identifies triggers agreeing on the frontier:
   (σ, h) is applied only if no (σ, h') with h'|fr = h|fr was.

   As in {!Restricted}, three backends run the same schedule:
   [`Compiled] (default) uses compiled plans over a mutable hash-indexed
   instance, [`Columnar] the same plans over the interned columnar
   store, [`Naive] the generic search over the persistent one.
   Candidates are enqueued in sorted batches, so all produce the same
   application sequence — which matters for the semi-oblivious variant,
   where the choice of frontier-class representative decides the
   canonical null names. *)

open Chase_core

type variant = Oblivious | Semi_oblivious

type backend = Backend.t

type result = {
  instance : Instance.t;
  applications : int;
  saturated : bool;  (* false when the step budget ran out *)
}

module TrigTbl = Hashtbl.Make (Trigger)

let default_max_steps = 10_000

(* Key under which a trigger is remembered as applied. *)
let applied_key variant trigger =
  match variant with
  | Oblivious -> trigger
  | Semi_oblivious -> Trigger.make (Trigger.tgd trigger) (Trigger.frontier_hom trigger)

(* Shared queue discipline: dedup by applied-key, enqueue sorted batches. *)
let make_enqueue variant queue =
  let applied = TrigTbl.create 256 in
  fun ts ->
    List.iter
      (fun t ->
        let key = applied_key variant t in
        if TrigTbl.mem applied key then Obs.incr "oblivious.dup"
        else begin
          Obs.incr "oblivious.enqueue";
          TrigTbl.add applied key ();
          Queue.add t queue
        end)
      (List.sort Trigger.compare ts)

let variant_name = function Oblivious -> "oblivious" | Semi_oblivious -> "semi_oblivious"

let obs_run_start ~variant ~backend ~max_steps database =
  if Obs.enabled () then
    Obs.event "run"
      [
        ("engine", Obs.Str (variant_name variant));
        ("backend", Obs.Str (Backend.name backend));
        ("max_steps", Obs.Int max_steps);
        ("database_atoms", Obs.Int (Instance.cardinal database));
      ]

let obs_done (r : result) =
  if Obs.enabled () then
    Obs.event "done"
      [
        ("engine", Obs.Str "oblivious");
        ("applications", Obs.Int r.applications);
        ("saturated", Obs.Bool r.saturated);
        ("atoms", Obs.Int (Instance.cardinal r.instance));
      ]

let run_naive ~variant ~max_steps tgds database =
  let queue = Queue.create () in
  let enqueue = make_enqueue variant queue in
  enqueue (List.of_seq (Trigger.all_naive tgds database));
  let rec loop instance n =
    if Queue.is_empty queue then { instance; applications = n; saturated = true }
    else if n >= max_steps then { instance; applications = n; saturated = false }
    else
      let trigger = Queue.pop queue in
      Obs.incr "oblivious.applications";
      (* Canonical nulls: no generator, so re-derived atoms coincide. *)
      let after, produced = Trigger.apply instance trigger in
      List.iter
        (fun atom ->
          if not (Instance.mem atom instance) then
            enqueue (List.of_seq (Trigger.involving_naive tgds after atom)))
        produced;
      loop after (n + 1)
  in
  loop database 0

let run_store ~backend ~variant ~max_steps tgds database =
  let store = Store.of_instance backend database in
  let src = store.Store.source in
  let plans = List.map (fun tgd -> (tgd, Plan.of_tgd tgd)) tgds in
  let queue = Queue.create () in
  let enqueue = make_enqueue variant queue in
  let seed = ref [] in
  List.iter
    (fun (tgd, p) -> Plan.iter_homs p src (fun hom -> seed := Trigger.make tgd hom :: !seed))
    plans;
  enqueue !seed;
  let snapshot () = store.Store.snapshot () in
  let rec loop n =
    if Queue.is_empty queue then { instance = snapshot (); applications = n; saturated = true }
    else if n >= max_steps then { instance = snapshot (); applications = n; saturated = false }
    else begin
      let trigger = Queue.pop queue in
      Obs.incr "oblivious.applications";
      let produced = Trigger.result trigger in
      (* Add everything first (applications are simultaneous), remember
         which atoms were genuinely new. *)
      let fresh = List.filter (fun atom -> store.Store.add atom) produced in
      Obs.count "oblivious.fresh_atoms" (List.length fresh);
      List.iter
        (fun atom ->
          let batch = ref [] in
          List.iter
            (fun (tgd, p) ->
              Plan.iter_delta_homs p src atom (fun hom -> batch := Trigger.make tgd hom :: !batch))
            plans;
          enqueue !batch)
        fresh;
      loop (n + 1)
    end
  in
  loop 0

let run ?(backend = `Compiled) ?(variant = Oblivious) ?(max_steps = default_max_steps) tgds
    database =
  Obs.span "oblivious.run" (fun () ->
      obs_run_start ~variant ~backend ~max_steps database;
      let r =
        match backend with
        | `Naive -> run_naive ~variant ~max_steps tgds database
        | (`Compiled | `Columnar) as b -> run_store ~backend:b ~variant ~max_steps tgds database
      in
      obs_done r;
      r)

(* Does the oblivious chase saturate within the budget? *)
let terminates_within ?backend ?variant ~max_steps tgds database =
  (run ?backend ?variant ~max_steps tgds database).saturated
