(** The real oblivious chase ochase(D,T) (paper Def 3.3): a labeled graph
    whose nodes are database atoms and trigger applications, with the
    unambiguous parent relation ≺p.  Copies of the same atom produced by
    different parent tuples are distinct nodes — ochase is a multiset
    (cf. Example 3.2/3.4).

    Materialized breadth-first up to node/depth budgets; round [r]
    produces exactly the nodes of depth [r], so truncation is
    depth-complete up to [horizon]. *)

open Chase_core

type node = {
  id : int;
  depth : int;
  atom : Atom.t;  (** λ(v) *)
  origin : Trigger.t option;  (** τ(v); [None] (⊥) for database atoms *)
  parents : int array;  (** ≺p, aligned with the TGD's body atoms *)
}

type t

val nodes : t -> node array
val node : t -> int -> node
val size : t -> int

(** False when the node budget truncated the construction. *)
val complete : t -> bool

(** Every node of depth ≤ horizon is present. *)
val horizon : t -> int

(** The multiset of atoms, as a list with duplicates. *)
val atoms : t -> Atom.t list

(** The set of atoms — coincides with the (set-based) oblivious chase. *)
val atom_set : t -> Instance.t

(** Multiplicity of an atom in the multiset. *)
val copies : t -> Atom.t -> int

val parents : t -> int -> int list
val children : t -> int -> int list
val nodes_with_pred : t -> string -> int list

val default_max_nodes : int
val default_max_depth : int

(** Build ochase(D,T) for single-head TGDs.  With an [Obs] sink
    installed the construction reports [ochase.nodes] / [ochase.dedup]
    / [ochase.rounds] counters and an [ochase.horizon] gauge inside an
    [ochase.build] span; see [docs/OBSERVABILITY.md].
    @raise Invalid_argument on multi-head TGDs. *)
val build : ?max_nodes:int -> ?max_depth:int -> Tgd.t list -> Instance.t -> t

(** λ(stopper) ≺s λ(stopped) (§3.1); false when [stopped] is a database
    node. *)
val node_stops : t -> stopper:int -> stopped:int -> bool

val pp : Format.formatter -> t -> unit
