(** A resumable restricted-chase state: incremental maintenance for
    long-lived sessions (`chasectl serve`).

    A value of type {!t} owns everything [Restricted.run] keeps on its
    stack — mutable instance, compiled plans, head-satisfaction memo,
    and the pending-trigger frontier — so a chase can stop (budget) and
    resume, and new facts can arrive {e after} a chase saturated
    without re-chasing from scratch: {!assert_atoms} seeds only the
    delta, via the same [plan.delta.seed] machinery the engines use
    per produced atom.

    {b Soundness.}  Instances only grow under assert/chase, so trigger
    activity is monotone downwards: candidates found inactive before an
    assert stay inactive, and every trigger that the grown instance
    admits but the old one did not must match at least one new atom —
    which is exactly what the delta seeding enumerates.  Nulls are
    canonical (Def 3.1), so a resumed run re-derives identical atoms
    rather than fresh copies.  A saturated session is therefore a
    restricted-chase result of (accumulated facts, T): a model, and
    universal for the accumulated database — hom-equivalent to any
    from-scratch chase of the same facts.  This equivalence is fuzzed
    by the [lib/check] oracle's [incremental-equivalence] profile,
    which replays randomized assert/chase interleavings against
    [Restricted.run].

    {b Retraction} is not monotone; {!retract_atoms} rebuilds the state
    from the surviving base facts and the next {!chase} is a full
    re-chase ({!warm} drops to [false]). *)

open Chase_core

(** Which budget stopped a chase call, when it did not saturate. *)
type limit = Steps | Wall | Facts

(** Stable lowercase name (["steps"], ["wall"], ["facts"]) — the value
    used on the wire by [chasectl serve]. *)
val limit_name : limit -> string

type outcome = {
  steps : int;  (** trigger applications performed by this call *)
  saturated : bool;  (** no active trigger remains *)
  incremental : bool;
      (** this call resumed a state some earlier call had saturated —
          i.e. it was a delta re-chase, not a cold or rebuilt run *)
  limit : limit option;  (** the budget that stopped it, if unsaturated *)
}

type t

(** A fresh state over the TGD set and initial database; the frontier
    is seeded with every trigger of the database.  [backend] (default
    [`Compiled]) picks the mutable store the session chases over —
    hash-indexed {!Chase_core.Minstance} or the interned columnar
    {!Chase_core.Cinstance}; the derivation is bit-identical either
    way. *)
val create :
  ?strategy:Restricted.strategy -> ?backend:Store.backend -> Tgd.t list -> Instance.t -> t

val tgds : t -> Tgd.t list

(** The store backend this state was created with. *)
val backend : t -> Store.backend

(** The accumulated asserted facts (load-time database plus asserts,
    minus retracts) — what a from-scratch chase would start from. *)
val base : t -> Instance.t

(** Persistent snapshot of the current (possibly partial) chase
    result. *)
val instance : t -> Instance.t

val cardinal : t -> int

(** Pending candidate triggers in the frontier. *)
val pending : t -> int

val saturated : t -> bool

(** True once some chase call saturated this state and no rebuild
    happened since — the next chase will be incremental. *)
val warm : t -> bool

val steps_total : t -> int
val chases : t -> int
val rebuilds : t -> int

(** [assert_atoms t atoms] adds facts, seeding delta triggers for each
    genuinely new atom; returns the number actually added.  Clears
    {!saturated} when anything was added. *)
val assert_atoms : t -> Atom.t list -> int

(** [retract_atoms t atoms] removes the given facts from the base (the
    intersection; returns its size).  When nonempty, the state is
    rebuilt from the surviving base and the next chase is a full
    re-chase. *)
val retract_atoms : t -> Atom.t list -> int

val default_max_steps : int

(** Run the chase until saturation or a budget: [max_steps] per call,
    [deadline] (polled every 32 steps — wall-time admission control),
    [max_facts] a cap on the instance cardinality.  [epool]
    parallelizes the activity scan exactly as in [Restricted.run].
    Resumable: a budget-stopped state continues where it left off on
    the next call. *)
val chase :
  ?epool:Chase_exec.Pool.t ->
  ?max_steps:int ->
  ?deadline:(unit -> bool) ->
  ?max_facts:int ->
  t ->
  outcome
