(** The parallel (weakly restricted, paper Def C.4) chase: every round
    applies all triggers active at its start, simultaneously.  The result
    can be larger than a sequential restricted result — a same-round
    trigger may deactivate another, which is applied anyway — but it is a
    model, and rounds bound the sequential derivation depth. *)

open Chase_core

type round = { index : int; applied : Trigger.t list; after : Instance.t }

type result = {
  database : Instance.t;
  rounds : round list;
  final : Instance.t;
  saturated : bool;  (** false when the round budget ran out *)
}

val default_max_rounds : int

(** Runs with canonical null naming (Def 3.1), so atom identities persist
    across rounds and into {!Sequentialize}.

    Candidate triggers are discovered incrementally with compiled-plan
    delta matching and dropped permanently once applied or found
    inactive (both are final by downward monotonicity of activity), so
    no round re-enumerates all triggers; each [applied] list is reported
    in canonical [Trigger.compare] order.  [pool] (default: inline)
    spreads the per-round activity tests across domains — the rounds
    are identical either way, since the tests are independent reads of
    the frozen round-start instance. *)
val run :
  ?max_rounds:int -> ?pool:Chase_exec.Pool.t -> Tgd.t list -> Instance.t -> result
val round_count : result -> int
val applications : result -> int
