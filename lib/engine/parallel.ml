(* The parallel (a.k.a. weakly restricted, paper Def C.4) chase: at each
   round, apply *all* triggers that are active at the start of the round
   simultaneously.

   The paper introduces the weakly restricted chase in the proof of the
   Treeification Theorem, where several "mirror images" of one trigger
   must fire at once.  (There it runs on multisets; on set instances —
   our case — simultaneous application is exactly the breadth-parallel
   strategy practical chase engines use.)  Note the subtlety the paper's
   definition embraces: a trigger active at the start of a round may be
   deactivated by another trigger of the same round; the weakly
   restricted chase applies it anyway.  Consequently the result can be
   strictly larger than any sequential restricted result, but it is still
   a model, and every atom is produced by a trigger that was active when
   its round began.

   Candidates are discovered incrementally on the compiled-plan fast
   path (PR 1): one [Plan.iter_homs] seed for the database, then
   [Plan.iter_delta_homs] per atom actually added — never a full
   re-enumeration per round.  A candidate leaves the set for good once
   applied (its own head atoms satisfy it) or found inactive (activity
   is monotone downwards), so each round tests exactly the candidates
   the full recomputation would have found live, and the active sets —
   hence the rounds — are unchanged.  The per-round activity test is an
   independent map over the candidate array, parallelized across
   domains when a [pool] is supplied; canonical null naming (Def 3.1)
   makes the round result independent of evaluation order, and the
   applied list is reported in [Trigger.compare] order either way. *)

open Chase_core
module Exec = Chase_exec.Pool

type round = { index : int; applied : Trigger.t list; after : Instance.t }

type result = {
  database : Instance.t;
  rounds : round list;
  final : Instance.t;
  saturated : bool;  (* false when the round budget ran out *)
}

let default_max_rounds = 1_000

module TrigTbl = Hashtbl.Make (Trigger)

(* Canonical null naming (Def 3.1) throughout: atom identities then
   persist across rounds and into {!Sequentialize}, and a trigger firing
   in two different rounds produces the same atom. *)
let run ?(max_rounds = default_max_rounds) ?(pool = Exec.inline) tgds database =
  let m = Minstance.of_instance database in
  let src = Plan.source_of_minstance m in
  let plans = List.map (fun tgd -> (tgd, Plan.of_tgd tgd)) tgds in
  let plan_of tgd =
    match List.find_opt (fun (t, _) -> t == tgd) plans with
    | Some (_, p) -> p
    | None -> Plan.of_tgd tgd
  in
  let seen = TrigTbl.create 256 in
  let discovered = ref [] in
  let discover tgd hom =
    let t = Trigger.make tgd hom in
    if not (TrigTbl.mem seen t) then begin
      TrigTbl.add seen t ();
      discovered := t :: !discovered
    end
  in
  List.iter (fun (tgd, p) -> Plan.iter_homs p src (fun hom -> discover tgd hom)) plans;
  let is_active t = not (Plan.head_satisfied (plan_of (Trigger.tgd t)) src (Trigger.hom t)) in
  let rec go candidates rounds i =
    if i >= max_rounds then
      { database; rounds = List.rev rounds; final = Minstance.snapshot m; saturated = false }
    else begin
      let cands = Array.of_list (List.sort Trigger.compare candidates) in
      let verdicts = Exec.map_array pool is_active cands in
      let active = ref [] in
      Array.iteri (fun j t -> if verdicts.(j) then active := t :: !active) cands;
      let active = List.rev !active in
      match active with
      | [] -> { database; rounds = List.rev rounds; final = Minstance.snapshot m; saturated = true }
      | _ ->
          (* Inactive candidates are dropped for good (monotonicity);
             applied ones satisfy their own heads from now on. *)
          discovered := [];
          List.iter
            (fun trigger ->
              List.iter
                (fun atom ->
                  if Minstance.add m atom then
                    List.iter
                      (fun (tgd, p) ->
                        Plan.iter_delta_homs p src atom (fun hom -> discover tgd hom))
                      plans)
                (Trigger.result trigger))
            active;
          let after = Minstance.snapshot m in
          go !discovered ({ index = i; applied = active; after } :: rounds) (i + 1)
    end
  in
  go !discovered [] 0

let round_count r = List.length r.rounds

let applications r = List.fold_left (fun n round -> n + List.length round.applied) 0 r.rounds
