(** Compiled join plans for TGD bodies and heads.

    Every decision procedure in the repo bottoms out in the chase loop,
    which matches TGD bodies against the current instance over and over.
    The generic {!Chase_core.Homomorphism} search re-plans the atom
    order per call and threads persistent maps through the hot loop;
    this module instead compiles each TGD {e once} into:

    - a fixed body atom order chosen by static selectivity (connected,
      most-constrained-first greedy ordering);
    - per-atom index choices: the positions statically known to be bound
      when the atom is matched, among which the least-populated
      [(pred, pos, term)] index is picked at runtime;
    - slot-based matching: variables are interned into integer slots, so
      the inner loop binds into a scratch array with an undo trail
      instead of a balanced map;
    - a {e seed-atom} variant per body atom for incremental matching:
      "all homomorphisms whose i-th body atom is this delta atom" runs a
      plan suffix instead of re-unifying the whole body;
    - a head plan with the frontier slots pre-bound, backing the active
      trigger test, plus a memo keyed by frontier image (head
      satisfaction is monotone under chase growth, so positive answers
      are cached for a whole run).

    Plans run against an abstract {!source}, so the same compiled plans
    serve the persistent {!Chase_core.Instance}, the mutable
    {!Chase_core.Minstance} and the columnar {!Chase_core.Cinstance}
    backends. *)

open Chase_core

type t

(** Compile the TGD's body, delta and head plans. *)
val compile : Tgd.t -> t

(** Memoizing wrapper around {!compile} (keyed by the TGD itself), so
    call sites that receive plain TGD lists still compile once. *)
val of_tgd : Tgd.t -> t

val tgd : t -> Tgd.t

(** {1 Data sources} *)

(** What a plan runs against.  Generic sources (persistent {!Instance},
    mutable {!Minstance}) present atoms as [Atom.t] and are matched
    structurally; the columnar {!Cinstance} source is probed through an
    id-based twin of the runtime — same compiled steps, same index
    policy, but the innermost loop compares dense term ids.  All three
    enumerate the same homomorphisms, so engines are backend-agnostic
    above this seam. *)
type source

val source_of_instance : Instance.t -> source
val source_of_minstance : Minstance.t -> source
val source_of_cinstance : Cinstance.t -> source

(** {1 Running plans} *)

(** [iter_homs p src f] calls [f] on every homomorphism from the body of
    [tgd p] into the source.  The substitutions bind exactly the body
    variables (same domain as the generic search). *)
val iter_homs : t -> source -> (Substitution.t -> unit) -> unit

(** [iter_delta_homs p src atom f]: every body homomorphism that maps at
    least one body atom onto [atom], found by seeding each body position
    with [atom] and running the compiled suffix.  May present the same
    homomorphism once per matching seed position, like the generic
    incremental search. *)
val iter_delta_homs : t -> source -> Atom.t -> (Substitution.t -> unit) -> unit

(** [head_satisfied p src hom]: does some extension of [hom]'s frontier
    restriction map the head into the source?  ([hom] is a full body
    homomorphism; only its frontier bindings are read.) *)
val head_satisfied : t -> source -> Substitution.t -> bool

(** The frontier image of a body homomorphism, in canonical variable
    order — head satisfaction depends only on this. *)
val frontier_image : t -> Substitution.t -> Term.t list

(** {1 Memoized activity}

    Head satisfaction is monotone for a growing instance: once some
    extension maps the head in, it stays in.  A per-run memo keyed by
    (plan, frontier image) therefore caches positive answers — which
    also collapses the activity test across all triggers sharing a
    frontier image. *)
module Head_memo : sig
  type plan := t
  type t

  val create : unit -> t

  (** [is_active memo p src hom]: the Def 3.1 activity test, with the
      satisfied-head cache.  Sound only while the underlying source
      grows monotonically (which chase runs guarantee). *)
  val is_active : t -> plan -> source -> Substitution.t -> bool

  (** [known_inactive memo p hom]: is [hom]'s frontier image already
      cached as satisfied?  A [false] answer decides nothing.  Used by
      the parallel scan to skip fanning out triggers the coordinator
      already knows are inactive. *)
  val known_inactive : t -> plan -> Substitution.t -> bool

  (** [record memo p hom] caches [hom]'s frontier image as satisfied.
      Sound only if [head_satisfied] held on (a subset of) the current
      source — the parallel scan uses it to fold worker verdicts back
      into the coordinator's memo. *)
  val record : t -> plan -> Substitution.t -> unit
end
