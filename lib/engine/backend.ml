type t = [ `Naive | `Compiled | `Columnar ]

let all = [ `Naive; `Compiled; `Columnar ]
let name = function `Naive -> "naive" | `Compiled -> "compiled" | `Columnar -> "columnar"

let of_name = function
  | "naive" -> Ok `Naive
  | "compiled" -> Ok `Compiled
  | "columnar" -> Ok `Columnar
  | s ->
      Error
        (Printf.sprintf "unknown backend %S (expected one of: %s)" s
           (String.concat ", " (List.map name all)))
