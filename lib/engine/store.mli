(** The mutable-store seam of the engines: one record of operations
    over whichever fact store a backend uses, so
    [Restricted]/[Oblivious]/[Incremental] run the same loop over the
    Hashtbl-backed {!Chase_core.Minstance} ([`Compiled]) and the
    columnar interned {!Chase_core.Cinstance} ([`Columnar]).  The
    [`Naive] backend has no mutable store (it chases the persistent
    instance directly), hence the narrower backend type here. *)

open Chase_core

(** The backends that own a mutable store. *)
type backend = [ `Compiled | `Columnar ]

type t = {
  backend : backend;
  add : Atom.t -> bool;  (** insert; [true] when the atom is new *)
  mem : Atom.t -> bool;
  cardinal : unit -> int;
  snapshot : unit -> Instance.t;
  source : Plan.source;  (** what compiled plans probe *)
}

val of_minstance : Minstance.t -> t
val of_cinstance : Cinstance.t -> t

(** A fresh store of the given backend, loaded with the database. *)
val of_instance : backend -> Instance.t -> t

(** {!Backend.of_name} restricted to store-backed backends: ["naive"]
    parses but is rejected with a message naming the valid choices —
    used by surfaces (incremental sessions) that cannot run naive. *)
val backend_of_name : string -> (backend, string) result
