(** The chase backends, with the one shared name parser every consumer
    ([chasectl run]/[fuzz]/[serve], the fuzz oracle, bench) goes
    through — so an unknown backend name produces the same error
    everywhere. *)

(** [`Naive]: generic homomorphism search over the persistent instance.
    [`Compiled]: compiled join plans over the Hashtbl-backed
    {!Chase_core.Minstance}.  [`Columnar]: the same compiled plans over
    the interned, columnar {!Chase_core.Cinstance}.  All three produce
    identical derivations (property-tested and fuzzed). *)
type t = [ `Naive | `Compiled | `Columnar ]

(** In canonical order: naive, compiled, columnar. *)
val all : t list

(** Stable lowercase name: ["naive"], ["compiled"], ["columnar"]. *)
val name : t -> string

(** Inverse of {!name}; [Error] carries the message used verbatim by
    every CLI surface. *)
val of_name : string -> (t, string) result
