(** Cooperative cancellation tokens for racing long-running searches.

    A token is a shared atomic flag: one task sets it ({!cancel}) when
    its answer makes the others' work moot, and the others poll it
    ({!cancelled}) at safe loop boundaries — between Büchi frontier
    expansions, between candidate databases, every few chase steps —
    and bail out with an inconclusive result.  Cancellation is purely
    cooperative: nothing is interrupted, and a task that never polls
    simply runs to completion.

    Tokens are domain-safe (an [Atomic.t] underneath), so the decider
    portfolio can share one token across racers running on
    {!Chase_exec.Pool} worker domains. *)

type t

(** The permanently-unset token: {!cancelled} is always [false] and
    {!cancel} is a no-op.  The default everywhere, keeping the
    non-racing paths branch-cheap. *)
val none : t

val create : unit -> t

(** Set the flag.  Idempotent; never blocks. *)
val cancel : t -> unit

val cancelled : t -> bool
