(* Spawn-once domain pool with chunked submissions and an ordered join.

   One mutex/condition pair carries both directions: the coordinator
   bumps [generation] to publish a job and workers bump [completed] to
   report back.  Within a job, chunks of indices are claimed through an
   atomic cursor ([Atomic.fetch_and_add]) so the schedule is dynamic but
   the result array — indexed by input position — is not.  The
   coordinating domain participates in every job (sink-suspended, see
   pool.mli), so [jobs = n] means n domains computing, n - 1 spawned. *)

type pool = {
  njobs : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable generation : int;  (* bumped once per submitted job *)
  mutable job : unit -> unit;  (* chunk-claiming body of the current job *)
  mutable completed : int;  (* workers done with the current generation *)
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

type t = Inline | Pool of pool

let inline = Inline

let worker_loop p () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock p.mutex;
    while (not p.stop) && p.generation = !seen do
      Condition.wait p.cond p.mutex
    done;
    if p.stop then begin
      Mutex.unlock p.mutex;
      running := false
    end
    else begin
      seen := p.generation;
      let job = p.job in
      Mutex.unlock p.mutex;
      (* the job body traps task exceptions itself; belt and braces *)
      (try job () with _ -> ());
      Mutex.lock p.mutex;
      p.completed <- p.completed + 1;
      Condition.broadcast p.cond;
      Mutex.unlock p.mutex
    end
  done

let create ~jobs () =
  if jobs <= 1 then Inline
  else begin
    let p =
      {
        njobs = jobs;
        mutex = Mutex.create ();
        cond = Condition.create ();
        generation = 0;
        job = ignore;
        completed = 0;
        stop = false;
        workers = [||];
      }
    in
    (* A system that cannot spawn (domain limit reached) degrades to the
       inline pool rather than failing the chase. *)
    match Array.init (jobs - 1) (fun _ -> Domain.spawn (worker_loop p)) with
    | workers ->
        p.workers <- workers;
        Obs.count "pool.domains" (Array.length workers);
        Pool p
    | exception _ -> Inline
  end

let jobs = function Inline -> 1 | Pool p -> p.njobs
let is_parallel = function Inline -> false | Pool p -> Array.length p.workers > 0

let shutdown = function
  | Inline -> ()
  | Pool p ->
      Mutex.lock p.mutex;
      let ws = p.workers in
      p.stop <- true;
      p.workers <- [||];
      Condition.broadcast p.cond;
      Mutex.unlock p.mutex;
      Array.iter Domain.join ws

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Publish [body] to every worker, run it on this domain too, and wait
   until all workers have reported back for this generation. *)
let run_job p body =
  Mutex.lock p.mutex;
  p.job <- body;
  p.completed <- 0;
  p.generation <- p.generation + 1;
  Condition.broadcast p.cond;
  Mutex.unlock p.mutex;
  body ();
  Mutex.lock p.mutex;
  while p.completed < Array.length p.workers do
    Condition.wait p.cond p.mutex
  done;
  Mutex.unlock p.mutex

let default_chunk n njobs = max 1 (n / (njobs * 4))

let map_array ?chunk t f arr =
  let n = Array.length arr in
  match t with
  | Inline -> Array.map f arr
  | Pool _ when n = 0 -> [||]
  | Pool p ->
      let chunk = max 1 (Option.value chunk ~default:(default_chunk n p.njobs)) in
      let nchunks = (n + chunk - 1) / chunk in
      let results = Array.make n None in
      let cursor = Atomic.make 0 in
      let failure = Atomic.make None in
      let body () =
        let continue = ref true in
        while !continue do
          let c = Atomic.fetch_and_add cursor 1 in
          let lo = c * chunk in
          if lo >= n || Atomic.get failure <> None then continue := false
          else
            let hi = min n (lo + chunk) in
            try
              for i = lo to hi - 1 do
                results.(i) <- Some (f arr.(i))
              done
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt)))
        done
      in
      Obs.span "pool.run" (fun () ->
          Obs.count "pool.tasks" n;
          Obs.count "pool.chunks" nchunks;
          run_job p (fun () -> Obs.suspended body));
      (match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.map
        (function
          | Some r -> r
          | None -> invalid_arg "Chase_exec.Pool.map_array: missing result")
        results

let map_list ?chunk t f xs =
  match t with
  | Inline -> List.map f xs
  | Pool _ -> Array.to_list (map_array ?chunk t f (Array.of_list xs))

let default_jobs ?(default = 1) () =
  match Sys.getenv_opt "CHASE_JOBS" with
  | None -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> default)
