(** A small stdlib-only domain pool for deterministic fan-out.

    [Chase_exec.Pool] runs batches of independent tasks across OCaml 5
    domains with an {e ordered deterministic join}: {!map_array} returns
    results in input-index order no matter which domain computed which
    chunk, so a parallel map is observationally a sequential [Array.map]
    of a pure function.  All determinism arguments in the engines
    (DESIGN.md §7) reduce to this property.

    Worker domains are spawned once per pool ({!create}) and reused
    across submissions; each submission is chunked and chunks are
    claimed by an atomic cursor, so skewed task costs balance
    dynamically while the join order stays fixed.  A pool with
    [jobs <= 1] (and [Pool.inline]) degrades to inline execution on the
    calling domain — byte-identical to not having a pool at all, which
    is what keeps the [--jobs 1] paths regression-free.

    {b Task contract.}  Task functions must not mutate shared state:
    they may read frozen structures (a [Minstance] snapshot between
    chase steps, a compiled {!Plan}) and write only to their own result
    slot.  Observability inside task bodies is suspended — worker
    domains have no sink by construction (domain-local sinks, see
    [lib/obs]), and the coordinating domain participates sink-free —
    so a parallel region reports only the aggregate [pool.*] signals:
    [pool.domains] (workers spawned, at {!create}), [pool.tasks] and
    [pool.chunks] (per submission) and a [pool.run] span around each
    parallel join.

    If a task raises, the first exception (in chunk-claim order) is
    re-raised on the coordinating domain after the join. *)

type t

(** The trivial pool: every submission runs inline on the caller. *)
val inline : t

(** [create ~jobs ()] spawns [jobs - 1] worker domains (the submitting
    domain is the [jobs]-th participant).  [jobs <= 1] — or a system
    that refuses to spawn domains — yields an inline pool; oversubscribing
    [Domain.recommended_domain_count ()] is allowed (determinism does
    not depend on the physical core count, only throughput does). *)
val create : jobs:int -> unit -> t

(** Effective parallelism: [1] for an inline pool, [jobs] otherwise. *)
val jobs : t -> int

(** [true] iff submissions actually fan out to worker domains. *)
val is_parallel : t -> bool

(** [map_array ?chunk pool f arr] computes [Array.map f arr] with chunks
    of [chunk] consecutive indices (default: a balanced guess) claimed
    dynamically by all participants; the result is in index order. *)
val map_array : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array

(** List version of {!map_array} (same ordering guarantee). *)
val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list

(** Join and tear down the worker domains.  The pool degrades to inline
    execution afterwards; [shutdown] is idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] = [create], run [f], always [shutdown]. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** Parallelism requested by the environment: [CHASE_JOBS] if set to a
    positive integer, else [default] (itself defaulting to [1] — all
    entry points are sequential unless asked). *)
val default_jobs : ?default:int -> unit -> int
