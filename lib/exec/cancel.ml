(* Cooperative cancellation: a shared flag that long-running searches
   poll at loop boundaries.  Purely advisory — setting it never
   interrupts anything; the holder of the token decides where bailing
   out is sound (between Büchi frontier states, between candidate
   databases, every few chase steps).  [none] is the permanently-unset
   token, so every cancellable entry point can take a token
   unconditionally and stay allocation-free on the common path. *)

type t = Never | Token of bool Atomic.t

let none = Never
let create () = Token (Atomic.make false)

let cancel = function
  | Never -> ()
  | Token flag -> Atomic.set flag true

let cancelled = function
  | Never -> false
  | Token flag -> Atomic.get flag
