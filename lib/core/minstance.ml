(* Mutable instances: the chase engines' hot-path backend.

   The persistent [Instance.t] is the right representation for
   derivation snapshots (chase steps share almost all of their atoms),
   but its balanced-tree indexes make the innermost engine loops —
   membership tests and (pred, pos, term) candidate lookups — pay
   O(log n) with poor locality on every probe.  This module keeps the
   same two indexes in hash tables, and bridges back to the persistent
   world with an incrementally maintained snapshot: atoms added since
   the last snapshot are queued, and folding them in on demand means
   each atom enters the persistent structure at most once ever. *)

module AtomTbl = Hashtbl.Make (struct
  type t = Atom.t

  let equal = Atom.equal
  let hash = Atom.hash
end)

(* (pred, pos, term) index keys, hashed with the components' own hash
   functions rather than the generic deep hash. *)
module TpTbl = Hashtbl.Make (struct
  type t = string * int * Term.t

  let equal (p1, k1, t1) (p2, k2, t2) =
    Int.equal k1 k2 && String.equal p1 p2 && Term.equal t1 t2

  let hash (p, k, t) = (((Hashtbl.hash p * 31) + k) * 31) + Term.hash t
end)

type bucket = { mutable atoms : Atom.t list; mutable count : int }

type t = {
  members : unit AtomTbl.t;
  by_pred : (string, bucket) Hashtbl.t;
  by_term : bucket TpTbl.t;
  mutable size : int;
  mutable snap : Instance.t;  (* persistent image of all but [pending] *)
  mutable pending : Atom.t list;  (* added since [snap], newest first *)
}

let create ?(size_hint = 64) () =
  {
    members = AtomTbl.create size_hint;
    by_pred = Hashtbl.create 16;
    by_term = TpTbl.create size_hint;
    size = 0;
    snap = Instance.empty;
    pending = [];
  }

let mem m a = AtomTbl.mem m.members a
let cardinal m = m.size

let bucket_push tbl key a =
  match Hashtbl.find_opt tbl key with
  | Some b ->
      b.atoms <- a :: b.atoms;
      b.count <- b.count + 1
  | None -> Hashtbl.add tbl key { atoms = [ a ]; count = 1 }

let tp_push tbl key a =
  match TpTbl.find_opt tbl key with
  | Some b ->
      b.atoms <- a :: b.atoms;
      b.count <- b.count + 1
  | None -> TpTbl.add tbl key { atoms = [ a ]; count = 1 }

let add m a =
  if AtomTbl.mem m.members a then begin
    Obs.incr "minstance.dup";
    false
  end
  else begin
    Obs.incr "minstance.add";
    AtomTbl.add m.members a ();
    bucket_push m.by_pred (Atom.pred a) a;
    let p = Atom.pred a in
    for k = 0 to Atom.arity a - 1 do
      tp_push m.by_term (p, k, Atom.arg a k) a
    done;
    m.size <- m.size + 1;
    m.pending <- a :: m.pending;
    true
  end

let of_instance i =
  let m = create ~size_hint:(max 64 (2 * Instance.cardinal i)) () in
  Instance.iter (fun a -> ignore (add m a)) i;
  (* the snapshot is free when it starts from the source instance *)
  m.snap <- i;
  m.pending <- [];
  m

let with_pred m p =
  match Hashtbl.find_opt m.by_pred p with Some b -> b.atoms | None -> []

let pred_count m p =
  match Hashtbl.find_opt m.by_pred p with Some b -> b.count | None -> 0

let with_pos_term m p k t =
  match TpTbl.find_opt m.by_term (p, k, t) with Some b -> b.atoms | None -> []

let pos_term_count m p k t =
  match TpTbl.find_opt m.by_term (p, k, t) with Some b -> b.count | None -> 0

let iter f m = Hashtbl.iter (fun _ b -> List.iter f b.atoms) m.by_pred

let snapshot m =
  match m.pending with
  | [] -> m.snap
  | pending ->
      (* [pending] is newest first; insertion order does not matter for a
         set, so fold directly. *)
      Obs.count "minstance.snapshot.folds" (List.length pending);
      let snap = List.fold_left (fun i a -> Instance.add a i) m.snap pending in
      m.snap <- snap;
      m.pending <- [];
      snap
