(* Substitutions (paper §2): finite functions from terms to terms.  Only
   non-rigid terms (variables and nulls) may be bound; constants are always
   mapped to themselves, so every substitution built here is a candidate
   homomorphism. *)

type t = Term.t Term.Map.t

let empty = Term.Map.empty
let is_empty = Term.Map.is_empty

let find_opt t s = Term.Map.find_opt t s

let mem t s = Term.Map.mem t s

let bind t u s =
  if Term.is_rigid t then invalid_arg "Substitution.bind: constant in domain";
  Term.Map.add t u s

(* Extend [s] with [t ↦ u]; [None] if [t] is already bound to a different
   term, or if [t] is a constant different from [u]. *)
let unify t u s =
  if Term.is_rigid t then if Term.equal t u then Some s else None
  else
    match Term.Map.find_opt t s with
    | Some u' -> if Term.equal u u' then Some s else None
    | None -> Some (Term.Map.add t u s)

let apply_term s t =
  if Term.is_rigid t then t
  else match Term.Map.find_opt t s with Some u -> u | None -> t

let apply_atom s a = Atom.map (apply_term s) a

let apply_atoms s atoms = List.map (apply_atom s) atoms

(* Restriction of [s] to the set of terms [dom] — h|x̄ in the paper. *)
let restrict dom s = Term.Map.filter (fun t _ -> Term.Set.mem t dom) s

(* Does [s'] extend [s]?  (h' ⊇ h in the paper.) *)
let extends ~base:s s' =
  Term.Map.for_all
    (fun t u -> match Term.Map.find_opt t s' with Some u' -> Term.equal u u' | None -> false)
    s

let domain s = Term.Map.fold (fun t _ acc -> Term.Set.add t acc) s Term.Set.empty
let range s = Term.Map.fold (fun _ u acc -> Term.Set.add u acc) s Term.Set.empty

let bindings = Term.Map.bindings
let fold = Term.Map.fold
let iter = Term.Map.iter
let of_bindings bs = List.fold_left (fun s (t, u) -> bind t u s) empty bs
let cardinal = Term.Map.cardinal

let equal = Term.Map.equal Term.equal

let compare = Term.Map.compare Term.compare

(* Composition: (compose s2 s1) t = s2 (s1 t), i.e. apply s1 first. *)
let compose s2 s1 =
  let s1' = Term.Map.map (apply_term s2) s1 in
  Term.Map.union (fun _ v1 _v2 -> Some v1) s1' s2

let is_injective s =
  let seen = Hashtbl.create 16 in
  try
    Term.Map.iter
      (fun _ u ->
        if Hashtbl.mem seen u then raise Exit;
        Hashtbl.add seen u ())
      s;
    true
  with Exit -> false

let to_string s =
  let b = Buffer.create 64 in
  Buffer.add_char b '{';
  let first = ref true in
  Term.Map.iter
    (fun t u ->
      if not !first then Buffer.add_string b ", ";
      first := false;
      Buffer.add_string b (Term.to_string t);
      Buffer.add_string b " -> ";
      Buffer.add_string b (Term.to_string u))
    s;
  Buffer.add_char b '}';
  Buffer.contents b

let pp ppf s = Format.pp_print_string ppf (to_string s)
