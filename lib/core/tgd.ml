(* Tuple-generating dependencies (paper §2):
     ∀x̄∀ȳ (ϕ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄))
   written body → head.  The paper works with single-head, constant-free
   TGDs; we represent the head as an atom list so that multi-head TGDs can
   be expressed too (needed by the fairness counterexample, Example B.1),
   and enforce single-headedness where the theory requires it. *)

type t = { name : string; body : Atom.t list; head : Atom.t list }

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

(* Constants are admitted (standard Datalog±); nulls are runtime-only
   values that never belong in a dependency. *)
let check_null_free which atoms =
  List.iter
    (fun a ->
      List.iter
        (fun t ->
          if Term.is_null t then
            ill_formed "TGD %s contains null %s in %s" (Atom.to_string a) (Term.to_string t)
              which)
        (Atom.terms a))
    atoms

let var_set atoms =
  List.fold_left (fun s a -> Term.Set.union (Atom.var_set a) s) Term.Set.empty atoms

let make ?(name = "") ~body ~head () =
  if body = [] then ill_formed "TGD %s has an empty body" name;
  if head = [] then ill_formed "TGD %s has an empty head" name;
  check_null_free "the body" body;
  check_null_free "the head" head;
  { name; body; head }

let constant_free t =
  let atom_cf a = List.for_all (fun x -> not (Term.is_const x)) (Atom.terms a) in
  List.for_all atom_cf t.body && List.for_all atom_cf t.head

let constant_free_set ts = List.for_all constant_free ts

let name t = t.name
let with_name name t = { t with name }
let body t = t.body
let head t = t.head

let is_single_head t = match t.head with [ _ ] -> true | _ -> false

let head_atom t =
  match t.head with
  | [ a ] -> a
  | _ -> invalid_arg (Printf.sprintf "Tgd.head_atom: %s is not single-head" t.name)

let body_vars t = var_set t.body
let head_vars t = var_set t.head

(* fr(σ): variables occurring in both body and head. *)
let frontier t = Term.Set.inter (body_vars t) (head_vars t)

(* Existentially quantified variables: head variables not in the body. *)
let existential_vars t = Term.Set.diff (head_vars t) (body_vars t)

let all_vars t = Term.Set.union (body_vars t) (head_vars t)

(* 0-based positions of the (single) head at which frontier variables
   occur: ⋃_{x ∈ fr(σ)} pos(head(σ), x).  The terms of result(σ,h) at
   these positions form fr(result(σ,h)) (Def 3.1). *)
let frontier_positions t =
  let h = head_atom t in
  let fr = frontier t in
  let acc = ref [] in
  for i = Atom.arity h - 1 downto 0 do
    if Term.Set.mem (Atom.arg h i) fr then acc := i :: !acc
  done;
  !acc

(* Rename all variables with a prefix, producing a variable-disjoint copy;
   used e.g. by the stickiness marking, which assumes TGDs of a set share
   no variables (§2). *)
let rename_vars prefix t =
  let rn = function
    | Term.Var v -> Term.Var (prefix ^ v)
    | (Term.Const _ | Term.Null _) as x -> x
  in
  { t with body = List.map (Atom.map rn) t.body; head = List.map (Atom.map rn) t.head }

let rename_apart ts =
  List.mapi (fun i t -> rename_vars (Printf.sprintf "r%d_" i) t) ts

(* I ⊨ σ (paper §2): every body homomorphism extends to a head one. *)
let satisfied_by instance t =
  Homomorphism.all t.body instance
  |> Seq.for_all (fun h ->
         let fr = frontier t in
         let init = Substitution.restrict fr h in
         Homomorphism.exists ~init t.head instance)

let satisfied_by_all instance ts = List.for_all (satisfied_by instance) ts

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c
  else
    let catoms xs ys = List.compare Atom.compare xs ys in
    let c = catoms a.body b.body in
    if c <> 0 then c else catoms a.head b.head

let equal a b = compare a b = 0

let to_string t =
  let buf = Buffer.create 64 in
  if t.name <> "" then (
    Buffer.add_string buf t.name;
    Buffer.add_string buf ": ");
  Buffer.add_string buf (String.concat ", " (List.map Atom.to_string t.body));
  Buffer.add_string buf " -> ";
  let ex = existential_vars t in
  if not (Term.Set.is_empty ex) then (
    Buffer.add_string buf "exists ";
    Buffer.add_string buf
      (String.concat ","
         (List.map Term.to_string (Term.Set.elements ex)));
    Buffer.add_string buf ". ");
  Buffer.add_string buf (String.concat ", " (List.map Atom.to_string t.head));
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

let pp_set ppf ts =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf ts
