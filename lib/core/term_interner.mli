(** Dense term interning for the columnar fact store.

    Maps ground terms (constants and nulls) to consecutive integer ids,
    with O(1) reverse lookup, so {!Cinstance} can store relations as
    flat integer columns and join plans can compare ids instead of
    walking [Term.t] structure — while snapshots, derivations and
    null-renaming homomorphism checks keep working on the original
    terms via {!term_of}.

    Ids are assigned in first-intern order starting at 0 and are never
    reused, so they are stable for the lifetime of the interner. *)

type t

(** A fresh interner.  [size_hint] sizes the initial tables; growth past
    it is transparent. *)
val create : ?size_hint:int -> unit -> t

(** [intern t term] returns the id of [term], assigning the next dense
    id on first sight.  Mutates the interner — never call it from the
    read-only plan runtime (see {!find}). *)
val intern : t -> Term.t -> int

(** [find t term] is the id of [term], or [-1] when it was never
    interned.  Read-only, so safe to call concurrently with other
    reads (the parallel activity scan relies on this). *)
val find : t -> Term.t -> int

val find_opt : t -> Term.t -> int option

(** [term_of t id] is the term with the given id.
    @raise Invalid_argument when [id] was never assigned. *)
val term_of : t -> int -> Term.t

(** Number of interned terms (= the next fresh id). *)
val cardinal : t -> int
