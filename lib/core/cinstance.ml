(* Columnar interned instances (see cinstance.mli for the layout
   rationale).  One [rel] per (predicate, arity): growable int-array
   columns plus per-position posting lists and a row-dedup table, all
   keyed on dense term ids from one shared interner.

   The hot-path tables are flat open-addressing arrays rather than
   stdlib [Hashtbl]s: at 10M rows the per-entry cons cells, posting
   boxes and [find_opt] options dominate both wall time and the GC —
   the whole point of this backend is that the indexes are unboxed int
   arrays the collector never traces into. *)

(* A growable set of row indexes, append-only, insertion order.
   Starts as a singleton: most (position, id) postings in
   high-cardinality columns never grow past one row. *)
type posting = { mutable rows : int array; mutable n : int }

let posting_add p row =
  let cap = Array.length p.rows in
  if p.n = cap then begin
    let rows' = Array.make (max 4 (2 * cap)) 0 in
    Array.blit p.rows 0 rows' 0 p.n;
    p.rows <- rows'
  end;
  p.rows.(p.n) <- row;
  p.n <- p.n + 1

(* Scatter for open addressing: keys are dense ids or [land max_int]
   hashes, both sequential-ish — multiply by a big odd constant so the
   low bits (the slot) depend on all input bits. *)
let mix k = (k * 0x9e3779b1) land max_int

(* Flat open-addressing multimap from non-negative int keys to int
   values; [-1] marks an empty slot.  Append-only, no deletion, and a
   key may occupy several slots (the rowset maps a tuple hash to every
   row with that hash).  Readers probe from [mix key] to the first
   empty slot. *)
module Imap = struct
  type t = { mutable keys : int array; mutable vals : int array; mutable n : int }

  (* [cap] must be a power of two. *)
  let create cap = { keys = Array.make cap (-1); vals = Array.make cap 0; n = 0 }

  let add t k v =
    let cap = Array.length t.keys in
    if 4 * (t.n + 1) > 3 * cap then begin
      let cap' = 2 * cap in
      let mask = cap' - 1 in
      let keys' = Array.make cap' (-1) and vals' = Array.make cap' 0 in
      for i = 0 to cap - 1 do
        let k0 = t.keys.(i) in
        if k0 >= 0 then begin
          let j = ref (mix k0 land mask) in
          while keys'.(!j) >= 0 do
            j := (!j + 1) land mask
          done;
          keys'.(!j) <- k0;
          vals'.(!j) <- t.vals.(i)
        end
      done;
      t.keys <- keys';
      t.vals <- vals'
    end;
    let mask = Array.length t.keys - 1 in
    let j = ref (mix k land mask) in
    while t.keys.(!j) >= 0 do
      j := (!j + 1) land mask
    done;
    t.keys.(!j) <- k;
    t.vals.(!j) <- v;
    t.n <- t.n + 1
end

(* Flat open-addressing map from term ids (unique keys) to postings.
   The values array is boxed but there is exactly one posting per
   distinct (position, id) — no per-row allocation. *)
module Ptbl = struct
  type t = { mutable keys : int array; mutable vals : posting array; mutable n : int }

  (* Shared "absent" result: a live posting always has [n >= 1]. *)
  let absent = { rows = [||]; n = 0 }

  let create cap = { keys = Array.make cap (-1); vals = Array.make cap absent; n = 0 }

  let find t id =
    let keys = t.keys in
    let mask = Array.length keys - 1 in
    let j = ref (mix id land mask) in
    let r = ref absent in
    while !r == absent && keys.(!j) >= 0 do
      if keys.(!j) = id then r := t.vals.(!j) else j := (!j + 1) land mask
    done;
    !r

  let add_row t id row =
    let cap = Array.length t.keys in
    if 4 * (t.n + 1) > 3 * cap then begin
      let cap' = 2 * cap in
      let mask = cap' - 1 in
      let keys' = Array.make cap' (-1) and vals' = Array.make cap' absent in
      for i = 0 to cap - 1 do
        let k0 = t.keys.(i) in
        if k0 >= 0 then begin
          let j = ref (mix k0 land mask) in
          while keys'.(!j) >= 0 do
            j := (!j + 1) land mask
          done;
          keys'.(!j) <- k0;
          vals'.(!j) <- t.vals.(i)
        end
      done;
      t.keys <- keys';
      t.vals <- vals'
    end;
    let keys = t.keys in
    let mask = Array.length keys - 1 in
    let j = ref (mix id land mask) in
    while keys.(!j) >= 0 && keys.(!j) <> id do
      j := (!j + 1) land mask
    done;
    if keys.(!j) = id then posting_add t.vals.(!j) row
    else begin
      keys.(!j) <- id;
      t.vals.(!j) <- { rows = [| row |]; n = 1 };
      t.n <- t.n + 1
    end
end

(* Per-position indexing is split in two tiers.  A bulk load ends by
   counting-sorting each column into [base_perm]: rows [0, base_n) in
   id order, probed by binary search — three sequential-ish array
   passes to build, no hashing, no per-id boxes.  Rows added after the
   bulk load (chase steps) land in the [index] hash tier instead, so a
   posting for [id] is the [base_perm] range holding [id] followed by
   the [Ptbl] posting — both in insertion order. *)
type rel = {
  pred : string;
  arity : int;
  mutable nrows : int;
  mutable cap : int;
  mutable cols : int array array;  (* [arity] arrays of length [cap] *)
  mutable base_n : int;  (* rows covered by [base_perm] *)
  mutable base_perm : int array array;  (* per position: rows [0, base_n) sorted by cell id *)
  index : Ptbl.t array;  (* per position: term id -> rows >= base_n *)
  rowset : Imap.t;  (* id-tuple hash -> candidate rows *)
  scratch : int array;  (* per-add id buffer; mutation is single-domain *)
}

type t = {
  interner : Term_interner.t;
  by_name : (string, rel list) Hashtbl.t;  (* arity variants, oldest first *)
  mutable memo : rel option;  (* last relation touched by [add] *)
  mutable size : int;
  mutable snap : Instance.t;  (* persistent image of all but [pending] *)
  mutable pending : Atom.t list;  (* added since [snap], newest first *)
}

let create ?(size_hint = 64) () =
  {
    interner = Term_interner.create ~size_hint:(max 16 size_hint) ();
    by_name = Hashtbl.create 16;
    memo = None;
    size = 0;
    snap = Instance.empty;
    pending = [];
  }

let rec pow2_ge n k = if k >= n then k else pow2_ge n (2 * k)

(* [rows_hint] pre-sizes the columns and the rowset: a bulk load that
   knows its row count up front never grows a column or rehashes the
   rowset (the biggest table — one entry per row). *)
let make_rel ?(rows_hint = 16) pred arity =
  let cap = pow2_ge (max 16 rows_hint) 16 in
  {
    pred;
    arity;
    nrows = 0;
    cap;
    cols = Array.init arity (fun _ -> Array.make cap 0);
    base_n = 0;
    base_perm = [||];
    index = Array.init arity (fun _ -> Ptbl.create 16);
    rowset = Imap.create (2 * cap);
    scratch = Array.make (max 1 arity) 0;
  }

(* Counting sort of each column into a base permutation.  Only valid
   right after a bulk load, while the hash tier is still empty. *)
let build_base r =
  r.base_n <- r.nrows;
  r.base_perm <-
    Array.init r.arity (fun i ->
        let col = r.cols.(i) in
        let n = r.nrows in
        let maxid = ref 0 in
        for row = 0 to n - 1 do
          if col.(row) > !maxid then maxid := col.(row)
        done;
        let cnt = Array.make (!maxid + 2) 0 in
        for row = 0 to n - 1 do
          cnt.(col.(row) + 1) <- cnt.(col.(row) + 1) + 1
        done;
        for id = 1 to !maxid + 1 do
          cnt.(id) <- cnt.(id) + cnt.(id - 1)
        done;
        let perm = Array.make n 0 in
        for row = 0 to n - 1 do
          let id = col.(row) in
          perm.(cnt.(id)) <- row;
          cnt.(id) <- cnt.(id) + 1
        done;
        perm)

(* [base_range r pos id] is the half-open [base_perm.(pos)] interval of
   rows whose [pos]-th cell is [id] — [(0, 0)]-style empty when the
   base tier does not cover it. *)
let base_range r pos id =
  if r.base_n = 0 || pos >= Array.length r.base_perm then (0, 0)
  else begin
    let perm = r.base_perm.(pos) in
    let col = r.cols.(pos) in
    let n = r.base_n in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) lsr 1 in
      if col.(perm.(mid)) < id then lo := mid + 1 else hi := mid
    done;
    let first = !lo in
    let lo = ref first and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) lsr 1 in
      if col.(perm.(mid)) <= id then lo := mid + 1 else hi := mid
    done;
    (first, !lo)
  end

let variants c pred = Option.value (Hashtbl.find_opt c.by_name pred) ~default:[]

let rel_of_slow ?rows_hint c pred arity =
  let vs = variants c pred in
  match List.find_opt (fun r -> r.arity = arity) vs with
  | Some r -> r
  | None ->
      let r = make_rel ?rows_hint pred arity in
      Hashtbl.replace c.by_name pred (vs @ [ r ]);
      r

(* Chase steps add runs of same-predicate atoms, so one memo slot skips
   the string hash on almost every [add]. *)
let rel_of c pred arity =
  match c.memo with
  | Some r when r.arity = arity && String.equal r.pred pred -> r
  | _ ->
      let r = rel_of_slow c pred arity in
      c.memo <- Some r;
      r

(* Hash of the first [arity] cells of [ids] — the row-dedup key. *)
let hash_ids ids arity =
  let h = ref arity in
  for i = 0 to arity - 1 do
    h := ((!h * 65599) + ids.(i)) land max_int
  done;
  !h

(* Is there a live row of [r] whose cells equal [ids]?  Probes the
   rowset multimap inline: every slot holding hash [h] names a
   candidate row whose columns are then compared cell by cell. *)
let row_mem r h ids =
  let keys = r.rowset.Imap.keys and vals = r.rowset.Imap.vals in
  let mask = Array.length keys - 1 in
  let j = ref (mix h land mask) in
  let found = ref false in
  while (not !found) && keys.(!j) >= 0 do
    (if keys.(!j) = h then begin
       let row = vals.(!j) in
       let ok = ref true in
       for i = 0 to r.arity - 1 do
         if r.cols.(i).(row) <> ids.(i) then ok := false
       done;
       if !ok then found := true
     end);
    j := (!j + 1) land mask
  done;
  !found

let grow r =
  let cap' = 2 * r.cap in
  r.cols <-
    Array.map
      (fun col ->
        let col' = Array.make cap' 0 in
        Array.blit col 0 col' 0 r.nrows;
        col')
      r.cols;
  r.cap <- cap'

(* [pending] tracking is skipped during [of_instance] bulk load: the
   source instance itself becomes the snapshot, so consing 10M atoms
   onto [pending] only to drop them would double load allocation.
   [dedup:false] likewise skips the rowset probe when the source is a
   persistent set and cannot contain the row already, and
   [index:false] defers per-position indexing to the [build_base]
   counting sort that follows the load. *)
let add_atom c atom ~track ~dedup ~index =
  let pred = Atom.pred atom and arity = Atom.arity atom in
  let r = rel_of c pred arity in
  let ids = r.scratch in
  for i = 0 to arity - 1 do
    ids.(i) <- Term_interner.intern c.interner (Atom.arg atom i)
  done;
  let h = hash_ids ids arity in
  if dedup && row_mem r h ids then begin
    Obs.incr "cinstance.dup";
    false
  end
  else begin
    Obs.incr "cinstance.add";
    if r.nrows = r.cap then grow r;
    let row = r.nrows in
    for i = 0 to arity - 1 do
      r.cols.(i).(row) <- ids.(i);
      if index then Ptbl.add_row r.index.(i) ids.(i) row
    done;
    Imap.add r.rowset h row;
    r.nrows <- row + 1;
    c.size <- c.size + 1;
    if track then c.pending <- atom :: c.pending;
    true
  end

let add c atom = add_atom c atom ~track:true ~dedup:true ~index:true

let of_instance i =
  let c = create ~size_hint:(max 64 (2 * Instance.cardinal i)) () in
  (* sizing pass: count rows per (predicate, arity) so every relation
     is born at final capacity — the bulk load below then never copies
     a column or rehashes a rowset (the per-position posting tables
     still grow; their cardinality is not knowable without a third
     pass). *)
  let counts : (string * int, int ref) Hashtbl.t = Hashtbl.create 16 in
  (* [Instance.iter] visits atoms in [Atom.compare] order, so each
     (pred, arity) arrives as one contiguous run and the memo makes
     the counting pass hash-free for all but the first atom of each *)
  let memo = ref ("", -1, ref 0) in
  Instance.iter
    (fun a ->
      let pred = Atom.pred a and arity = Atom.arity a in
      let mp, ma, mc = !memo in
      if ma = arity && String.equal mp pred then incr mc
      else begin
        let cell =
          match Hashtbl.find_opt counts (pred, arity) with
          | Some r -> r
          | None ->
              let r = ref 0 in
              Hashtbl.add counts (pred, arity) r;
              r
        in
        incr cell;
        memo := (pred, arity, cell)
      end)
    i;
  Hashtbl.iter (fun (pred, arity) n -> ignore (rel_of_slow ~rows_hint:!n c pred arity)) counts;
  Instance.iter (fun a -> ignore (add_atom c a ~track:false ~dedup:false ~index:false)) i;
  Hashtbl.iter (fun _ rs -> List.iter build_base rs) c.by_name;
  (* the snapshot is free when it starts from the source instance *)
  c.snap <- i;
  c.pending <- [];
  c

let find_id c term = Term_interner.find c.interner term
let term_of_id c id = Term_interner.term_of c.interner id
let interner c = c.interner

let rel_lookup c pred arity = List.find_opt (fun r -> r.arity = arity) (variants c pred)

let mem c atom =
  let pred = Atom.pred atom and arity = Atom.arity atom in
  match rel_lookup c pred arity with
  | None -> false
  | Some r ->
      let ids = Array.make (max 1 arity) 0 in
      let known = ref true in
      for i = 0 to arity - 1 do
        let id = Term_interner.find c.interner (Atom.arg atom i) in
        if id < 0 then known := false else ids.(i) <- id
      done;
      !known && row_mem r (hash_ids ids arity) ids

let cardinal c = c.size

let atom_of_rel_row c r row =
  Atom.make_a r.pred (Array.init r.arity (fun i -> Term_interner.term_of c.interner r.cols.(i).(row)))

let with_pred c pred =
  List.concat_map
    (fun r -> List.init r.nrows (fun j -> atom_of_rel_row c r (r.nrows - 1 - j)))
    (variants c pred)

let pred_count c pred = List.fold_left (fun acc r -> acc + r.nrows) 0 (variants c pred)

(* Rows whose [pos]-th cell is [id], insertion order: the base range
   first (bulk-loaded rows, ascending row number), then the hash-tier
   posting (later adds, also ascending). *)
let iter_posting_rows r pos id f =
  if pos >= 0 && pos < r.arity && id >= 0 then begin
    let lo, hi = base_range r pos id in
    let perm = if r.base_n = 0 then [||] else r.base_perm.(pos) in
    for k = lo to hi - 1 do
      f perm.(k)
    done;
    let p = Ptbl.find r.index.(pos) id in
    for j = 0 to p.n - 1 do
      f p.rows.(j)
    done
  end

let posting_rows_count r pos id =
  if pos < 0 || pos >= r.arity || id < 0 then 0
  else
    let lo, hi = base_range r pos id in
    hi - lo + (Ptbl.find r.index.(pos) id).n

let with_pos_term c pred pos term =
  let id = find_id c term in
  List.concat_map
    (fun r ->
      (* prepending while walking insertion order yields newest first *)
      let acc = ref [] in
      iter_posting_rows r pos id (fun row -> acc := atom_of_rel_row c r row :: !acc);
      !acc)
    (variants c pred)

let pos_term_count c pred pos term =
  let id = find_id c term in
  List.fold_left (fun acc r -> acc + posting_rows_count r pos id) 0 (variants c pred)

let iter f c =
  Hashtbl.iter
    (fun _ rs ->
      List.iter
        (fun r ->
          for row = 0 to r.nrows - 1 do
            f (atom_of_rel_row c r row)
          done)
        rs)
    c.by_name

let snapshot c =
  match c.pending with
  | [] -> c.snap
  | pending ->
      Obs.count "cinstance.snapshot.folds" (List.length pending);
      let snap = List.fold_left (fun i a -> Instance.add a i) c.snap pending in
      c.snap <- snap;
      c.pending <- [];
      snap

module Rel = struct
  type nonrec t = rel

  let arity r = r.arity
  let rows r = r.nrows
  let cols r = r.cols

  let iter_posting r pos id f = iter_posting_rows r pos id f
  let posting_count r pos id = posting_rows_count r pos id
end

let rel c pred arity = rel_lookup c pred arity
let atom_of_row c r row = atom_of_rel_row c r row
