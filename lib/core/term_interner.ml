(* Dense term <-> id interning (see term_interner.mli).  Forward is a
   Term-keyed hash table; reverse is a growable array indexed by id, so
   both directions are O(1) and the id space stays dense. *)

module TTbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

type t = {
  ids : int TTbl.t;
  mutable terms : Term.t array;  (* reverse lookup; meaningful below [n] *)
  mutable n : int;
}

(* Placeholder for unassigned reverse slots; never returned. *)
let dummy = Term.Const ""

let create ?(size_hint = 64) () =
  { ids = TTbl.create (max 1 size_hint); terms = Array.make (max 1 size_hint) dummy; n = 0 }

(* Allocation-free on the hit path: [find] returns an immediate int,
   where [find_opt] would box an option per interned argument. *)
let intern t term =
  match TTbl.find t.ids term with
  | id -> id
  | exception Not_found ->
      let id = t.n in
      let cap = Array.length t.terms in
      if id = cap then begin
        let terms' = Array.make (2 * cap) dummy in
        Array.blit t.terms 0 terms' 0 cap;
        t.terms <- terms'
      end;
      TTbl.add t.ids term id;
      t.terms.(id) <- term;
      t.n <- id + 1;
      id

let find t term = match TTbl.find_opt t.ids term with Some id -> id | None -> -1
let find_opt t term = TTbl.find_opt t.ids term

let term_of t id =
  if id < 0 || id >= t.n then invalid_arg (Printf.sprintf "Term_interner.term_of: id %d" id);
  t.terms.(id)

let cardinal t = t.n
