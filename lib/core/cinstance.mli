(** Columnar, interned mutable instances — the [`Columnar] chase
    backend's fact store.

    Same logical contract as {!Minstance} — [add]/[mem]/[with_pred]/
    [with_pos_term]/[snapshot] over ground atoms — but each relation
    (keyed by predicate {e and} arity) is stored as growable integer
    columns, one per argument position, over a {!Term_interner}:

    - a fact is one row: arity cells of dense term ids, no boxed
      [Atom.t] on the hot path;
    - per-position secondary indexes map a term id to the row numbers
      where it occurs, replacing the [(pred, pos, term)] Hashtbl of
      {!Minstance};
    - duplicate detection hashes the id tuple and compares candidate
      rows by scanning columns — no structural [Atom.equal] either.

    Join plans probe the columns directly through the {!Rel} API
    ({!Plan.source_of_cinstance}), comparing ids in the innermost loop.
    The interner's reverse lookup rebuilds real atoms only at the
    edges: snapshots, [with_pred]/[with_pos_term] views, and hom emit.

    {b Concurrency.}  Reads never mutate (in particular they never
    intern: a term the store has not seen occurs in no row), so the
    parallel speculative activity scan may probe a frozen store from
    many domains, exactly as with {!Minstance}.  All mutation
    ({!add}) is single-domain, like every engine's. *)

type t

(** A fresh, empty columnar instance. *)
val create : ?size_hint:int -> unit -> t

(** Columnar copy of a persistent instance. *)
val of_instance : Instance.t -> t

(** [add c a] inserts [a]; returns [true] when the atom is new.
    The only mutating operation. *)
val add : t -> Atom.t -> bool

val mem : t -> Atom.t -> bool
val cardinal : t -> int

(** Atoms with the given predicate — newest first within each
    (predicate, arity) relation. *)
val with_pred : t -> string -> Atom.t list

val pred_count : t -> string -> int

(** Atoms with the given term at the given 0-based position, newest
    first within each relation. *)
val with_pos_term : t -> string -> int -> Term.t -> Atom.t list

val pos_term_count : t -> string -> int -> Term.t -> int

val iter : (Atom.t -> unit) -> t -> unit

(** Persistent image of the current contents; amortized O(atoms added
    since the previous snapshot), exactly as {!Minstance.snapshot}. *)
val snapshot : t -> Instance.t

(** {1 Low-level columnar access}

    The raw surface compiled join plans probe ({!Plan.source_of_cinstance}).
    All of it is read-only; callers must not mutate the store while
    holding a {!Rel.t} mid-enumeration (the engines never do — matching
    and adding are separate phases of a chase step). *)

(** [find_id c term] is the dense id of [term], or [-1] when the store
    has never interned it — in which case no row contains it. *)
val find_id : t -> Term.t -> int

(** Reverse lookup; total on every id {!find_id} or {!Rel.col} can
    return. *)
val term_of_id : t -> int -> Term.t

val interner : t -> Term_interner.t

module Rel : sig
  type t

  val arity : t -> int

  (** Number of live rows; only cells with row index below this are
      meaningful. *)
  val rows : t -> int

  (** The live column arrays, one per position (length = capacity ≥
      {!rows}; do not mutate, do not read at or past {!rows}). *)
  val cols : t -> int array array

  (** [iter_posting r pos id f] applies [f] to every row index whose
      [pos]-th cell is [id], in insertion order.  A no-op for a
      never-seen id.  Internally the posting is two tiers: a binary
      search over the bulk-load permutation (rows counting-sorted by
      id per position) followed by the hash tier holding rows added
      since. *)
  val iter_posting : t -> int -> int -> (int -> unit) -> unit

  val posting_count : t -> int -> int -> int
end

(** The relation storing atoms [pred/arity], if any such atom was ever
    added. *)
val rel : t -> string -> int -> Rel.t option

(** The atom stored at a row of a relation (rebuilt through the
    interner). *)
val atom_of_row : t -> Rel.t -> int -> Atom.t
