(** Tuple-generating dependencies (paper §2):
    [∀x̄∀ȳ (ϕ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄))], written body → head.

    The theory in the paper concerns {e single-head}, constant-free TGDs;
    the representation also admits multi-head TGDs (the head is an atom
    list), which are needed for the fairness counterexample (Example B.1),
    and TGDs mentioning constants (standard Datalog±), which the chase
    engines support.  Functions that require single-headedness or
    constant-freeness say so; {!constant_free} tests the latter. *)

type t

exception Ill_formed of string

(** Build a TGD.  Constants may occur in the body and the head; nulls —
    runtime-only values — may not.
    @raise Ill_formed when the body or head is empty or contains a null. *)
val make : ?name:string -> body:Atom.t list -> head:Atom.t list -> unit -> t

(** No constant occurs in the body or head.  The paper's decision
    procedures (§5, §6) assume constant-free sets; the engines do not. *)
val constant_free : t -> bool

val constant_free_set : t list -> bool

val name : t -> string
val with_name : string -> t -> t
val body : t -> Atom.t list
val head : t -> Atom.t list

val is_single_head : t -> bool

(** The single head atom.
    @raise Invalid_argument on a multi-head TGD. *)
val head_atom : t -> Atom.t

val body_vars : t -> Term.Set.t
val head_vars : t -> Term.Set.t

(** fr(σ): variables occurring in both body and head. *)
val frontier : t -> Term.Set.t

val existential_vars : t -> Term.Set.t
val all_vars : t -> Term.Set.t

(** 0-based head positions holding frontier variables (single-head only):
    the terms of [result(σ,h)] at these positions are its frontier
    (Def 3.1). *)
val frontier_positions : t -> int list

val rename_vars : string -> t -> t

(** Rename the TGDs so that no two share a variable (assumed w.l.o.g. by
    the stickiness marking of §2). *)
val rename_apart : t list -> t list

(** [satisfied_by i σ] is I ⊨ σ. *)
val satisfied_by : Instance.t -> t -> bool

val satisfied_by_all : Instance.t -> t list -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val pp_set : Format.formatter -> t list -> unit
