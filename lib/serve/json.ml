(* Minimal JSON: just enough for the chasectl serve wire protocol
   (docs/SERVICE.md), with positioned parse errors so a malformed
   request line gets a line/col diagnostic instead of a crash.  No
   external dependency — the repo's policy is stdlib + unix only. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of { line : int; col : int; msg : string }

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int; mutable line : int; mutable bol : int }

let error st msg = raise (Error { line = st.line; col = st.pos - st.bol + 1; msg })

let peek st = if st.pos >= String.length st.src then None else Some st.src.[st.pos]

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> error st (Printf.sprintf "expected '%c', found '%c'" c d)
  | None -> error st (Printf.sprintf "expected '%c', found end of input" c)

let keyword st kw value =
  let n = String.length kw in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = kw then begin
    for _ = 1 to n do
      advance st
    done;
    value
  end
  else error st (Printf.sprintf "expected '%s'" kw)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                (* int_of_string would also accept OCaml literal syntax
                   (underscores, a second 0x) — require 4 hex digits. *)
                let digit c =
                  match c with
                  | '0' .. '9' -> Char.code c - Char.code '0'
                  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                  | _ -> error st (Printf.sprintf "invalid \\u escape %S" hex)
                in
                let code =
                  String.fold_left (fun acc c -> (acc * 16) + digit c) 0 hex
                in
                for _ = 1 to 4 do
                  advance st
                done;
                (* UTF-8 encode the code point (BMP only; surrogate
                   pairs are passed through as two encoded halves —
                   fine for the protocol's ASCII payloads). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> error st (Printf.sprintf "invalid escape '\\%c'" c));
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
        advance st;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error st (Printf.sprintf "malformed number %S" s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> error st (Printf.sprintf "malformed number %S" s))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (key, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> error st "expected ',' or '}' in object"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements ()
          | Some ']' -> advance st
          | _ -> error st "expected ',' or ']' in array"
        in
        elements ();
        Arr (List.rev !items)
      end
  | Some 't' -> keyword st "true" (Bool true)
  | Some 'f' -> keyword st "false" (Bool false)
  | Some 'n' -> keyword st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character '%c'" c)

let parse src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | None -> ()
  | Some c -> error st (Printf.sprintf "trailing input starting at '%c'" c));
  v

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec print buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (Obs.Jsonl.escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          print buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (Obs.Jsonl.escape k);
          Buffer.add_string buf "\": ";
          print buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  print buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_str_opt = function Some (Str s) -> Some s | _ -> None

let to_int_opt = function
  | Some (Int i) -> Some i
  | Some (Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let to_bool_opt = function Some (Bool b) -> Some b | _ -> None
