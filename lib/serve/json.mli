(** Minimal JSON values for the [chasectl serve] wire protocol
    (docs/SERVICE.md): parse with positioned errors, print one-line
    documents.  Integers round-trip as [Int]; any number with a
    fraction or exponent parses as [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Raised by {!parse} with a 1-based position into the input. *)
exception Error of { line : int; col : int; msg : string }

(** Parse exactly one JSON document (trailing input is an error).
    @raise Error on malformed input. *)
val parse : string -> t

(** One-line rendering; non-finite floats serialize as [null], strings
    are escaped as in [Obs.Jsonl]. *)
val to_string : t -> string

(** [member k v] is field [k] of object [v] ([None] elsewhere). *)
val member : string -> t -> t option

val to_str_opt : t option -> string option
val to_int_opt : t option -> int option
val to_float_opt : t option -> float option
val to_bool_opt : t option -> bool option
