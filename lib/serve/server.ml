(* The serve loop: a registry of named sessions driven by JSON-lines
   requests (docs/SERVICE.md).  One request per input line, exactly one
   reply per request, errors as structured replies — a malformed line
   or a hostile program must never kill the server.

   Admission control: the number of live sessions is capped ([busy]
   reply beyond it), every chase call runs under the session's
   step/fact/wall budgets ([budget-exhausted] status or reply), and the
   decider runs with its own bounded state budgets — so no single
   session can starve the shared [Chase_exec] pool. *)

open Chase_core
module Exec = Chase_exec.Pool
module P = Protocol

type config = {
  max_sessions : int;
  defaults : Session.budgets;
  backend : Chase_engine.Store.backend;
}

let default_config =
  { max_sessions = 64; defaults = Session.default_budgets; backend = `Compiled }

type t = {
  config : config;
  epool : Exec.t;
  sessions : (string, Session.t) Hashtbl.t;
}

let create ?(epool = Exec.inline) config = { config; epool; sessions = Hashtbl.create 16 }

let session_count t = Hashtbl.length t.sessions

(* --- reply construction --------------------------------------------- *)

(* Every reply echoes the request id (when present), carries "ok", and
   names the op and session it answers — so a client multiplexing
   sessions over one connection can route replies without state. *)
let reply ?id ?op ?session ~ok fields =
  let base =
    Option.to_list (Option.map (fun id -> ("id", id)) id)
    @ [ ("ok", Json.Bool ok) ]
    @ Option.to_list (Option.map (fun op -> ("op", Json.Str op)) op)
    @ Option.to_list (Option.map (fun s -> ("session", Json.Str s)) session)
  in
  Json.Obj (base @ fields)

let error_reply ?id ?op ?session ?position code msg =
  Obs.incr "serve.errors";
  let position_fields =
    match position with
    | Some (line, col) -> [ ("line", Json.Int line); ("col", Json.Int col) ]
    | None -> []
  in
  reply ?id ?op ?session ~ok:false
    [
      ( "error",
        Json.Obj
          ([ ("code", Json.Str (P.error_code_name code)); ("msg", Json.Str msg) ]
          @ position_fields) );
    ]

exception Request_error of {
  code : P.error_code;
  msg : string;
  position : (int * int) option;
}

let fail ?position code fmt =
  Format.kasprintf (fun msg -> raise (Request_error { code; msg; position })) fmt

(* Surface-syntax parsing with protocol-level positioned errors. *)
let parse_program_payload what src =
  match Chase_parser.Parser.parse_program src with
  | p -> p
  | exception Chase_parser.Parser.Error { line; col; msg } ->
      fail ~position:(line, col) P.Parse_error "%s: %s" what msg
  | exception Chase_parser.Lexer.Error { line; col; msg } ->
      fail ~position:(line, col) P.Parse_error "%s: %s" what msg

let parse_facts_payload what src =
  let p = parse_program_payload what src in
  if Chase_parser.Program.tgds p <> [] then
    fail P.Invalid_request "%s must contain only facts, found a TGD" what;
  Instance.to_list (Chase_parser.Program.database p)

let find_session t name =
  match Hashtbl.find_opt t.sessions name with
  | Some s -> s
  | None -> fail P.Unknown_session "no session named %S (load-program creates one)" name

(* --- per-request handlers ------------------------------------------- *)

let limit_field = function
  | None -> []
  | Some l -> [ ("limit", Json.Str (Chase_engine.Incremental.limit_name l)) ]

let status_str saturated = if saturated then "terminated" else "budget-exhausted"

let chase_fields (r : Session.chase_record) inc =
  [
    ("status", Json.Str (status_str r.Session.saturated));
    ("steps", Json.Int r.Session.steps);
    ("incremental", Json.Bool r.Session.incremental);
    ("facts", Json.Int (Chase_engine.Incremental.cardinal inc));
    ("pending", Json.Int (Chase_engine.Incremental.pending inc));
  ]
  @ limit_field r.Session.limit
  @ [ ("wall_ms", Json.Float r.Session.wall_ms) ]

let handle_load t ~session ~program ~budgets ~backend =
  let fresh = not (Hashtbl.mem t.sessions session) in
  if fresh && session_count t >= t.config.max_sessions then
    fail P.Busy "session table is full (%d sessions); close one or raise --max-sessions"
      t.config.max_sessions;
  let p = parse_program_payload "program" program in
  let tgds = Chase_parser.Program.tgds p in
  let db = Chase_parser.Program.database p in
  let budgets = Session.resolve_budgets ~defaults:t.config.defaults budgets in
  if Instance.cardinal db > budgets.Session.max_facts then
    fail P.Budget_exhausted "program carries %d facts, over the session's max_facts %d"
      (Instance.cardinal db) budgets.Session.max_facts;
  let backend = Option.value backend ~default:t.config.backend in
  let s = Session.create ~name:session ~budgets ~backend tgds db in
  Hashtbl.replace t.sessions session s;
  Obs.gauge "serve.sessions" (session_count t);
  [
    ("tgds", Json.Int (List.length tgds));
    ("facts", Json.Int (Instance.cardinal db));
    ("backend", Json.Str (Chase_engine.Backend.name (backend :> Chase_engine.Backend.t)));
    ("fresh", Json.Bool fresh);
  ]

let handle_assert t ~session ~facts =
  let s = find_session t session in
  let atoms = parse_facts_payload "facts" facts in
  let inc = Session.incremental s in
  let cap = (Session.budgets s).Session.max_facts in
  (* Count only atoms the instance doesn't already hold (deduplicated),
     so an idempotent re-assert near — or past, since a chase step can
     overshoot the cap by its last atom — the cap isn't spuriously
     refused: adding nothing is always admissible. *)
  let snapshot = Chase_engine.Incremental.instance inc in
  let fresh =
    List.filter (fun a -> not (Instance.mem a snapshot)) atoms
    |> List.sort_uniq Atom.compare
  in
  if fresh <> [] && Chase_engine.Incremental.cardinal inc + List.length fresh > cap then
    fail P.Budget_exhausted
      "asserting %d new facts would push the instance over max_facts %d (currently %d atoms)"
      (List.length fresh) cap
      (Chase_engine.Incremental.cardinal inc);
  let added = Session.assert_atoms s atoms in
  [
    ("added", Json.Int added);
    ("facts", Json.Int (Chase_engine.Incremental.cardinal inc));
    ("pending", Json.Int (Chase_engine.Incremental.pending inc));
  ]

let handle_retract t ~session ~facts =
  let s = find_session t session in
  let atoms = parse_facts_payload "facts" facts in
  let inc = Session.incremental s in
  let removed = Session.retract_atoms s atoms in
  [
    ("removed", Json.Int removed);
    ("facts", Json.Int (Chase_engine.Incremental.cardinal inc));
    ("rechase", Json.Str (if removed > 0 then "full" else "none"));
  ]

let handle_chase t ~session ~max_steps =
  let s = find_session t session in
  let r = Session.chase ~epool:t.epool ?max_steps s in
  chase_fields r (Session.incremental s)

let handle_query t ~session ~query =
  let s = find_session t session in
  let inc = Session.incremental s in
  if not (Chase_engine.Incremental.saturated inc) then
    fail P.Not_saturated
      "certain answers need a saturated session: run `chase` until status is \"terminated\"";
  let q =
    match Chase_query.Conjunctive_query.parse query with
    | q -> q
    | exception Chase_parser.Parser.Error { line; col; msg } ->
        fail ~position:(line, col) P.Parse_error "query: %s" msg
    | exception Chase_parser.Lexer.Error { line; col; msg } ->
        fail ~position:(line, col) P.Parse_error "query: %s" msg
    | exception Invalid_argument msg -> fail P.Parse_error "query: %s" msg
  in
  let answers =
    Session.with_obs s (fun () ->
        Chase_query.Conjunctive_query.answers q (Chase_engine.Incremental.instance inc))
    |> List.filter (List.for_all Term.is_const)
  in
  [
    ( "answers",
      Json.Arr
        (List.map (fun tuple -> Json.Arr (List.map (fun t -> Json.Str (Term.to_string t)) tuple))
           answers) );
    ("count", Json.Int (List.length answers));
  ]

let handle_classify t ~session =
  let s = find_session t session in
  let r =
    Session.with_obs s (fun () ->
        Chase_classes.Classification.classify (Chase_engine.Incremental.tgds (Session.incremental s)))
  in
  let open Chase_classes.Classification in
  [
    ("tgds", Json.Int r.tgd_count);
    ("max_arity", Json.Int r.max_arity);
    ("single_head", Json.Bool r.single_head);
    ("linear", Json.Bool r.linear);
    ("guarded", Json.Bool r.guarded);
    ("sticky", Json.Bool r.sticky);
    ("weakly_acyclic", Json.Bool r.weakly_acyclic);
    ("jointly_acyclic", Json.Bool r.jointly_acyclic);
  ]

let handle_decide t ~session ~portfolio ~max_states ~max_depth =
  let s = find_session t session in
  let open Chase_termination.Decider in
  let report =
    Session.with_obs s (fun () ->
        let tgds = Chase_engine.Incremental.tgds (Session.incremental s) in
        (* Budget overruns surface as Unknown answers (the deciders
           return Inconclusive / No_divergence_found), never as
           exceptions escaping the session. *)
        if portfolio then
          decide_portfolio ?sticky_max_states:max_states ?guarded_max_depth:max_depth
            ~pool:t.epool tgds
        else decide ?sticky_max_states:max_states ?guarded_max_depth:max_depth ~pool:t.epool tgds)
  in
  let answer_str = function
    | Terminating -> "terminating"
    | Non_terminating -> "non-terminating"
    | Unknown -> "unknown"
  in
  [
    ("answer", Json.Str (answer_str report.answer));
    ("method", Json.Str (method_name report.method_used));
    ("detail", Json.Str report.detail);
  ]
  @
  if report.procedures = [] then []
  else
    [
      ( "procedures",
        Json.Arr
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("name", Json.Str (method_name p.procedure));
                   ("outcome", Json.Str (answer_str p.outcome));
                   ("conclusive", Json.Bool p.conclusive);
                   ("cancelled", Json.Bool p.cancelled);
                   ("wall_ms", Json.Float p.wall_ms);
                   ("note", Json.Str p.note);
                 ])
             report.procedures) );
    ]

let handle_stats t ~session =
  let s = find_session t session in
  let inc = Session.incremental s in
  let b = Session.budgets s in
  let stats = Session.stats s in
  let last =
    match Session.last_chase s with
    | None -> Json.Null
    | Some r ->
        Json.Obj
          ([
             ("steps", Json.Int r.Session.steps);
             ("incremental", Json.Bool r.Session.incremental);
             ("status", Json.Str (status_str r.Session.saturated));
           ]
          @ limit_field r.Session.limit
          @ [ ("wall_ms", Json.Float r.Session.wall_ms) ])
  in
  [
    ( "backend",
      Json.Str (Chase_engine.Backend.name (Session.backend s :> Chase_engine.Backend.t)) );
    ("facts", Json.Int (Chase_engine.Incremental.cardinal inc));
    ("base_facts", Json.Int (Instance.cardinal (Chase_engine.Incremental.base inc)));
    ("pending", Json.Int (Chase_engine.Incremental.pending inc));
    ("saturated", Json.Bool (Chase_engine.Incremental.saturated inc));
    ("warm", Json.Bool (Chase_engine.Incremental.warm inc));
    ("steps_total", Json.Int (Chase_engine.Incremental.steps_total inc));
    ("chases", Json.Int (Chase_engine.Incremental.chases inc));
    ("rebuilds", Json.Int (Chase_engine.Incremental.rebuilds inc));
    ("last_chase", last);
    ( "budgets",
      Json.Obj
        [
          ("max_steps", Json.Int b.Session.max_steps);
          ("max_facts", Json.Int b.Session.max_facts);
          ("max_wall_ms", Json.Float b.Session.max_wall_ms);
        ] );
    ( "counters",
      Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Obs.Stats.counters stats)) );
    ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Obs.Stats.gauges stats)));
  ]

let handle_close t ~session =
  ignore (find_session t session);
  Hashtbl.remove t.sessions session;
  Obs.gauge "serve.sessions" (session_count t);
  [ ("sessions", Json.Int (session_count t)) ]

(* --- dispatch ------------------------------------------------------- *)

let handle t req =
  match req with
  | P.Load_program { session; program; budgets; backend } ->
      handle_load t ~session ~program ~budgets ~backend
  | P.Assert_facts { session; facts } -> handle_assert t ~session ~facts
  | P.Retract { session; facts } -> handle_retract t ~session ~facts
  | P.Chase { session; max_steps } -> handle_chase t ~session ~max_steps
  | P.Query { session; query } -> handle_query t ~session ~query
  | P.Classify { session } -> handle_classify t ~session
  | P.Decide { session; portfolio; max_states; max_depth } ->
      handle_decide t ~session ~portfolio ~max_states ~max_depth
  | P.Stats { session } -> handle_stats t ~session
  | P.Close { session } -> handle_close t ~session

let dispatch t line =
  Obs.incr "serve.requests";
  Obs.span "serve.request" @@ fun () ->
  match Json.parse line with
  | exception Json.Error { line; col; msg } ->
      error_reply ~position:(line, col) P.Invalid_json msg
  | json -> (
      let id = P.id_of json in
      match P.of_json json with
      | P.Fail (code, msg) -> error_reply ?id code msg
      | P.Ok req -> (
          let op = P.op_name req in
          let session = P.session_of req in
          match handle t req with
          | fields -> reply ?id ~op ~session ~ok:true fields
          | exception Request_error { code; msg; position } ->
              error_reply ?id ~op ~session ?position code msg
          | exception e ->
              error_reply ?id ~op ~session P.Internal
                (Printf.sprintf "unexpected %s" (Printexc.to_string e))))

let dispatch_line t line = Json.to_string (dispatch t line)

(* --- transports ----------------------------------------------------- *)

let serve_channels t ic oc =
  let rec go () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
        if String.trim line <> "" then begin
          Out_channel.output_string oc (dispatch_line t line);
          Out_channel.output_char oc '\n';
          Out_channel.flush oc
        end;
        go ()
  in
  go ()

let serve_stdio t = serve_channels t In_channel.stdin Out_channel.stdout

(* One connection at a time: requests from a second client queue in the
   listen backlog until the first disconnects.  Sessions survive across
   connections — the registry belongs to the server, not the socket.

   SIGPIPE must be ignored: a client that disconnects before reading
   its replies turns the next write into EPIPE, which with the default
   disposition kills the whole process (every session lost).  Ignored,
   the write raises [Sys_error]/[Unix_error] instead, which the
   per-connection catch below absorbs. *)
let serve_socket t sock =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Unix.listen sock 16;
  let rec accept_loop () =
    let client, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr client in
    let oc = Unix.out_channel_of_descr client in
    (try serve_channels t ic oc
     with End_of_file | Sys_error _ | Unix.Unix_error (_, _, _) -> ());
    (try Unix.close client with Unix.Unix_error _ -> ());
    accept_loop ()
  in
  accept_loop ()

(* Only remove a leftover socket from a previous run — anything else at
   the path (a regular file, a directory) is the user's data and gets a
   clear error instead of a silent unlink. *)
let remove_stale_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> failwith (Printf.sprintf "refusing to bind %S: path exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let serve_unix t path =
  remove_stale_socket path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      serve_socket t sock)

let serve_tcp t port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      serve_socket t sock)
