(** The [chasectl serve] wire protocol: request vocabulary and error
    codes.  One JSON object per line in each direction; the complete
    reference with examples lives in docs/SERVICE.md, and
    [test/suite_serve.ml] fails if any variant of {!names} is missing
    from that document. *)

(** Per-session budget overrides carried by [load-program]; [None]
    fields inherit the server defaults. *)
type budgets_override = {
  max_steps : int option;
  max_facts : int option;
  max_wall_ms : float option;
}

val no_override : budgets_override

type t =
  | Load_program of {
      session : string;
      program : string;
      budgets : budgets_override;
      backend : Chase_engine.Store.backend option;
          (** optional ["backend"] field, ["compiled"] or ["columnar"];
              [None] inherits the server default *)
    }
  | Assert_facts of { session : string; facts : string }
  | Retract of { session : string; facts : string }
  | Chase of { session : string; max_steps : int option }
  | Query of { session : string; query : string }
  | Classify of { session : string }
  | Decide of {
      session : string;
      portfolio : bool;
          (** race all procedures valid for the class instead of the
              fixed dispatch (optional ["portfolio"] field) *)
      max_states : int option;
          (** sticky Büchi state budget per component (["max_states"]);
              [None] inherits the decider default *)
      max_depth : int option;
          (** guarded divergence-search depth budget (["max_depth"]);
              [None] inherits the decider default *)
    }
  | Stats of { session : string }
  | Close of { session : string }

(** The wire name of every request the server accepts, in documented
    order. *)
val names : string list

val op_name : t -> string
val session_of : t -> string

type error_code =
  | Invalid_json
  | Invalid_request
  | Parse_error
  | Unknown_session
  | Busy
  | Budget_exhausted
  | Not_saturated
  | Internal

(** Stable wire name ("invalid-json", "busy", …). *)
val error_code_name : error_code -> string

type 'a decoded = Ok of 'a | Fail of error_code * string

(** The session name used when a request omits the field. *)
val default_session : string

(** Decode one parsed request line. *)
val of_json : Json.t -> t decoded

(** The request's [id] field, echoed verbatim into replies. *)
val id_of : Json.t -> Json.t option
