(** A named serve-side session: a resumable chase state with hard
    budgets and a per-session stats sink.  See docs/SERVICE.md for the
    budget semantics on the wire. *)

open Chase_core

type budgets = {
  max_steps : int;  (** per chase call *)
  max_facts : int;  (** instance-cardinality cap *)
  max_wall_ms : float;  (** per chase call, polled every 32 steps *)
}

val default_budgets : budgets

(** Apply a [load-program] override on top of the server defaults. *)
val resolve_budgets : defaults:budgets -> Protocol.budgets_override -> budgets

(** What the last [chase] request did — the `stats` reply's
    [last_chase] object. *)
type chase_record = {
  steps : int;
  incremental : bool;
  saturated : bool;
  limit : Chase_engine.Incremental.limit option;
  wall_ms : float;
}

type t

(** [backend] (default [`Compiled]) picks the session's mutable fact
    store — see {!Chase_engine.Store.backend}. *)
val create :
  name:string ->
  budgets:budgets ->
  ?backend:Chase_engine.Store.backend ->
  Tgd.t list ->
  Instance.t ->
  t

val name : t -> string

(** The store backend this session chases over. *)
val backend : t -> Chase_engine.Store.backend
val budgets : t -> budgets
val incremental : t -> Chase_engine.Incremental.t
val stats : t -> Obs.Stats.t
val last_chase : t -> chase_record option

(** Run [f] under this session's stats sink, teed with the sink already
    installed (if any) so signals also reach [--stats]/[--trace-json]. *)
val with_obs : t -> (unit -> 'a) -> 'a

(** A budgeted chase call: [max_steps] (capped by the session budget),
    the session's wall deadline, and its fact cap. *)
val chase : ?epool:Chase_exec.Pool.t -> ?max_steps:int -> t -> chase_record

val assert_atoms : t -> Atom.t list -> int
val retract_atoms : t -> Atom.t list -> int
