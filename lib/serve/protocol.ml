(* The chasectl serve wire protocol: request decoding and the reply
   vocabulary.  One JSON object per line in, one per line out; the
   complete reference, with examples for every variant below, lives in
   docs/SERVICE.md — test/suite_serve.ml enumerates [names] and fails
   if the document misses one. *)

type budgets_override = {
  max_steps : int option;  (* per chase call *)
  max_facts : int option;  (* instance-cardinality cap *)
  max_wall_ms : float option;  (* per request *)
}

let no_override = { max_steps = None; max_facts = None; max_wall_ms = None }

type t =
  | Load_program of {
      session : string;
      program : string;
      budgets : budgets_override;
      backend : Chase_engine.Store.backend option;
    }
  | Assert_facts of { session : string; facts : string }
  | Retract of { session : string; facts : string }
  | Chase of { session : string; max_steps : int option }
  | Query of { session : string; query : string }
  | Classify of { session : string }
  | Decide of {
      session : string;
      portfolio : bool;  (* race all valid procedures instead of fixed dispatch *)
      max_states : int option;  (* sticky Büchi state budget, per component *)
      max_depth : int option;  (* guarded divergence-search depth budget *)
    }
  | Stats of { session : string }
  | Close of { session : string }

(* Wire names, in the order documented in docs/SERVICE.md.  Keep this
   list in lockstep with the variant above: [of_json] dispatches on it
   and the suite_serve documentation test enumerates it. *)
let names =
  [
    "load-program"; "assert"; "retract"; "chase"; "query"; "classify"; "decide"; "stats";
    "close";
  ]

let op_name = function
  | Load_program _ -> "load-program"
  | Assert_facts _ -> "assert"
  | Retract _ -> "retract"
  | Chase _ -> "chase"
  | Query _ -> "query"
  | Classify _ -> "classify"
  | Decide _ -> "decide"
  | Stats _ -> "stats"
  | Close _ -> "close"

let session_of = function
  | Load_program { session; _ }
  | Assert_facts { session; _ }
  | Retract { session; _ }
  | Chase { session; _ }
  | Query { session; _ }
  | Classify { session }
  | Decide { session; _ }
  | Stats { session }
  | Close { session } -> session

(* --- error codes ---------------------------------------------------- *)

type error_code =
  | Invalid_json  (* the line is not a JSON object *)
  | Invalid_request  (* JSON fine, but not a well-formed request *)
  | Parse_error  (* program/facts/query surface-syntax error *)
  | Unknown_session
  | Busy  (* admission control refused the request *)
  | Budget_exhausted  (* a hard session budget refused the request *)
  | Not_saturated  (* query on a session whose chase is incomplete *)
  | Internal

let error_code_name = function
  | Invalid_json -> "invalid-json"
  | Invalid_request -> "invalid-request"
  | Parse_error -> "parse-error"
  | Unknown_session -> "unknown-session"
  | Busy -> "busy"
  | Budget_exhausted -> "budget-exhausted"
  | Not_saturated -> "not-saturated"
  | Internal -> "internal"

(* --- decoding ------------------------------------------------------- *)

type 'a decoded = Ok of 'a | Fail of error_code * string

let default_session = "default"

let of_json json =
  match json with
  | Json.Obj _ -> (
      let str k = Json.to_str_opt (Json.member k json) in
      let session = Option.value (str "session") ~default:default_session in
      let required k of_req =
        match str k with
        | Some v -> of_req v
        | None -> Fail (Invalid_request, Printf.sprintf "missing required string field %S" k)
      in
      match str "op" with
      | None -> Fail (Invalid_request, "missing required string field \"op\"")
      | Some "load-program" ->
          required "program" (fun program ->
              let budgets =
                {
                  max_steps = Json.to_int_opt (Json.member "max_steps" json);
                  max_facts = Json.to_int_opt (Json.member "max_facts" json);
                  max_wall_ms = Json.to_float_opt (Json.member "max_wall_ms" json);
                }
              in
              match str "backend" with
              | None -> Ok (Load_program { session; program; budgets; backend = None })
              | Some b -> (
                  match Chase_engine.Store.backend_of_name b with
                  | Stdlib.Ok backend ->
                      Ok (Load_program { session; program; budgets; backend = Some backend })
                  | Stdlib.Error msg ->
                      Fail (Invalid_request, Printf.sprintf "field \"backend\": %s" msg)))
      | Some "assert" -> required "facts" (fun facts -> Ok (Assert_facts { session; facts }))
      | Some "retract" -> required "facts" (fun facts -> Ok (Retract { session; facts }))
      | Some "chase" ->
          Ok (Chase { session; max_steps = Json.to_int_opt (Json.member "max_steps" json) })
      | Some "query" -> required "query" (fun query -> Ok (Query { session; query }))
      | Some "classify" -> Ok (Classify { session })
      | Some "decide" ->
          Ok
            (Decide
               {
                 session;
                 portfolio =
                   Option.value ~default:false (Json.to_bool_opt (Json.member "portfolio" json));
                 max_states = Json.to_int_opt (Json.member "max_states" json);
                 max_depth = Json.to_int_opt (Json.member "max_depth" json);
               })
      | Some "stats" -> Ok (Stats { session })
      | Some "close" -> Ok (Close { session })
      | Some op ->
          Fail
            ( Invalid_request,
              Printf.sprintf "unknown op %S (expected one of: %s)" op (String.concat ", " names)
            ))
  | _ -> Fail (Invalid_request, "request must be a JSON object")

(* The request id, echoed verbatim into the reply (any JSON scalar). *)
let id_of json = match json with Json.Obj _ -> Json.member "id" json | _ -> None
