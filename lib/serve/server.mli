(** The [chasectl serve] request loop: a registry of named {!Session}s
    driven by the JSON-lines protocol of docs/SERVICE.md.  One request
    per input line, exactly one reply line per request; malformed input
    and failing programs produce structured error replies, never a dead
    server. *)

type config = {
  max_sessions : int;  (** admission control: [busy] beyond this *)
  defaults : Session.budgets;  (** for sessions without overrides *)
  backend : Chase_engine.Store.backend;
      (** store backend for sessions whose [load-program] has no
          ["backend"] field — the CLI's [--backend] *)
}

val default_config : config

type t

(** [create ?epool config] builds an empty server.  All chase work runs
    on [epool] (default: inline). *)
val create : ?epool:Chase_exec.Pool.t -> config -> t

val session_count : t -> int

(** Handle one request line, returning the reply as a JSON value.
    Total: every exception becomes an error reply. *)
val dispatch : t -> string -> Json.t

(** {!dispatch} rendered as one line (no trailing newline). *)
val dispatch_line : t -> string -> string

(** Read request lines from [ic] until EOF, writing one reply line per
    request to [oc] (blank lines are skipped, replies flushed). *)
val serve_channels : t -> in_channel -> out_channel -> unit

(** Serve stdin/stdout — the [chasectl serve] default transport. *)
val serve_stdio : t -> unit

(** Unlink [path] if it is a leftover socket; no-op when nothing is
    there.  Raises [Failure] when the path holds anything else (a
    regular file, a directory) rather than silently deleting it. *)
val remove_stale_socket : string -> unit

(** Bind a Unix-domain socket at [path] (via {!remove_stale_socket})
    and serve connections sequentially, forever, with SIGPIPE ignored
    so a client vanishing mid-reply cannot kill the server.  Sessions
    survive across connections. *)
val serve_unix : t -> string -> 'a

(** Same over loopback TCP. *)
val serve_tcp : t -> int -> 'a
