(* A named serve-side session: a resumable chase state
   (Chase_engine.Incremental) plus the robustness plumbing — hard
   budgets, a per-session stats sink, and the bookkeeping the `stats`
   request reports.  Budget semantics are documented in
   docs/SERVICE.md. *)

type budgets = {
  max_steps : int;  (* per chase call *)
  max_facts : int;  (* instance-cardinality cap *)
  max_wall_ms : float;  (* per chase call, polled every 32 steps *)
}

let default_budgets = { max_steps = 10_000; max_facts = 1_000_000; max_wall_ms = 10_000.0 }

let resolve_budgets ~defaults (o : Protocol.budgets_override) =
  {
    max_steps = Option.value o.Protocol.max_steps ~default:defaults.max_steps;
    max_facts = Option.value o.Protocol.max_facts ~default:defaults.max_facts;
    max_wall_ms = Option.value o.Protocol.max_wall_ms ~default:defaults.max_wall_ms;
  }

type chase_record = {
  steps : int;
  incremental : bool;
  saturated : bool;
  limit : Chase_engine.Incremental.limit option;
  wall_ms : float;
}

type t = {
  name : string;
  budgets : budgets;
  inc : Chase_engine.Incremental.t;
  stats : Obs.Stats.t;
  mutable last_chase : chase_record option;
}

let create ~name ~budgets ?(backend = `Compiled) tgds database =
  {
    name;
    budgets;
    inc = Chase_engine.Incremental.create ~backend tgds database;
    stats = Obs.Stats.create ();
    last_chase = None;
  }

let backend t = Chase_engine.Incremental.backend t.inc

let name t = t.name
let budgets t = t.budgets
let incremental t = t.inc
let stats t = t.stats
let last_chase t = t.last_chase

(* Run [f] with this session's stats sink installed, teed with whatever
   sink the server already has (--stats / --trace-json), so engine
   signals land in both the per-session snapshot and the global one. *)
let with_obs t f =
  let mine = Obs.Stats.sink t.stats in
  let sink = match Obs.current_sink () with Some g -> Obs.tee g mine | None -> mine in
  Obs.with_sink sink f

let chase ?epool ?max_steps t =
  let max_steps =
    match max_steps with
    | None -> t.budgets.max_steps
    | Some n -> min n t.budgets.max_steps
  in
  let start = Unix.gettimeofday () in
  let deadline () = (Unix.gettimeofday () -. start) *. 1000.0 > t.budgets.max_wall_ms in
  let o =
    with_obs t (fun () ->
        Chase_engine.Incremental.chase ?epool ~max_steps ~deadline ~max_facts:t.budgets.max_facts
          t.inc)
  in
  let r =
    {
      steps = o.Chase_engine.Incremental.steps;
      incremental = o.Chase_engine.Incremental.incremental;
      saturated = o.Chase_engine.Incremental.saturated;
      limit = o.Chase_engine.Incremental.limit;
      wall_ms = (Unix.gettimeofday () -. start) *. 1000.0;
    }
  in
  t.last_chase <- Some r;
  r

let assert_atoms t atoms = with_obs t (fun () -> Chase_engine.Incremental.assert_atoms t.inc atoms)
let retract_atoms t atoms = with_obs t (fun () -> Chase_engine.Incremental.retract_atoms t.inc atoms)
